//! End-to-end pipeline tests: generate data, design a mechanism, privatise group
//! counts, and check that the released statistics behave as the theory predicts.

use constrained_private_mechanisms::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn a(v: f64) -> Alpha {
    Alpha::new(v).unwrap()
}

/// Privatising Binomial group counts with EM yields an empirical truth rate close to
/// the diagonal value y, and the aggregate estimate stays close to the truth.
#[test]
fn binomial_release_matches_the_mechanism_diagonal() {
    let alpha = a(0.8);
    let n = 6;
    let mut rng = StdRng::seed_from_u64(11);
    // p = 0.5 keeps the group-count distribution symmetric about n/2, so the
    // truncation bias of the (symmetric) mechanism cancels in the aggregate.
    let population = BinomialPopulationSpec {
        population_size: 30_000,
        probability: 0.5,
    }
    .generate(&mut rng);
    let counts = population.group_counts(n);

    let em = ExplicitFairMechanism::new(n, alpha).unwrap();
    let sampler = MechanismSampler::new(em.matrix());
    let reported = sampler.privatize(&counts, &mut rng);

    // Fairness: the probability of reporting the truth is exactly y for every input,
    // so the empirical truth rate must concentrate around y regardless of the data.
    let truth_rate =
        counts.iter().zip(&reported).filter(|(t, r)| t == r).count() as f64 / counts.len() as f64;
    let y = em.diagonal_value();
    assert!(
        (truth_rate - y).abs() < 0.02,
        "empirical truth rate {truth_rate} vs diagonal {y}"
    );

    // The total estimate over all groups should be within a few percent of the truth
    // (EM is symmetric, so its per-group bias is small away from the boundary).
    let true_total: usize = counts.iter().sum();
    let noisy_total: usize = reported.iter().sum();
    let relative_error = (noisy_total as f64 - true_total as f64).abs() / true_total as f64;
    assert!(relative_error < 0.06, "relative error {relative_error}");
}

/// The direct geometric-noise sampler and the GM matrix describe the same
/// distribution: privatising the same counts both ways gives statistically
/// indistinguishable error rates.
#[test]
fn direct_and_matrix_geometric_sampling_agree() {
    let alpha = a(0.7);
    let n = 5;
    let mut rng = StdRng::seed_from_u64(23);
    let counts: Vec<usize> = (0..20_000).map(|i| i % (n + 1)).collect();

    let gm = GeometricMechanism::new(n, alpha).unwrap();
    let sampler = MechanismSampler::new(gm.matrix());
    let via_matrix = sampler.privatize(&counts, &mut rng);
    let via_noise: Vec<usize> = counts
        .iter()
        .map(|&c| sample_geometric_direct(n, alpha, c, &mut rng))
        .collect();

    let rate_matrix = counts
        .iter()
        .zip(&via_matrix)
        .filter(|(t, r)| t != r)
        .count() as f64
        / counts.len() as f64;
    let rate_noise = counts
        .iter()
        .zip(&via_noise)
        .filter(|(t, r)| t != r)
        .count() as f64
        / counts.len() as f64;
    assert!(
        (rate_matrix - rate_noise).abs() < 0.02,
        "{rate_matrix} vs {rate_noise}"
    );
}

/// Full Adult-style pipeline through the umbrella crate: the qualitative Figure 10
/// ordering (EM at least as honest as GM on middle-heavy data; UM data-independent)
/// emerges from generated data + designed mechanisms + sampling + metrics.
#[test]
fn adult_pipeline_reproduces_the_figure_10_ordering() {
    let alpha = a(0.9);
    let n = 8;
    let mut rng = StdRng::seed_from_u64(5);
    let dataset = AdultDataset::generate(AdultDatasetSpec { size: 12_000 }, &mut rng);
    let counts = dataset.target_population(AdultTarget::Male).group_counts(n);

    let mut error_rates = std::collections::HashMap::new();
    for which in NamedMechanism::PAPER_SET {
        let matrix = build_mechanism(which, n, alpha).unwrap();
        let stats = evaluate_repeated(&matrix, &counts, 10, 17, empirical_error_rate);
        error_rates.insert(which.label(), stats.mean);
    }
    let um_expected = 1.0 - 1.0 / (n as f64 + 1.0);
    assert!((error_rates["UM"] - um_expected).abs() < 0.05);
    assert!(error_rates["EM"] <= error_rates["GM"] + 0.03);
    // Everything is a probability.
    for (&label, &rate) in &error_rates {
        assert!((0.0..=1.0).contains(&rate), "{label}: {rate}");
    }
}

/// The mechanism returned by the Figure 5 flowchart always satisfies the request,
/// whatever combination is asked for (spot-checked over the full power set on a tiny
/// instance, using the LP only when the flowchart says so).
#[test]
fn flowchart_designs_satisfy_every_requested_subset() {
    let n = 3;
    let alpha = a(0.85);
    for subset in PropertySet::power_set() {
        let designed = MechanismSpec::new(n, alpha)
            .properties(subset)
            .build()
            .unwrap()
            .design()
            .unwrap_or_else(|e| panic!("subset {subset}: {e}"));
        let choice = designed.choice().expect("L0 designs carry a choice");
        assert!(
            designed.requested_satisfied(),
            "subset {subset} not satisfied by {}",
            choice.short_name()
        );
        assert!(
            designed.mechanism().satisfies_dp(alpha, 1e-6),
            "subset {subset}"
        );
    }
}

//! Property-based integration tests (proptest) over the public API: invariants that
//! must hold for *every* valid parameter choice, not just the paper's grid.

use constrained_private_mechanisms::prelude::*;
use proptest::prelude::*;

fn alpha_strategy() -> impl Strategy<Value = f64> {
    // Stay away from 0 to keep epsilon finite, and include 1.0 explicitly elsewhere.
    0.05f64..=0.995
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GM and EM are always column-stochastic, α-DP, and ordered GM <= EM in L0,
    /// with EM fair and GM symmetric, for every (n, α).
    #[test]
    fn explicit_constructions_are_always_valid(n in 1usize..24, alpha in alpha_strategy()) {
        let alpha = Alpha::new(alpha).unwrap();
        let gm = GeometricMechanism::new(n, alpha).unwrap();
        let em = ExplicitFairMechanism::new(n, alpha).unwrap();
        prop_assert!(gm.matrix().is_column_stochastic(1e-9));
        prop_assert!(em.matrix().is_column_stochastic(1e-9));
        prop_assert!(gm.matrix().satisfies_dp(alpha, 1e-9));
        prop_assert!(em.matrix().satisfies_dp(alpha, 1e-9));
        prop_assert!(Property::Symmetry.holds(gm.matrix(), 1e-9));
        prop_assert!(Property::Fairness.holds(em.matrix(), 1e-9));
        prop_assert!(Property::WeakHonesty.holds(em.matrix(), 1e-9));
        prop_assert!(rescaled_l0(em.matrix()) + 1e-9 >= rescaled_l0(gm.matrix()));
        // And the closed forms agree with the matrices.
        prop_assert!((rescaled_l0(gm.matrix()) - closed_form::gm_l0(alpha)).abs() < 1e-9);
        prop_assert!((rescaled_l0(em.matrix()) - closed_form::em_l0(n, alpha)).abs() < 1e-9);
    }

    /// The Lemma 2 predicate agrees with the actual weak-honesty check of the GM
    /// matrix for every (n, α).
    #[test]
    fn lemma_2_predicate_matches_reality(n in 1usize..32, alpha in alpha_strategy()) {
        let alpha = Alpha::new(alpha).unwrap();
        let gm = GeometricMechanism::new(n, alpha).unwrap();
        prop_assert_eq!(
            closed_form::gm_satisfies_weak_honesty(n, alpha),
            Property::WeakHonesty.holds(gm.matrix(), 1e-9)
        );
    }

    /// Symmetrisation (Theorem 1) preserves stochasticity, DP, and the trace for any
    /// mixture-built DP mechanism.
    #[test]
    fn symmetrisation_preserves_invariants(
        n in 1usize..12,
        alpha in alpha_strategy(),
        mix in 0.0f64..=1.0,
        skew in 1usize..5,
    ) {
        let alpha = Alpha::new(alpha).unwrap();
        let gm = GeometricMechanism::new(n, alpha).unwrap();
        // Mix GM with an input-oblivious skewed mechanism (both are alpha-DP, so the
        // mixture is too) to get an asymmetric test subject.
        let total: f64 = (0..=n).map(|i| ((i % skew) + 1) as f64).sum();
        let mixture = Mechanism::from_fn(n, |i, j| {
            mix * gm.matrix().prob(i, j) + (1.0 - mix) * ((i % skew) + 1) as f64 / total
        })
        .unwrap();
        let symmetric = symmetrize(&mixture);
        prop_assert!(symmetric.is_column_stochastic(1e-9));
        prop_assert!(symmetric.satisfies_dp(alpha, 1e-9));
        prop_assert!(Property::Symmetry.holds(&symmetric, 1e-9));
        prop_assert!((symmetric.trace() - mixture.trace()).abs() < 1e-9);
    }

    /// Sampling never produces an output outside 0..=n, and the empirical truth rate
    /// of EM stays within a loose band of the diagonal value.
    #[test]
    fn sampling_respects_the_output_range(
        n in 1usize..16,
        alpha in alpha_strategy(),
        input_seed in 0u64..1000,
    ) {
        use rand::{rngs::StdRng, SeedableRng};
        let alpha = Alpha::new(alpha).unwrap();
        let em = ExplicitFairMechanism::new(n, alpha).unwrap();
        let sampler = MechanismSampler::new(em.matrix());
        let mut rng = StdRng::seed_from_u64(input_seed);
        for input in 0..=n {
            for _ in 0..50 {
                let output = sampler.sample(input, &mut rng);
                prop_assert!(output <= n);
            }
        }
    }

    /// The empirical metrics are consistent: error-beyond-d is non-increasing in d
    /// and bounded by the plain error rate; RMSE is zero iff all reports are exact.
    #[test]
    fn metrics_are_internally_consistent(
        truth in proptest::collection::vec(0usize..9, 1..60),
        noise in proptest::collection::vec(0usize..9, 1..60),
    ) {
        let len = truth.len().min(noise.len());
        let truth = &truth[..len];
        let reported = &noise[..len];
        let e0 = empirical_error_rate(truth, reported);
        let e1 = empirical_error_rate_beyond(truth, reported, 1);
        let e3 = empirical_error_rate_beyond(truth, reported, 3);
        prop_assert!(e1 <= e0 + 1e-12);
        prop_assert!(e3 <= e1 + 1e-12);
        let rmse = root_mean_square_error(truth, reported);
        if e0 == 0.0 {
            prop_assert!(rmse == 0.0);
        } else {
            prop_assert!(rmse > 0.0);
        }
        prop_assert!(mean_absolute_error(truth, reported) <= rmse + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// For a random subset of the structural properties on a small instance, the LP
    /// design (i) satisfies everything in the subset's implication closure, (ii) is
    /// α-DP, and (iii) costs between GM's and EM's closed-form L0 scores.
    #[test]
    fn lp_designs_satisfy_random_property_subsets(
        mask in 0u8..128,
        n in 2usize..=3,
        alpha in 0.55f64..0.95,
    ) {
        let alpha = Alpha::new(alpha).unwrap();
        let subset: PropertySet = Property::ALL
            .iter()
            .enumerate()
            .filter(|(bit, _)| mask & (1 << bit) != 0)
            .map(|(_, p)| *p)
            .collect();
        let solution = optimal_constrained(n, alpha, Objective::l0(), subset).unwrap();
        prop_assert!(subset.all_hold(&solution.mechanism, 1e-6), "{subset}");
        prop_assert!(subset.closure().all_hold(&solution.mechanism, 1e-6), "closure of {subset}");
        prop_assert!(solution.mechanism.satisfies_dp(alpha, 1e-6));
        let l0 = rescaled_l0(&solution.mechanism);
        prop_assert!(l0 + 1e-6 >= closed_form::gm_l0(alpha));
        prop_assert!(l0 <= closed_form::em_l0(n, alpha) + 1e-6);
    }

    /// Designing against a (valid) non-uniform prior never does worse *under that
    /// prior* than the uniform-prior design — the LP really is optimising the
    /// weighted objective of Definition 3.
    #[test]
    fn prior_aware_designs_beat_uniform_designs_under_their_prior(
        raw in proptest::collection::vec(0.05f64..1.0, 4),
        alpha in 0.6f64..0.95,
    ) {
        let n = 3;
        let alpha = Alpha::new(alpha).unwrap();
        let total: f64 = raw.iter().sum();
        let weights: Vec<f64> = raw.iter().map(|w| w / total).collect();
        let skewed = Objective {
            loss: LossKind::ZeroOne,
            prior: Prior::Weights(weights.clone()),
            aggregator: Aggregator::Sum,
        };
        let aware = optimal_constrained(n, alpha, skewed.clone(), PropertySet::empty()).unwrap();
        let oblivious = optimal_constrained(n, alpha, Objective::l0(), PropertySet::empty()).unwrap();
        let aware_cost = skewed.value(&aware.mechanism).unwrap();
        let oblivious_cost = skewed.value(&oblivious.mechanism).unwrap();
        prop_assert!(aware_cost <= oblivious_cost + 1e-6,
            "prior-aware {aware_cost} vs uniform-designed {oblivious_cost}");
    }
}

/// Non-proptest sanity check: α = 1 (the strongest privacy) is handled everywhere.
#[test]
fn alpha_equal_one_is_supported_end_to_end() {
    let alpha = Alpha::new(1.0).unwrap();
    for n in [1usize, 4, 9] {
        let gm = GeometricMechanism::new(n, alpha).unwrap();
        let em = ExplicitFairMechanism::new(n, alpha).unwrap();
        assert!(gm.matrix().satisfies_dp(alpha, 1e-9));
        assert!(em.matrix().satisfies_dp(alpha, 1e-9));
        // At alpha = 1 every mechanism scores L0 = 1 (no utility is possible).
        assert!((closed_form::gm_l0(alpha) - 1.0).abs() < 1e-12);
        assert!((rescaled_l0(em.matrix()) - 1.0).abs() < 1e-12);
    }
}

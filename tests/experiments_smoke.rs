//! Smoke tests for the per-figure experiment drivers, run at reduced scale.
//!
//! These exercise the same code paths as the `cpm-bench` figure binaries and check
//! the qualitative claims recorded in EXPERIMENTS.md, so a regression in any crate
//! shows up as a failed figure rather than only as a unit-test failure.

use constrained_private_mechanisms::eval::experiments::{
    adult_experiment, binomial_experiments, heatmaps, score_sweeps,
};
use constrained_private_mechanisms::prelude::*;

fn a(v: f64) -> Alpha {
    Alpha::new(v).unwrap()
}

#[test]
fn figure_1_and_2_pathologies_appear_and_disappear() {
    // One small panel is enough for the smoke test.
    let panels = vec![heatmaps::PanelSpec {
        n: 5,
        loss: LossKind::Absolute,
    }];
    let unconstrained = heatmaps::lp_heatmaps(a(0.62), &panels, false).unwrap();
    let constrained = heatmaps::lp_heatmaps(a(0.62), &panels, true).unwrap();
    assert!(!unconstrained.panels[0].gap_outputs.is_empty());
    assert!(constrained.panels[0].gap_outputs.is_empty());
    // The constrained mechanism satisfies everything it was asked for.
    assert!(PropertySet::all().all_hold(&constrained.panels[0].mechanism, 1e-6));
}

#[test]
fn figure_6_and_7_tables_are_consistent_with_each_other() {
    let alpha = a(10.0 / 11.0);
    let table = score_sweeps::named_mechanism_table(4, alpha).unwrap();
    let heatmaps = heatmaps::named_heatmaps(4, alpha).unwrap();
    // The diagonal mass of each heat map must equal (n+1 - n*L0)/(n+1) from the table.
    for (label, _, truth_probability) in &heatmaps.mechanisms {
        let row = table.rows.iter().find(|r| &r.mechanism == label).unwrap();
        let implied = (5.0 - 4.0 * row.l0) / 5.0;
        assert!(
            (truth_probability - implied).abs() < 1e-6,
            "{label}: {truth_probability} vs {implied}"
        );
    }
}

#[test]
fn figure_8_exhibits_exactly_two_cost_levels_above_the_threshold() {
    let alpha = a(0.76);
    let sweep = score_sweeps::combinations_vs_group_size(alpha, &[8]).unwrap();
    let mut costs: Vec<f64> = sweep.points[0].scores.iter().map(|(_, s)| *s).collect();
    costs.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let mut levels = vec![costs[0]];
    for &cost in &costs[1..] {
        if cost - levels.last().unwrap() > 1e-4 {
            levels.push(cost);
        }
    }
    assert_eq!(levels.len(), 2, "levels: {levels:?}");
    assert!((levels[0] - closed_form::gm_l0(alpha)).abs() < 1e-5);
}

#[test]
fn figure_9_series_are_ordered_and_bracketed() {
    for alpha in score_sweeps::figure9_alphas() {
        let sweep = score_sweeps::l0_versus_group_size(alpha, &[2, 4, 8]).unwrap();
        for point in &sweep.points {
            let get = |label: &str| {
                point
                    .scores
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, s)| *s)
                    .unwrap()
            };
            assert!(get("GM") <= get("WH") + 1e-6);
            assert!(get("WH") <= get("WM") + 1e-6);
            assert!(get("WM") <= get("EM") + 1e-6);
            assert!(get("EM") <= get("UM") + 1e-6);
            assert!((get("GM") - closed_form::gm_l0(alpha)).abs() < 1e-9);
            assert!((get("UM") - 1.0).abs() < 1e-12);
        }
    }
}

#[test]
fn figure_10_quick_finds_gm_no_better_than_uniform_on_adult_like_data() {
    let result = adult_experiment::run(&adult_experiment::AdultExperimentConfig::quick()).unwrap();
    for point in &result.points {
        assert!(point.error.mean >= 0.0 && point.error.mean <= 1.0);
    }
    // Averaged over targets and group sizes, GM must not beat UM on this data
    // (the paper's headline Figure 10 inversion).
    let mean_of = |mech: &str| -> f64 {
        let values: Vec<f64> = result
            .points
            .iter()
            .filter(|p| p.mechanism == mech)
            .map(|p| p.error.mean)
            .collect();
        values.iter().sum::<f64>() / values.len() as f64
    };
    assert!(mean_of("GM") + 1e-9 >= mean_of("UM") - 0.02);
    assert!(mean_of("EM") <= mean_of("GM") + 0.02);
}

#[test]
fn figures_11_to_13_quick_runs_have_the_right_crossovers() {
    let config = binomial_experiments::BinomialExperimentConfig::quick();
    // Figure 11 crossover: GM wins at p = 0.05, loses at p = 0.5 (alpha = 0.91, n = 8).
    let sweep =
        binomial_experiments::l01_error_sweep(&config, &[8], &[0.91], &[0.05, 0.5]).unwrap();
    let value = |p: f64, mech: &str| {
        sweep
            .points
            .iter()
            .find(|pt| (pt.p - p).abs() < 1e-9 && pt.mechanism == mech)
            .map(|pt| pt.value.mean)
            .unwrap()
    };
    assert!(value(0.05, "GM") < value(0.05, "EM"));
    assert!(value(0.5, "GM") > value(0.5, "EM"));

    // Figure 13: at alpha = 0.91 and balanced input, EM's RMSE is no worse than GM's.
    let rmse = binomial_experiments::rmse_sweep(&config, &[8], &[0.91], &[0.5]).unwrap();
    let rmse_of = |mech: &str| {
        rmse.points
            .iter()
            .find(|pt| pt.mechanism == mech)
            .map(|pt| pt.value.mean)
            .unwrap()
    };
    assert!(rmse_of("EM") <= rmse_of("GM") + 0.05);
}

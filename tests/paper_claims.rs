//! Cross-crate integration tests checking the paper's headline analytic claims
//! end-to-end: the LP machinery (cpm-simplex + cpm-core) must reproduce the explicit
//! constructions and the design-space collapse of Section IV.

use constrained_private_mechanisms::prelude::*;

fn a(v: f64) -> Alpha {
    Alpha::new(v).unwrap()
}

/// Theorem 3 end-to-end: the unconstrained L0 LP optimum equals the closed-form GM
/// cost, for both weak and strong privacy.
#[test]
fn theorem_3_geometric_mechanism_is_the_unconstrained_l0_optimum() {
    for (n, alpha) in [(3usize, 0.5), (5, 0.62), (4, 0.9)] {
        let solution = optimal_unconstrained(n, a(alpha), Objective::l0()).unwrap();
        let expected = closed_form::gm_l0(a(alpha));
        assert!(
            (rescaled_l0(&solution.mechanism) - expected).abs() < 1e-6,
            "n={n} alpha={alpha}"
        );
    }
}

/// Theorem 4 end-to-end: the fully constrained L0 LP optimum equals EM's closed-form
/// cost and satisfies every property.
#[test]
fn theorem_4_explicit_fair_mechanism_is_the_fully_constrained_optimum() {
    for (n, alpha) in [(3usize, 0.9), (4, 0.62), (5, 0.76)] {
        let solution =
            optimal_constrained(n, a(alpha), Objective::l0(), PropertySet::all()).unwrap();
        assert!(PropertySet::all().all_hold(&solution.mechanism, 1e-6));
        let expected = closed_form::em_l0(n, a(alpha));
        assert!(
            (rescaled_l0(&solution.mechanism) - expected).abs() < 1e-6,
            "n={n} alpha={alpha}"
        );
    }
}

/// Section IV-D: the 128 property combinations collapse onto at most four distinct
/// L0 behaviours.  We solve the LP for every subset of the seven properties on a
/// small instance and count the distinct optimal costs.
#[test]
fn design_space_collapses_to_at_most_four_distinct_costs() {
    let n = 3;
    let alpha = a(0.9);
    let mut costs: Vec<f64> = Vec::new();
    for subset in PropertySet::power_set() {
        let solution = optimal_constrained(n, alpha, Objective::l0(), subset)
            .unwrap_or_else(|e| panic!("subset {subset} failed: {e}"));
        costs.push(rescaled_l0(&solution.mechanism));
    }
    costs.sort_by(|x, y| x.partial_cmp(y).unwrap());
    let mut distinct: Vec<f64> = Vec::new();
    for cost in costs {
        if distinct.last().is_none_or(|&last| cost - last > 1e-5) {
            distinct.push(cost);
        }
    }
    assert!(
        distinct.len() <= 4,
        "expected at most 4 distinct behaviours, found {}: {distinct:?}",
        distinct.len()
    );
    // The extremes are the GM cost (no properties) and the EM cost (all properties).
    assert!((distinct.first().unwrap() - closed_form::gm_l0(alpha)).abs() < 1e-5);
    assert!((distinct.last().unwrap() - closed_form::em_l0(n, alpha)).abs() < 1e-5);
}

/// Lemma 1 end-to-end: for fair mechanisms the optimal L0 design is independent of
/// the prior weights — the LP optimum under a skewed prior has the same cost as under
/// the uniform prior.
#[test]
fn lemma_1_fair_designs_are_prior_independent() {
    let n = 4;
    let alpha = a(0.8);
    let fair = PropertySet::empty().with(Property::Fairness);
    let uniform = optimal_constrained(n, alpha, Objective::l0(), fair).unwrap();
    let skewed_objective = Objective {
        loss: LossKind::ZeroOne,
        prior: Prior::Weights(vec![0.5, 0.3, 0.1, 0.05, 0.05]),
        aggregator: Aggregator::Sum,
    };
    let skewed = optimal_constrained(n, alpha, skewed_objective, fair).unwrap();
    assert!(
        (rescaled_l0(&uniform.mechanism) - rescaled_l0(&skewed.mechanism)).abs() < 1e-6,
        "{} vs {}",
        rescaled_l0(&uniform.mechanism),
        rescaled_l0(&skewed.mechanism)
    );
}

/// Theorem 1 end-to-end: symmetrising any LP solution never changes its objective
/// value and always yields a symmetric DP mechanism with the same requested
/// properties.
#[test]
fn theorem_1_symmetrisation_is_free() {
    let n = 5;
    let alpha = a(0.76);
    let properties = PropertySet::empty()
        .with(Property::WeakHonesty)
        .with(Property::ColumnMonotonicity);
    let solution = optimal_constrained(n, alpha, Objective::l0(), properties).unwrap();
    let symmetric = symmetrize(&solution.mechanism);
    assert!(Property::Symmetry.holds(&symmetric, 1e-9));
    assert!(symmetric.satisfies_dp(alpha, 1e-6));
    assert!(properties.all_hold(&symmetric, 1e-6));
    assert!(
        (rescaled_l0(&solution.mechanism) - rescaled_l0(&symmetric)).abs() < 1e-9,
        "symmetrisation changed the objective"
    );
}

/// Section IV-D: neither EM nor WM is derivable from GM by post-processing
/// (Gupte–Sundararajan test), so constrained design is not a trivial re-mapping.
#[test]
fn constrained_mechanisms_are_not_post_processings_of_gm() {
    let alpha = a(0.9);
    for n in [2usize, 3, 4, 6] {
        // EM breaks the condition for every n > 1 (the paper gives the witness triple).
        let em = ExplicitFairMechanism::new(n, alpha).unwrap().into_matrix();
        assert!(!is_derivable_from_geometric(&em, alpha, 1e-9), "EM n={n}");
    }
    // The WM LP can have multiple optimal vertices; the paper's claim is about the
    // solution its solver returned.  For n >= 3 the vertex our simplex finds also
    // violates the condition (for n = 2 it happens to be derivable).
    for n in [3usize, 4, 6] {
        let wm = optimal_constrained(n, alpha, Objective::l0(), wm_properties())
            .unwrap()
            .mechanism;
        assert!(!is_derivable_from_geometric(&wm, alpha, 1e-9), "WM n={n}");
    }
}

/// Figure 6 ordering via the public umbrella crate: GM <= WM <= EM <= UM under L0,
/// with the gap between EM and GM bounded by the (1 + 1/n) factor.
#[test]
fn figure_6_cost_ordering_and_gap() {
    use constrained_private_mechanisms::eval::runner::{l0_score, NamedMechanism};
    for (n, alpha) in [(4usize, 0.9), (8, 0.76)] {
        let gm = l0_score(NamedMechanism::Geometric, n, a(alpha)).unwrap();
        let wm = l0_score(NamedMechanism::WeakHonest, n, a(alpha)).unwrap();
        let em = l0_score(NamedMechanism::ExplicitFair, n, a(alpha)).unwrap();
        let um = l0_score(NamedMechanism::Uniform, n, a(alpha)).unwrap();
        assert!(gm <= wm + 1e-6 && wm <= em + 1e-6 && em <= um + 1e-6);
        assert!(em <= gm * (1.0 + 1.0 / n as f64) + 1e-9);
    }
}

//! Criterion bench: building and solving the constrained mechanism-design LPs.
//!
//! The paper reports that solving its LPs is "negligible (sub-second)"; this bench
//! verifies the same holds for this reproduction across group sizes and property
//! sets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_core::prelude::*;

fn bench_lp_solve(c: &mut Criterion) {
    let alpha = Alpha::new(0.9).unwrap();
    let mut group = c.benchmark_group("lp_solve");
    group.sample_size(10);
    for &n in &[4usize, 8, 12] {
        group.bench_with_input(BenchmarkId::new("unconstrained_l0", n), &n, |b, &n| {
            b.iter(|| {
                DesignProblem::unconstrained(n, alpha, Objective::l0())
                    .solve()
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("wm_wh_rm_cm", n), &n, |b, &n| {
            b.iter(|| weak_honest_mechanism(n, alpha).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("all_properties", n), &n, |b, &n| {
            b.iter(|| {
                optimal_constrained(n, alpha, Objective::l0(), PropertySet::all()).unwrap()
            })
        });
    }
    group.finish();
}

fn bench_lp_build_only(c: &mut Criterion) {
    let alpha = Alpha::new(0.9).unwrap();
    let mut group = c.benchmark_group("lp_build");
    for &n in &[8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("build_all_properties", n), &n, |b, &n| {
            let problem =
                DesignProblem::constrained(n, alpha, Objective::l0(), PropertySet::all());
            b.iter(|| problem.build_lp().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_lp_solve, bench_lp_build_only);
criterion_main!(benches);

//! Criterion bench: building and solving the constrained mechanism-design LPs,
//! comparing the sparse revised-simplex backend against the dense tableau.
//!
//! The paper reports that solving its LPs is "negligible (sub-second)" at paper
//! scale (n ≤ ~20); this bench verifies the same holds for this reproduction and
//! measures how far each backend scales.  The dense tableau pays `O(rows · cols)`
//! per pivot, which becomes prohibitive beyond `n ≈ 32` (at `n = 32` the BASICDP
//! LP already has ~2k rows × ~3k columns); it is therefore benched only up to
//! `DENSE_MAX_N`, while the sparse backend runs across the full sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_core::prelude::*;
use cpm_simplex::{SolveOptions, SolverBackend};

/// Group sizes swept by the build benchmark.
const SWEEP: [usize; 5] = [8, 16, 32, 64, 128];
/// Group sizes the backends are asked to *solve*.  A single sparse n = 128 solve
/// runs for many minutes (see ROADMAP: sparse LU + Devex are the planned fixes),
/// so the solve comparison stops at 64.
const SOLVE_SWEEP: [usize; 4] = [8, 16, 32, 64];
/// Largest group size the dense tableau is asked to solve (beyond this a single
/// solve takes minutes and the comparison stops being informative).
const DENSE_MAX_N: usize = 32;

fn options(backend: SolverBackend) -> SolveOptions {
    SolveOptions {
        backend,
        max_iterations: 5_000_000,
        ..SolveOptions::default()
    }
}

fn bench_backend_comparison(c: &mut Criterion) {
    let alpha = Alpha::new(0.9).unwrap();
    let mut group = c.benchmark_group("lp_solve_backends");
    group.sample_size(10);
    for &n in &SOLVE_SWEEP {
        let problem = DesignProblem::unconstrained(n, alpha, Objective::l0());
        group.bench_with_input(
            BenchmarkId::new("unconstrained_l0/sparse_revised", n),
            &n,
            |b, _| {
                b.iter(|| {
                    problem
                        .solve_with(&options(SolverBackend::SparseRevised))
                        .expect("sparse solve")
                })
            },
        );
        if n <= DENSE_MAX_N {
            group.bench_with_input(
                BenchmarkId::new("unconstrained_l0/dense_tableau", n),
                &n,
                |b, _| {
                    b.iter(|| {
                        problem
                            .solve_with(&options(SolverBackend::DenseTableau))
                            .expect("dense solve")
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_constrained_solves(c: &mut Criterion) {
    let alpha = Alpha::new(0.9).unwrap();
    let mut group = c.benchmark_group("lp_solve_constrained");
    group.sample_size(10);
    for &n in &[8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("wm_wh_rm_cm", n), &n, |b, &n| {
            b.iter(|| optimal_constrained(n, alpha, Objective::l0(), wm_properties()).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("all_properties", n), &n, |b, &n| {
            b.iter(|| optimal_constrained(n, alpha, Objective::l0(), PropertySet::all()).unwrap())
        });
    }
    group.finish();
}

fn bench_lp_build_only(c: &mut Criterion) {
    let alpha = Alpha::new(0.9).unwrap();
    let mut group = c.benchmark_group("lp_build");
    for &n in &SWEEP {
        group.bench_with_input(BenchmarkId::new("build_all_properties", n), &n, |b, &n| {
            let problem = DesignProblem::constrained(n, alpha, Objective::l0(), PropertySet::all());
            b.iter(|| problem.build_lp().unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_backend_comparison,
    bench_constrained_solves,
    bench_lp_build_only
);
criterion_main!(benches);

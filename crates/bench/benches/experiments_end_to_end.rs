//! Criterion bench: end-to-end experiment pipelines (reduced-scale versions of the
//! paper's Figure 9 score sweep and Figure 10 Adult experiment).

use criterion::{criterion_group, criterion_main, Criterion};

use cpm_core::Alpha;
use cpm_eval::prelude::{adult_experiment, score_sweeps};

fn bench_score_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("experiments");
    group.sample_size(10);
    group.bench_function("fig9_panel_small", |b| {
        let alpha = Alpha::new(10.0 / 11.0).unwrap();
        b.iter(|| score_sweeps::l0_versus_group_size(alpha, &[2, 4, 6, 8]).unwrap())
    });
    group.bench_function("fig10_adult_quick", |b| {
        let config = adult_experiment::AdultExperimentConfig::quick();
        b.iter(|| adult_experiment::run(&config).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_score_sweep);
criterion_main!(benches);

//! Criterion bench (ablation): simplex pivot rules on the paper's mechanism-design
//! LPs.  The design LPs are heavily degenerate, so the entering-column rule matters:
//! Dantzig is fastest per pivot but risks stalling, Bland is safe but slow, and the
//! hybrid default (Dantzig with a Bland fallback) is what the library ships.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_core::prelude::*;
use cpm_simplex::{PivotRule, SolveOptions};

fn bench_pivot_rules(c: &mut Criterion) {
    let alpha = Alpha::new(0.9).unwrap();
    let n = 8;
    let properties = PropertySet::empty()
        .with(Property::WeakHonesty)
        .with(Property::RowMonotonicity)
        .with(Property::ColumnMonotonicity);
    let problem = DesignProblem::constrained(n, alpha, Objective::l0(), properties);

    let mut group = c.benchmark_group("pivot_rule_ablation");
    group.sample_size(10);
    for (label, rule) in [
        ("dantzig", PivotRule::Dantzig),
        ("bland", PivotRule::Bland),
        (
            "hybrid_default",
            PivotRule::Hybrid {
                degenerate_threshold: 64,
            },
        ),
    ] {
        group.bench_with_input(BenchmarkId::new("wm_lp_n8", label), &rule, |b, &rule| {
            let options = SolveOptions {
                pivot_rule: rule,
                max_iterations: 2_000_000,
                ..SolveOptions::default()
            };
            b.iter(|| problem.solve_with(&options).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pivot_rules);
criterion_main!(benches);

//! Criterion bench (ablation): simplex pivot rules × solver backends on the
//! paper's mechanism-design LPs.  The design LPs are heavily degenerate, so the
//! entering-column rule matters: Dantzig is fastest per pivot but risks stalling,
//! Bland is safe but slow, and the hybrid default (Dantzig with a Bland fallback)
//! is what the library ships.  Crossing the rules with both backends shows that
//! the rule ordering is backend-independent while the sparse backend shifts the
//! whole curve down.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_core::prelude::*;
use cpm_simplex::{PivotRule, SolveOptions, SolverBackend};

const RULES: [(&str, PivotRule); 3] = [
    ("dantzig", PivotRule::Dantzig),
    ("bland", PivotRule::Bland),
    (
        "hybrid_default",
        PivotRule::Hybrid {
            degenerate_threshold: 64,
        },
    ),
];

fn wm_problem(n: usize) -> DesignProblem {
    let alpha = Alpha::new(0.9).unwrap();
    let properties = PropertySet::empty()
        .with(Property::WeakHonesty)
        .with(Property::RowMonotonicity)
        .with(Property::ColumnMonotonicity);
    DesignProblem::constrained(n, alpha, Objective::l0(), properties)
}

fn bench_pivot_rules_by_backend(c: &mut Criterion) {
    let n = 8;
    let problem = wm_problem(n);
    let mut group = c.benchmark_group("pivot_rule_ablation");
    group.sample_size(10);
    for backend in [SolverBackend::SparseRevised, SolverBackend::DenseTableau] {
        for (label, rule) in RULES {
            group.bench_with_input(
                BenchmarkId::new(format!("wm_lp_n8/{backend}"), label),
                &rule,
                |b, &rule| {
                    let options = SolveOptions {
                        pivot_rule: rule,
                        backend,
                        max_iterations: 2_000_000,
                        ..SolveOptions::default()
                    };
                    b.iter(|| problem.solve_with(&options).unwrap())
                },
            );
        }
    }
    group.finish();
}

fn bench_pricing_rules(c: &mut Criterion) {
    // Devex reference pricing versus Dantzig on the sparse LU backend — the
    // ablation behind the shipped Devex default.
    use cpm_simplex::PricingRule;
    let mut group = c.benchmark_group("pricing_rule_ablation");
    group.sample_size(10);
    for &n in &[8usize, 16] {
        let problem = wm_problem(n);
        for (label, pricing) in [
            ("devex", PricingRule::Devex),
            ("dantzig", PricingRule::Dantzig),
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("wm_lp/{label}"), n),
                &pricing,
                |b, &pricing| {
                    let options = SolveOptions {
                        pricing,
                        max_iterations: 2_000_000,
                        ..SolveOptions::default()
                    };
                    b.iter(|| problem.solve_with(&options).unwrap())
                },
            );
        }
    }
    group.finish();
}

fn bench_hybrid_scaling(c: &mut Criterion) {
    // The shipped rule on the sparse backend across growing group sizes — the
    // configuration every experiment binary actually runs.
    let mut group = c.benchmark_group("pivot_rule_scaling");
    group.sample_size(10);
    for &n in &[8usize, 16, 32] {
        let problem = wm_problem(n);
        group.bench_with_input(BenchmarkId::new("hybrid_sparse", n), &n, |b, _| {
            let options = SolveOptions {
                max_iterations: 2_000_000,
                ..SolveOptions::default()
            };
            b.iter(|| problem.solve_with(&options).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_pivot_rules_by_backend,
    bench_pricing_rules,
    bench_hybrid_scaling
);
criterion_main!(benches);

//! Criterion bench: wire-protocol overhead — JSON vs compact `CPMF` binary.
//!
//! Measures the three costs a codec adds to a privatize round trip, with the
//! design already resident so nothing but wire work is on the clock:
//!
//! * encode: request struct → frame payload bytes;
//! * decode: frame payload bytes → [`cpm_serve::proto::Op`];
//! * end-to-end: framed request through a [`ProtoConnection`] to a framed
//!   response (sniff + decode + dispatch + encode).
//!
//! The per-frame byte counts (the other half of "wire overhead" in
//! BENCHMARKS.md) are printed once at start-up.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_serve::proto::{self, Op, ProtoConfig, ProtoConnection};
use cpm_serve::{Engine, EngineConfig, WireRequest};

const BATCH_SIZES: [usize; 3] = [1, 16, 256];

fn request_for(inputs: Vec<usize>) -> WireRequest {
    WireRequest {
        op: "privatize".to_string(),
        n: 32,
        alpha: 0.9,
        properties: String::new(),
        objective: String::new(),
        inputs,
        reports: Vec::new(),
    }
}

fn json_payload(request: &WireRequest) -> Vec<u8> {
    serde_json::to_string(request)
        .expect("request serializes")
        .into_bytes()
}

fn binary_payload(request: &WireRequest) -> Vec<u8> {
    let op = proto::op_from_request(request).expect("request is valid");
    proto::encode_request(&op).expect("op encodes")
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Print the per-frame wire sizes once, so a bench run yields both halves of
/// the BENCHMARKS.md wire-overhead table.
fn print_frame_sizes() {
    eprintln!("wire_protocol: privatize request bytes (payload, framed):");
    for &size in &BATCH_SIZES {
        let request = request_for((0..size).map(|i| i % 33).collect());
        let json = json_payload(&request);
        let binary = binary_payload(&request);
        eprintln!(
            "  batch {size:>3}: JSON {:>5} ({:>5}) | CPMF {:>4} ({:>4}) | ratio {:.1}x",
            json.len(),
            json.len() + 4,
            binary.len(),
            binary.len() + 4,
            json.len() as f64 / binary.len() as f64,
        );
    }
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_encode");
    for &size in &BATCH_SIZES {
        let request = request_for((0..size).map(|i| i % 33).collect());
        let op = proto::op_from_request(&request).expect("request is valid");
        group.bench_with_input(BenchmarkId::new("json", size), &size, |b, _| {
            b.iter(|| json_payload(black_box(&request)))
        });
        group.bench_with_input(BenchmarkId::new("binary", size), &size, |b, _| {
            b.iter(|| proto::encode_request(black_box(&op)).unwrap())
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_decode");
    for &size in &BATCH_SIZES {
        let request = request_for((0..size).map(|i| i % 33).collect());
        let json = json_payload(&request);
        let binary = binary_payload(&request);
        group.bench_with_input(BenchmarkId::new("json", size), &size, |b, _| {
            b.iter(|| {
                let parsed: WireRequest =
                    serde_json::from_str(std::str::from_utf8(black_box(&json)).unwrap()).unwrap();
                proto::op_from_request(&parsed).unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("binary", size), &size, |b, _| {
            b.iter(|| proto::decode_request(black_box(&binary)).unwrap())
        });
    }
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let engine = Engine::new(EngineConfig::default());
    // Warm the one key every request hits, so the bench times wire work plus
    // an O(1) alias draw — not LP design.
    let warmup = request_for(vec![0]);
    let op = proto::op_from_request(&warmup).expect("request is valid");
    if let Op::Privatize { key, .. } = &op {
        engine.warm(&[*key]).expect("GM warms instantly");
    }

    let mut group = c.benchmark_group("wire_end_to_end");
    for &size in &BATCH_SIZES {
        let request = request_for((0..size).map(|i| i % 33).collect());
        let json = frame(&json_payload(&request));
        let binary = frame(&binary_payload(&request));
        group.bench_with_input(BenchmarkId::new("json", size), &size, |b, _| {
            let mut conn = ProtoConnection::new(ProtoConfig::default());
            b.iter(|| {
                conn.ingest(&engine, black_box(&json)).unwrap();
                let produced = conn.pending_output().len();
                assert!(produced > 0);
                conn.advance_output(produced);
            })
        });
        group.bench_with_input(BenchmarkId::new("binary", size), &size, |b, _| {
            let mut conn = ProtoConnection::new(ProtoConfig::default());
            b.iter(|| {
                conn.ingest(&engine, black_box(&binary)).unwrap();
                let produced = conn.pending_output().len();
                assert!(produced > 0);
                conn.advance_output(produced);
            })
        });
    }
    group.finish();
}

fn all(c: &mut Criterion) {
    print_frame_sizes();
    bench_encode(c);
    bench_decode(c);
    bench_end_to_end(c);
}

criterion_group!(benches, all);
criterion_main!(benches);

//! Criterion bench: the cold-solve hot path under the PR-6 solver machinery —
//! projected steepest-edge vs Devex pricing on the unconstrained designs, and
//! presolve on vs off on the constrained (weak-honesty) family whose singleton
//! rows presolve folds into bounds.
//!
//! Headline numbers from this bench (and the one-shot n = 128 / n = 256 runs
//! of the `backend_scaling` bin) live in BENCHMARKS.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_core::prelude::*;
use cpm_simplex::{PricingRule, SolveOptions};

/// Group sizes for the pricing-rule comparison.  n = 64 is the largest size a
/// ~10-sample Criterion group can afford; the n = 128 / 256 endpoints are
/// one-shot measurements in BENCHMARKS.md.
const PRICING_SWEEP: [usize; 3] = [16, 32, 64];
/// Group sizes for the presolve on/off comparison on constrained designs.
const PRESOLVE_SWEEP: [usize; 3] = [8, 16, 32];

fn bench_pricing_rules(c: &mut Criterion) {
    let alpha = Alpha::new(0.9).unwrap();
    let mut group = c.benchmark_group("cold_solve_pricing");
    group.sample_size(10);
    for &n in &PRICING_SWEEP {
        let problem = DesignProblem::unconstrained(n, alpha, Objective::l0());
        for (label, pricing) in [
            ("steepest_edge", PricingRule::SteepestEdge),
            ("devex", PricingRule::Devex),
        ] {
            let options = SolveOptions {
                pricing,
                ..problem.recommended_options()
            };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| problem.solve_with(&options).expect("cold solve"))
            });
        }
    }
    group.finish();
}

fn bench_presolve(c: &mut Criterion) {
    let alpha = Alpha::new(0.9).unwrap();
    let mut group = c.benchmark_group("cold_solve_presolve");
    group.sample_size(10);
    for &n in &PRESOLVE_SWEEP {
        let problem = DesignProblem::constrained(n, alpha, Objective::l0(), wm_properties());
        for (label, presolve) in [("presolve_on", true), ("presolve_off", false)] {
            let options = SolveOptions {
                presolve,
                ..problem.recommended_options()
            };
            group.bench_with_input(BenchmarkId::new(label, n), &n, |b, _| {
                b.iter(|| {
                    problem
                        .solve_with(&options)
                        .expect("constrained cold solve")
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_pricing_rules, bench_presolve);
criterion_main!(benches);

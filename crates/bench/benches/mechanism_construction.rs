//! Criterion bench: constructing the explicit mechanisms (GM, EM, Laplace,
//! Exponential) across group sizes — these are closed-form O(n²) matrix fills —
//! and checking properties / DP on the results.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_core::prelude::*;

fn bench_explicit_constructions(c: &mut Criterion) {
    let alpha = Alpha::new(0.9).unwrap();
    let mut group = c.benchmark_group("explicit_construction");
    for &n in &[8usize, 32, 128, 512] {
        group.bench_with_input(BenchmarkId::new("geometric", n), &n, |b, &n| {
            b.iter(|| GeometricMechanism::new(n, alpha).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("explicit_fair", n), &n, |b, &n| {
            b.iter(|| ExplicitFairMechanism::new(n, alpha).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("laplace", n), &n, |b, &n| {
            b.iter(|| LaplaceMechanism::new(n, alpha).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("exponential", n), &n, |b, &n| {
            b.iter(|| ExponentialMechanism::new(n, alpha).unwrap())
        });
    }
    group.finish();
}

fn bench_property_checks(c: &mut Criterion) {
    let alpha = Alpha::new(0.9).unwrap();
    let mut group = c.benchmark_group("property_checks");
    for &n in &[16usize, 64, 256] {
        let em = ExplicitFairMechanism::new(n, alpha).unwrap().into_matrix();
        group.bench_with_input(BenchmarkId::new("all_seven_properties", n), &n, |b, _| {
            b.iter(|| PropertySet::all().all_hold(&em, 1e-9))
        });
        group.bench_with_input(BenchmarkId::new("dp_check", n), &n, |b, _| {
            b.iter(|| em.satisfies_dp(alpha, 1e-9))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_explicit_constructions, bench_property_checks);
criterion_main!(benches);

//! Criterion bench: sampling throughput — privatising a batch of group counts via
//! the generic column-CDF sampler versus the direct geometric-noise sampler.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cpm_core::prelude::*;

fn bench_sampling(c: &mut Criterion) {
    let alpha = Alpha::new(0.9).unwrap();
    let mut group = c.benchmark_group("sampling");
    for &n in &[8usize, 32, 128] {
        let gm = GeometricMechanism::new(n, alpha).unwrap().into_matrix();
        let sampler = MechanismSampler::new(&gm);
        let counts: Vec<usize> = (0..10_000).map(|i| i % (n + 1)).collect();

        group.bench_with_input(BenchmarkId::new("matrix_cdf_sampler", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| sampler.privatize(&counts, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("direct_geometric", n), &n, |b, &n| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                counts
                    .iter()
                    .map(|&c| sample_geometric_direct(n, alpha, c, &mut rng))
                    .collect::<Vec<_>>()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sampling);
criterion_main!(benches);

//! Criterion bench: α-sweep re-solves, cold two-phase primal vs dual-simplex
//! warm starts seeded from an α-neighbour's optimal basis.
//!
//! The serving layer's dominant cold-start cost is re-solving one
//! `(n, properties, objective)` family at many nearby α values (eval heatmaps,
//! α sweeps in `CPM_SERVE_WARM`, cold-start storms).  A warm start converts
//! each re-solve from "full Phase 1 + most of Phase 2" into a short dual
//! cleanup; this bench measures both wall-clock and (printed once per size)
//! the pivot counts behind the speed-up.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cpm_core::prelude::*;

/// Group sizes swept by the bench (64+ belongs to the release smoke test and
/// BENCHMARKS.md, not a statistical harness).
const SWEEP: [usize; 2] = [16, 32];
/// The donor α and the re-solve α — a typical heatmap grid step apart.
const BASE_ALPHA: f64 = 0.90;
const NEIGHBOUR_ALPHA: f64 = 0.905;

fn wm_problem(n: usize, alpha: f64) -> DesignProblem {
    DesignProblem::constrained(
        n,
        Alpha::new(alpha).unwrap(),
        Objective::l0(),
        wm_properties(),
    )
}

fn bench_alpha_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("alpha_sweep");
    group.sample_size(10);
    for &n in &SWEEP {
        let donor = wm_problem(n, BASE_ALPHA).solve().expect("donor solve");
        let seed = donor.optimal_basis.clone().expect("donor basis");

        // Print the pivot accounting once per size, so a bench run documents
        // the mechanism behind the wall-clock gap.
        let cold = wm_problem(n, NEIGHBOUR_ALPHA).solve().expect("cold solve");
        let warm = wm_problem(n, NEIGHBOUR_ALPHA)
            .with_warm_basis(Some(seed.clone()))
            .solve()
            .expect("warm solve");
        assert!(
            warm.solver_stats.warm_started,
            "seed must take the warm path"
        );
        eprintln!(
            "alpha_sweep n={n}: cold {} + {} pivots | warm {} dual + {} primal \
             (warm_started={})",
            cold.solver_stats.phase1_iterations,
            cold.solver_stats.phase2_iterations,
            warm.solver_stats.dual_iterations,
            warm.solver_stats.phase2_iterations,
            warm.solver_stats.warm_started,
        );

        group.bench_with_input(BenchmarkId::new("cold_resolve", n), &n, |b, _| {
            b.iter(|| wm_problem(n, NEIGHBOUR_ALPHA).solve().expect("cold solve"))
        });
        group.bench_with_input(BenchmarkId::new("warm_resolve", n), &n, |b, _| {
            b.iter(|| {
                wm_problem(n, NEIGHBOUR_ALPHA)
                    .with_warm_basis(Some(seed.clone()))
                    .solve()
                    .expect("warm solve")
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_alpha_sweep);
criterion_main!(benches);

//! Criterion bench: serving throughput — raw alias-vs-CDF draws, hot-key batch
//! privatization through the engine, and a Zipf key mix with all designs
//! resident.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

use cpm_core::prelude::*;
use cpm_serve::prelude::*;
use cpm_serve::workload;

fn bench_raw_draws(c: &mut Criterion) {
    let alpha = Alpha::new(0.9).unwrap();
    let mut group = c.benchmark_group("serving_raw_draws");
    for &n in &[8usize, 32, 128] {
        let gm = GeometricMechanism::new(n, alpha).unwrap().into_matrix();
        let cdf = MechanismSampler::new(&gm);
        let alias = AliasSampler::new(&gm);
        let counts: Vec<usize> = (0..10_000).map(|i| i % (n + 1)).collect();

        group.bench_with_input(BenchmarkId::new("cdf_log_n", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| cdf.privatize(&counts, &mut rng))
        });
        group.bench_with_input(BenchmarkId::new("alias_o1", n), &n, |b, _| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| alias.privatize(&counts, &mut rng))
        });
    }
    group.finish();
}

fn bench_engine_batches(c: &mut Criterion) {
    let alpha = Alpha::new(0.9).unwrap();
    let mut group = c.benchmark_group("serving_engine");

    let engine = Engine::with_defaults();
    let hot = SpecKey::new(32, alpha, PropertySet::empty());
    engine.warm(&[hot]).expect("GM warms instantly");
    let hot_batch = workload::hot_key_requests(hot, 100_000, 5);
    group.bench_function("hot_key_100k", |b| {
        b.iter(|| engine.privatize_batch(&hot_batch).unwrap())
    });

    let keys: Vec<SpecKey> = [8usize, 12, 16, 20, 24, 28, 32, 64]
        .into_iter()
        .map(|n| SpecKey::new(n, alpha, PropertySet::empty()))
        .collect();
    engine.warm(&keys).expect("GM keys warm instantly");
    let zipf_batch = workload::zipf_requests(&keys, 1.1, 100_000, 5);
    group.bench_function("zipf_mix_100k", |b| {
        b.iter(|| engine.privatize_batch(&zipf_batch).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_raw_draws, bench_engine_batches);
criterion_main!(benches);

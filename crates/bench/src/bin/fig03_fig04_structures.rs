//! Figures 3 and 4: the closed-form structure of the Geometric Mechanism and of the
//! Explicit Fair Mechanism (the paper prints n = 7), plus Example 1's probabilities.

use cpm_bench::cli::FigureOptions;
use cpm_core::Alpha;
use cpm_eval::prelude::heatmaps;

fn main() {
    let options = FigureOptions::from_env();
    let alpha = Alpha::new(0.62).unwrap();
    let figure = heatmaps::structures(7, alpha).expect("explicit constructions are valid");

    println!(
        "Figure 3 — Geometric Mechanism, n = {}, alpha = {}",
        figure.n, figure.alpha
    );
    println!(
        "x = 1/(1+a) = {:.4},  y = (1-a)/(1+a) = {:.4}",
        figure.gm_x, figure.gm_y
    );
    println!("{}", figure.gm.heatmap());

    println!(
        "Figure 4 — Explicit Fair Mechanism, n = {}, alpha = {}",
        figure.n, figure.alpha
    );
    println!("y (Eq. 15) = {:.4}", figure.em_y);
    println!("{}", figure.em.heatmap());

    let example = heatmaps::example_one(Alpha::new(0.9).unwrap()).unwrap();
    println!("Example 1 (n = 2, alpha = 0.9):");
    println!(
        "  Pr[0|1] = {:.3}   Pr[1|1] = {:.3}   Pr[0|0] = {:.3}   wrong/right ratio = {:.1}",
        example.p_zero_given_one,
        example.p_one_given_one,
        example.p_zero_given_zero,
        example.wrong_to_right_ratio
    );
    options.maybe_print_json(&figure);
}

//! Scaling probe: time one BASICDP solve per backend and group size, printing the
//! wall-clock, pivot counts, and LP dimensions.  Quicker and more informative for
//! tuning than the statistical Criterion bench; `--full` extends the sweep to
//! n = 128 (sparse backend only — a dense solve at that size would take hours).
//!
//! The refactorisation cadence can be overridden with the `CPM_REFACTOR`
//! environment variable for tuning experiments.

use std::time::Instant;

use cpm_bench::cli::FigureOptions;
use cpm_core::prelude::*;
use cpm_simplex::{SolveOptions, SolverBackend};

/// Largest group size the dense tableau is asked to solve.
const DENSE_MAX_N: usize = 32;

fn main() {
    let options = FigureOptions::from_env();
    let alpha = Alpha::new(0.9).unwrap();
    let sweep: &[usize] = if options.full {
        &[8, 16, 32, 64, 128]
    } else {
        &[8, 16, 32]
    };
    let refactor_interval = std::env::var("CPM_REFACTOR")
        .ok()
        .and_then(|v| v.parse().ok());
    println!(
        "n | backend | rows x cols | terms | solve | phase1+phase2 pivots | refactors | objective"
    );
    for &n in sweep {
        let problem = DesignProblem::unconstrained(n, alpha, Objective::l0());
        let (lp, _) = problem.build_lp().unwrap();
        for backend in [SolverBackend::SparseRevised, SolverBackend::DenseTableau] {
            if backend == SolverBackend::DenseTableau && n > DENSE_MAX_N {
                continue;
            }
            let mut solve_options = SolveOptions {
                backend,
                max_iterations: 5_000_000,
                ..SolveOptions::default()
            };
            if let Some(interval) = refactor_interval {
                solve_options.refactor_interval = interval;
            }
            let start = Instant::now();
            match problem.solve_with(&solve_options) {
                Ok(solution) => {
                    let elapsed = start.elapsed();
                    let stats = solution.solver_stats;
                    println!(
                        "{n:4} | {backend} | {}x{} | {} | {elapsed:10.2?} | {}+{} | {} | {:.9}",
                        lp.num_constraints(),
                        lp.num_variables(),
                        lp.num_terms(),
                        stats.phase1_iterations,
                        stats.phase2_iterations,
                        stats.refactorizations,
                        solution.objective_value,
                    );
                }
                Err(error) => {
                    println!(
                        "{n:4} | {backend} | solve failed after {:.2?}: {error}",
                        start.elapsed()
                    );
                }
            }
        }
    }
}

//! Scaling probe: time one BASICDP solve per backend and group size, printing the
//! wall-clock, pivot counts, factorisation/update/repair counts, and LP
//! dimensions.  Quicker and more informative for tuning than the statistical
//! Criterion bench; `--full` extends the sweep to n = 128 (sparse backend only —
//! a dense solve at that size would take hours).
//!
//! The independent `(n, backend)` solves run on the [`cpm_eval::par`] worker
//! pool; per-solve wall-clocks are still measured inside each task, so set
//! `CPM_THREADS=1` for contention-free timings when comparing runs.  The
//! refactorisation cadence can be overridden with the `CPM_REFACTOR`
//! environment variable, the pricing rule with
//! `CPM_PRICING=dantzig|devex|steepest`, the LP form with
//! `CPM_FORM=auto|primal|dual` (default `auto`, which takes the dual on the
//! tall mechanism LPs), the closed-form crash seed with `CPM_CRASH=0`
//! (disable, for cold-walk ablations), and the sweep itself with
//! `CPM_SWEEP=64,128` (comma-separated group sizes).

use std::time::Instant;

use cpm_bench::cli::FigureOptions;
use cpm_core::prelude::*;
use cpm_eval::par::parallel_map;
use cpm_simplex::{LpForm, PricingRule, SolveOptions, SolverBackend};

/// Largest group size the dense tableau is asked to solve.
const DENSE_MAX_N: usize = 32;

fn main() {
    let options = FigureOptions::from_env();
    let alpha = Alpha::new(0.9).unwrap();
    let default_sweep = || {
        if options.full {
            vec![8, 16, 32, 64, 128]
        } else {
            vec![8, 16, 32]
        }
    };
    let sweep: Vec<usize> = match std::env::var("CPM_SWEEP") {
        Ok(list) => {
            let parsed: Vec<usize> = list
                .split(',')
                .filter_map(|v| v.trim().parse().ok())
                .collect();
            if parsed.is_empty() {
                eprintln!(
                    "warning: CPM_SWEEP={list:?} has no parsable group sizes \
                     (expected e.g. CPM_SWEEP=64,128); using the default sweep"
                );
                default_sweep()
            } else {
                parsed
            }
        }
        Err(_) => default_sweep(),
    };
    let refactor_interval: Option<usize> = std::env::var("CPM_REFACTOR")
        .ok()
        .and_then(|v| v.parse().ok());
    let pricing = match std::env::var("CPM_PRICING").as_deref() {
        Ok("dantzig") => Some(PricingRule::Dantzig),
        Ok("devex") => Some(PricingRule::Devex),
        Ok("steepest") => Some(PricingRule::SteepestEdge),
        _ => None,
    };
    let form = match std::env::var("CPM_FORM").as_deref() {
        Ok("primal") => Some(LpForm::Primal),
        Ok("dual") => Some(LpForm::Dual),
        Ok("auto") => Some(LpForm::Auto),
        _ => None,
    };
    let crash = !matches!(std::env::var("CPM_CRASH").as_deref(), Ok("0") | Ok("off"));

    let tasks: Vec<(usize, SolverBackend)> = sweep
        .iter()
        .flat_map(|&n| {
            [SolverBackend::SparseRevised, SolverBackend::DenseTableau]
                .into_iter()
                .filter(move |&backend| backend == SolverBackend::SparseRevised || n <= DENSE_MAX_N)
                .map(move |backend| (n, backend))
        })
        .collect();

    let workers = cpm_eval::par::worker_count(tasks.len());
    if workers > 1 {
        eprintln!(
            "note: running {} solves on {workers} workers — per-solve timings are \
             contended; set CPM_THREADS=1 for clean comparisons",
            tasks.len()
        );
    }
    println!(
        "n | backend | form | rows x cols | terms | solve | phase1+phase2 pivots | factors | updates | repairs | objective"
    );
    let rows = parallel_map(tasks, |(n, backend)| {
        let problem =
            DesignProblem::unconstrained(n, alpha, Objective::l0()).with_crash_seed(crash);
        let (lp, _) = problem.build_lp().unwrap();
        // Start from the per-size tuning (`tuned` picks steepest edge and
        // `LpForm::Auto`), then layer the env overrides through the builders.
        let mut solve_options = SolveOptions::tuned((n + 1) * (n + 1))
            .with_backend(backend)
            .with_max_iterations(5_000_000);
        if let Some(interval) = refactor_interval {
            solve_options = solve_options.with_refactor_interval(interval);
        }
        if let Some(rule) = pricing {
            solve_options = solve_options.with_pricing(rule);
        }
        if let Some(form) = form {
            solve_options = solve_options.with_form(form);
        }
        let start = Instant::now();
        match problem.solve_with(&solve_options) {
            Ok(solution) => {
                let elapsed = start.elapsed();
                let stats = solution.solver_stats;
                format!(
                    "{n:4} | {backend} | {} | {}x{} | {} | {elapsed:10.2?} | {}+{} | {} | {} | {} | {:.9}",
                    stats.form,
                    lp.num_constraints(),
                    lp.num_variables(),
                    lp.num_terms(),
                    stats.phase1_iterations,
                    stats.phase2_iterations,
                    stats.refactorizations,
                    stats.basis_updates,
                    stats.basis_repairs,
                    solution.objective_value,
                )
            }
            Err(error) => {
                format!(
                    "{n:4} | {backend} | solve failed after {:.2?}: {error}",
                    start.elapsed()
                )
            }
        }
    });
    for row in rows {
        println!("{row}");
    }
}

//! Figure 1: heat maps of *unconstrained* LP-optimal mechanisms (α = 0.62), showing
//! the gap/spike pathologies that motivate constrained design.

use cpm_bench::cli::FigureOptions;
use cpm_core::Alpha;
use cpm_eval::prelude::heatmaps;

fn main() {
    let options = FigureOptions::from_env();
    let alpha = Alpha::new(0.62).unwrap();
    let figure = heatmaps::lp_heatmaps(alpha, &heatmaps::default_panels(), false)
        .expect("unconstrained design LPs must solve");

    println!(
        "Figure 1 — unconstrained optimal mechanisms, alpha = {}",
        figure.alpha
    );
    for panel in &figure.panels {
        println!(
            "\n== {} (objective value {:.4}) ==",
            panel.title, panel.objective_value
        );
        println!("{}", panel.mechanism.heatmap());
        println!(
            "gaps (never-reported outputs): {:?}    largest output marginal: {:.3}",
            panel.gap_outputs, panel.max_output_marginal
        );
    }
    options.maybe_print_json(&figure);
}

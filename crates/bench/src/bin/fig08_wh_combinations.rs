//! Figure 8: the optimal L0 of every meaningful property combination on top of weak
//! honesty, (a) as the group size varies at α = 0.76 and (b) as α varies at fixed n.

use cpm_bench::cli::FigureOptions;
use cpm_core::Alpha;
use cpm_eval::prelude::{fmt, render_table, score_sweeps};

fn main() {
    let options = FigureOptions::from_env();
    let alpha = Alpha::new(0.76).unwrap();
    let group_sizes: Vec<usize> = if options.full {
        vec![2, 3, 4, 5, 6, 7, 8, 10, 12]
    } else {
        vec![2, 4, 6, 8]
    };
    let sweep_a = score_sweeps::combinations_vs_group_size(alpha, &group_sizes)
        .expect("constrained LPs must solve");

    println!(
        "Figure 8(a) — L0 of weak-honesty combinations vs group size, alpha = 0.76 (threshold {:.2})",
        alpha.weak_honesty_threshold()
    );
    print_sweep(&sweep_a);
    options.maybe_print_json(&sweep_a);

    let alphas: Vec<Alpha> = if options.full {
        vec![0.5, 0.6, 0.67, 0.76, 0.83, 0.9, 0.95, 0.99]
    } else {
        vec![0.6, 0.76, 0.9]
    }
    .into_iter()
    .map(|a| Alpha::new(a).unwrap())
    .collect();
    // The paper's panel uses n = 6; CPM_FIG8_N scales the α sweep up for
    // benchmarking the warm-chained solve path on nontrivial LPs.
    let n = std::env::var("CPM_FIG8_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let sweep_b =
        score_sweeps::combinations_vs_alpha(n, &alphas).expect("constrained LPs must solve");
    println!("\nFigure 8(b) — L0 of weak-honesty combinations vs alpha, n = {n}");
    print_sweep(&sweep_b);
    options.maybe_print_json(&sweep_b);
}

fn print_sweep(sweep: &score_sweeps::CombinationSweep) {
    let mut header = vec![sweep.swept.clone()];
    if let Some(first) = sweep.points.first() {
        header.extend(first.scores.iter().map(|(label, _)| label.clone()));
    }
    let rows: Vec<Vec<String>> = sweep
        .points
        .iter()
        .map(|point| {
            let mut cells = vec![fmt(point.x, 3)];
            cells.extend(point.scores.iter().map(|(_, score)| fmt(*score, 4)));
            cells
        })
        .collect();
    println!("{}", render_table(&header, &rows));
}

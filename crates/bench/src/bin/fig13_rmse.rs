//! Figure 13: root-mean-square error of the reported counts on Binomial data, as the
//! input distribution p varies, for several group sizes and privacy levels.

use cpm_bench::cli::FigureOptions;
use cpm_data::prelude::paper_probability_grid;
use cpm_eval::prelude::{binomial_experiments, fmt, render_table};

fn main() {
    let options = FigureOptions::from_env();
    let config = if options.full {
        binomial_experiments::BinomialExperimentConfig::default()
    } else {
        binomial_experiments::BinomialExperimentConfig {
            population_size: 4_000,
            repetitions: 10,
            ..binomial_experiments::BinomialExperimentConfig::default()
        }
    };
    let group_sizes = if options.full {
        vec![4, 8, 12]
    } else {
        vec![4, 8]
    };
    let alphas = if options.full {
        vec![0.91, 0.67]
    } else {
        vec![0.91]
    };
    let probabilities = if options.full {
        paper_probability_grid()
    } else {
        vec![0.1, 0.3, 0.5, 0.7, 0.9]
    };

    let sweep = binomial_experiments::rmse_sweep(&config, &group_sizes, &alphas, &probabilities)
        .expect("binomial experiment must run");

    println!(
        "Figure 13 — RMSE of reported counts on Binomial data ({} individuals, {} repetitions)",
        config.population_size, config.repetitions
    );
    for &alpha in &alphas {
        for &n in &group_sizes {
            println!("\n== alpha = {alpha}, n = {n} ==");
            let header = vec![
                "p".to_string(),
                "GM".to_string(),
                "WM".to_string(),
                "EM".to_string(),
                "UM".to_string(),
            ];
            let rows: Vec<Vec<String>> = probabilities
                .iter()
                .map(|&p| {
                    let mut cells = vec![fmt(p, 2)];
                    for mech in ["GM", "WM", "EM", "UM"] {
                        let point = sweep
                            .points
                            .iter()
                            .find(|pt| {
                                (pt.p - p).abs() < 1e-9
                                    && pt.n == n
                                    && (pt.alpha - alpha).abs() < 1e-9
                                    && pt.mechanism == mech
                            })
                            .expect("point exists");
                        cells.push(format!(
                            "{} ± {}",
                            fmt(point.value.mean, 3),
                            fmt(point.value.std_dev, 3)
                        ));
                    }
                    cells
                })
                .collect();
            println!("{}", render_table(&header, &rows));
        }
    }
    options.maybe_print_json(&sweep);
}

//! Figure 9: the rescaled L0 scores of GM, WM, EM, and UM as the group size varies,
//! for the three privacy levels α ∈ {2/3, 10/11, 99/100}, showing where WM converges
//! onto GM (the Lemma-2 threshold 2α/(1−α)).

use cpm_bench::cli::FigureOptions;
use cpm_eval::prelude::{fmt, render_table, score_sweeps};

fn main() {
    let options = FigureOptions::from_env();
    // The dense-tableau simplex starts to take minutes per WM solve beyond n ≈ 16–20,
    // so the paper-scale sweep stops at 16 (the quick default at 12).
    let group_sizes: Vec<usize> = if options.full {
        vec![2, 3, 4, 5, 6, 8, 10, 12, 14, 16]
    } else {
        vec![2, 4, 6, 8, 12]
    };

    for alpha in score_sweeps::figure9_alphas() {
        let sweep = score_sweeps::l0_versus_group_size(alpha, &group_sizes)
            .expect("score sweep must solve");
        println!(
            "\nFigure 9 — L0 vs group size at alpha = {:.4} (WM/GM convergence threshold {:.1})",
            sweep.alpha, sweep.convergence_threshold
        );
        let mut header = vec!["n".to_string()];
        if let Some(first) = sweep.points.first() {
            header.extend(first.scores.iter().map(|(label, _)| label.clone()));
        }
        let rows: Vec<Vec<String>> = sweep
            .points
            .iter()
            .map(|point| {
                let mut cells = vec![point.n.to_string()];
                cells.extend(point.scores.iter().map(|(_, score)| fmt(*score, 4)));
                cells
            })
            .collect();
        println!("{}", render_table(&header, &rows));
        options.maybe_print_json(&sweep);
    }
}

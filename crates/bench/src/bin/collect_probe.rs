//! Collect probe: measure the report-collection pipeline — ingest throughput
//! into the lock-striped accumulators and end-to-end estimate latency (matrix
//! inversion included and, separately, amortised through the cached inverse).
//! The numbers land in BENCHMARKS.md's "Collect pipeline" section.
//!
//! Scenarios:
//!
//! * `ingest/single-key` — one hot key, batches of 1M outputs through
//!   [`ReportCollector::ingest_batch`] (one shard lock + relaxed adds);
//! * `ingest/multi-key` — a 16-key round-robin mix through
//!   [`ReportCollector::ingest_reports`] (run-length key grouping);
//! * `estimate` — per group size `n ∈ {8, 32, 128}`: the first estimate (pays
//!   the LU inversion) and the steady-state estimate (cached inverse).
//!
//! Overrides: `CPM_COLLECT_REPORTS` (default 1,000,000 per round),
//! `CPM_COLLECT_ROUNDS` (default 5; best round is reported).

use std::time::Instant;

use cpm_collect::prelude::*;
use cpm_core::{Alpha, MechanismSpec, PropertySet, SpecKey};

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

/// Best-of-`rounds` wall time for `work`, in seconds.
fn best_of<F: FnMut()>(rounds: usize, mut work: F) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..rounds {
        let start = Instant::now();
        work();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let reports = env_usize("CPM_COLLECT_REPORTS", 1_000_000);
    let rounds = env_usize("CPM_COLLECT_ROUNDS", 5);
    let alpha = Alpha::new(0.9).unwrap();

    println!("collect probe: {reports} reports/round, best of {rounds} rounds\n");

    // Ingest, single hot key: the line-rate path the smoke test floors at
    // 1M reports/sec.
    let key = SpecKey::new(32, alpha, PropertySet::empty());
    let outputs: Vec<usize> = (0..reports).map(|i| i % 33).collect();
    let secs = best_of(rounds, || {
        let collector = ReportCollector::new();
        let summary = collector.ingest_batch(&key, outputs.iter().copied());
        assert_eq!(summary.accepted, reports as u64);
    });
    println!(
        "ingest/single-key   {:>8.1}M reports/sec  ({:.2} ms per {reports})",
        reports as f64 / secs / 1e6,
        secs * 1e3
    );

    // Ingest, 16-key mix in blocks of 64: exercises the run-length grouping
    // and spreads the stream across shards.
    let keys: Vec<SpecKey> = (0..16)
        .map(|rank| SpecKey::new(8 + rank, alpha, PropertySet::empty()))
        .collect();
    let mixed: Vec<Report> = (0..reports)
        .map(|i| {
            let key = keys[(i / 64) % keys.len()];
            Report::new(key, (i % (key.n + 1)) as u32).unwrap()
        })
        .collect();
    let secs = best_of(rounds, || {
        let collector = ReportCollector::new();
        let summary = collector.ingest_reports(&mixed);
        assert_eq!(summary.accepted, reports as u64);
    });
    println!(
        "ingest/multi-key    {:>8.1}M reports/sec  ({:.2} ms per {reports})",
        reports as f64 / secs / 1e6,
        secs * 1e3
    );

    // Estimate latency: cold (first call pays the LU inversion through the
    // design's cached inverse) vs steady state (inverse already resident).
    println!();
    for n in [8usize, 32, 128] {
        let design = MechanismSpec::new(n, alpha).design().expect("GM design");
        let observed: Vec<u64> = (0..=n as u64).collect();

        let start = Instant::now();
        let freq = estimate_from_design(&design, &observed).expect("GM is invertible");
        let cold = start.elapsed().as_secs_f64();
        assert_eq!(freq.len(), n + 1);

        let secs = best_of(rounds, || {
            let freq = estimate_from_design(&design, &observed).expect("GM is invertible");
            assert_eq!(freq.len(), n + 1);
        });
        println!(
            "estimate n={n:<4} cold {:>9.1} µs (LU inversion)   steady {:>7.2} µs",
            cold * 1e6,
            secs * 1e6
        );
    }
}

//! Figure 5: the mechanism-selection flowchart.  Enumerates all 128 property
//! combinations and shows how they collapse onto at most four distinct mechanism
//! choices (plus how the choice shifts with n and α via Lemmas 2 and 3).

use std::collections::BTreeMap;

use cpm_bench::cli::FigureOptions;
use cpm_core::prelude::*;

fn main() {
    let options = FigureOptions::from_env();
    let instances: Vec<(usize, f64)> = if options.full {
        vec![(4, 0.9), (8, 0.76), (3, 0.4), (24, 0.9)]
    } else {
        vec![(4, 0.9), (8, 0.76)]
    };

    for (n, alpha_value) in instances {
        let alpha = Alpha::new(alpha_value).unwrap();
        let mut groups: BTreeMap<&'static str, Vec<String>> = BTreeMap::new();
        for subset in PropertySet::power_set() {
            let choice = select_mechanism(subset, n, alpha);
            groups
                .entry(choice.short_name())
                .or_default()
                .push(subset.to_string());
        }
        println!(
            "\nFigure 5 — flowchart outcomes for n = {n}, alpha = {alpha_value} \
             (WH threshold {:.2}, GM column monotone: {})",
            alpha.weak_honesty_threshold(),
            alpha.geometric_is_column_monotone()
        );
        println!(
            "{} of the 128 property combinations map onto {} distinct mechanisms:",
            128,
            groups.len()
        );
        for (mechanism, subsets) in &groups {
            println!(
                "  {:6} <- {:3} combinations (e.g. {})",
                mechanism,
                subsets.len(),
                subsets[0]
            );
        }
        assert!(
            groups.len() <= 4,
            "the flowchart must never need more than 4 mechanisms"
        );
    }
}

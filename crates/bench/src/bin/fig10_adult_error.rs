//! Figure 10: empirical error probability on the (synthetic) Adult dataset for the
//! three binary targets, as a function of the group size, at α = 0.9.

use cpm_bench::cli::FigureOptions;
use cpm_eval::prelude::{adult_experiment, fmt, render_table};

fn main() {
    let options = FigureOptions::from_env();
    let config = if options.full {
        adult_experiment::AdultExperimentConfig::default()
    } else {
        adult_experiment::AdultExperimentConfig {
            group_sizes: vec![2, 4, 8, 12],
            repetitions: 15,
            dataset_size: 16_000,
            ..adult_experiment::AdultExperimentConfig::default()
        }
    };
    let result = adult_experiment::run(&config).expect("adult experiment must run");

    println!(
        "Figure 10 — empirical error probability on synthetic Adult data (alpha = {}, {} repetitions)",
        config.alpha, config.repetitions
    );
    println!("target marginal rates: {:?}", result.target_rates);

    let targets: Vec<String> = result
        .target_rates
        .iter()
        .map(|(label, _)| label.clone())
        .collect();
    for target in &targets {
        println!("\n== estimating {target} ==");
        let header = vec![
            "n".to_string(),
            "GM".to_string(),
            "WM".to_string(),
            "EM".to_string(),
            "UM".to_string(),
        ];
        let rows: Vec<Vec<String>> = config
            .group_sizes
            .iter()
            .map(|&n| {
                let mut cells = vec![n.to_string()];
                for mech in ["GM", "WM", "EM", "UM"] {
                    let point = result
                        .points
                        .iter()
                        .find(|p| p.target == *target && p.n == n && p.mechanism == mech)
                        .expect("point exists");
                    cells.push(format!(
                        "{} ± {}",
                        fmt(point.error.mean, 3),
                        fmt(point.error.std_error, 3)
                    ));
                }
                cells
            })
            .collect();
        println!("{}", render_table(&header, &rows));
    }
    options.maybe_print_json(&result);
}

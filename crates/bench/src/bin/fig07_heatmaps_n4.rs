//! Figure 7: heat maps of GM, EM, and WM for a small group (n = 4) at strong privacy
//! (α = 10/11 ≈ 0.9), plus the truthful-report probabilities quoted in Section IV-D.

use cpm_bench::cli::FigureOptions;
use cpm_core::Alpha;
use cpm_eval::prelude::heatmaps;

fn main() {
    let options = FigureOptions::from_env();
    let alpha = Alpha::new(10.0 / 11.0).unwrap();
    let figure = heatmaps::named_heatmaps(4, alpha).expect("mechanisms must build");

    println!(
        "Figure 7 — GM / EM / WM for n = {}, alpha = {:.3}",
        figure.n, figure.alpha
    );
    for (label, matrix, truth_probability) in &figure.mechanisms {
        println!("\n== {label} ==");
        println!("{}", matrix.heatmap());
        println!("Pr[report the true input] under a uniform prior: {truth_probability:.3}");
    }
    options.maybe_print_json(&figure);
}

//! Serving probe: sweep batch size × thread count × key diversity through the
//! `cpm-serve` engine and print draws/sec per cell — the serving counterpart of
//! `backend_scaling`.  Quicker and more informative for tuning than the
//! statistical Criterion bench.
//!
//! Three key-diversity scenarios per (batch, threads) cell:
//!
//! * `hot`   — one resident GM key (pure sampling throughput);
//! * `zipf`  — a Zipf(1.1) mix over 16 keys, all resident (cache-hit path under
//!   realistic skew);
//! * `storm` — the cache is cleared first, so the batch pays its own design
//!   cost, LP keys included (cold-start amortisation + single flight).
//!
//! After the grid, a **thread-scaling curve** re-runs the hot scenario per
//! thread count and reads the engine's own `cpm_engine_chunk_nanos` /
//! `cpm_engine_batch_nanos` telemetry (histogram deltas per cell) — per-chunk
//! p50/p99 shows whether extra threads shrink the work each one does or just
//! add scheduling noise.  On a single-CPU host the sweep degenerates to one
//! row (and says so) rather than failing.
//!
//! After that, an **α-sweep storm** compares a cold start over one
//! `(n, properties, objective)` family — the worst-case serving pattern —
//! with the cache's family warm seeding on vs off: total LP design time and
//! the `warm_seeded` counter show how much of the storm the dual-simplex
//! warm starts absorb.
//!
//! Overrides: `CPM_SERVE_BATCHES=10000,100000` (batch sizes),
//! `CPM_SERVE_THREAD_SWEEP=1,2,8` (thread counts), `--full` widens both sweeps;
//! `CPM_SERVE_SWEEP_N` (default 32) sizes the α-sweep storm.
//! Thread counts are applied by setting `CPM_THREADS` before each cell, so set
//! nothing else that reads it while the probe runs.

use std::time::Instant;

use cpm_bench::cli::FigureOptions;
use cpm_core::{Alpha, Property, PropertySet};
use cpm_serve::prelude::*;
use cpm_serve::workload;

fn env_list(name: &str) -> Option<Vec<usize>> {
    let list = std::env::var(name).ok()?;
    let parsed: Vec<usize> = list
        .split(',')
        .filter_map(|v| v.trim().parse().ok())
        .collect();
    if parsed.is_empty() {
        eprintln!("warning: {name}={list:?} has no parsable entries; using the default sweep");
        None
    } else {
        Some(parsed)
    }
}

/// The key mix: rank 0 is a hot unconstrained GM; deeper ranks alternate
/// closed-form and LP-designed (WH / CM) keys over several group sizes.
fn key_mix(count: usize) -> Vec<SpecKey> {
    let alpha = Alpha::new(0.9).unwrap();
    let properties = [
        PropertySet::empty(),
        PropertySet::empty().with(Property::WeakHonesty),
        PropertySet::empty().with(Property::ColumnMonotonicity),
        PropertySet::empty().with(Property::Fairness),
    ];
    (0..count)
        .map(|rank| {
            let n = [32, 16, 24, 8, 12][rank % 5];
            SpecKey::new(n, alpha, properties[rank % properties.len()])
        })
        .collect()
}

fn main() {
    let options = FigureOptions::from_env();
    let batches = env_list("CPM_SERVE_BATCHES").unwrap_or_else(|| {
        if options.full {
            vec![1_000, 10_000, 100_000, 1_000_000]
        } else {
            vec![10_000, 100_000]
        }
    });
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let threads = env_list("CPM_SERVE_THREAD_SWEEP").unwrap_or_else(|| {
        let mut sweep = vec![1, 2, 4, 8, available];
        sweep.retain(|&t| t <= available);
        sweep.dedup();
        sweep
    });

    let keys = key_mix(16);
    println!(
        "batch | threads | scenario | unique keys | design | sample | draws/sec | hits/misses"
    );
    run_grid(&batches, &threads, &keys);
    thread_scaling(&threads, keys[0]);
    alpha_sweep_storm();
    solver_stats_attribution();
}

/// Per-key solver-stat attribution: where the LP wins come from.  Presolve
/// reductions (weak-honesty singleton rows folding into bounds), bound flips
/// from the long-step ratio tests, and reference-framework resets are all
/// [`SolveStats`](cpm_simplex::SolveStats) counters the probe surfaces so a
/// serving regression can be traced to the responsible solver layer.
fn solver_stats_attribution() {
    let alpha = Alpha::new(0.9).unwrap();
    let n: usize = std::env::var("CPM_SERVE_SWEEP_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let families = [
        ("unconstrained", PropertySet::empty()),
        ("WH", PropertySet::empty().with(Property::WeakHonesty)),
        (
            "WH+CM",
            PropertySet::empty()
                .with(Property::WeakHonesty)
                .with(Property::ColumnMonotonicity),
        ),
    ];
    println!();
    println!(
        "solver attribution (n = {n}) | form | pivots p1+p2 | presolve rows/cols removed | bound flips | SE resets | devex resets"
    );
    for (label, properties) in families {
        let designed = SpecKey::new(n, alpha, properties)
            .spec()
            .design()
            .expect("attribution designs must solve");
        match designed.solver_stats() {
            Some(stats) => println!(
                "{label:13} | {} | {}+{} | {}/{} | {} | {} | {}",
                stats.form,
                stats.phase1_iterations,
                stats.phase2_iterations,
                stats.presolve_rows_removed,
                stats.presolve_cols_removed,
                stats.bound_flips,
                stats.steepest_edge_resets,
                stats.devex_resets,
            ),
            None => println!("{label:13} | closed form (no LP)"),
        }
    }
}

fn run_grid(batches: &[usize], threads: &[usize], keys: &[SpecKey]) {
    for &batch_size in batches {
        for &thread_count in threads {
            std::env::set_var("CPM_THREADS", thread_count.to_string());
            for scenario in ["hot", "zipf", "storm"] {
                let engine = Engine::new(EngineConfig::default());
                let requests = match scenario {
                    "hot" => workload::hot_key_requests(keys[0], batch_size, 1),
                    _ => workload::zipf_requests(keys, 1.1, batch_size, 1),
                };
                if scenario != "storm" {
                    // Resident designs: the batch measures pure serving.
                    let unique: Vec<SpecKey> = if scenario == "hot" {
                        vec![keys[0]]
                    } else {
                        keys.to_vec()
                    };
                    engine.warm(&unique).expect("warm-up designs must succeed");
                }
                let start = Instant::now();
                match engine.privatize_batch(&requests) {
                    Ok(outcome) => {
                        let total = start.elapsed();
                        let stats = outcome.stats;
                        println!(
                            "{batch_size:7} | {thread_count:2} | {scenario:5} | {:2} | {:9.2?} | {:9.2?} | {:10.0} | {}/{}",
                            stats.unique_keys,
                            stats.design_time,
                            stats.sample_time,
                            batch_size as f64 / total.as_secs_f64(),
                            stats.cache_hits,
                            stats.cache_misses,
                        );
                    }
                    Err(error) => {
                        println!(
                            "{batch_size:7} | {thread_count:2} | {scenario:5} | failed after {:.2?}: {error}",
                            start.elapsed()
                        );
                    }
                }
            }
        }
    }
}

/// Thread-scaling curve on the hot scenario, read from the engine's own
/// telemetry: per-cell deltas of the `cpm_engine_chunk_nanos` and
/// `cpm_engine_batch_nanos` histograms.  Chunks are the unit the engine shards
/// across the pool, so chunk p50/p99 is the per-thread view of the batch —
/// ideal scaling halves chunk latency per doubling while draws/sec doubles.
fn thread_scaling(threads: &[usize], hot_key: SpecKey) {
    let batch_size: usize = std::env::var("CPM_SERVE_SCALING_BATCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200_000);
    let chunk_hist = cpm_obs::registry().histogram("cpm_engine_chunk_nanos");
    let batch_hist = cpm_obs::registry().histogram("cpm_engine_batch_nanos");

    println!();
    println!(
        "thread scaling (hot key, batch = {batch_size}) | chunks | chunk p50 | chunk p99 | batch | draws/sec"
    );
    if threads.len() == 1 {
        println!("(single-thread sweep: host reports one available CPU, so the curve is one row)");
    }
    for &thread_count in threads {
        std::env::set_var("CPM_THREADS", thread_count.to_string());
        let engine = Engine::new(EngineConfig::default());
        engine.warm(&[hot_key]).expect("hot design must solve");
        let requests = workload::hot_key_requests(hot_key, batch_size, 1);
        let chunk_before = chunk_hist.snapshot();
        let batch_before = batch_hist.snapshot();
        let start = Instant::now();
        engine
            .privatize_batch(&requests)
            .expect("hot batch must privatize");
        let total = start.elapsed();
        let chunks = chunk_hist.snapshot().diff(&chunk_before);
        let batch = batch_hist.snapshot().diff(&batch_before);
        println!(
            "{thread_count:2} | {:3} | {:>9} | {:>9} | {:>9} | {:10.0}",
            chunks.count,
            format_nanos(chunks.p50()),
            format_nanos(chunks.p99()),
            format_nanos(batch.p50()),
            batch_size as f64 / total.as_secs_f64(),
        );
    }
}

/// Render an optional nanosecond quantile as a human duration.
fn format_nanos(nanos: Option<u64>) -> String {
    match nanos {
        None => "-".to_string(),
        Some(n) if n >= 1_000_000_000 => format!("{:.2}s", n as f64 / 1e9),
        Some(n) if n >= 1_000_000 => format!("{:.2}ms", n as f64 / 1e6),
        Some(n) if n >= 1_000 => format!("{:.2}us", n as f64 / 1e3),
        Some(n) => format!("{n}ns"),
    }
}

/// Cold-start storm over an α sweep of one LP family (the WM at strong
/// privacy), with the cache's family warm seeding on vs off.  The entire gap
/// is LP time: the seeded run pays one cold two-phase solve and chains
/// dual-simplex cleanups for the rest of the sweep.
fn alpha_sweep_storm() {
    let n: usize = std::env::var("CPM_SERVE_SWEEP_N")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(32);
    let properties = PropertySet::empty()
        .with(Property::WeakHonesty)
        .with(Property::ColumnMonotonicity);
    let sweep: Vec<SpecKey> = (0..8)
        .map(|i| {
            let alpha = 0.88 + 0.005 * i as f64;
            SpecKey::new(n, Alpha::new(alpha).unwrap(), properties)
        })
        .collect();

    println!();
    println!(
        "alpha-sweep storm (n = {n}, WH+CM, 8 α values) | design total | LP solves | warm-seeded"
    );
    for seeding in [false, true] {
        let engine = Engine::new(EngineConfig::default());
        engine.cache().set_family_seeding(seeding);
        let start = Instant::now();
        engine.warm(&sweep).expect("sweep designs must succeed");
        let elapsed = start.elapsed();
        let stats = engine.cache_stats();
        println!(
            "family seeding {} | {:>10.2?} | {:2} | {:2}",
            if seeding { "on " } else { "off" },
            elapsed,
            stats.lp_solves,
            stats.warm_seeded,
        );
    }
}

//! Figure 6: the named-mechanism summary table — which structural properties GM, WM,
//! EM, and UM satisfy, and their rescaled L0 scores.

use cpm_bench::cli::FigureOptions;
use cpm_core::Alpha;
use cpm_eval::prelude::{fmt, render_table, score_sweeps};

fn main() {
    let options = FigureOptions::from_env();
    let instances: Vec<(usize, f64)> = if options.full {
        vec![(4, 0.9), (8, 0.76), (8, 0.9), (12, 10.0 / 11.0), (16, 0.99)]
    } else {
        vec![(4, 0.9), (8, 0.76)]
    };

    for (n, alpha_value) in instances {
        let alpha = Alpha::new(alpha_value).unwrap();
        let table =
            score_sweeps::named_mechanism_table(n, alpha).expect("named mechanisms must build");
        println!("\nFigure 6 — named mechanisms at n = {n}, alpha = {alpha_value:.3}");
        let mut header: Vec<String> = vec!["Mechanism".to_string()];
        if let Some(first) = table.rows.first() {
            header.extend(first.properties.iter().map(|(name, _)| name.clone()));
        }
        header.push("L0".to_string());
        let rows: Vec<Vec<String>> = table
            .rows
            .iter()
            .map(|row| {
                let mut cells = vec![row.mechanism.clone()];
                cells.extend(row.properties.iter().map(|(_, ok)| {
                    if *ok {
                        "Y".to_string()
                    } else {
                        "N".to_string()
                    }
                }));
                cells.push(fmt(row.l0, 4));
                cells
            })
            .collect();
        println!("{}", render_table(&header, &rows));
        options.maybe_print_json(&table);
    }
}

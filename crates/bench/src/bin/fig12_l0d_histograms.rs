//! Figure 12: histograms of the L0,d error as the distance threshold d varies
//! (n = 8), for a balanced and a skewed Binomial input distribution.

use cpm_bench::cli::FigureOptions;
use cpm_eval::prelude::{binomial_experiments, fmt, render_table};

fn main() {
    let options = FigureOptions::from_env();
    let config = if options.full {
        binomial_experiments::BinomialExperimentConfig::default()
    } else {
        binomial_experiments::BinomialExperimentConfig {
            population_size: 4_000,
            repetitions: 10,
            ..binomial_experiments::BinomialExperimentConfig::default()
        }
    };
    let (n, probabilities, thresholds) = binomial_experiments::figure12_grid();
    let alphas = if options.full {
        vec![0.91, 0.67]
    } else {
        vec![0.91]
    };

    let sweep =
        binomial_experiments::l0d_error_sweep(&config, &[n], &alphas, &probabilities, &thresholds)
            .expect("binomial experiment must run");

    println!("Figure 12 — L0,d error histograms on Binomial data, n = {n}");
    for &alpha in &alphas {
        for &p in &probabilities {
            let shape = if (p - 0.5).abs() < 0.2 {
                "proportionate"
            } else {
                "skewed"
            };
            println!("\n== alpha = {alpha}, p = {p} ({shape} input) ==");
            let header = vec![
                "d".to_string(),
                "GM".to_string(),
                "WM".to_string(),
                "EM".to_string(),
                "UM".to_string(),
            ];
            let rows: Vec<Vec<String>> = thresholds
                .iter()
                .map(|&d| {
                    let mut cells = vec![d.to_string()];
                    for mech in ["GM", "WM", "EM", "UM"] {
                        let point = sweep
                            .points
                            .iter()
                            .find(|pt| {
                                pt.d == d
                                    && (pt.p - p).abs() < 1e-9
                                    && (pt.alpha - alpha).abs() < 1e-9
                                    && pt.mechanism == mech
                            })
                            .expect("point exists");
                        cells.push(fmt(point.value.mean, 3));
                    }
                    cells
                })
                .collect();
            println!("{}", render_table(&header, &rows));
        }
    }
    options.maybe_print_json(&sweep);
}

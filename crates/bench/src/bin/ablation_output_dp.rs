//! Ablation: the cost of the output-side DP extension (paper Section VI, future work).
//!
//! For a range of privacy levels, compare the `L0` of (i) the unconstrained optimum
//! (GM), (ii) the optimum additionally required to satisfy the *output-side* ratio
//! bound, and (iii) the Explicit Fair Mechanism — showing where the extension's cost
//! sits relative to the constraints studied in the body of the paper.

use cpm_bench::cli::FigureOptions;
use cpm_core::prelude::*;
use cpm_eval::prelude::{fmt, render_table};

fn main() {
    let options = FigureOptions::from_env();
    let n = if options.full { 8 } else { 5 };
    let alphas = [0.5, 2.0 / 3.0, 0.76, 0.9];

    let header = vec![
        "alpha".to_string(),
        "GM (input DP only)".to_string(),
        "input+output DP".to_string(),
        "EM (all properties)".to_string(),
        "GM output-DP?".to_string(),
    ];
    let mut rows = Vec::new();
    for &alpha_value in &alphas {
        let alpha = Alpha::new(alpha_value).unwrap();
        let gm = GeometricMechanism::new(n, alpha).unwrap();
        let both = DesignProblem::unconstrained(n, alpha, Objective::l0())
            .with_output_dp(alpha)
            .solve()
            .expect("output-DP LP must solve");
        rows.push(vec![
            fmt(alpha_value, 3),
            fmt(gm.l0_score(), 4),
            fmt(rescaled_l0(&both.mechanism), 4),
            fmt(closed_form::em_l0(n, alpha), 4),
            if gm.matrix().satisfies_output_dp(alpha, 1e-9) {
                "yes".to_string()
            } else {
                "no".to_string()
            },
        ]);
    }
    println!("Output-side DP ablation, n = {n}");
    println!("{}", render_table(&header, &rows));
    println!(
        "The output-DP requirement forbids GM's boundary spikes (GM violates it at every\n\
         alpha shown), so the doubly-constrained optimum pays a premium comparable to —\n\
         but distinct from — the structural properties studied in the paper."
    );
}

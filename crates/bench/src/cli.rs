//! Minimal command-line flag handling shared by the figure binaries.

/// Options common to every figure binary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FigureOptions {
    /// Emit the figure data as JSON (in addition to the text table).
    pub json: bool,
    /// Use the paper-scale parameter grid rather than the quick default.
    pub full: bool,
}

impl FigureOptions {
    /// Parse the options from an argument iterator (ignoring the binary name).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut options = FigureOptions::default();
        for arg in args {
            match arg.as_str() {
                "--json" => options.json = true,
                "--full" => options.full = true,
                "--help" | "-h" => {
                    eprintln!("flags: --json (emit JSON)  --full (paper-scale parameters)");
                }
                _ => {}
            }
        }
        options
    }

    /// Parse from the process arguments.
    pub fn from_env() -> Self {
        Self::parse(std::env::args().skip(1))
    }

    /// Print a serialisable value as pretty JSON when `--json` was requested.
    pub fn maybe_print_json<T: serde::Serialize>(&self, value: &T) {
        if self.json {
            match serde_json::to_string_pretty(value) {
                Ok(text) => println!("{text}"),
                Err(err) => eprintln!("failed to serialise JSON output: {err}"),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_flags_and_ignores_unknown() {
        let options = FigureOptions::parse(
            ["--json", "--whatever", "--full"]
                .into_iter()
                .map(String::from),
        );
        assert!(options.json);
        assert!(options.full);
        let none = FigureOptions::parse(std::iter::empty());
        assert!(!none.json && !none.full);
    }
}

//! # cpm-bench — benchmark harness for constrained private mechanisms
//!
//! This crate contains
//!
//! * one **binary per table/figure** of the paper (in `src/bin/`), each of which
//!   recomputes the corresponding series with `cpm-eval` and prints it as a text
//!   table (pass `--json` for machine-readable output, `--full` for the paper-scale
//!   parameter grids instead of the quick defaults), and
//! * **Criterion benches** (in `benches/`) measuring the cost of the underlying
//!   operations: LP construction and solving, explicit mechanism construction,
//!   sampling throughput, the pivot-rule ablation, and an end-to-end experiment.
//!
//! The shared [`cli`] module implements the tiny `--json` / `--full` flag parsing
//! used by every figure binary.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;

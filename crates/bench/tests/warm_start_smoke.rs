//! Release-mode α-sweep warm-start smoke test: at n = 64, re-solving an
//! α-neighbour of a finished design with the dual-simplex warm start must cost
//! a small fraction of the cold solve's pivots — the contract that makes
//! α sweeps and serving cold-start storms cheap.
//!
//! `#[ignore]`d so the ordinary (debug) `cargo test` stays fast; CI runs it
//! explicitly with
//! `cargo test --release -p cpm-bench --test warm_start_smoke -- --ignored`.

use cpm_core::prelude::*;

fn basicdp(n: usize, alpha: f64) -> DesignProblem {
    // The closed-form crash seed (PR 7) solves these unconstrained programs in
    // zero pivots, which makes a pivot-ratio comparison degenerate (0 < 0).
    // This smoke gates the *warm-start* lever, so measure both sides with the
    // crash seed off and the real simplex walks exposed.
    DesignProblem::unconstrained(n, Alpha::new(alpha).unwrap(), Objective::l0())
        .with_crash_seed(false)
}

#[test]
#[ignore = "release-mode warm-start smoke test; run explicitly (see CI workflow)"]
fn n64_alpha_neighbour_warm_resolve_needs_under_a_quarter_of_the_cold_pivots() {
    let donor = basicdp(64, 0.90).solve().expect("donor solve");
    let seed = donor
        .optimal_basis
        .clone()
        .expect("donor reports its basis");

    let cold = basicdp(64, 0.905).solve().expect("cold solve");
    let warm = basicdp(64, 0.905)
        .with_warm_basis(Some(seed))
        .solve()
        .expect("warm solve");

    assert!(
        warm.solver_stats.warm_started,
        "the α-neighbour seed must take the dual warm-start path"
    );
    assert_eq!(warm.solver_stats.phase1_iterations, 0);
    assert!(
        (warm.objective_value - cold.objective_value).abs() < 1e-9,
        "warm {} vs cold {}",
        warm.objective_value,
        cold.objective_value
    );

    let cold_pivots = cold.solver_stats.phase1_iterations + cold.solver_stats.phase2_iterations;
    let warm_pivots = warm.solver_stats.dual_iterations
        + warm.solver_stats.phase1_iterations
        + warm.solver_stats.phase2_iterations;
    assert!(
        warm_pivots * 4 < cold_pivots,
        "warm re-solve must perform < 25% of the cold solve's pivots: \
         warm {warm_pivots} vs cold {cold_pivots}"
    );
    eprintln!(
        "n=64 α 0.90→0.905: cold {cold_pivots} pivots, warm {warm_pivots} \
         ({} dual + {} primal cleanup)",
        warm.solver_stats.dual_iterations, warm.solver_stats.phase2_iterations
    );
}

#[test]
#[ignore = "release-mode warm-start smoke test; run explicitly (see CI workflow)"]
fn warm_chain_across_an_alpha_sweep_stays_cheap() {
    // A five-point sweep seeded hand-over-hand, the way `DesignCache::warm`
    // chains a family: every seeded re-solve must stay warm and cheap.
    let mut donor = basicdp(32, 0.88).solve().expect("first cold solve");
    let cold_pivots = donor.solver_stats.phase1_iterations + donor.solver_stats.phase2_iterations;
    for alpha in [0.885, 0.89, 0.895, 0.90] {
        let warm = basicdp(32, alpha)
            .with_warm_basis(donor.optimal_basis.clone())
            .solve()
            .expect("warm solve");
        assert!(warm.solver_stats.warm_started, "α = {alpha} must stay warm");
        let warm_pivots = warm.solver_stats.dual_iterations + warm.solver_stats.phase2_iterations;
        assert!(
            warm_pivots * 4 < cold_pivots,
            "α = {alpha}: warm {warm_pivots} vs cold {cold_pivots}"
        );
        donor = warm;
    }
}

//! Release-mode scaling smoke test: the n = 64 unconstrained-L0 design LP must
//! solve well within a generous wall-clock bound, n = 128 must stay inside
//! the post-dual-form budget (the crash-seeded dual certification is ~0.5 s;
//! a regression to the cold walk is tens of seconds), and n = 256 must solve
//! through `LpForm::Auto`'s dual routing.
//!
//! These are `#[ignore]`d so the ordinary (debug) `cargo test` stays fast; CI
//! runs them explicitly with
//! `cargo test --release -p cpm-bench --test scaling_smoke -- --ignored`.
//! The bound is deliberately loose (the LU backend solves n = 64 in a few
//! seconds in release mode) — the test exists to catch order-of-magnitude
//! regressions of the solver hot path, not millisecond drift.

use std::time::{Duration, Instant};

use cpm_core::prelude::*;
use cpm_simplex::{LpForm, SolverBackend};

/// Generous ceiling for one n = 64 unconstrained-L0 solve in release mode.
/// The eta-file baseline needed ~22 s; the LU backend is several times faster,
/// so 60 s only trips on a genuine architectural regression.
const N64_BUDGET: Duration = Duration::from_secs(60);

#[test]
#[ignore = "release-mode scaling smoke test; run explicitly (see CI workflow)"]
fn n64_unconstrained_l0_solves_within_budget() {
    let alpha = Alpha::new(0.9).unwrap();
    let problem = DesignProblem::unconstrained(64, alpha, Objective::l0());
    let start = Instant::now();
    let solution = problem.solve().expect("n = 64 BASICDP must solve");
    let elapsed = start.elapsed();
    assert!(
        elapsed < N64_BUDGET,
        "n = 64 unconstrained L0 took {elapsed:?} (budget {N64_BUDGET:?})"
    );
    assert_eq!(solution.solver_stats.backend, SolverBackend::SparseRevised);
    // Theorem 3 closed form for the BASICDP L0 optimum.
    let n = 64.0f64;
    let a = alpha.value();
    let trace = (n - 1.0) * (1.0 - a) / (1.0 + a) + 2.0 / (1.0 + a);
    let expected = 1.0 - trace / (n + 1.0);
    assert!(
        (solution.objective_value - expected).abs() < 1e-6,
        "objective {} vs closed form {expected}",
        solution.objective_value
    );
}

#[test]
#[ignore = "release-mode scaling smoke test; run explicitly (see CI workflow)"]
fn n128_unconstrained_l0_completes_without_breakdown() {
    let alpha = Alpha::new(0.9).unwrap();
    let problem = DesignProblem::unconstrained(128, alpha, Objective::l0());
    let solution = problem
        .solve()
        .expect("n = 128 BASICDP must complete without NumericalBreakdown");
    let n = 128.0f64;
    let a = alpha.value();
    let trace = (n - 1.0) * (1.0 - a) / (1.0 + a) + 2.0 / (1.0 + a);
    let expected = 1.0 - trace / (n + 1.0);
    assert!(
        (solution.objective_value - expected).abs() < 1e-6,
        "objective {} vs closed form {expected}",
        solution.objective_value
    );
}

/// Ceiling for the default-path n = 128 solve under the PR-7 machinery: the
/// closed-form geometric crash basis certifies through the dual form in zero
/// pivots.  Measured: ~0.5 s and 0 + 0 pivots on the dev box (the PR-6 cold
/// walk was ~32 s and 257 + ~38k pivots; PR 5, ~91 s).  15 s / 1k pivots
/// trips whenever the crash seed stops being accepted — which silently falls
/// back to the tens-of-seconds cold walk — while tolerating slow CI hardware.
const N128_BUDGET: Duration = Duration::from_secs(15);
const N128_PIVOT_BUDGET: usize = 1_000;

#[test]
#[ignore = "release-mode scaling smoke test; run explicitly (see CI workflow)"]
fn n128_default_solve_stays_under_the_pivot_and_time_budget() {
    let alpha = Alpha::new(0.9).unwrap();
    let problem = DesignProblem::unconstrained(128, alpha, Objective::l0());
    let start = Instant::now();
    let solution = problem.solve().expect("n = 128 BASICDP must solve");
    let elapsed = start.elapsed();
    let pivots = solution.solver_stats.phase1_iterations + solution.solver_stats.phase2_iterations;
    assert!(
        elapsed < N128_BUDGET,
        "n = 128 default-path solve took {elapsed:?} (budget {N128_BUDGET:?})"
    );
    assert!(
        pivots < N128_PIVOT_BUDGET,
        "n = 128 default-path solve took {pivots} pivots (budget {N128_PIVOT_BUDGET})"
    );
    let n = 128.0f64;
    let a = alpha.value();
    let trace = (n - 1.0) * (1.0 - a) / (1.0 + a) + 2.0 / (1.0 + a);
    let expected = 1.0 - trace / (n + 1.0);
    assert!(
        (solution.objective_value - expected).abs() < 1e-6,
        "objective {} vs closed form {expected}",
        solution.objective_value
    );
}

/// Generous ceiling for the n = 256 unconstrained-L0 LP (131 841 rows ×
/// 66 049 columns — a size the pre-dual solver never finished).  Measured:
/// ~5.2 s, 0 + 0 pivots, 2 factorisations through `LpForm::Auto` → dual with
/// the geometric crash seed.
const N256_BUDGET: Duration = Duration::from_secs(60);
const N256_PIVOT_BUDGET: usize = 1_000;

#[test]
#[ignore = "release-mode scaling smoke test; run explicitly (see CI workflow)"]
fn n256_lp_solves_through_the_dual_form_within_budget() {
    let alpha = Alpha::new(0.9).unwrap();
    let problem = DesignProblem::unconstrained(256, alpha, Objective::l0());
    let start = Instant::now();
    let solution = problem.solve().expect("n = 256 BASICDP must solve");
    let elapsed = start.elapsed();
    assert!(
        elapsed < N256_BUDGET,
        "n = 256 solve took {elapsed:?} (budget {N256_BUDGET:?})"
    );
    let pivots = solution.solver_stats.phase1_iterations + solution.solver_stats.phase2_iterations;
    assert!(
        pivots < N256_PIVOT_BUDGET,
        "n = 256 solve took {pivots} pivots (budget {N256_PIVOT_BUDGET})"
    );
    assert_eq!(
        solution.solver_stats.form,
        LpForm::Dual,
        "LpForm::Auto must route the tall n = 256 LP to the dual form"
    );
    let n = 256.0f64;
    let a = alpha.value();
    let trace = (n - 1.0) * (1.0 - a) / (1.0 + a) + 2.0 / (1.0 + a);
    let expected = 1.0 - trace / (n + 1.0);
    assert!(
        (solution.objective_value - expected).abs() < 1e-6,
        "objective {} vs closed form {expected}",
        solution.objective_value
    );
}

/// The full seven-property request at n = 256: Figure 5 routes any
/// fairness-containing closure to the Explicit Fair closed form, so this
/// exercises selection, construction, and the seven-property report on a
/// 257 × 257 matrix — the design path at a group size the paper never reached.
#[test]
#[ignore = "release-mode scaling smoke test; run explicitly (see CI workflow)"]
fn n256_all_properties_design_completes() {
    let alpha = Alpha::new(0.9).unwrap();
    let designed = MechanismSpec::new(256, alpha)
        .properties(PropertySet::all())
        .build()
        .expect("spec must validate")
        .design()
        .expect("n = 256 all-properties design must complete");
    assert!(
        designed.requested_satisfied(),
        "every requested property must hold on the designed matrix"
    );
    assert_eq!(designed.mechanism().group_size(), 256);
}

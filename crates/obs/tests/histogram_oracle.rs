//! Oracle tests for the log2 latency histograms.
//!
//! The histogram quantizes values into 64 power-of-two buckets and answers
//! quantile queries with the *upper bound* of the bucket containing the rank.
//! That gives a one-sided guarantee the tests below pin down exactly: for any
//! sample set and any quantile, `exact <= estimate < 2 * max(exact, 1)` where
//! `exact` is the true order statistic from the sorted samples (bucket 63 is
//! unbounded and excluded from the bound).
//!
//! Also covered: bucket boundary placement (each power of two starts a new
//! bucket), merge semantics (shard histograms merged bucket-wise equal one
//! global histogram fed the union of the samples), and `diff` as the inverse
//! of `merge`.

use cpm_obs::{bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
use proptest::prelude::*;

/// Exact quantile oracle: same rank convention as `HistogramSnapshot::quantile`
/// (`rank = ceil(q * count)` clamped to `[1, count]`), answered from the sorted
/// samples instead of the buckets.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::default();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// The histogram estimate is the bucket upper bound, so it never undershoots
/// and overshoots by strictly less than 2x (values 0 and 1 are exact).
fn assert_quantile_bound(sorted: &[u64], snap: &HistogramSnapshot, q: f64) {
    let exact = exact_quantile(sorted, q);
    let estimate = snap.quantile(q).expect("non-empty histogram");
    assert!(
        estimate >= exact,
        "q={q}: estimate {estimate} undershoots exact {exact}"
    );
    if bucket_index(exact) < HISTOGRAM_BUCKETS - 1 {
        assert!(
            estimate < 2 * exact.max(1),
            "q={q}: estimate {estimate} >= 2 * exact {exact}"
        );
    }
}

#[test]
fn bucket_boundaries_follow_powers_of_two() {
    // Bucket 0 is reserved for the value 0; bucket k >= 1 holds
    // [2^(k-1), 2^k - 1], so each power of two starts a fresh bucket.
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 1);
    for k in 1..HISTOGRAM_BUCKETS - 1 {
        let lo = 1u64 << (k - 1);
        let hi = (1u64 << k) - 1;
        assert_eq!(bucket_index(lo), k, "low edge of bucket {k}");
        assert_eq!(bucket_index(hi), k, "high edge of bucket {k}");
        assert_eq!(bucket_upper_bound(k), hi, "upper bound of bucket {k}");
    }
    // The last bucket absorbs everything from 2^62 upward, u64::MAX included.
    assert_eq!(bucket_index(1u64 << 62), HISTOGRAM_BUCKETS - 1);
    assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
    assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
}

#[test]
fn bucket_index_matches_reference_log2() {
    // Differential check against a naive loop-based log2 over a mixed sweep of
    // small values and values straddling each power of two.
    let reference = |v: u64| -> usize {
        if v == 0 {
            return 0;
        }
        let mut k = 0usize;
        while (1u64 << k) <= v && k < HISTOGRAM_BUCKETS {
            k += 1;
        }
        k.min(HISTOGRAM_BUCKETS - 1)
    };
    for v in 0..4096u64 {
        assert_eq!(bucket_index(v), reference(v), "value {v}");
    }
    for k in 1..63 {
        for v in [(1u64 << k) - 1, 1u64 << k, (1u64 << k) + 1] {
            assert_eq!(bucket_index(v), reference(v), "value {v}");
        }
    }
}

#[test]
fn percentiles_match_oracle_on_fixed_samples() {
    // Deterministic spread: exact powers of two, mid-bucket values, zeros, and
    // a heavy tail, shuffled by construction order.
    let samples: Vec<u64> = vec![
        0,
        0,
        1,
        2,
        3,
        4,
        7,
        8,
        15,
        16,
        100,
        128,
        129,
        1000,
        1024,
        4095,
        4096,
        65_535,
        1_000_000,
        1 << 40,
    ];
    let snap = snapshot_of(&samples);
    let mut sorted = samples.clone();
    sorted.sort_unstable();
    for q in [0.5, 0.9, 0.99] {
        assert_quantile_bound(&sorted, &snap, q);
    }
    // p50 / p90 / p99 are aliases for quantile().
    assert_eq!(snap.p50(), snap.quantile(0.5));
    assert_eq!(snap.p90(), snap.quantile(0.9));
    assert_eq!(snap.p99(), snap.quantile(0.99));
    assert_eq!(snap.count, samples.len() as u64);
    assert_eq!(snap.sum, samples.iter().sum::<u64>());
}

#[test]
fn single_value_histogram_is_tight() {
    // With one sample, every quantile lands in that sample's bucket.
    for v in [0u64, 1, 7, 64, 12_345] {
        let snap = snapshot_of(&[v]);
        let expected = bucket_upper_bound(bucket_index(v));
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(snap.quantile(q), Some(expected), "value {v} q {q}");
        }
    }
    assert_eq!(HistogramSnapshot::default().quantile(0.5), None);
}

#[test]
fn merge_is_bucketwise_addition_and_diff_inverts_it() {
    let a = snapshot_of(&[1, 2, 3, 100, 5000]);
    let b = snapshot_of(&[0, 7, 8, 9, 1 << 30]);
    let mut merged = a.clone();
    merged.merge(&b);
    assert_eq!(merged.count, a.count + b.count);
    assert_eq!(merged.sum, a.sum + b.sum);
    for k in 0..HISTOGRAM_BUCKETS {
        assert_eq!(merged.counts[k], a.counts[k] + b.counts[k], "bucket {k}");
    }
    // diff undoes merge: (a + b) - a == b, bucket for bucket.
    let recovered = merged.diff(&a);
    assert_eq!(recovered.counts, b.counts);
    assert_eq!(recovered.count, b.count);
    assert_eq!(recovered.sum, b.sum);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// p50/p90/p99 stay within [exact, 2*exact) of the sorted-sample oracle on
    /// random samples spanning the full bucket range.
    #[test]
    fn prop_percentiles_bound_oracle(
        // Uniform over buckets, then a fraction within the bucket, so the tail
        // buckets actually get exercised (a flat u64 range almost never would).
        raw in proptest::collection::vec((0u32..62, 0.0f64..1.0), 1..200)
    ) {
        let samples: Vec<u64> = raw
            .iter()
            .map(|&(k, frac)| {
                let lo = if k == 0 { 0u64 } else { 1u64 << (k - 1) };
                let hi = (1u64 << k).saturating_sub(1).max(lo);
                lo + ((hi - lo) as f64 * frac) as u64
            })
            .collect();
        let snap = snapshot_of(&samples);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for q in [0.5, 0.9, 0.99] {
            assert_quantile_bound(&sorted, &snap, q);
        }
    }

    /// Sharded recording merges to the global view: splitting a sample stream
    /// across N per-shard histograms and merging the snapshots is
    /// indistinguishable from recording everything into one histogram.
    #[test]
    fn prop_shard_merge_equals_global(
        samples in proptest::collection::vec(0u64..1_000_000, 0..300),
        shards in 1usize..8,
    ) {
        let global = snapshot_of(&samples);
        let shard_hists: Vec<Histogram> = (0..shards).map(|_| Histogram::default()).collect();
        for (i, &v) in samples.iter().enumerate() {
            shard_hists[i % shards].record(v);
        }
        let mut merged = HistogramSnapshot::default();
        for h in &shard_hists {
            merged.merge(&h.snapshot());
        }
        prop_assert_eq!(merged.counts, global.counts);
        prop_assert_eq!(merged.count, global.count);
        prop_assert_eq!(merged.sum, global.sum);
        prop_assert_eq!(merged.quantile(0.5), global.quantile(0.5));
        prop_assert_eq!(merged.quantile(0.99), global.quantile(0.99));
    }
}

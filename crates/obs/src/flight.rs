//! The flight recorder: a lock-striped ring buffer of the most recent span
//! and event records, dumped to stderr when something terminal happens
//! (solver numerical breakdown, cache poisoning, frontend connection error).
//!
//! Writers append to one of [`STRIPES`] independent `Mutex`-protected rings,
//! chosen by a per-thread stripe id assigned on first use — so concurrent
//! threads almost never contend on the same lock, and each append is a short
//! critical section (one vec slot write).  [`dump`] merges all stripes,
//! sorts by timestamp, and prints the last [`CAPACITY`]-bounded window.

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::trace::{now_nanos, Level};

/// Number of independent ring-buffer stripes.
pub const STRIPES: usize = 8;

/// Records retained per stripe; the recorder holds up to `STRIPES * PER_STRIPE`
/// records in total.
pub const PER_STRIPE: usize = 128;

/// Total flight-recorder capacity.
pub const CAPACITY: usize = STRIPES * PER_STRIPE;

/// One retained record.
#[derive(Debug, Clone)]
pub enum Record {
    /// A structured event (see [`crate::trace::event`]).
    Event {
        /// Monotonic nanos since process start.
        at_nanos: u64,
        /// Severity it was recorded at.
        level: Level,
        /// Module tag (`simplex`, `cache`, ...).
        target: &'static str,
        /// Rendered message.
        message: String,
    },
    /// A closed span.
    Span {
        /// Monotonic nanos at close.
        at_nanos: u64,
        /// Module tag.
        target: &'static str,
        /// Span name.
        name: &'static str,
        /// Wall time the span covered.
        duration_nanos: u64,
    },
}

impl Record {
    fn at_nanos(&self) -> u64 {
        match self {
            Record::Event { at_nanos, .. } | Record::Span { at_nanos, .. } => *at_nanos,
        }
    }
}

struct Ring {
    slots: Vec<Record>,
    /// Next slot to overwrite once `slots` has grown to `PER_STRIPE`.
    head: usize,
}

impl Ring {
    const fn new() -> Ring {
        Ring {
            slots: Vec::new(),
            head: 0,
        }
    }

    fn push(&mut self, record: Record) {
        if self.slots.len() < PER_STRIPE {
            self.slots.push(record);
        } else {
            self.slots[self.head] = record;
            self.head = (self.head + 1) % PER_STRIPE;
        }
    }
}

static RINGS: [Mutex<Ring>; STRIPES] = [const { Mutex::new(Ring::new()) }; STRIPES];

fn stripe() -> usize {
    static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static MY_STRIPE: usize = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    MY_STRIPE.with(|s| *s)
}

fn push(record: Record) {
    // A poisoned stripe just loses its history; recording must never panic.
    if let Ok(mut ring) = RINGS[stripe()].lock() {
        ring.push(record);
    }
}

/// Append an event record (called by [`crate::trace::event`]).
pub fn record_event(level: Level, target: &'static str, message: String) {
    push(Record::Event {
        at_nanos: now_nanos(),
        level,
        target,
        message,
    });
}

/// Append a closed-span record (called by [`crate::trace::SpanGuard`]).
pub fn record_span(target: &'static str, name: &'static str, duration_nanos: u64) {
    push(Record::Span {
        at_nanos: now_nanos(),
        target,
        name,
        duration_nanos,
    });
}

/// Merge every stripe into one timestamp-sorted window (oldest first).
pub fn recent() -> Vec<Record> {
    let mut merged = Vec::new();
    for ring in &RINGS {
        if let Ok(ring) = ring.lock() {
            merged.extend(ring.slots.iter().cloned());
        }
    }
    merged.sort_by_key(Record::at_nanos);
    merged
}

/// Dump the recorder to `out` under a `reason` banner; returns the number of
/// records written.
pub fn dump_to<W: Write>(out: &mut W, reason: &str) -> usize {
    let records = recent();
    let _ = writeln!(
        out,
        "=== cpm flight recorder dump ({reason}; {} records) ===",
        records.len()
    );
    for record in &records {
        match record {
            Record::Event {
                at_nanos,
                level,
                target,
                message,
            } => {
                let _ = writeln!(
                    out,
                    "  [{:>12.6}s {:>5?} {target}] {message}",
                    *at_nanos as f64 / 1e9,
                    level
                );
            }
            Record::Span {
                at_nanos,
                target,
                name,
                duration_nanos,
            } => {
                let _ = writeln!(
                    out,
                    "  [{:>12.6}s  span {target}] {name} {:.3}ms",
                    *at_nanos as f64 / 1e9,
                    *duration_nanos as f64 / 1e6
                );
            }
        }
    }
    let _ = writeln!(out, "=== end flight recorder dump ===");
    records.len()
}

/// Dump the recorder to stderr and bump `cpm_flight_dumps_total` (the counter
/// tests assert on after injecting a breakdown).  Returns the record count.
pub fn dump(reason: &str) -> usize {
    let count = {
        let mut err = std::io::stderr().lock();
        dump_to(&mut err, reason)
    };
    crate::metrics::registry()
        .counter("cpm_flight_dumps_total")
        .inc();
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_overwrites_oldest_when_full() {
        let mut ring = Ring::new();
        for i in 0..(PER_STRIPE as u64 + 10) {
            ring.push(Record::Span {
                at_nanos: i,
                target: "test",
                name: "s",
                duration_nanos: 0,
            });
        }
        assert_eq!(ring.slots.len(), PER_STRIPE);
        let mut stamps: Vec<u64> = ring.slots.iter().map(Record::at_nanos).collect();
        stamps.sort_unstable();
        assert_eq!(stamps[0], 10);
        assert_eq!(*stamps.last().unwrap(), PER_STRIPE as u64 + 9);
    }

    #[test]
    fn dump_renders_recorded_history_in_order() {
        record_event(Level::Error, "test", "first".to_string());
        record_span("test", "work", 1_500_000);
        let mut buf = Vec::new();
        let count = dump_to(&mut buf, "unit test");
        assert!(count >= 2);
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("flight recorder dump (unit test"));
        assert!(text.contains("first"));
        assert!(text.contains("work"));
        let stamps: Vec<u64> = recent().iter().map(Record::at_nanos).collect();
        assert!(stamps.windows(2).all(|w| w[0] <= w[1]));
    }
}

//! # cpm-obs — observability substrate for the constrained-private-mechanism stack
//!
//! Zero-dependency telemetry shared by every runtime crate: a global
//! [`metrics`] registry (atomic counters / gauges / log2 latency histograms
//! with a Prometheus-style text renderer), RAII [`trace`] spans with an
//! env-gated structured logger, and a [`flight`] recorder ring buffer dumped
//! to stderr on terminal failures.
//!
//! ## Switches and environment variables
//!
//! | Variable | Effect |
//! |---|---|
//! | `CPM_OBS=0` / `off` / `false` | Master kill switch: every counter/gauge/histogram update, span, and flight record becomes a single relaxed load (the "uninstrumented floor" the overhead test measures against). Defaults to on. |
//! | `CPM_TRACE=level[:t1,t2]` | Stderr verbosity (`off`\|`error`\|`info`\|`debug`), optionally restricted to the listed targets (`simplex`, `cache`, `engine`, `net`, `boot`, `wire`). Default `off`. Flight recording is independent of this level. |
//! | `CPM_METRICS_DUMP=secs` | Spawn a background thread that prints the full metrics exposition to stderr every `secs` seconds (disabled when unset/0/unparseable). |
//!
//! ## Metrics catalogue
//!
//! All histograms record **nanoseconds** unless the name says otherwise.
//! Labels are baked into the registered name (`family{label="value"}`).
//!
//! | Name | Type | Labels | Meaning |
//! |---|---|---|---|
//! | `cpm_flight_dumps_total` | counter | — | Flight-recorder dumps emitted (breakdowns, poisonings, frontend errors). |
//! | `cpm_lp_solves_total` | counter | `form` (`primal`/`dual`) | LP solves completed by `cpm-simplex`, by formulation. |
//! | `cpm_lp_crash_seeded_total` | counter | — | Solves that started from a closed-form geometric crash basis. |
//! | `cpm_lp_warm_started_total` | counter | — | Solves warm-started from a cached basis. |
//! | `cpm_lp_pivots_total` | counter | `phase` (`primal`/`dual`) | Simplex pivots, by phase. |
//! | `cpm_lp_refactorizations_total` | counter | — | Basis refactorizations (periodic + triggered). |
//! | `cpm_lp_repairs_total` | counter | — | Numerical repairs that recovered. |
//! | `cpm_lp_breakdowns_total` | counter | — | Terminal numerical breakdowns (each also dumps the flight recorder). |
//! | `cpm_lp_solve_nanos` | histogram | `form` | Wall time per LP solve. |
//! | `cpm_design_solves_total` | counter | `kind` (`flowchart`/`lp`) | Mechanism designs, split closed-form selection vs LP. |
//! | `cpm_design_nanos` | histogram | — | Wall time per mechanism design. |
//! | `cpm_cache_hits_total` | counter | — | Design-cache hits. |
//! | `cpm_cache_misses_total` | counter | — | Design-cache misses (includes coalesced waiters). |
//! | `cpm_cache_coalesced_total` | counter | — | Requests that waited on another thread's in-flight design. |
//! | `cpm_cache_evictions_total` | counter | — | LRU evictions. |
//! | `cpm_cache_warm_seeded_total` | counter | — | Designs warm-started from an α-neighbour basis. |
//! | `cpm_cache_resident_entries` | gauge | — | Entries currently resident across all shards. |
//! | `cpm_cache_wait_nanos` | histogram | — | Time spent blocked on single-flight coalescing. |
//! | `cpm_engine_batches_total` | counter | — | Privatize batches served. |
//! | `cpm_engine_draws_total` | counter | — | Noise draws produced. |
//! | `cpm_engine_batch_nanos` | histogram | — | End-to-end latency per privatize batch. |
//! | `cpm_engine_chunk_nanos` | histogram | — | Latency per per-thread sampling chunk (the thread-scaling probe reads this). |
//! | `cpm_engine_draws_per_sec` | histogram | — | Per-batch sampling throughput (draws/second, not nanos). |
//! | `cpm_net_connections_total` | counter | — | Connections accepted. |
//! | `cpm_net_rejections_total` | counter | — | Connections rejected at the configured connection ceiling. |
//! | `cpm_net_active_connections` | gauge | — | Currently open connections. |
//! | `cpm_net_workers` | gauge | — | Reactor worker threads serving all connections. |
//! | `cpm_net_bytes_in_total` | counter | — | Bytes read from client sockets. |
//! | `cpm_net_bytes_out_total` | counter | — | Response bytes written to client sockets. |
//! | `cpm_net_idle_closed_total` | counter | — | Connections reaped by the idle timeout. |
//! | `cpm_net_conn_errors_total` | counter | — | Connections torn down by I/O or protocol error (each dumps the flight recorder). |
//! | `cpm_net_frame_decode_errors_total` | counter | — | Frames refused as undecodable (bad JSON, malformed `CPMF`/`CPMR`). |
//! | `cpm_wire_requests_total` | counter | `op` | Wire requests dispatched, by op (`privatize`, `warm`, `stats`, `metrics`, ...). |
//! | `cpm_wire_op_nanos` | histogram | `op` | Dispatch latency per wire op. |
//! | `cpm_report_rate_limited_total` | counter | — | Reports refused by the per-connection `CPM_REPORT_RATE` token bucket. |
//! | `cpm_http_requests_total` | counter | — | HTTP requests served (the `GET /metrics` endpoint). |
//! | `cpm_collect_flushes_total` | counter | — | Background estimate-snapshot flushes completed. |
//! | `cpm_collect_flush_errors_total` | counter | — | Flush passes (or per-key estimates) that failed. |
//! | `cpm_collect_flush_nanos` | histogram | — | Wall time per estimate-snapshot flush. |
//! | `cpm_boot_snapshot_load_nanos` | histogram | — | Warm-file snapshot load time at boot. |
//! | `cpm_boot_snapshot_save_nanos` | histogram | — | Warm-file snapshot save time at shutdown. |
//! | `cpm_boot_warm_keys_total` | counter | — | Keys pre-warmed at boot (file + `CPM_SERVE_WARM`). |
//! | `cpm_cache_shard_resident` | gauge | `shard` | Ready designs resident per cache stripe (closed label set — one per stripe). |
//! | `cpm_collect_reports_total` | counter | — | Privatized reports accepted by the collector. |
//! | `cpm_collect_rejected_total` | counter | — | Reports dropped as out of range for their key. |
//! | `cpm_collect_batches_total` | counter | — | Report batches ingested. |
//! | `cpm_collect_keys` | gauge | — | Distinct mechanism keys with resident accumulators. |
//! | `cpm_collect_ingest_nanos` | histogram | — | Wall time per ingested batch. |
//! | `cpm_collect_estimates_total` | counter | — | Frequency estimations performed. |
//! | `cpm_collect_estimate_nanos` | histogram | — | Wall time per estimation (matrix inverse cached on the design). |
//!
//! ## Scraping
//!
//! The serve frontend exposes the exposition over the wire protocol:
//! `{"op":"metrics"}` returns it in the response's `metrics` field — see
//! `cpm_serve::frontend` for the grammar and an example scrape.

pub mod flight;
pub mod metrics;
pub mod trace;

pub use metrics::{
    bucket_index, bucket_upper_bound, registry, Counter, Gauge, Histogram, HistogramSnapshot,
    MetricsRegistry, HISTOGRAM_BUCKETS,
};
pub use trace::{now_nanos, Level, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

fn enabled_flag() -> &'static AtomicBool {
    static ENABLED: OnceLock<AtomicBool> = OnceLock::new();
    ENABLED.get_or_init(|| {
        let off = std::env::var("CPM_OBS")
            .map(|v| {
                matches!(
                    v.trim().to_ascii_lowercase().as_str(),
                    "0" | "off" | "false"
                )
            })
            .unwrap_or(false);
        AtomicBool::new(!off)
    })
}

/// Whether instrumentation is live.  When false every record/span/event is a
/// near-free early return — this is the floor the ≤5% overhead budget is
/// measured against.
#[inline]
pub fn enabled() -> bool {
    enabled_flag().load(Ordering::Relaxed)
}

/// Flip the master switch at runtime (used by the overhead smoke test to
/// compare instrumented vs floor in one process).
pub fn set_enabled(on: bool) {
    enabled_flag().store(on, Ordering::Relaxed);
}

/// Emit an `error`-level event (always flight-recorded; printed when
/// `CPM_TRACE` admits it).
pub fn error(target: &'static str, message: String) {
    trace::event(Level::Error, target, message);
}

/// Emit an `info`-level event.
pub fn info(target: &'static str, message: String) {
    trace::event(Level::Info, target, message);
}

/// Resolve a counter once per call site and operate on it.
///
/// ```
/// cpm_obs::counter!("cpm_cache_hits_total").inc();
/// ```
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static SLOT: std::sync::OnceLock<&'static $crate::Counter> = std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::registry().counter($name))
    }};
}

/// Resolve a gauge once per call site and operate on it.
#[macro_export]
macro_rules! gauge {
    ($name:expr) => {{
        static SLOT: std::sync::OnceLock<&'static $crate::Gauge> = std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::registry().gauge($name))
    }};
}

/// Resolve a histogram once per call site and operate on it.
///
/// ```
/// cpm_obs::histogram!("cpm_engine_batch_nanos").record(1_500);
/// ```
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static SLOT: std::sync::OnceLock<&'static $crate::Histogram> = std::sync::OnceLock::new();
        *SLOT.get_or_init(|| $crate::registry().histogram($name))
    }};
}

/// Open an RAII span over the rest of the enclosing scope:
/// `let _span = span!("simplex", "lp_solve");`
#[macro_export]
macro_rules! span {
    ($target:expr, $name:expr) => {
        $crate::SpanGuard::enter($target, $name)
    };
}

/// If `CPM_METRICS_DUMP=secs` is set to a positive integer, spawn a background
/// thread printing the metrics exposition to stderr on that period.  Idempotent
/// (only the first call spawns); returns whether the dumper is running.
pub fn start_metrics_dump_from_env() -> bool {
    static STARTED: OnceLock<bool> = OnceLock::new();
    *STARTED.get_or_init(|| {
        let Some(secs) = std::env::var("CPM_METRICS_DUMP")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&s| s > 0)
        else {
            return false;
        };
        std::thread::Builder::new()
            .name("cpm-metrics-dump".to_string())
            .spawn(move || loop {
                std::thread::sleep(std::time::Duration::from_secs(secs));
                eprintln!(
                    "=== cpm metrics dump (t={:.1}s) ===\n{}=== end metrics dump ===",
                    now_nanos() as f64 / 1e9,
                    registry().render()
                );
            })
            .is_ok()
    })
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_cache_a_static_handle() {
        let first = counter!("obs_lib_test_total");
        first.inc();
        let second = counter!("obs_lib_test_total");
        assert!(std::ptr::eq(first, second));
        if crate::enabled() {
            assert_eq!(second.get(), 1);
        }
        let h = histogram!("obs_lib_test_nanos");
        h.record(42);
        let g = gauge!("obs_lib_test_gauge");
        g.set(-3);
        let text = crate::registry().render();
        assert!(text.contains("obs_lib_test_total"));
        assert!(text.contains("obs_lib_test_nanos"));
        assert!(text.contains("obs_lib_test_gauge"));
    }

    #[test]
    fn set_enabled_round_trips() {
        // Other tests in this binary rely on the switch being on, so restore it.
        let was = crate::enabled();
        crate::set_enabled(false);
        assert!(!crate::enabled());
        crate::set_enabled(true);
        assert!(crate::enabled());
        crate::set_enabled(was);
    }
}

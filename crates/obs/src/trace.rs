//! RAII tracing spans and an env-gated structured logger.
//!
//! Configuration comes from `CPM_TRACE` with the grammar
//! `level[:target,target,...]`:
//!
//! * `off` (the default), `error`, `info`, `debug` — the stderr verbosity;
//! * an optional `:`-separated comma list restricts stderr output to those
//!   targets (span/event targets are short module tags such as `simplex`,
//!   `cache`, `engine`, `net`, `boot`, `wire`).
//!
//! The logger prints to stderr with monotonic timestamps measured from process
//! start.  Independently of the stderr level, every span close and event is
//! appended to the [flight recorder](crate::flight) (subject only to the
//! crate-wide [`crate::enabled`] switch), so a post-mortem dump always has
//! recent history even when the console is quiet.

use std::io::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

/// Stderr verbosity, ordered `Off < Error < Info < Debug`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No stderr output (flight recording still happens).
    Off,
    /// Only error events.
    Error,
    /// Errors plus informational events.
    Info,
    /// Everything, including span close lines.
    Debug,
}

impl Level {
    fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "" => Some(Level::Off),
            "error" => Some(Level::Error),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            _ => None,
        }
    }

    fn tag(self) -> &'static str {
        match self {
            Level::Off => "off",
            Level::Error => "error",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

struct TraceConfig {
    level: Level,
    /// Empty means "all targets".
    targets: Vec<String>,
}

impl TraceConfig {
    fn from_env() -> TraceConfig {
        let raw = std::env::var("CPM_TRACE").unwrap_or_default();
        let (level_part, target_part) = match raw.split_once(':') {
            Some((l, t)) => (l, t),
            None => (raw.as_str(), ""),
        };
        let level = Level::parse(level_part).unwrap_or(Level::Off);
        let targets = target_part
            .split(',')
            .map(|t| t.trim().to_string())
            .filter(|t| !t.is_empty())
            .collect();
        TraceConfig { level, targets }
    }

    fn emits(&self, level: Level, target: &str) -> bool {
        level != Level::Off
            && self.level >= level
            && (self.targets.is_empty() || self.targets.iter().any(|t| t == target))
    }
}

fn config() -> &'static TraceConfig {
    static CONFIG: OnceLock<TraceConfig> = OnceLock::new();
    CONFIG.get_or_init(TraceConfig::from_env)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Monotonic nanoseconds since the first call into the tracing layer.
#[inline]
pub fn now_nanos() -> u64 {
    epoch().elapsed().as_nanos().min(u64::MAX as u128) as u64
}

fn stderr_line(level: Level, target: &str, body: &std::fmt::Arguments<'_>) {
    let nanos = now_nanos();
    let mut err = std::io::stderr().lock();
    let _ = writeln!(
        err,
        "[{:>12.6}s {:>5} {}] {}",
        nanos as f64 / 1e9,
        level.tag(),
        target,
        body
    );
}

/// Record a structured event: into the flight recorder always (when the crate
/// switch is on), and to stderr when `CPM_TRACE` admits `(level, target)`.
pub fn event(level: Level, target: &'static str, message: String) {
    if !crate::enabled() {
        return;
    }
    if config().emits(level, target) {
        stderr_line(level, target, &format_args!("{message}"));
    }
    crate::flight::record_event(level, target, message);
}

/// An RAII span: times the enclosed scope, records it to the flight recorder
/// on drop, and prints a close line at `debug` verbosity.  Construct via the
/// [`span!`](crate::span) macro or [`SpanGuard::enter`]; inert (two relaxed
/// loads total) when the crate switch is off.
#[must_use = "a span measures the scope it is bound to; binding to _ drops it immediately"]
pub struct SpanGuard {
    live: Option<SpanLive>,
}

struct SpanLive {
    target: &'static str,
    name: &'static str,
    started: Instant,
}

impl SpanGuard {
    /// Open a span over `(target, name)`.
    #[inline]
    pub fn enter(target: &'static str, name: &'static str) -> SpanGuard {
        if !crate::enabled() {
            return SpanGuard { live: None };
        }
        SpanGuard {
            live: Some(SpanLive {
                target,
                name,
                started: Instant::now(),
            }),
        }
    }

    /// Nanoseconds elapsed since the span opened (0 for an inert span).
    pub fn elapsed_nanos(&self) -> u64 {
        self.live
            .as_ref()
            .map(|l| l.started.elapsed().as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0)
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let duration_nanos = live.started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        if config().emits(Level::Debug, live.target) {
            stderr_line(
                Level::Debug,
                live.target,
                &format_args!(
                    "span {} closed after {:.3}ms",
                    live.name,
                    duration_nanos as f64 / 1e6
                ),
            );
        }
        crate::flight::record_span(live.target, live.name, duration_nanos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_parsing_and_ordering() {
        assert_eq!(Level::parse("off"), Some(Level::Off));
        assert_eq!(Level::parse("ERROR"), Some(Level::Error));
        assert_eq!(Level::parse("Info"), Some(Level::Info));
        assert_eq!(Level::parse("debug"), Some(Level::Debug));
        assert_eq!(Level::parse("bogus"), None);
        assert!(
            Level::Debug > Level::Info && Level::Info > Level::Error && Level::Error > Level::Off
        );
    }

    #[test]
    fn target_filter_restricts_emission() {
        let cfg = TraceConfig {
            level: Level::Info,
            targets: vec!["cache".to_string()],
        };
        assert!(cfg.emits(Level::Info, "cache"));
        assert!(cfg.emits(Level::Error, "cache"));
        assert!(!cfg.emits(Level::Info, "engine"));
        assert!(!cfg.emits(Level::Debug, "cache"));
        let all = TraceConfig {
            level: Level::Debug,
            targets: vec![],
        };
        assert!(all.emits(Level::Debug, "anything"));
        let off = TraceConfig {
            level: Level::Off,
            targets: vec![],
        };
        assert!(!off.emits(Level::Error, "cache"));
    }

    #[test]
    fn spans_measure_time_monotonically() {
        let guard = SpanGuard::enter("test", "sleepy");
        std::thread::sleep(std::time::Duration::from_millis(2));
        if crate::enabled() {
            assert!(guard.elapsed_nanos() >= 1_000_000);
        }
        drop(guard);
        assert!(now_nanos() > 0);
    }
}

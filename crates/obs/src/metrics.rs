//! The metrics registry: named atomic counters, gauges, and fixed-bucket log2
//! histograms, rendered as a Prometheus-style text exposition.
//!
//! Hot-path updates are a single relaxed atomic RMW (plus one relaxed load of
//! the global enable flag); registration is the only locked operation and
//! call sites amortise it through a `OnceLock` handle (see the [`counter!`],
//! [`gauge!`], and [`histogram!`] macros in the crate root).  Metric objects
//! are leaked on first registration, so handles are `&'static` and never
//! reference-counted on the hot path.
//!
//! [`counter!`]: crate::counter
//! [`gauge!`]: crate::gauge
//! [`histogram!`]: crate::histogram

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

use crate::enabled;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.  A no-op while the crate-wide switch is off
    /// ([`crate::set_enabled`]), so disabled deployments pay one relaxed load.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can move both ways (resident entries, live
/// connections).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Add `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        if enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Set the value outright.
    #[inline]
    pub fn set(&self, value: i64) {
        if enabled() {
            self.0.store(value, Ordering::Relaxed);
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of buckets in a [`Histogram`]: one per power of two of a `u64`,
/// plus the zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A fixed-bucket log2 histogram.
///
/// Bucket 0 holds the value `0`; bucket `k ≥ 1` holds values in
/// `[2^(k-1), 2^k - 1]`; the last bucket is unbounded above.  Recording is one
/// `leading_zeros` plus three relaxed `fetch_add`s — lock-free and
/// allocation-free, safe on any hot path.  Quantile extraction returns the
/// **upper bound** of the bucket containing the requested rank, so an estimate
/// `e` for an exact sample quantile `x` always satisfies `x ≤ e < 2·x` (for
/// `x > 0`) — a one-sided, factor-of-two-tight bound the tests pin against a
/// sorted-sample oracle.
#[derive(Debug)]
pub struct Histogram {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// Bucket index for a recorded value (see [`Histogram`] for the layout).
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HISTOGRAM_BUCKETS - 1)
    }
}

/// Inclusive upper bound of bucket `k`; `u64::MAX` for the unbounded last
/// bucket (rendered as `+Inf`).
#[inline]
pub fn bucket_upper_bound(k: usize) -> u64 {
    match k {
        0 => 0,
        _ if k >= HISTOGRAM_BUCKETS - 1 => u64::MAX,
        _ => (1u64 << k) - 1,
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if !enabled() {
            return;
        }
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, duration: Duration) {
        self.record(duration.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// A point-in-time copy of the bucket counts (the three atomics are read
    /// independently, so a snapshot taken under concurrent writers can be off
    /// by the writes in flight — fine for monitoring, and exact when quiesced).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|k| self.counts[k].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`Histogram`] for the layout).
    pub counts: [u64; HISTOGRAM_BUCKETS],
    /// Sum of every recorded value.
    pub sum: u64,
    /// Total observations.
    pub count: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: [0; HISTOGRAM_BUCKETS],
            sum: 0,
            count: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Fold another snapshot into this one (bucket-wise addition) — the merge
    /// that makes per-shard histograms equal the global one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.sum += other.sum;
        self.count += other.count;
    }

    /// The observations recorded since `earlier` (bucket-wise saturating
    /// subtraction) — the shape probes use to attribute a histogram to one
    /// measured interval.
    pub fn diff(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: std::array::from_fn(|k| self.counts[k].saturating_sub(earlier.counts[k])),
            sum: self.sum.saturating_sub(earlier.sum),
            count: self.count.saturating_sub(earlier.count),
        }
    }

    /// The `q`-quantile estimate (`0 < q ≤ 1`): the upper bound of the bucket
    /// containing the rank-`⌈q·count⌉` observation.  Returns `None` when
    /// empty.  See [`Histogram`] for the factor-of-two accuracy contract.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (k, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper_bound(k));
            }
        }
        Some(bucket_upper_bound(HISTOGRAM_BUCKETS - 1))
    }

    /// Median estimate (see [`HistogramSnapshot::quantile`]).
    pub fn p50(&self) -> Option<u64> {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate.
    pub fn p90(&self) -> Option<u64> {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<u64> {
        self.quantile(0.99)
    }

    /// Mean of the recorded values (`None` when empty).
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// The global registry of named metrics.
///
/// Names follow the Prometheus convention `family{label="value",...}`: the
/// part before the brace is the family (one `# TYPE` line per family in the
/// exposition), the optional brace block carries labels.  Registering the same
/// name twice returns the same object; registering it as a different kind
/// panics (a naming bug worth failing loudly on).
#[derive(Default)]
pub struct MetricsRegistry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// The process-wide registry (created on first use).
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::default)
}

impl MetricsRegistry {
    fn slot<T, F>(
        &self,
        name: &str,
        make: F,
        pick: impl Fn(&Metric) -> Option<&'static T>,
    ) -> &'static T
    where
        F: FnOnce() -> Metric,
    {
        let mut metrics = self.metrics.lock().expect("metrics registry poisoned");
        let entry = metrics.entry(name.to_string()).or_insert_with(make);
        match pick(entry) {
            Some(metric) => metric,
            None => panic!(
                "metric {name:?} already registered as a {}, requested as a different kind",
                entry.kind()
            ),
        }
    }

    /// The counter named `name`, registered on first use.
    pub fn counter(&self, name: &str) -> &'static Counter {
        self.slot(
            name,
            || Metric::Counter(Box::leak(Box::default())),
            |m| match m {
                Metric::Counter(c) => Some(*c),
                _ => None,
            },
        )
    }

    /// The gauge named `name`, registered on first use.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        self.slot(
            name,
            || Metric::Gauge(Box::leak(Box::default())),
            |m| match m {
                Metric::Gauge(g) => Some(*g),
                _ => None,
            },
        )
    }

    /// The histogram named `name`, registered on first use.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        self.slot(
            name,
            || Metric::Histogram(Box::leak(Box::default())),
            |m| match m {
                Metric::Histogram(h) => Some(*h),
                _ => None,
            },
        )
    }

    /// Render every registered metric as a Prometheus-style text exposition.
    ///
    /// Counters and gauges render as `name value`; histograms render
    /// cumulative `family_bucket{...,le="..."}` lines (empty buckets are
    /// skipped, the `+Inf` bucket is always present) plus `_sum` and `_count`.
    /// Families are sorted, each introduced by one `# TYPE family kind` line.
    /// Histogram values are nanoseconds unless the family name says otherwise.
    pub fn render(&self) -> String {
        let metrics = self.metrics.lock().expect("metrics registry poisoned");
        let mut out = String::new();
        let mut last_family = String::new();
        for (name, metric) in metrics.iter() {
            let (family, labels) = split_name(name);
            if family != last_family {
                let _ = writeln!(out, "# TYPE {family} {}", metric.kind());
                last_family = family.to_string();
            }
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    for (k, &c) in snap.counts.iter().enumerate() {
                        if c == 0 {
                            continue;
                        }
                        cumulative += c;
                        let le = match bucket_upper_bound(k) {
                            u64::MAX => "+Inf".to_string(),
                            bound => bound.to_string(),
                        };
                        let _ = writeln!(
                            out,
                            "{family}_bucket{{{}le=\"{le}\"}} {cumulative}",
                            join_labels(labels)
                        );
                    }
                    if snap.counts[HISTOGRAM_BUCKETS - 1] == 0 {
                        let _ = writeln!(
                            out,
                            "{family}_bucket{{{}le=\"+Inf\"}} {cumulative}",
                            join_labels(labels)
                        );
                    }
                    let suffix = label_suffix(labels);
                    let _ = writeln!(out, "{family}_sum{suffix} {}", snap.sum);
                    let _ = writeln!(out, "{family}_count{suffix} {}", snap.count);
                }
            }
        }
        out
    }
}

/// Split `family{labels}` into `(family, labels-without-braces)`.
fn split_name(name: &str) -> (&str, &str) {
    match name.split_once('{') {
        Some((family, rest)) => (family, rest.trim_end_matches('}')),
        None => (name, ""),
    }
}

/// Labels as a `k="v",` prefix ready to precede `le="..."`.
fn join_labels(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{labels},")
    }
}

/// Labels as a full `{k="v"}` suffix (empty when unlabelled).
fn label_suffix(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_register_once_and_accumulate() {
        let registry = MetricsRegistry::default();
        let c = registry.counter("test_total");
        c.inc();
        c.add(4);
        assert_eq!(registry.counter("test_total").get(), 5);
        let g = registry.gauge("test_entries");
        g.add(3);
        g.add(-1);
        assert_eq!(registry.gauge("test_entries").get(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let registry = MetricsRegistry::default();
        registry.counter("same_name");
        registry.gauge("same_name");
    }

    #[test]
    fn bucket_layout_is_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn render_produces_type_lines_and_histogram_series() {
        let registry = MetricsRegistry::default();
        registry.counter("zz_hits_total").add(7);
        let h = registry.histogram("zz_latency_nanos{op=\"privatize\"}");
        h.record(3);
        h.record(100);
        let text = registry.render();
        assert!(text.contains("# TYPE zz_hits_total counter"));
        assert!(text.contains("zz_hits_total 7"));
        assert!(text.contains("# TYPE zz_latency_nanos histogram"));
        assert!(text.contains("zz_latency_nanos_bucket{op=\"privatize\",le=\"3\"} 1"));
        assert!(text.contains("zz_latency_nanos_bucket{op=\"privatize\",le=\"127\"} 2"));
        assert!(text.contains("zz_latency_nanos_bucket{op=\"privatize\",le=\"+Inf\"} 2"));
        assert!(text.contains("zz_latency_nanos_sum{op=\"privatize\"} 103"));
        assert!(text.contains("zz_latency_nanos_count{op=\"privatize\"} 2"));
    }
}

//! Minimal fixed-width text-table rendering for the figure binaries.

/// Render a table with a header row and data rows as fixed-width text.
///
/// Column widths are computed from the longest cell in each column; all cells are
/// left-aligned.  Intended for the stdout output of the per-figure bench binaries.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let columns = header.len();
    let mut widths: Vec<usize> = header.iter().map(String::len).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(columns) {
            if cell.len() > widths[c] {
                widths[c] = cell.len();
            }
        }
    }
    let mut out = String::new();
    let render_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (c, cell) in cells.iter().enumerate().take(widths.len()) {
            line.push_str(&format!("{:<width$}  ", cell, width = widths[c]));
        }
        line.trim_end().to_string()
    };
    out.push_str(&render_row(header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&render_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a float with a fixed number of decimal places (convenience for tables).
pub fn fmt(value: f64, decimals: usize) -> String {
    format!("{value:.decimals$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_header_separator_and_rows() {
        let table = render_table(
            &["n".to_string(), "GM".to_string()],
            &[
                vec!["2".to_string(), "0.947".to_string()],
                vec!["16".to_string(), "0.947".to_string()],
            ],
        );
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with('n'));
        assert!(lines[1].starts_with('-'));
        assert!(lines[3].contains("16"));
    }

    #[test]
    fn fmt_controls_decimals() {
        assert_eq!(fmt(0.94736, 3), "0.947");
        assert_eq!(fmt(1.0, 1), "1.0");
    }
}

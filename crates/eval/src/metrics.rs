//! Empirical accuracy metrics over privatised group counts (Section V).
//!
//! The experiments privatise each group's true count and then score the batch of
//! reports with one of three metrics:
//!
//! * the empirical error probability — the fraction of groups whose report differs
//!   from the truth (the empirical analogue of `L0`, Figure 10),
//! * the empirical `L0,d` — the fraction of groups whose report is more than `d`
//!   steps from the truth (Figures 11 and 12),
//! * the root-mean-square error of the reports (Figure 13).
//!
//! The module also carries the normal-approximation [`ConfidenceInterval`]
//! machinery shared with the online estimator in `cpm-collect` (Figures 10/13
//! error bars, promoted from offline plotting to a reusable primitive).

use serde::{Deserialize, Serialize};

/// Shared preamble for the pairwise metrics: truth and reports must align.
fn check_equal_lengths(true_counts: &[usize], reported: &[usize]) {
    assert_eq!(
        true_counts.len(),
        reported.len(),
        "true and reported count slices must have equal length"
    );
}

/// Fraction of groups whose reported count differs from the true count.
pub fn empirical_error_rate(true_counts: &[usize], reported: &[usize]) -> f64 {
    empirical_error_rate_beyond(true_counts, reported, 0)
}

/// Fraction of groups whose reported count is **more than** `d` steps away from the
/// true count (so `d = 0` recovers [`empirical_error_rate`]).
pub fn empirical_error_rate_beyond(true_counts: &[usize], reported: &[usize], d: usize) -> f64 {
    check_equal_lengths(true_counts, reported);
    if true_counts.is_empty() {
        return 0.0;
    }
    let wrong = true_counts
        .iter()
        .zip(reported)
        .filter(|(&t, &r)| t.abs_diff(r) > d)
        .count();
    wrong as f64 / true_counts.len() as f64
}

/// Root-mean-square error of the reported counts.
pub fn root_mean_square_error(true_counts: &[usize], reported: &[usize]) -> f64 {
    check_equal_lengths(true_counts, reported);
    if true_counts.is_empty() {
        return 0.0;
    }
    let sum_squares: f64 = true_counts
        .iter()
        .zip(reported)
        .map(|(&t, &r)| {
            let diff = t as f64 - r as f64;
            diff * diff
        })
        .sum();
    (sum_squares / true_counts.len() as f64).sqrt()
}

/// Mean absolute error of the reported counts.
pub fn mean_absolute_error(true_counts: &[usize], reported: &[usize]) -> f64 {
    check_equal_lengths(true_counts, reported);
    if true_counts.is_empty() {
        return 0.0;
    }
    let total: f64 = true_counts
        .iter()
        .zip(reported)
        .map(|(&t, &r)| t.abs_diff(r) as f64)
        .sum();
    total / true_counts.len() as f64
}

/// Mean, standard deviation, and standard error of a set of repeated measurements
/// (the error bars of Figures 10 and 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Number of repetitions.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased, n − 1 denominator).
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_error: f64,
}

impl SummaryStats {
    /// Summarise a slice of repeated measurements.
    pub fn from_samples(samples: &[f64]) -> Self {
        let count = samples.len();
        if count == 0 {
            return SummaryStats {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                std_error: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / count as f64;
        if count == 1 {
            return SummaryStats {
                count,
                mean,
                std_dev: 0.0,
                std_error: 0.0,
            };
        }
        let variance =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (count as f64 - 1.0);
        let std_dev = variance.sqrt();
        SummaryStats {
            count,
            mean,
            std_dev,
            std_error: std_dev / (count as f64).sqrt(),
        }
    }

    /// Normal-approximation confidence interval for the underlying mean at the
    /// given two-sided `level` (e.g. `0.95`).
    pub fn confidence_interval(&self, level: f64) -> ConfidenceInterval {
        confidence_interval(self.mean, self.std_error * self.std_error, level)
    }
}

/// A symmetric normal-approximation confidence interval around a point
/// estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConfidenceInterval {
    /// The point estimate at the interval's centre.
    pub estimate: f64,
    /// Half the interval width (`z · σ̂`).
    pub half_width: f64,
    /// The two-sided coverage level in `(0, 1)`, e.g. `0.95`.
    pub level: f64,
}

impl ConfidenceInterval {
    /// The interval's lower endpoint.
    pub fn lower(&self) -> f64 {
        self.estimate - self.half_width
    }

    /// The interval's upper endpoint.
    pub fn upper(&self) -> f64 {
        self.estimate + self.half_width
    }

    /// Whether `value` lies inside the interval (endpoints inclusive).
    pub fn contains(&self, value: f64) -> bool {
        self.lower() <= value && value <= self.upper()
    }
}

/// Build a normal-approximation interval `estimate ± z(level)·sqrt(variance)`.
///
/// # Panics
/// If `level` is not in `(0, 1)` or `variance` is negative.
pub fn confidence_interval(estimate: f64, variance: f64, level: f64) -> ConfidenceInterval {
    assert!(variance >= 0.0, "variance must be non-negative: {variance}");
    ConfidenceInterval {
        estimate,
        half_width: z_critical(level) * variance.sqrt(),
        level,
    }
}

/// The two-sided standard-normal critical value for coverage `level`
/// (`z_critical(0.95) ≈ 1.960`), via Acklam's rational approximation of the
/// inverse normal CDF (absolute error below `1.2e-9` — far inside anything a
/// plug-in variance estimate can resolve).
///
/// # Panics
/// If `level` is not in `(0, 1)`.
pub fn z_critical(level: f64) -> f64 {
    assert!(
        level > 0.0 && level < 1.0,
        "confidence level must be in (0, 1): {level}"
    );
    inverse_normal_cdf((1.0 + level) / 2.0)
}

/// Acklam's inverse standard-normal CDF for `p` in `(0, 1)`.
// The coefficients are kept exactly as published, trailing zeros included.
#[allow(clippy::excessive_precision)]
fn inverse_normal_cdf(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;
    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inverse_normal_cdf(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_rates_count_mismatches() {
        let truth = [1, 2, 3, 4];
        let reported = [1, 3, 3, 0];
        assert!((empirical_error_rate(&truth, &reported) - 0.5).abs() < 1e-12);
        // Only the last group (|4-0| = 4 > 1) is farther than one step away.
        assert!((empirical_error_rate_beyond(&truth, &reported, 1) - 0.25).abs() < 1e-12);
        assert_eq!(empirical_error_rate(&[], &[]), 0.0);
    }

    #[test]
    fn rmse_and_mae() {
        let truth = [0, 2, 4];
        let reported = [0, 4, 1];
        // Squared errors 0, 4, 9 -> mean 13/3.
        assert!((root_mean_square_error(&truth, &reported) - (13.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mean_absolute_error(&truth, &reported) - (0.0 + 2.0 + 3.0) / 3.0).abs() < 1e-12);
        assert_eq!(root_mean_square_error(&[], &[]), 0.0);
        assert_eq!(mean_absolute_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        empirical_error_rate(&[1, 2], &[1]);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic_in_rmse_too() {
        root_mean_square_error(&[1], &[1, 2]);
    }

    #[test]
    fn summary_stats() {
        let stats = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(stats.count, 4);
        assert!((stats.mean - 2.5).abs() < 1e-12);
        assert!((stats.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((stats.std_error - stats.std_dev / 2.0).abs() < 1e-12);

        let single = SummaryStats::from_samples(&[7.0]);
        assert_eq!(single.std_dev, 0.0);
        let empty = SummaryStats::from_samples(&[]);
        assert_eq!(empty.count, 0);
    }

    #[test]
    fn z_critical_matches_the_standard_table() {
        assert!((z_critical(0.90) - 1.6448536).abs() < 1e-4);
        assert!((z_critical(0.95) - 1.9599640).abs() < 1e-4);
        assert!((z_critical(0.99) - 2.5758293).abs() < 1e-4);
        // Deep-tail branch of the approximation.
        assert!((z_critical(0.9999) - 3.8905919).abs() < 1e-4);
    }

    #[test]
    fn confidence_intervals_cover_and_expose_endpoints() {
        let ci = confidence_interval(10.0, 4.0, 0.95);
        assert!((ci.half_width - 1.9599640 * 2.0).abs() < 1e-3);
        assert!((ci.lower() + ci.upper() - 20.0).abs() < 1e-12);
        assert!(ci.contains(10.0) && ci.contains(ci.upper()));
        assert!(!ci.contains(ci.upper() + 1e-6));

        // SummaryStats plumbs its standard error through.
        let stats = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        let ci = stats.confidence_interval(0.95);
        assert!((ci.estimate - stats.mean).abs() < 1e-12);
        assert!((ci.half_width - z_critical(0.95) * stats.std_error).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "confidence level")]
    fn out_of_range_level_panics() {
        z_critical(1.0);
    }
}

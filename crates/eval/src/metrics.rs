//! Empirical accuracy metrics over privatised group counts (Section V).
//!
//! The experiments privatise each group's true count and then score the batch of
//! reports with one of three metrics:
//!
//! * the empirical error probability — the fraction of groups whose report differs
//!   from the truth (the empirical analogue of `L0`, Figure 10),
//! * the empirical `L0,d` — the fraction of groups whose report is more than `d`
//!   steps from the truth (Figures 11 and 12),
//! * the root-mean-square error of the reports (Figure 13).

use serde::{Deserialize, Serialize};

/// Fraction of groups whose reported count differs from the true count.
pub fn empirical_error_rate(true_counts: &[usize], reported: &[usize]) -> f64 {
    empirical_error_rate_beyond(true_counts, reported, 0)
}

/// Fraction of groups whose reported count is **more than** `d` steps away from the
/// true count (so `d = 0` recovers [`empirical_error_rate`]).
pub fn empirical_error_rate_beyond(true_counts: &[usize], reported: &[usize], d: usize) -> f64 {
    assert_eq!(
        true_counts.len(),
        reported.len(),
        "true and reported count slices must have equal length"
    );
    if true_counts.is_empty() {
        return 0.0;
    }
    let wrong = true_counts
        .iter()
        .zip(reported)
        .filter(|(&t, &r)| t.abs_diff(r) > d)
        .count();
    wrong as f64 / true_counts.len() as f64
}

/// Root-mean-square error of the reported counts.
pub fn root_mean_square_error(true_counts: &[usize], reported: &[usize]) -> f64 {
    assert_eq!(
        true_counts.len(),
        reported.len(),
        "true and reported count slices must have equal length"
    );
    if true_counts.is_empty() {
        return 0.0;
    }
    let sum_squares: f64 = true_counts
        .iter()
        .zip(reported)
        .map(|(&t, &r)| {
            let diff = t as f64 - r as f64;
            diff * diff
        })
        .sum();
    (sum_squares / true_counts.len() as f64).sqrt()
}

/// Mean absolute error of the reported counts.
pub fn mean_absolute_error(true_counts: &[usize], reported: &[usize]) -> f64 {
    assert_eq!(
        true_counts.len(),
        reported.len(),
        "true and reported count slices must have equal length"
    );
    if true_counts.is_empty() {
        return 0.0;
    }
    let total: f64 = true_counts
        .iter()
        .zip(reported)
        .map(|(&t, &r)| t.abs_diff(r) as f64)
        .sum();
    total / true_counts.len() as f64
}

/// Mean, standard deviation, and standard error of a set of repeated measurements
/// (the error bars of Figures 10 and 13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SummaryStats {
    /// Number of repetitions.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Sample standard deviation (unbiased, n − 1 denominator).
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_error: f64,
}

impl SummaryStats {
    /// Summarise a slice of repeated measurements.
    pub fn from_samples(samples: &[f64]) -> Self {
        let count = samples.len();
        if count == 0 {
            return SummaryStats {
                count: 0,
                mean: 0.0,
                std_dev: 0.0,
                std_error: 0.0,
            };
        }
        let mean = samples.iter().sum::<f64>() / count as f64;
        if count == 1 {
            return SummaryStats {
                count,
                mean,
                std_dev: 0.0,
                std_error: 0.0,
            };
        }
        let variance =
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / (count as f64 - 1.0);
        let std_dev = variance.sqrt();
        SummaryStats {
            count,
            mean,
            std_dev,
            std_error: std_dev / (count as f64).sqrt(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_rates_count_mismatches() {
        let truth = [1, 2, 3, 4];
        let reported = [1, 3, 3, 0];
        assert!((empirical_error_rate(&truth, &reported) - 0.5).abs() < 1e-12);
        // Only the last group (|4-0| = 4 > 1) is farther than one step away.
        assert!((empirical_error_rate_beyond(&truth, &reported, 1) - 0.25).abs() < 1e-12);
        assert_eq!(empirical_error_rate(&[], &[]), 0.0);
    }

    #[test]
    fn rmse_and_mae() {
        let truth = [0, 2, 4];
        let reported = [0, 4, 1];
        // Squared errors 0, 4, 9 -> mean 13/3.
        assert!((root_mean_square_error(&truth, &reported) - (13.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((mean_absolute_error(&truth, &reported) - (0.0 + 2.0 + 3.0) / 3.0).abs() < 1e-12);
        assert_eq!(root_mean_square_error(&[], &[]), 0.0);
        assert_eq!(mean_absolute_error(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn mismatched_lengths_panic() {
        empirical_error_rate(&[1, 2], &[1]);
    }

    #[test]
    fn summary_stats() {
        let stats = SummaryStats::from_samples(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(stats.count, 4);
        assert!((stats.mean - 2.5).abs() < 1e-12);
        assert!((stats.std_dev - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
        assert!((stats.std_error - stats.std_dev / 2.0).abs() < 1e-12);

        let single = SummaryStats::from_samples(&[7.0]);
        assert_eq!(single.std_dev, 0.0);
        let empty = SummaryStats::from_samples(&[]);
        assert_eq!(empty.count, 0);
    }
}

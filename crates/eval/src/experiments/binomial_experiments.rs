//! Figures 11, 12 and 13: synthetic Binomial workloads.
//!
//! A population of 10,000 individuals with i.i.d. Bernoulli(p) private bits is split
//! into groups of size `n`; each group's true count is privatised with GM / WM / EM /
//! UM and scored with
//!
//! * the empirical `L0,1` error (fraction of groups more than one step off) as `p`,
//!   `n`, and α vary — Figure 11;
//! * the empirical `L0,d` error as `d` varies for fixed `n = 8`, for a balanced and a
//!   skewed input distribution — Figure 12;
//! * the RMSE of the reported counts — Figure 13.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use cpm_core::prelude::*;
use cpm_data::prelude::*;

use crate::metrics::{empirical_error_rate_beyond, root_mean_square_error, SummaryStats};
use crate::runner::{build_mechanism, evaluate_repeated, NamedMechanism};

/// Shared configuration for the Binomial experiments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinomialExperimentConfig {
    /// Population size (the paper uses 10,000).
    pub population_size: usize,
    /// Repetitions per configuration (the paper uses 30).
    pub repetitions: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BinomialExperimentConfig {
    fn default() -> Self {
        BinomialExperimentConfig {
            population_size: 10_000,
            repetitions: 30,
            seed: 77,
        }
    }
}

impl BinomialExperimentConfig {
    /// Reduced configuration for tests and smoke runs.
    pub fn quick() -> Self {
        BinomialExperimentConfig {
            population_size: 2_000,
            repetitions: 5,
            seed: 77,
        }
    }
}

/// One measured point shared by all three figures.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinomialPoint {
    /// Bit probability `p` of the population.
    pub p: f64,
    /// Group size `n`.
    pub n: usize,
    /// Privacy parameter α.
    pub alpha: f64,
    /// Distance threshold `d` (only meaningful for the `L0,d` figures; 1 for Fig. 11).
    pub d: usize,
    /// Mechanism label.
    pub mechanism: String,
    /// The measured metric with error bars.
    pub value: SummaryStats,
}

/// A generic sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BinomialSweep {
    /// Which metric the `value` field holds (`"L0,d"` or `"RMSE"`).
    pub metric: String,
    /// The configuration used.
    pub config: BinomialExperimentConfig,
    /// All measured points.
    pub points: Vec<BinomialPoint>,
}

fn group_counts_for(
    config: &BinomialExperimentConfig,
    p: f64,
    n: usize,
    seed_offset: u64,
) -> Vec<usize> {
    let mut rng = StdRng::seed_from_u64(config.seed.wrapping_add(seed_offset));
    let spec = BinomialPopulationSpec {
        population_size: config.population_size,
        probability: p,
    };
    spec.generate(&mut rng).group_counts(n)
}

fn mechanism_seed(which: NamedMechanism) -> u64 {
    match which {
        NamedMechanism::Geometric => 11,
        NamedMechanism::WeakHonest => 12,
        NamedMechanism::ExplicitFair => 13,
        NamedMechanism::Uniform => 14,
        NamedMechanism::Exponential => 15,
        NamedMechanism::Laplace => 16,
        NamedMechanism::NaryRandomizedResponse => 17,
    }
}

/// Figure 11: the `L0,1` error as the input distribution `p` varies, for each
/// `(n, α)` pair (the paper uses n ∈ {4, 8, 12} × α ∈ {0.91, 0.67}).
pub fn l01_error_sweep(
    config: &BinomialExperimentConfig,
    group_sizes: &[usize],
    alphas: &[f64],
    probabilities: &[f64],
) -> Result<BinomialSweep, CoreError> {
    l0d_error_sweep(config, group_sizes, alphas, probabilities, &[1]).map(|mut sweep| {
        sweep.metric = "L0,1".to_string();
        sweep
    })
}

/// Figure 12 (generalisation): the `L0,d` error for each threshold `d`.
pub fn l0d_error_sweep(
    config: &BinomialExperimentConfig,
    group_sizes: &[usize],
    alphas: &[f64],
    probabilities: &[f64],
    thresholds: &[usize],
) -> Result<BinomialSweep, CoreError> {
    // Each (α, n) cell is independent (one WM LP solve plus sampling); fan the
    // grid out and concatenate the per-cell points in grid order, so the
    // result is byte-identical to the serial sweep (all seeds are explicit).
    let grid: Vec<(f64, usize)> = alphas
        .iter()
        .flat_map(|&alpha| group_sizes.iter().map(move |&n| (alpha, n)))
        .collect();
    let chunks = crate::par::try_parallel_map(grid, |(alpha_value, n)| {
        let alpha = Alpha::new(alpha_value)?;
        let mechanisms: Vec<(NamedMechanism, Mechanism)> = NamedMechanism::PAPER_SET
            .iter()
            .map(|&which| build_mechanism(which, n, alpha).map(|m| (which, m)))
            .collect::<Result<_, _>>()?;
        let mut points = Vec::new();
        for &p in probabilities {
            let counts = group_counts_for(config, p, n, (n as u64) << 32 ^ (p * 1000.0) as u64);
            for &d in thresholds {
                for (which, matrix) in &mechanisms {
                    let value = evaluate_repeated(
                        matrix,
                        &counts,
                        config.repetitions,
                        config.seed ^ mechanism_seed(*which) ^ ((d as u64) << 16),
                        |truth, reported| empirical_error_rate_beyond(truth, reported, d),
                    );
                    points.push(BinomialPoint {
                        p,
                        n,
                        alpha: alpha_value,
                        d,
                        mechanism: which.label().to_string(),
                        value,
                    });
                }
            }
        }
        Ok::<_, CoreError>(points)
    })?;
    let points: Vec<BinomialPoint> = chunks.into_iter().flatten().collect();
    Ok(BinomialSweep {
        metric: "L0,d".to_string(),
        config: config.clone(),
        points,
    })
}

/// Figure 13: the RMSE of reported counts as `p` varies, for each `(n, α)` pair.
pub fn rmse_sweep(
    config: &BinomialExperimentConfig,
    group_sizes: &[usize],
    alphas: &[f64],
    probabilities: &[f64],
) -> Result<BinomialSweep, CoreError> {
    let grid: Vec<(f64, usize)> = alphas
        .iter()
        .flat_map(|&alpha| group_sizes.iter().map(move |&n| (alpha, n)))
        .collect();
    let chunks = crate::par::try_parallel_map(grid, |(alpha_value, n)| {
        let alpha = Alpha::new(alpha_value)?;
        let mechanisms: Vec<(NamedMechanism, Mechanism)> = NamedMechanism::PAPER_SET
            .iter()
            .map(|&which| build_mechanism(which, n, alpha).map(|m| (which, m)))
            .collect::<Result<_, _>>()?;
        let mut points = Vec::new();
        for &p in probabilities {
            let counts = group_counts_for(config, p, n, (n as u64) << 40 ^ (p * 1000.0) as u64);
            for (which, matrix) in &mechanisms {
                let value = evaluate_repeated(
                    matrix,
                    &counts,
                    config.repetitions,
                    config.seed ^ mechanism_seed(*which).rotate_left(3),
                    root_mean_square_error,
                );
                points.push(BinomialPoint {
                    p,
                    n,
                    alpha: alpha_value,
                    d: 0,
                    mechanism: which.label().to_string(),
                    value,
                });
            }
        }
        Ok::<_, CoreError>(points)
    })?;
    let points: Vec<BinomialPoint> = chunks.into_iter().flatten().collect();
    Ok(BinomialSweep {
        metric: "RMSE".to_string(),
        config: config.clone(),
        points,
    })
}

/// The paper's Figure 11 parameter grid: n ∈ {4, 8, 12}, α ∈ {0.91, 0.67}.
pub fn figure11_grid() -> (Vec<usize>, Vec<f64>) {
    (vec![4, 8, 12], vec![0.91, 0.67])
}

/// The paper's Figure 12 setup: n = 8, a balanced (p = 0.5) and a skewed (p = 0.1)
/// input distribution, d from 0 to 4.
pub fn figure12_grid() -> (usize, Vec<f64>, Vec<usize>) {
    (8, vec![0.5, 0.1], vec![0, 1, 2, 3, 4])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(sweep: &BinomialSweep, p: f64, mech: &str, d: usize) -> f64 {
        sweep
            .points
            .iter()
            .find(|pt| (pt.p - p).abs() < 1e-9 && pt.mechanism == mech && pt.d == d)
            .map(|pt| pt.value.mean)
            .unwrap()
    }

    #[test]
    fn figure11_quick_run_shows_gm_weak_in_the_middle_and_strong_at_the_extremes() {
        let config = BinomialExperimentConfig::quick();
        let sweep = l01_error_sweep(&config, &[8], &[0.91], &[0.05, 0.5]).unwrap();
        // Balanced input (p = 0.5): the constrained EM beats GM on L0,1.
        let gm_mid = mean_of(&sweep, 0.5, "GM", 1);
        let em_mid = mean_of(&sweep, 0.5, "EM", 1);
        assert!(
            em_mid < gm_mid + 0.02,
            "balanced input: EM {em_mid} vs GM {gm_mid}"
        );
        // Extremely skewed input (p = 0.05): GM's preference for extreme outputs pays
        // off and it beats (or at least matches) EM.
        let gm_skew = mean_of(&sweep, 0.05, "GM", 1);
        let em_skew = mean_of(&sweep, 0.05, "EM", 1);
        assert!(
            gm_skew < em_skew + 0.05,
            "skewed input: GM {gm_skew} vs EM {em_skew}"
        );
        assert_eq!(sweep.metric, "L0,1");
    }

    #[test]
    fn figure12_error_decreases_with_d() {
        let config = BinomialExperimentConfig::quick();
        let sweep = l0d_error_sweep(&config, &[8], &[0.91], &[0.5], &[0, 2, 4]).unwrap();
        for mech in ["GM", "EM", "WM", "UM"] {
            let d0 = mean_of(&sweep, 0.5, mech, 0);
            let d2 = mean_of(&sweep, 0.5, mech, 2);
            let d4 = mean_of(&sweep, 0.5, mech, 4);
            assert!(d0 >= d2 - 1e-9 && d2 >= d4 - 1e-9, "{mech}: {d0} {d2} {d4}");
        }
    }

    #[test]
    fn figure13_rmse_is_positive_and_bounded_by_n() {
        let config = BinomialExperimentConfig::quick();
        let sweep = rmse_sweep(&config, &[4], &[0.67], &[0.3, 0.5]).unwrap();
        assert_eq!(sweep.metric, "RMSE");
        for point in &sweep.points {
            assert!(point.value.mean > 0.0);
            assert!(point.value.mean <= 4.0);
        }
    }

    #[test]
    fn parameter_grids_match_the_paper() {
        let (sizes, alphas) = figure11_grid();
        assert_eq!(sizes, vec![4, 8, 12]);
        assert_eq!(alphas, vec![0.91, 0.67]);
        let (n, ps, ds) = figure12_grid();
        assert_eq!(n, 8);
        assert_eq!(ps.len(), 2);
        assert_eq!(ds.len(), 5);
    }
}

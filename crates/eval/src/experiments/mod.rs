//! Per-figure experiment drivers (Section V of the paper).
//!
//! Each module produces the data behind one or more of the paper's figures as plain
//! serialisable structs plus a text rendering, so the `cpm-bench` binaries can print
//! the same rows/series the paper reports (and dump JSON for EXPERIMENTS.md).
//!
//! | Module | Paper artefacts |
//! |--------|-----------------|
//! | [`heatmaps`] | Figures 1, 2, 3, 4, 7 and Example 1 |
//! | [`score_sweeps`] | Figures 6, 8, 9 (analytic / LP `L0` scores, no sampling) |
//! | [`adult_experiment`] | Figure 10 (synthetic Adult data, empirical error) |
//! | [`binomial_experiments`] | Figures 11, 12, 13 (Binomial data: `L0,1`, `L0,d`, RMSE) |

pub mod adult_experiment;
pub mod binomial_experiments;
pub mod heatmaps;
pub mod score_sweeps;

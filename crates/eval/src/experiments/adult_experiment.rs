//! Figure 10: empirical error probability on (synthetic) Adult data.
//!
//! For each of the three binary targets — young population, gender balance, income
//! level — the records are gathered into groups of size `n`, each group's true count
//! is privatised with GM / WM / EM / UM, and the fraction of groups whose noisy count
//! differs from the truth is recorded, with error bars over repetitions
//! (the paper uses α = 0.9 and 50 repetitions).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use cpm_core::prelude::*;
use cpm_data::prelude::*;

use crate::metrics::{empirical_error_rate, SummaryStats};
use crate::runner::{build_mechanism, evaluate_repeated, NamedMechanism};

/// Configuration of the Figure 10 experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdultExperimentConfig {
    /// Privacy parameter (the paper uses 0.9).
    pub alpha: f64,
    /// Group sizes to sweep (the x axis).
    pub group_sizes: Vec<usize>,
    /// Number of repetitions for the error bars (the paper uses 50).
    pub repetitions: usize,
    /// Number of synthetic census records to generate.
    pub dataset_size: usize,
    /// RNG seed for both the dataset and the mechanism noise.
    pub seed: u64,
}

impl Default for AdultExperimentConfig {
    fn default() -> Self {
        AdultExperimentConfig {
            alpha: 0.9,
            group_sizes: vec![2, 4, 6, 8, 10, 12, 16],
            repetitions: 50,
            dataset_size: AdultDatasetSpec::default().size,
            seed: 2018,
        }
    }
}

impl AdultExperimentConfig {
    /// A reduced configuration for tests and smoke runs.
    pub fn quick() -> Self {
        AdultExperimentConfig {
            group_sizes: vec![4, 8],
            repetitions: 5,
            dataset_size: 4_000,
            ..AdultExperimentConfig::default()
        }
    }
}

/// One measured point: a target, a group size, and a mechanism's empirical error.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdultErrorPoint {
    /// Target label (young population / gender balance / income level).
    pub target: String,
    /// Group size `n`.
    pub n: usize,
    /// Mechanism label.
    pub mechanism: String,
    /// Empirical probability of reporting a wrong count, with error bars.
    pub error: SummaryStats,
}

/// The complete Figure 10 dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdultExperimentResult {
    /// The configuration that produced the data.
    pub config: AdultExperimentConfig,
    /// Marginal rate of each target in the generated dataset.
    pub target_rates: Vec<(String, f64)>,
    /// All measured points.
    pub points: Vec<AdultErrorPoint>,
}

/// Run the Figure 10 experiment.
pub fn run(config: &AdultExperimentConfig) -> Result<AdultExperimentResult, CoreError> {
    let alpha = Alpha::new(config.alpha)?;
    let mut rng = StdRng::seed_from_u64(config.seed);
    let dataset = AdultDataset::generate(
        AdultDatasetSpec {
            size: config.dataset_size,
        },
        &mut rng,
    );

    let target_rates = AdultTarget::ALL
        .iter()
        .map(|t| (t.label().to_string(), dataset.target_rate(*t)))
        .collect();

    let mut points = Vec::new();
    for &n in &config.group_sizes {
        // Build each mechanism once per group size (the LP solve for WM dominates).
        let mechanisms: Vec<(NamedMechanism, Mechanism)> = NamedMechanism::PAPER_SET
            .iter()
            .map(|&which| build_mechanism(which, n, alpha).map(|m| (which, m)))
            .collect::<Result<_, _>>()?;
        for target in AdultTarget::ALL {
            let counts = dataset.target_population(target).group_counts(n);
            for (which, matrix) in &mechanisms {
                let error = evaluate_repeated(
                    matrix,
                    &counts,
                    config.repetitions,
                    config.seed ^ (n as u64) << 8 ^ which_seed(*which),
                    empirical_error_rate,
                );
                points.push(AdultErrorPoint {
                    target: target.label().to_string(),
                    n,
                    mechanism: which.label().to_string(),
                    error,
                });
            }
        }
    }

    Ok(AdultExperimentResult {
        config: config.clone(),
        target_rates,
        points,
    })
}

fn which_seed(which: NamedMechanism) -> u64 {
    match which {
        NamedMechanism::Geometric => 1,
        NamedMechanism::WeakHonest => 2,
        NamedMechanism::ExplicitFair => 3,
        NamedMechanism::Uniform => 4,
        NamedMechanism::Exponential => 5,
        NamedMechanism::Laplace => 6,
        NamedMechanism::NaryRandomizedResponse => 7,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_reproduces_the_qualitative_figure_10_findings() {
        let result = run(&AdultExperimentConfig::quick()).unwrap();
        assert_eq!(result.points.len(), 2 * 3 * 4);

        let mean = |target: &str, n: usize, mech: &str| -> f64 {
            result
                .points
                .iter()
                .find(|p| p.target == target && p.n == n && p.mechanism == mech)
                .map(|p| p.error.mean)
                .unwrap()
        };
        for target in ["gender balance", "young population", "income level"] {
            for n in [4usize, 8] {
                // UM's error is essentially 1 - 1/(n+1), independent of the data.
                let um = mean(target, n, "UM");
                assert!(
                    (um - (1.0 - 1.0 / (n as f64 + 1.0))).abs() < 0.08,
                    "{target} n={n}: UM {um}"
                );
                // On this middle-heavy data GM does not beat the fair mechanism
                // (Section V-B: GM is appreciably worse; EM gives the best honesty).
                let gm = mean(target, n, "GM");
                let em = mean(target, n, "EM");
                assert!(
                    em <= gm + 0.03,
                    "{target} n={n}: EM {em} should not be (much) worse than GM {gm}"
                );
            }
        }
        assert_eq!(result.target_rates.len(), 3);
    }

    #[test]
    fn default_config_matches_the_paper() {
        let config = AdultExperimentConfig::default();
        assert_eq!(config.alpha, 0.9);
        assert_eq!(config.repetitions, 50);
        assert_eq!(config.dataset_size, 32_561);
    }
}

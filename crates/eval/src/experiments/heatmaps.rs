//! Mechanism heat maps: Figures 1, 2, 3, 4, 7 and Example 1.
//!
//! Figure 1 shows LP-optimal *unconstrained* mechanisms for four objective/size
//! combinations at α = 0.62, exhibiting output gaps and spikes; Figure 2 shows the
//! same instances with all seven structural properties enforced, which removes the
//! pathologies.  Figure 7 contrasts GM, EM, and WM for n = 4 at strong privacy.

use serde::{Deserialize, Serialize};

use cpm_core::prelude::*;

use crate::runner::{build_mechanism, NamedMechanism};

/// The objective/size combinations displayed in Figures 1 and 2.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PanelSpec {
    /// Group size of the panel.
    pub n: usize,
    /// Loss function minimised by the LP.
    pub loss: LossKind,
}

/// Default panels matching the paper's Figure 1/2 captions (α = 0.62): minimise the
/// absolute error and squared error for n = 7, the probability of a wrong answer for
/// n = 7, and the probability of being more than one step off for n = 5.
pub fn default_panels() -> Vec<PanelSpec> {
    vec![
        PanelSpec {
            n: 7,
            loss: LossKind::Absolute,
        },
        PanelSpec {
            n: 7,
            loss: LossKind::Squared,
        },
        PanelSpec {
            n: 7,
            loss: LossKind::ZeroOne,
        },
        PanelSpec {
            n: 5,
            loss: LossKind::ZeroOneBeyond(1),
        },
    ]
}

/// One rendered heat-map panel with its pathology diagnostics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatmapPanel {
    /// Short description, e.g. `"L2, n = 7"`.
    pub title: String,
    /// Whether the structural constraints were enforced.
    pub constrained: bool,
    /// The mechanism matrix.
    pub mechanism: Mechanism,
    /// Output values that are never reported (gaps, Figure 1's pathology).
    pub gap_outputs: Vec<usize>,
    /// Largest marginal output probability under a uniform prior (spike severity).
    pub max_output_marginal: f64,
    /// The optimal objective value reported by the LP.
    pub objective_value: f64,
}

/// Data behind Figure 1 (unconstrained) or Figure 2 (constrained).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeatmapFigure {
    /// Privacy parameter used for every panel.
    pub alpha: f64,
    /// The panels, in the order of [`default_panels`].
    pub panels: Vec<HeatmapPanel>,
}

/// Run the Figure 1 / Figure 2 experiment: solve the design LP for each panel with
/// (`constrained = true`) or without (`false`) the full property set.
pub fn lp_heatmaps(
    alpha: Alpha,
    panels: &[PanelSpec],
    constrained: bool,
) -> Result<HeatmapFigure, CoreError> {
    // The panels are independent design LPs — fan them out over the pool.
    let results = crate::par::try_parallel_map(panels.to_vec(), |panel| {
        let properties = if constrained {
            PropertySet::all()
        } else {
            PropertySet::empty()
        };
        let objective = Objective {
            loss: panel.loss,
            prior: Prior::Uniform,
            aggregator: Aggregator::Sum,
        };
        let solution = DesignProblem::constrained(panel.n, alpha, objective, properties).solve()?;
        let uniform_prior = vec![1.0 / (panel.n as f64 + 1.0); panel.n + 1];
        let marginals = solution.mechanism.output_marginals(&uniform_prior);
        Ok::<_, CoreError>(HeatmapPanel {
            title: format!("{}, n = {}", panel.loss.name(), panel.n),
            constrained,
            gap_outputs: solution.mechanism.zero_rows(1e-7),
            max_output_marginal: marginals.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
            objective_value: solution.objective_value,
            mechanism: solution.mechanism,
        })
    })?;
    Ok(HeatmapFigure {
        alpha: alpha.value(),
        panels: results,
    })
}

/// Data behind Figure 7: GM, EM, and WM side by side for a small group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedHeatmaps {
    /// Group size.
    pub n: usize,
    /// Privacy parameter.
    pub alpha: f64,
    /// `(label, mechanism, truthful-report probability under a uniform prior)`.
    pub mechanisms: Vec<(String, Mechanism, f64)>,
}

/// Run the Figure 7 experiment (the paper uses n = 4, α = 10/11 ≈ 0.9).
pub fn named_heatmaps(n: usize, alpha: Alpha) -> Result<NamedHeatmaps, CoreError> {
    let mut mechanisms = Vec::new();
    for which in [
        NamedMechanism::Geometric,
        NamedMechanism::ExplicitFair,
        NamedMechanism::WeakHonest,
    ] {
        let matrix = build_mechanism(which, n, alpha)?;
        let truth_probability = matrix.trace() / (n as f64 + 1.0);
        mechanisms.push((which.label().to_string(), matrix, truth_probability));
    }
    Ok(NamedHeatmaps {
        n,
        alpha: alpha.value(),
        mechanisms,
    })
}

/// Data behind Figures 3 and 4: the closed-form structure of GM and EM.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StructureFigure {
    /// Group size.
    pub n: usize,
    /// Privacy parameter.
    pub alpha: f64,
    /// GM's boundary coefficient `x = 1/(1+α)`.
    pub gm_x: f64,
    /// GM's interior coefficient `y = (1−α)/(1+α)`.
    pub gm_y: f64,
    /// EM's diagonal value `y` (Eq. 15).
    pub em_y: f64,
    /// The Geometric Mechanism matrix.
    pub gm: Mechanism,
    /// The Explicit Fair Mechanism matrix.
    pub em: Mechanism,
}

/// Produce the Figure 3 / Figure 4 structures (the paper prints n = 7).
pub fn structures(n: usize, alpha: Alpha) -> Result<StructureFigure, CoreError> {
    Ok(StructureFigure {
        n,
        alpha: alpha.value(),
        gm_x: closed_form::gm_boundary_coefficient(alpha),
        gm_y: closed_form::gm_interior_coefficient(alpha),
        em_y: closed_form::em_diagonal(n, alpha),
        gm: GeometricMechanism::new(n, alpha)?.into_matrix(),
        em: ExplicitFairMechanism::new(n, alpha)?.into_matrix(),
    })
}

/// Example 1 of the paper: the salient GM probabilities for n = 2, α = 0.9.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExampleOne {
    /// `Pr[0 | 1]` (≈ 0.47 in the paper).
    pub p_zero_given_one: f64,
    /// `Pr[1 | 1]` (≈ 0.05).
    pub p_one_given_one: f64,
    /// `Pr[0 | 0]` (≈ 0.53).
    pub p_zero_given_zero: f64,
    /// Ratio of wrong-answer probability to true-answer probability on input 1
    /// ("eighteen times lower").
    pub wrong_to_right_ratio: f64,
}

/// Compute Example 1's numbers.
pub fn example_one(alpha: Alpha) -> Result<ExampleOne, CoreError> {
    let gm = GeometricMechanism::new(2, alpha)?;
    let m = gm.matrix();
    Ok(ExampleOne {
        p_zero_given_one: m.prob(0, 1),
        p_one_given_one: m.prob(1, 1),
        p_zero_given_zero: m.prob(0, 0),
        wrong_to_right_ratio: (m.prob(0, 1) + m.prob(2, 1)) / m.prob(1, 1),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    #[test]
    fn unconstrained_panels_show_pathologies_constrained_do_not() {
        // Use smaller panels than the paper's defaults to keep the test quick, but
        // keep the qualitative claim: gaps before, no gaps after.
        let panels = vec![
            PanelSpec {
                n: 5,
                loss: LossKind::Squared,
            },
            PanelSpec {
                n: 5,
                loss: LossKind::ZeroOneBeyond(1),
            },
        ];
        let alpha = a(0.62);
        let unconstrained = lp_heatmaps(alpha, &panels, false).unwrap();
        let constrained = lp_heatmaps(alpha, &panels, true).unwrap();
        assert!(unconstrained
            .panels
            .iter()
            .any(|p| !p.gap_outputs.is_empty()));
        assert!(constrained.panels.iter().all(|p| p.gap_outputs.is_empty()));
        // Constrained optima can only be (weakly) worse in objective value.
        for (u, c) in unconstrained.panels.iter().zip(&constrained.panels) {
            assert!(c.objective_value + 1e-7 >= u.objective_value, "{}", u.title);
        }
    }

    #[test]
    fn named_heatmaps_reproduce_the_figure_7_ordering() {
        let figure = named_heatmaps(4, a(10.0 / 11.0)).unwrap();
        assert_eq!(figure.mechanisms.len(), 3);
        let truth: std::collections::HashMap<&str, f64> = figure
            .mechanisms
            .iter()
            .map(|(label, _, t)| (label.as_str(), *t))
            .collect();
        // GM maximises the diagonal mass; EM is slightly below; WM in between or equal.
        assert!(truth["GM"] >= truth["EM"] - 1e-9);
        assert!((truth["GM"] - 0.238).abs() < 5e-3);
        assert!((truth["EM"] - 0.224).abs() < 5e-3);
    }

    #[test]
    fn structures_expose_closed_form_coefficients() {
        let s = structures(7, a(0.62)).unwrap();
        assert!((s.gm.prob(0, 0) - s.gm_x).abs() < 1e-12);
        assert!((s.gm.prob(3, 3) - s.gm_y).abs() < 1e-12);
        assert!((s.em.prob(3, 3) - s.em_y).abs() < 1e-12);
    }

    #[test]
    fn example_one_matches_the_paper() {
        let e = example_one(a(0.9)).unwrap();
        assert!((e.p_zero_given_one - 0.47).abs() < 0.01);
        assert!((e.p_one_given_one - 0.05).abs() < 0.01);
        assert!((e.p_zero_given_zero - 0.53).abs() < 0.01);
        assert!((e.wrong_to_right_ratio - 18.0).abs() < 0.1);
    }

    #[test]
    fn default_panels_match_the_figure_captions() {
        let panels = default_panels();
        assert_eq!(panels.len(), 4);
        assert_eq!(panels[0].n, 7);
        assert_eq!(panels[3].loss, LossKind::ZeroOneBeyond(1));
    }
}

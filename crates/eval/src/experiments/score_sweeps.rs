//! Analytic / LP score sweeps: Figures 6, 8 and 9.
//!
//! These experiments need no sampling: they evaluate the rescaled `L0` score of the
//! named mechanisms (closed forms for GM / EM / UM, the LP for WM and other property
//! combinations) across group sizes, privacy levels, and property combinations.

use serde::{Deserialize, Serialize};

use cpm_core::prelude::*;

use crate::runner::{l0_score, NamedMechanism};

// ---------------------------------------------------------------------------
// Figure 6: the named-mechanism summary table.
// ---------------------------------------------------------------------------

/// One row of the Figure 6 table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedMechanismRow {
    /// Mechanism label (GM / WM / EM / UM).
    pub mechanism: String,
    /// Whether each of the seven properties holds for this instance, keyed by the
    /// paper's short property names.
    pub properties: Vec<(String, bool)>,
    /// The rescaled `L0` score.
    pub l0: f64,
}

/// The Figure 6 table for a concrete `(n, α)` instance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedMechanismTable {
    /// Group size used to instantiate the mechanisms.
    pub n: usize,
    /// Privacy parameter.
    pub alpha: f64,
    /// One row per named mechanism.
    pub rows: Vec<NamedMechanismRow>,
}

/// Build the Figure 6 table (property satisfaction and `L0`) for `(n, α)`.
pub fn named_mechanism_table(n: usize, alpha: Alpha) -> Result<NamedMechanismTable, CoreError> {
    let mut rows = Vec::new();
    for which in NamedMechanism::PAPER_SET {
        let matrix = crate::runner::build_mechanism(which, n, alpha)?;
        let report = PropertyReport::evaluate(&matrix, 1e-6);
        rows.push(NamedMechanismRow {
            mechanism: which.label().to_string(),
            properties: report.satisfied,
            l0: rescaled_l0(&matrix),
        });
    }
    Ok(NamedMechanismTable {
        n,
        alpha: alpha.value(),
        rows,
    })
}

// ---------------------------------------------------------------------------
// Figure 8: combinations of properties with weak honesty.
// ---------------------------------------------------------------------------

/// The nine meaningful property combinations on top of weak honesty studied in
/// Section V-A: ∅, RH, RM, CH, CM, RH+CH, RH+CM, RM+CH, RM+CM.
pub fn weak_honesty_combinations() -> Vec<(String, PropertySet)> {
    use Property::*;
    let base = PropertySet::empty().with(WeakHonesty);
    vec![
        ("WH".to_string(), base),
        ("WH+RH".to_string(), base.with(RowHonesty)),
        ("WH+RM".to_string(), base.with(RowMonotonicity)),
        ("WH+CH".to_string(), base.with(ColumnHonesty)),
        ("WH+CM".to_string(), base.with(ColumnMonotonicity)),
        (
            "WH+RH+CH".to_string(),
            base.with(RowHonesty).with(ColumnHonesty),
        ),
        (
            "WH+RH+CM".to_string(),
            base.with(RowHonesty).with(ColumnMonotonicity),
        ),
        (
            "WH+RM+CH".to_string(),
            base.with(RowMonotonicity).with(ColumnHonesty),
        ),
        (
            "WH+RM+CM".to_string(),
            base.with(RowMonotonicity).with(ColumnMonotonicity),
        ),
    ]
}

/// One point of the Figure 8 sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinationPoint {
    /// The swept parameter value (group size for 8a, α for 8b).
    pub x: f64,
    /// `(combination label, optimal L0)` for each property combination.
    pub scores: Vec<(String, f64)>,
}

/// Data behind Figure 8(a) or 8(b).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CombinationSweep {
    /// Which parameter is on the x axis: `"n"` or `"alpha"`.
    pub swept: String,
    /// The fixed parameter (α for 8a, n for 8b).
    pub fixed: f64,
    /// The sweep points.
    pub points: Vec<CombinationPoint>,
}

/// Figure 8(a): the optimal `L0` of each weak-honesty combination as a function of
/// the group size, at fixed α (the paper uses α = 0.76, whose Lemma-2 threshold is
/// `2α/(1−α) ≈ 6.33`).
pub fn combinations_vs_group_size(
    alpha: Alpha,
    group_sizes: &[usize],
) -> Result<CombinationSweep, CoreError> {
    // One task per sweep point; each task solves its nine property-set LPs.
    let points = crate::par::try_parallel_map(group_sizes.to_vec(), |n| {
        let scores = weak_honesty_combinations()
            .into_iter()
            .map(|(label, properties)| {
                let solution = optimal_constrained(n, alpha, Objective::l0(), properties)?;
                Ok((label, rescaled_l0(&solution.mechanism)))
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok::<_, CoreError>(CombinationPoint {
            x: n as f64,
            scores,
        })
    })?;
    Ok(CombinationSweep {
        swept: "n".to_string(),
        fixed: alpha.value(),
        points,
    })
}

/// Figure 8(b): the same combinations as a function of α at fixed group size.
///
/// Parallelism is over the nine *property combinations* rather than the α
/// points: within one combination every α solves an identically shaped LP, so
/// each task walks the α axis sequentially and seeds every solve from its
/// predecessor's [`DesignSolution::optimal_basis`].  The warm dual-simplex
/// cleanup replaces most of the two-phase cold solve, which is a large
/// wall-clock win over the per-point fan-out once `n` is nontrivial.
pub fn combinations_vs_alpha(n: usize, alphas: &[Alpha]) -> Result<CombinationSweep, CoreError> {
    let alphas = alphas.to_vec();
    // One task per combination; each returns that combination's score at every α.
    let columns = crate::par::try_parallel_map(weak_honesty_combinations(), {
        let alphas = alphas.clone();
        move |(label, properties)| {
            let mut basis: Option<Vec<usize>> = None;
            let mut scores = Vec::with_capacity(alphas.len());
            for &alpha in &alphas {
                let solution = DesignProblem::constrained(n, alpha, Objective::l0(), properties)
                    .with_warm_basis(basis.take())
                    .solve()?;
                basis = solution.optimal_basis.clone();
                scores.push(rescaled_l0(&solution.mechanism));
            }
            Ok::<_, CoreError>((label, scores))
        }
    })?;
    // Transpose back into per-α points, preserving the combination order.
    let points = alphas
        .iter()
        .enumerate()
        .map(|(k, alpha)| CombinationPoint {
            x: alpha.value(),
            scores: columns
                .iter()
                .map(|(label, scores)| (label.clone(), scores[k]))
                .collect(),
        })
        .collect();
    Ok(CombinationSweep {
        swept: "alpha".to_string(),
        fixed: n as f64,
        points,
    })
}

// ---------------------------------------------------------------------------
// Figure 9: L0 of the four named mechanisms across group sizes.
// ---------------------------------------------------------------------------

/// One point of a Figure 9 panel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScorePoint {
    /// Group size.
    pub n: usize,
    /// `(mechanism label, rescaled L0)`.
    pub scores: Vec<(String, f64)>,
}

/// One panel of Figure 9 (a fixed α, L0 versus group size).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreSweep {
    /// Privacy parameter of the panel.
    pub alpha: f64,
    /// The Lemma-2 threshold `2α/(1−α)` at which WM converges onto GM.
    pub convergence_threshold: f64,
    /// The sweep points.
    pub points: Vec<ScorePoint>,
}

/// The α values of Figure 9's three panels: 2/3, 10/11, 99/100.
pub fn figure9_alphas() -> Vec<Alpha> {
    vec![
        Alpha::new(2.0 / 3.0).unwrap(),
        Alpha::new(10.0 / 11.0).unwrap(),
        Alpha::new(0.99).unwrap(),
    ]
}

/// The optimal `L0` of the mechanism constrained by weak honesty *alone* (plus the
/// free symmetry / row properties).  This is the curve the paper's Figure 9 text
/// describes as "WM converging on GM at n = 2α/(1−α)": once GM itself satisfies weak
/// honesty (Lemma 2) it is feasible for this LP and, being the unconstrained optimum,
/// also optimal — so the closed form is used without solving anything.
pub fn weak_honesty_only_l0(n: usize, alpha: Alpha) -> Result<f64, CoreError> {
    if closed_form::gm_satisfies_weak_honesty(n, alpha) {
        return Ok(closed_form::gm_l0(alpha));
    }
    let solution = optimal_constrained(
        n,
        alpha,
        Objective::l0(),
        PropertySet::empty().with(Property::WeakHonesty),
    )?;
    Ok(rescaled_l0(&solution.mechanism))
}

/// Compute one Figure 9 panel over the given group sizes.
///
/// The series are GM, the weak-honesty-only optimum ("WH", the curve whose
/// convergence onto GM the paper describes), WM (= WH + RM + CM, the mechanism used
/// in the paper's empirical comparisons — slightly above GM for α > 1/2 because GM is
/// not column monotone there, Lemma 3), EM, and UM.
pub fn l0_versus_group_size(alpha: Alpha, group_sizes: &[usize]) -> Result<ScoreSweep, CoreError> {
    // Each point needs two LP solves (WH and WM); fan the points out.
    let points = crate::par::try_parallel_map(group_sizes.to_vec(), |n| {
        let scores = vec![
            (
                "GM".to_string(),
                l0_score(NamedMechanism::Geometric, n, alpha)?,
            ),
            ("WH".to_string(), weak_honesty_only_l0(n, alpha)?),
            (
                "WM".to_string(),
                l0_score(NamedMechanism::WeakHonest, n, alpha)?,
            ),
            (
                "EM".to_string(),
                l0_score(NamedMechanism::ExplicitFair, n, alpha)?,
            ),
            (
                "UM".to_string(),
                l0_score(NamedMechanism::Uniform, n, alpha)?,
            ),
        ];
        Ok::<_, CoreError>(ScorePoint { n, scores })
    })?;
    Ok(ScoreSweep {
        alpha: alpha.value(),
        convergence_threshold: alpha.weak_honesty_threshold(),
        points,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    fn score_of(point: &CombinationPoint, label: &str) -> f64 {
        point
            .scores
            .iter()
            .find(|(l, _)| l == label)
            .map(|(_, s)| *s)
            .unwrap()
    }

    #[test]
    fn figure6_table_matches_the_paper_claims() {
        let table = named_mechanism_table(4, a(0.9)).unwrap();
        let row = |label: &str| table.rows.iter().find(|r| r.mechanism == label).unwrap();
        let holds = |row: &NamedMechanismRow, p: &str| {
            row.properties
                .iter()
                .find(|(name, _)| name == p)
                .map(|(_, ok)| *ok)
                .unwrap()
        };
        // Figure 6: all four are symmetric and row monotone; EM and UM are fair and
        // column monotone; GM is not fair (and at alpha=0.9 not column monotone).
        for label in ["GM", "WM", "EM", "UM"] {
            assert!(holds(row(label), "S"), "{label} symmetric");
            assert!(holds(row(label), "RM"), "{label} row monotone");
        }
        assert!(!holds(row("GM"), "F"));
        assert!(!holds(row("GM"), "CM"));
        assert!(holds(row("EM"), "F"));
        assert!(holds(row("EM"), "CM"));
        assert!(holds(row("UM"), "F"));
        assert!(!holds(row("WM"), "F"));
        assert!(holds(row("WM"), "WH"));
        // L0 ordering GM <= WM <= EM <= UM = 1.
        assert!(row("GM").l0 <= row("WM").l0 + 1e-6);
        assert!(row("WM").l0 <= row("EM").l0 + 1e-6);
        assert!(row("EM").l0 <= row("UM").l0 + 1e-6);
        assert!((row("UM").l0 - 1.0).abs() < 1e-9);
        assert!((row("GM").l0 - closed_form::gm_l0(a(0.9))).abs() < 1e-9);
    }

    #[test]
    fn figure8_combinations_collapse_to_two_behaviours() {
        // Section V-A: with alpha = 0.76 and n above the threshold 6.33, the row-only
        // combinations cost 2 alpha/(1+alpha) (= GM), while the column combinations
        // cost more (they equal WM/EM's cost); so there are exactly two distinct
        // levels among the nine combinations.
        let alpha = a(0.76);
        let sweep = combinations_vs_group_size(alpha, &[8]).unwrap();
        let point = &sweep.points[0];
        let gm_cost = closed_form::gm_l0(alpha);
        for label in ["WH", "WH+RH", "WH+RM"] {
            assert!(
                (score_of(point, label) - gm_cost).abs() < 1e-5,
                "{label}: {} vs {gm_cost}",
                score_of(point, label)
            );
        }
        let column_cost = score_of(point, "WH+CM");
        assert!(column_cost > gm_cost + 1e-6);
        for label in ["WH+CH", "WH+RH+CH", "WH+RM+CM", "WH+RH+CM", "WH+RM+CH"] {
            assert!(
                (score_of(point, label) - column_cost).abs() < 1e-5,
                "{label}: {} vs {column_cost}",
                score_of(point, label)
            );
        }
    }

    #[test]
    fn figure8_below_threshold_wh_costs_more_than_gm() {
        // For n below the Lemma-2 threshold, plain WH is strictly more expensive than
        // the unconstrained GM cost.
        let alpha = a(0.76);
        let sweep = combinations_vs_group_size(alpha, &[3]).unwrap();
        let wh = score_of(&sweep.points[0], "WH");
        assert!(wh > closed_form::gm_l0(alpha) + 1e-6);
    }

    #[test]
    fn figure8b_warm_chained_alpha_sweep_matches_independent_solves() {
        // The α sweep chains each combination's solves through warm bases; the
        // scores must be indistinguishable from solving every point cold.
        let alphas = [a(0.6), a(0.76), a(0.9)];
        let sweep = combinations_vs_alpha(5, &alphas).unwrap();
        assert_eq!(sweep.points.len(), alphas.len());
        for (point, &alpha) in sweep.points.iter().zip(&alphas) {
            for (label, properties) in weak_honesty_combinations() {
                let cold = optimal_constrained(5, alpha, Objective::l0(), properties).unwrap();
                assert!(
                    (score_of(point, &label) - rescaled_l0(&cold.mechanism)).abs() < 1e-6,
                    "alpha={} {label}: chained {} vs cold {}",
                    alpha.value(),
                    score_of(point, &label),
                    rescaled_l0(&cold.mechanism)
                );
            }
        }
    }

    #[test]
    fn figure9_weak_honesty_curve_converges_onto_gm_at_the_threshold() {
        // alpha = 2/3: threshold 4.  Above it the weak-honesty-only score equals GM's
        // (the convergence the paper describes); below it it is strictly worse.  The
        // full WM (with column monotonicity) stays sandwiched between the WH curve and
        // EM for every n, because GM is not column monotone at alpha > 1/2 (Lemma 3).
        let alpha = a(2.0 / 3.0);
        let sweep = l0_versus_group_size(alpha, &[2, 3, 4, 6, 8]).unwrap();
        assert!((sweep.convergence_threshold - 4.0).abs() < 1e-9);
        for point in &sweep.points {
            let get = |label: &str| {
                point
                    .scores
                    .iter()
                    .find(|(l, _)| l == label)
                    .map(|(_, s)| *s)
                    .unwrap()
            };
            let (gm, wh, wm, em, um) = (get("GM"), get("WH"), get("WM"), get("EM"), get("UM"));
            assert!(
                gm <= wh + 1e-6 && wh <= wm + 1e-6 && wm <= em + 1e-6 && em <= um + 1e-6,
                "n={}: {gm} {wh} {wm} {em} {um}",
                point.n
            );
            if point.n >= 4 {
                assert!(
                    (wh - gm).abs() < 1e-6,
                    "n={} should have converged",
                    point.n
                );
            } else {
                assert!(wh > gm + 1e-6, "n={} should not have converged", point.n);
            }
        }
    }

    #[test]
    fn figure9_alphas_match_the_paper() {
        let alphas = figure9_alphas();
        assert_eq!(alphas.len(), 3);
        assert!((alphas[1].weak_honesty_threshold() - 20.0).abs() < 1e-9);
        assert!((alphas[2].weak_honesty_threshold() - 198.0).abs() < 1e-6);
    }
}

//! A minimal `std::thread` worker pool for embarrassingly parallel sweeps.
//!
//! The figure binaries and probes solve many independent `(n, α, property-set)`
//! LPs; [`parallel_map`] fans them out over a scoped worker pool with
//! work-stealing by atomic index — no ordering requirements on task cost, no
//! dependencies beyond `std`.  Results come back in input order, and a panic in
//! any task propagates to the caller (via the scoped-thread join), so error
//! handling with `Result` items behaves exactly as in the serial loop it
//! replaces.
//!
//! The pool size defaults to the machine's available parallelism and can be
//! pinned with the `CPM_THREADS` environment variable (`CPM_THREADS=1` recovers
//! fully serial execution, e.g. for clean per-task timing).

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use: `CPM_THREADS` when set and positive,
/// otherwise [`std::thread::available_parallelism`], never more than `tasks`.
pub fn worker_count(tasks: usize) -> usize {
    let configured = std::env::var("CPM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&t| t > 0);
    let available = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    configured.unwrap_or(available).max(1).min(tasks.max(1))
}

/// Apply `f` to every item on a small worker pool, returning the results in
/// input order.
///
/// Tasks are claimed by atomic counter, so long and short tasks interleave
/// without static partitioning — exactly what the LP sweeps need, where solve
/// time varies by orders of magnitude across the parameter grid.
pub fn parallel_map<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let tasks = items.len();
    let workers = worker_count(tasks);
    if workers <= 1 || tasks <= 1 {
        return items.into_iter().map(f).collect();
    }

    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|x| Mutex::new(Some(x))).collect();
    let results: Vec<Mutex<Option<R>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    let f = &f;
    let slots = &slots;
    let results = &results;
    let next = &next;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(move || loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("task slot poisoned")
                    .take()
                    .expect("task claimed twice");
                let result = f(item);
                *results[i].lock().expect("result slot poisoned") = Some(result);
            });
        }
    });
    results
        .iter()
        .map(|slot| {
            slot.lock()
                .expect("result slot poisoned")
                .take()
                .expect("worker completed every claimed task")
        })
        .collect()
}

/// [`parallel_map`] for fallible tasks: apply `f` to every item on the pool
/// and collect the results in input order, returning the first error (by input
/// order) if any task failed.  This is the shape every LP sweep needs, so the
/// grid-build / fan-out / `?`-collect boilerplate lives here once.
pub fn try_parallel_map<T, R, E, F>(items: Vec<T>, f: F) -> Result<Vec<R>, E>
where
    T: Send,
    R: Send,
    E: Send,
    F: Fn(T) -> Result<R, E> + Sync,
{
    parallel_map(items, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_in_order_regardless_of_task_cost() {
        let items: Vec<usize> = (0..64).collect();
        let out = parallel_map(items, |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
            i * i
        });
        assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn propagates_result_errors_like_the_serial_loop() {
        let items = vec![1i32, 2, 3, 4];
        let out = try_parallel_map(items, |i| {
            if i == 3 {
                Err("three".to_string())
            } else {
                Ok(i * 10)
            }
        });
        assert_eq!(out, Err("three".to_string()));
        assert_eq!(
            try_parallel_map(vec![1i32, 2], |i| Ok::<_, String>(i * 10)),
            Ok(vec![10, 20])
        );
    }

    #[test]
    fn worker_count_is_bounded_by_tasks() {
        assert_eq!(worker_count(0), 1);
        assert_eq!(worker_count(1), 1);
        assert!(worker_count(1_000_000) >= 1);
    }

    #[test]
    fn empty_and_single_item_inputs_short_circuit() {
        let empty: Vec<i32> = Vec::new();
        assert!(parallel_map(empty, |x: i32| x).is_empty());
        assert_eq!(parallel_map(vec![9], |x| x + 1), vec![10]);
    }
}

//! # cpm-eval — experiment harness for constrained private mechanisms
//!
//! Reproduces the evaluation (Section V) of *"Constrained Private Mechanisms for
//! Count Data"* (ICDE 2018):
//!
//! * [`metrics`] — empirical error probability, `L0,d` tail error, RMSE, and
//!   mean/standard-error summaries for error bars.
//! * [`runner`] — the named mechanisms GM / WM / EM / UM (plus extended baselines),
//!   their `L0` scores, and the repeated-trial runner.
//! * [`experiments`] — one module per figure: LP heat maps (Figs. 1–2, 7), structure
//!   printouts (Figs. 3–4), score sweeps (Figs. 6, 8, 9), the Adult experiment
//!   (Fig. 10), and the Binomial experiments (Figs. 11–13).
//! * [`table`] — fixed-width text tables for the figure binaries.
//! * [`par`] — a small `std::thread` worker pool; the figure sweeps fan their
//!   independent `(n, α, property-set)` LP solves across it (`CPM_THREADS`
//!   pins the pool size, `CPM_THREADS=1` recovers serial execution).
//!
//! The `cpm-bench` crate contains one binary per figure that calls into this crate
//! and prints the corresponding series (plus optional JSON output).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod metrics;
pub mod par;
pub mod runner;
pub mod table;

pub use metrics::{
    confidence_interval, empirical_error_rate, empirical_error_rate_beyond, mean_absolute_error,
    root_mean_square_error, z_critical, ConfidenceInterval, SummaryStats,
};
pub use runner::{build_mechanism, evaluate_repeated, l0_score, NamedMechanism};

/// Commonly used items, re-exported for `use cpm_eval::prelude::*`.
pub mod prelude {
    pub use crate::experiments::{adult_experiment, binomial_experiments, heatmaps, score_sweeps};
    pub use crate::metrics::{
        confidence_interval, empirical_error_rate, empirical_error_rate_beyond,
        mean_absolute_error, root_mean_square_error, z_critical, ConfidenceInterval, SummaryStats,
    };
    pub use crate::par::parallel_map;
    pub use crate::runner::{build_mechanism, evaluate_repeated, l0_score, NamedMechanism};
    pub use crate::table::{fmt, render_table};
}

//! Named mechanisms and the repeated-trial experiment runner.
//!
//! The figures of Section V compare the same small set of named mechanisms — GM, WM,
//! EM, UM (and occasionally others) — across workloads.  [`NamedMechanism`]
//! enumerates them, [`build_mechanism`] materialises a matrix (solving the WM LP when
//! needed), and [`evaluate_repeated`] applies a mechanism to a batch of true counts
//! over many repetitions, summarising any per-batch metric with mean / standard
//! error, exactly as the paper's error bars are produced.

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use cpm_core::prelude::*;

use crate::metrics::SummaryStats;

/// The named mechanisms compared throughout the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NamedMechanism {
    /// The truncated Geometric Mechanism (unconstrained `L0` optimum).
    Geometric,
    /// The LP-designed mechanism with weak honesty, row and column monotonicity (WM).
    WeakHonest,
    /// The Explicit Fair Mechanism.
    ExplicitFair,
    /// The uniform baseline.
    Uniform,
    /// The Exponential Mechanism with the distance quality function (extended
    /// comparisons only).
    Exponential,
    /// The rounded/truncated Laplace mechanism (extended comparisons only).
    Laplace,
    /// Geng et al.'s n-ary randomized response (extended comparisons only).
    NaryRandomizedResponse,
}

impl NamedMechanism {
    /// The four mechanisms of Figures 6–13.
    pub const PAPER_SET: [NamedMechanism; 4] = [
        NamedMechanism::Geometric,
        NamedMechanism::WeakHonest,
        NamedMechanism::ExplicitFair,
        NamedMechanism::Uniform,
    ];

    /// Display label matching the paper (GM / WM / EM / UM).
    pub fn label(self) -> &'static str {
        match self {
            NamedMechanism::Geometric => "GM",
            NamedMechanism::WeakHonest => "WM",
            NamedMechanism::ExplicitFair => "EM",
            NamedMechanism::Uniform => "UM",
            NamedMechanism::Exponential => "EXP",
            NamedMechanism::Laplace => "LAP",
            NamedMechanism::NaryRandomizedResponse => "RR",
        }
    }
}

/// Build the matrix of a named mechanism for group size `n` at privacy level α.
///
/// WM goes through the typed design path ([`MechanismSpec`]): requesting the
/// WM property set (weak honesty + row/column monotonicity) routes the Figure-5
/// flowchart to the WM LP in the strong-privacy regime and straight to GM's
/// closed form once GM already satisfies the request (Lemmas 2–3); LP results
/// are symmetrised (Theorem 1 guarantees this costs nothing).
pub fn build_mechanism(
    which: NamedMechanism,
    n: usize,
    alpha: Alpha,
) -> Result<Mechanism, CoreError> {
    match which {
        NamedMechanism::Geometric => Ok(GeometricMechanism::new(n, alpha)?.into_matrix()),
        NamedMechanism::ExplicitFair => Ok(ExplicitFairMechanism::new(n, alpha)?.into_matrix()),
        NamedMechanism::Uniform => Ok(UniformMechanism::new(n)?.into_matrix()),
        NamedMechanism::WeakHonest => {
            let designed = MechanismSpec::new(n, alpha)
                .properties(wm_properties())
                .build()?
                .design()?;
            Ok(designed.into_mechanism())
        }
        NamedMechanism::Exponential => Ok(ExponentialMechanism::new(n, alpha)?.into_matrix()),
        NamedMechanism::Laplace => Ok(LaplaceMechanism::new(n, alpha)?.into_matrix()),
        NamedMechanism::NaryRandomizedResponse => {
            Ok(NaryRandomizedResponse::new(n, alpha)?.into_matrix())
        }
    }
}

/// The rescaled `L0` score of a named mechanism, using closed forms where available
/// and the LP otherwise (used by the score-sweep figures, which need no sampling).
pub fn l0_score(which: NamedMechanism, n: usize, alpha: Alpha) -> Result<f64, CoreError> {
    match which {
        NamedMechanism::Geometric => Ok(closed_form::gm_l0(alpha)),
        NamedMechanism::ExplicitFair => Ok(closed_form::em_l0(n, alpha)),
        NamedMechanism::Uniform => Ok(closed_form::um_l0()),
        other => {
            let mechanism = build_mechanism(other, n, alpha)?;
            Ok(rescaled_l0(&mechanism))
        }
    }
}

/// Apply `mechanism` to `true_counts` once per repetition and summarise
/// `metric(true_counts, reported)` across repetitions.
pub fn evaluate_repeated(
    mechanism: &Mechanism,
    true_counts: &[usize],
    repetitions: usize,
    seed: u64,
    metric: impl Fn(&[usize], &[usize]) -> f64,
) -> SummaryStats {
    let sampler = MechanismSampler::new(mechanism);
    let mut rng = StdRng::seed_from_u64(seed);
    let samples: Vec<f64> = (0..repetitions)
        .map(|_| {
            let reported = sampler.privatize(true_counts, &mut rng);
            metric(true_counts, &reported)
        })
        .collect();
    SummaryStats::from_samples(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::empirical_error_rate;

    fn a(v: f64) -> Alpha {
        Alpha::new(v).unwrap()
    }

    #[test]
    fn all_named_mechanisms_build_valid_dp_matrices() {
        let alpha = a(0.8);
        for which in [
            NamedMechanism::Geometric,
            NamedMechanism::WeakHonest,
            NamedMechanism::ExplicitFair,
            NamedMechanism::Uniform,
            NamedMechanism::Exponential,
            NamedMechanism::Laplace,
            NamedMechanism::NaryRandomizedResponse,
        ] {
            let mechanism = build_mechanism(which, 4, alpha).unwrap();
            assert!(mechanism.is_column_stochastic(1e-7), "{}", which.label());
            assert!(mechanism.satisfies_dp(alpha, 1e-6), "{}", which.label());
        }
    }

    #[test]
    fn wm_satisfies_its_defining_properties() {
        let alpha = a(0.9);
        let wm = build_mechanism(NamedMechanism::WeakHonest, 5, alpha).unwrap();
        for property in [
            Property::WeakHonesty,
            Property::RowMonotonicity,
            Property::ColumnMonotonicity,
            Property::Symmetry,
        ] {
            assert!(property.holds(&wm, 1e-6), "{property}");
        }
    }

    #[test]
    fn l0_scores_are_ordered_gm_wm_em_um() {
        // Figure 6 / Figure 9: L0(GM) <= L0(WM) <= L0(EM) <= L0(UM) = 1.
        for (n, alpha) in [(4usize, 0.9), (6, 0.76), (8, 10.0 / 11.0)] {
            let gm = l0_score(NamedMechanism::Geometric, n, a(alpha)).unwrap();
            let wm = l0_score(NamedMechanism::WeakHonest, n, a(alpha)).unwrap();
            let em = l0_score(NamedMechanism::ExplicitFair, n, a(alpha)).unwrap();
            let um = l0_score(NamedMechanism::Uniform, n, a(alpha)).unwrap();
            assert!(gm <= wm + 1e-6, "n={n} alpha={alpha}");
            assert!(wm <= em + 1e-6, "n={n} alpha={alpha}");
            assert!(em <= um + 1e-6, "n={n} alpha={alpha}");
            assert_eq!(um, 1.0);
        }
    }

    #[test]
    fn evaluate_repeated_is_deterministic_given_a_seed() {
        let mechanism = build_mechanism(NamedMechanism::ExplicitFair, 4, a(0.8)).unwrap();
        let counts = vec![2usize; 200];
        let one = evaluate_repeated(&mechanism, &counts, 5, 99, empirical_error_rate);
        let two = evaluate_repeated(&mechanism, &counts, 5, 99, empirical_error_rate);
        assert_eq!(one, two);
        assert_eq!(one.count, 5);
        assert!(one.mean > 0.0 && one.mean < 1.0);
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(NamedMechanism::Geometric.label(), "GM");
        assert_eq!(NamedMechanism::WeakHonest.label(), "WM");
        assert_eq!(NamedMechanism::ExplicitFair.label(), "EM");
        assert_eq!(NamedMechanism::Uniform.label(), "UM");
        assert_eq!(NamedMechanism::PAPER_SET.len(), 4);
    }
}

//! Error type for LP construction and solving.

use std::fmt;

/// Errors produced while building or solving a linear program.
#[derive(Debug, Clone, PartialEq)]
pub enum SimplexError {
    /// The LP has no feasible solution (Phase 1 terminated with a positive artificial sum).
    Infeasible,
    /// The objective is unbounded below (for minimisation) on the feasible region.
    Unbounded,
    /// The iteration limit was reached before convergence.
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// A constraint or objective referenced a variable that does not belong to this program.
    UnknownVariable {
        /// Index of the offending variable.
        index: usize,
        /// Number of variables in the program.
        num_variables: usize,
    },
    /// A coefficient, bound, or right-hand side was NaN or infinite.
    NonFiniteValue {
        /// Human-readable location of the offending value.
        context: &'static str,
    },
    /// The model has no variables.
    EmptyModel,
    /// The solver met a numerically singular or inconsistent state (e.g. a basis
    /// factorisation found no acceptable pivot) and could not recover.  The
    /// sparse backend only reports this after exhausting its basis-repair
    /// budget ([`SolveOptions::max_repairs`](crate::SolveOptions::max_repairs)):
    /// every breakdown first triggers a fresh LU factorisation, falling back to
    /// the last good basis.  Usually indicates an extremely ill-conditioned
    /// model.
    NumericalBreakdown {
        /// Human-readable location of the breakdown.
        context: &'static str,
        /// How many basis repairs were attempted before giving up (always zero
        /// for the dense backend, which has no repair path).
        repairs: usize,
    },
    /// Variable bounds are contradictory (lower bound greater than upper bound).
    InconsistentBounds {
        /// Index of the offending variable.
        index: usize,
        /// Lower bound.
        lower: f64,
        /// Upper bound.
        upper: f64,
    },
}

impl fmt::Display for SimplexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimplexError::Infeasible => write!(f, "linear program is infeasible"),
            SimplexError::Unbounded => write!(f, "linear program is unbounded"),
            SimplexError::IterationLimit { limit } => {
                write!(f, "simplex iteration limit of {limit} reached")
            }
            SimplexError::UnknownVariable {
                index,
                num_variables,
            } => write!(
                f,
                "variable index {index} out of range (program has {num_variables} variables)"
            ),
            SimplexError::NonFiniteValue { context } => {
                write!(f, "non-finite value encountered in {context}")
            }
            SimplexError::EmptyModel => write!(f, "linear program has no variables"),
            SimplexError::NumericalBreakdown { context, repairs } => {
                write!(f, "numerical breakdown in {context}")?;
                if *repairs > 0 {
                    write!(f, " (after {repairs} basis repair attempts)")?;
                }
                Ok(())
            }
            SimplexError::InconsistentBounds {
                index,
                lower,
                upper,
            } => write!(
                f,
                "variable {index} has inconsistent bounds [{lower}, {upper}]"
            ),
        }
    }
}

impl std::error::Error for SimplexError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        assert!(SimplexError::Infeasible.to_string().contains("infeasible"));
        assert!(SimplexError::Unbounded.to_string().contains("unbounded"));
        assert!(SimplexError::IterationLimit { limit: 7 }
            .to_string()
            .contains('7'));
        assert!(SimplexError::UnknownVariable {
            index: 3,
            num_variables: 2
        }
        .to_string()
        .contains("3"));
        assert!(SimplexError::NonFiniteValue {
            context: "objective"
        }
        .to_string()
        .contains("objective"));
        assert!(SimplexError::EmptyModel
            .to_string()
            .contains("no variables"));
        assert!(SimplexError::NumericalBreakdown {
            context: "refactorisation",
            repairs: 0
        }
        .to_string()
        .contains("refactorisation"));
        let repaired = SimplexError::NumericalBreakdown {
            context: "basis update",
            repairs: 2,
        }
        .to_string();
        assert!(repaired.contains("2 basis repair"), "{repaired}");
        assert!(SimplexError::InconsistentBounds {
            index: 1,
            lower: 2.0,
            upper: 1.0
        }
        .to_string()
        .contains("inconsistent"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_error<E: std::error::Error>() {}
        assert_error::<SimplexError>();
    }
}

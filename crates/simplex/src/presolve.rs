//! LP presolve: problem reductions applied **before** standardisation.
//!
//! The mechanism-design LPs carry structure the simplex method pays for but
//! never needs: at `α = 1` every differential-privacy ratio pair
//! `{x_a − x_b ≥ 0, x_b − x_a ≥ 0}` collapses to an equality (whole DP chains
//! alias to a single variable), duplicated property rows re-state each other,
//! and singleton rows are just bounds in disguise.  [`presolve`] strips all of
//! those in one deterministic pipeline:
//!
//! 1. **Aliasing** — two-term rows with equal-and-opposite coefficients and a
//!    zero right-hand side are collected; an equality (or a `≥`/`≤` pair in
//!    both directions) merges its endpoints through a union–find.  Merged
//!    variables pool their objective coefficients and intersect their bounds.
//! 2. **Row reduction to fixpoint** — fixed variables (equal bounds) are
//!    substituted into the right-hand side, empty rows are checked for
//!    consistency and dropped, and singleton rows are folded into variable
//!    bounds (which may fix further variables, so the pass iterates).
//! 3. **Duplicate rows** — surviving rows are deduplicated on their exact
//!    (variable, coefficient) pattern; inequalities keep the tighter
//!    right-hand side, equalities must agree.
//! 4. **Empty columns** — variables left out of every surviving row are fixed
//!    at whichever of their bounds the objective prefers (kept in the problem
//!    when that bound is infinite, so the solver still certifies
//!    unboundedness).
//!
//! The output is a compacted [`LinearProgram`] plus a [`PostsolveMap`] that
//! expands a reduced solution back to the full variable space and carries the
//! objective contribution of everything that was eliminated.  The pipeline is
//! **deterministic**: the same input program always produces the same reduced
//! program, so warm bases cached against presolved solves stay exchangeable
//! across runs (the reduced standard form *is* the basis space — see the
//! crate docs).

use std::collections::HashMap;

use crate::error::SimplexError;
use crate::model::{LinearProgram, Objective, Relation, VariableId};

/// Feasibility slack for redundant-row consistency checks (`0 ≤ rhs` and
/// friends): matches the solver's own Phase-1 feasibility tolerance.
const FEAS_EPS: f64 = 1e-9;

/// What became of one original variable.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum VarDisposition {
    /// Survives as column `new` of the reduced program.
    Kept(usize),
    /// Eliminated at this value (fixed bounds, or an empty column driven to
    /// its preferred bound).
    Fixed(f64),
    /// Aliased to the original variable `rep` (always itself `Kept` or
    /// `Fixed`, never another alias).
    Alias(usize),
}

/// Expansion recipe from the reduced variable space back to the original one.
#[derive(Debug, Clone)]
pub(crate) struct PostsolveMap {
    pub vars: Vec<VarDisposition>,
    /// Objective contribution of eliminated variables, in raw coefficient
    /// terms (add to the reduced objective value for either direction).
    pub objective_offset: f64,
    pub rows_removed: usize,
    pub cols_removed: usize,
}

impl PostsolveMap {
    /// Expand a reduced solution vector to the original variable space.
    pub fn expand_values(&self, reduced: &[f64]) -> Vec<f64> {
        let mut full = vec![0.0; self.vars.len()];
        for (i, disp) in self.vars.iter().enumerate() {
            match *disp {
                VarDisposition::Kept(new) => full[i] = reduced[new],
                VarDisposition::Fixed(value) => full[i] = value,
                VarDisposition::Alias(_) => {}
            }
        }
        // Representatives are resolved above, so one pass suffices.
        for (i, disp) in self.vars.iter().enumerate() {
            if let VarDisposition::Alias(rep) = *disp {
                full[i] = full[rep];
            }
        }
        full
    }
}

/// A presolved program and the map back to the original space.
#[derive(Debug)]
pub(crate) struct Presolved {
    pub lp: LinearProgram,
    pub map: PostsolveMap,
}

/// One constraint row under reduction.
struct Row {
    terms: Vec<(usize, f64)>,
    relation: Relation,
    rhs: f64,
}

/// Union–find with path compression (no ranking: chains here are short and
/// determinism matters more than depth).
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Merge, keeping the **smaller original index** as the representative so
    /// the reduction is order-independent and deterministic.
    fn union(&mut self, a: usize, b: usize) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra != rb {
            let (keep, fold) = if ra < rb { (ra, rb) } else { (rb, ra) };
            self.parent[fold] = keep;
        }
    }
}

/// Run the reduction pipeline.  Errors only on *provable* infeasibility
/// (contradictory singleton rows or crossed derived bounds).
pub(crate) fn presolve(lp: &LinearProgram) -> Result<Presolved, SimplexError> {
    let num_vars = lp.num_variables();

    // ---- 1. alias detection over equal-and-opposite two-term rows ----------
    let mut uf = UnionFind::new(num_vars);
    {
        // Directed dominance edges `a ≥ b` from `c·x_a − c·x_b ≥ 0`; a pair in
        // both directions is an equality.  Equality rows alias immediately.
        let mut ge_edges: HashMap<(usize, usize), ()> = HashMap::new();
        for row in lp.constraints() {
            let Some((a, b)) = opposite_pair(row.terms) else {
                continue;
            };
            if row.rhs != 0.0 {
                continue;
            }
            match row.relation {
                Relation::Equal => uf.union(a, b),
                // `opposite_pair` orients so the positive coefficient is on
                // `a`: GreaterEq means x_a ≥ x_b, LessEq the reverse.
                Relation::GreaterEq => {
                    if ge_edges.remove(&(b, a)).is_some() {
                        uf.union(a, b);
                    } else {
                        ge_edges.insert((a, b), ());
                    }
                }
                Relation::LessEq => {
                    if ge_edges.remove(&(a, b)).is_some() {
                        uf.union(a, b);
                    } else {
                        ge_edges.insert((b, a), ());
                    }
                }
            }
        }
    }

    // Pool objective coefficients and intersect bounds onto representatives.
    let mut cost = vec![0.0; num_vars];
    let mut lower = vec![0.0; num_vars];
    let mut upper = vec![0.0; num_vars];
    for i in 0..num_vars {
        let (lo, up) = lp.bounds(VariableId(i));
        lower[i] = lo;
        upper[i] = up;
    }
    for i in 0..num_vars {
        let root = uf.find(i);
        if root != i {
            cost[root] += lp.objective_coefficient(VariableId(i));
            lower[root] = lower[root].max(lower[i]);
            upper[root] = upper[root].min(upper[i]);
        }
    }
    for i in 0..num_vars {
        if uf.find(i) == i {
            cost[i] += lp.objective_coefficient(VariableId(i));
            if lower[i] > upper[i] + FEAS_EPS {
                return Err(SimplexError::Infeasible);
            }
            // A crossing within tolerance collapses to a point.
            if lower[i] > upper[i] {
                upper[i] = lower[i];
            }
        }
    }

    // ---- rows in root space ------------------------------------------------
    let mut rows: Vec<Option<Row>> = Vec::with_capacity(lp.num_constraints());
    let mut scratch: HashMap<usize, f64> = HashMap::new();
    for row in lp.constraints() {
        scratch.clear();
        for &(var, coeff) in row.terms {
            *scratch.entry(uf.find(var.0)).or_insert(0.0) += coeff;
        }
        let mut terms: Vec<(usize, f64)> = scratch
            .iter()
            .map(|(&v, &c)| (v, c))
            .filter(|&(_, c)| c != 0.0)
            .collect();
        terms.sort_unstable_by_key(|&(v, _)| v);
        rows.push(Some(Row {
            terms,
            relation: row.relation,
            rhs: row.rhs,
        }));
    }

    // ---- 2. fixed-substitution / empty-row / singleton fixpoint ------------
    let mut fixed: Vec<Option<f64>> = (0..num_vars)
        .map(|i| {
            (uf.parent[i] == i && lower[i].is_finite() && lower[i] == upper[i]).then_some(lower[i])
        })
        .collect();
    loop {
        let mut changed = false;
        for slot in rows.iter_mut() {
            let Some(row) = slot else { continue };
            // Substitute currently-fixed variables into the right-hand side.
            if row.terms.iter().any(|&(v, _)| fixed[v].is_some()) {
                let Row { terms, rhs, .. } = row;
                terms.retain(|&(v, c)| {
                    if let Some(value) = fixed[v] {
                        *rhs -= c * value;
                        false
                    } else {
                        true
                    }
                });
            }
            match row.terms.len() {
                0 => {
                    let consistent = match row.relation {
                        Relation::Equal => row.rhs.abs() <= FEAS_EPS,
                        Relation::LessEq => row.rhs >= -FEAS_EPS,
                        Relation::GreaterEq => row.rhs <= FEAS_EPS,
                    };
                    if !consistent {
                        return Err(SimplexError::Infeasible);
                    }
                    *slot = None;
                    changed = true;
                }
                1 => {
                    let (v, c) = row.terms[0];
                    let bound = row.rhs / c;
                    // Orient the relation by the coefficient sign.
                    let rel = if c > 0.0 {
                        row.relation
                    } else {
                        match row.relation {
                            Relation::LessEq => Relation::GreaterEq,
                            Relation::GreaterEq => Relation::LessEq,
                            Relation::Equal => Relation::Equal,
                        }
                    };
                    match rel {
                        Relation::Equal => {
                            if bound < lower[v] - FEAS_EPS || bound > upper[v] + FEAS_EPS {
                                return Err(SimplexError::Infeasible);
                            }
                            lower[v] = bound;
                            upper[v] = bound;
                        }
                        Relation::GreaterEq => lower[v] = lower[v].max(bound),
                        Relation::LessEq => upper[v] = upper[v].min(bound),
                    }
                    if lower[v] > upper[v] + FEAS_EPS {
                        return Err(SimplexError::Infeasible);
                    }
                    if lower[v] >= upper[v] {
                        let value = lower[v];
                        upper[v] = value;
                        fixed[v] = Some(value);
                    }
                    *slot = None;
                    changed = true;
                }
                _ => {}
            }
        }
        if !changed {
            break;
        }
    }

    // ---- 3. duplicate rows -------------------------------------------------
    // Normalise every LessEq to a GreaterEq (negated coefficients and
    // right-hand side) so mirrored statements of the same halfspace share a
    // key, then dedup on the exact bit pattern of the terms.
    for row in rows.iter_mut().flatten() {
        if matches!(row.relation, Relation::LessEq) {
            for (_, c) in row.terms.iter_mut() {
                *c = -*c;
            }
            row.rhs = -row.rhs;
            row.relation = Relation::GreaterEq;
        }
    }
    let mut seen: HashMap<(bool, Vec<(usize, u64)>), usize> = HashMap::new();
    for idx in 0..rows.len() {
        let Some(row) = &rows[idx] else { continue };
        let key = (
            matches!(row.relation, Relation::Equal),
            row.terms
                .iter()
                .map(|&(v, c)| (v, c.to_bits()))
                .collect::<Vec<_>>(),
        );
        let this_rhs = row.rhs;
        match seen.get(&key) {
            None => {
                seen.insert(key, idx);
            }
            Some(&prev_idx) => {
                let prev = rows[prev_idx].as_mut().expect("kept row is live");
                if key.0 {
                    // Equalities must agree to be redundant.
                    if (prev.rhs - this_rhs).abs() > FEAS_EPS {
                        return Err(SimplexError::Infeasible);
                    }
                } else {
                    // Keep the tighter `≥`: the larger right-hand side.
                    prev.rhs = prev.rhs.max(this_rhs);
                }
                rows[idx] = None;
            }
        }
    }

    // ---- 4. empty columns --------------------------------------------------
    let mut used = vec![false; num_vars];
    for row in rows.iter().flatten() {
        for &(v, _) in &row.terms {
            used[v] = true;
        }
    }
    let min_sense = |c: f64| match lp.objective() {
        Objective::Minimize => c,
        Objective::Maximize => -c,
    };
    for v in 0..num_vars {
        if uf.parent[v] != v || fixed[v].is_some() || used[v] {
            continue;
        }
        let ec = min_sense(cost[v]);
        let target = if ec > 0.0 {
            lower[v]
        } else if ec < 0.0 {
            upper[v]
        } else if lower[v].is_finite() {
            lower[v]
        } else if upper[v].is_finite() {
            upper[v]
        } else {
            0.0
        };
        if target.is_finite() {
            fixed[v] = Some(target);
        }
        // An infinite preferred bound stays in the problem so the solver
        // certifies unboundedness itself.
    }

    // ---- 5. compact --------------------------------------------------------
    let mut vars = vec![VarDisposition::Fixed(0.0); num_vars];
    let mut objective_offset = 0.0;
    let mut reduced = LinearProgram::new(lp.objective());
    for v in 0..num_vars {
        if uf.parent[v] != v {
            continue; // aliases resolved below, after roots have dispositions
        }
        if let Some(value) = fixed[v] {
            vars[v] = VarDisposition::Fixed(value);
            objective_offset += cost[v] * value;
        } else {
            let id = reduced.add_variable_with_bounds(
                lp.variable_name(VariableId(v)),
                lower[v],
                upper[v],
            );
            reduced.set_objective_coefficient(id, cost[v]);
            vars[v] = VarDisposition::Kept(id.index());
        }
    }
    for (v, var) in vars.iter_mut().enumerate().take(num_vars) {
        let root = uf.find(v);
        if root != v {
            *var = VarDisposition::Alias(root);
        }
    }
    for row in rows.iter().flatten() {
        reduced.add_constraint(
            row.terms.iter().map(|&(v, c)| {
                let VarDisposition::Kept(new) = vars[v] else {
                    unreachable!("live rows only reference kept variables")
                };
                (VariableId(new), c)
            }),
            row.relation,
            row.rhs,
        );
    }

    let map = PostsolveMap {
        rows_removed: lp.num_constraints() - reduced.num_constraints(),
        cols_removed: num_vars - reduced.num_variables(),
        vars,
        objective_offset,
    };
    Ok(Presolved { lp: reduced, map })
}

/// Recognise a two-term row `c·x_a − c·x_b` (`c ≠ 0`, distinct variables),
/// returning `(a, b)` with the **positive** coefficient on `a`.
fn opposite_pair(terms: &[(VariableId, f64)]) -> Option<(usize, usize)> {
    let [(va, ca), (vb, cb)] = *terms else {
        return None;
    };
    if va == vb || ca == 0.0 || ca != -cb {
        return None;
    }
    if ca > 0.0 {
        Some((va.0, vb.0))
    } else {
        Some((vb.0, va.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain_lp(alpha: f64) -> LinearProgram {
        // A 3-long DP-style chain: x0 − α·x1 ≥ 0, x1 − α·x0 ≥ 0 (pairwise both
        // directions at α = 1), plus a normalising equality.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variables("x", 3);
        for w in x.windows(2) {
            lp.add_constraint([(w[0], 1.0), (w[1], -alpha)], Relation::GreaterEq, 0.0);
            lp.add_constraint([(w[1], 1.0), (w[0], -alpha)], Relation::GreaterEq, 0.0);
        }
        lp.add_constraint(x.iter().map(|&v| (v, 1.0)), Relation::Equal, 3.0);
        lp.set_objective_coefficient(x[0], 1.0);
        lp
    }

    #[test]
    fn alpha_one_chain_collapses_to_one_variable() {
        let pre = presolve(&chain_lp(1.0)).unwrap();
        // x1, x2 alias to x0; the four ratio rows vanish; the equality row
        // becomes 3·x0 = 3 — a singleton — which fixes x0 = 1 and removes it
        // too, leaving nothing to solve.
        assert_eq!(pre.lp.num_variables(), 0);
        assert_eq!(pre.lp.num_constraints(), 0);
        assert_eq!(pre.map.cols_removed, 3);
        assert_eq!(pre.map.rows_removed, 5);
        assert_eq!(pre.map.expand_values(&[]), vec![1.0, 1.0, 1.0]);
        assert_eq!(pre.map.objective_offset, 1.0);
    }

    #[test]
    fn fractional_alpha_chain_is_untouched() {
        let pre = presolve(&chain_lp(0.9)).unwrap();
        assert_eq!(pre.lp.num_variables(), 3);
        assert_eq!(pre.lp.num_constraints(), 5);
        assert_eq!(pre.map.rows_removed, 0);
        assert_eq!(pre.map.cols_removed, 0);
    }

    #[test]
    fn singleton_rows_become_bounds() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint([(x, 2.0)], Relation::GreaterEq, 4.0); // x >= 2
        lp.add_constraint([(y, -1.0)], Relation::GreaterEq, -5.0); // y <= 5
        lp.add_constraint([(x, 1.0), (y, 1.0)], Relation::GreaterEq, 3.0);
        let pre = presolve(&lp).unwrap();
        assert_eq!(pre.lp.num_constraints(), 1);
        assert_eq!(pre.lp.num_variables(), 2);
        assert_eq!(pre.lp.bounds(VariableId(0)), (2.0, f64::INFINITY));
        assert_eq!(pre.lp.bounds(VariableId(1)), (0.0, 5.0));
    }

    #[test]
    fn contradictory_singletons_are_infeasible() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        lp.add_constraint([(x, 1.0)], Relation::GreaterEq, 5.0);
        lp.add_constraint([(x, 1.0)], Relation::LessEq, 4.0);
        assert_eq!(presolve(&lp).unwrap_err(), SimplexError::Infeasible);
    }

    #[test]
    fn fixed_variables_substitute_into_rows_and_objective() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable_with_bounds("x", 2.0, 2.0);
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 3.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint([(x, 1.0), (y, 1.0)], Relation::Equal, 5.0);
        let pre = presolve(&lp).unwrap();
        // x = 2 substitutes: the row becomes the singleton y = 3, fixing y too.
        assert_eq!(pre.lp.num_variables(), 0);
        assert_eq!(pre.map.expand_values(&[]), vec![2.0, 3.0]);
        assert_eq!(pre.map.objective_offset, 3.0 * 2.0 + 3.0);
    }

    #[test]
    fn duplicate_inequalities_keep_the_tighter_rhs() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint([(x, 1.0), (y, 1.0)], Relation::GreaterEq, 1.0);
        lp.add_constraint([(x, 1.0), (y, 1.0)], Relation::GreaterEq, 4.0);
        // The mirrored LessEq on negated coefficients is the same halfspace.
        lp.add_constraint([(x, -1.0), (y, -1.0)], Relation::LessEq, -2.0);
        let pre = presolve(&lp).unwrap();
        assert_eq!(pre.lp.num_constraints(), 1);
        assert_eq!(pre.lp.constraint(0).rhs, 4.0);
        assert_eq!(pre.map.rows_removed, 2);
    }

    #[test]
    fn conflicting_duplicate_equalities_are_infeasible() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.add_constraint([(x, 1.0), (y, 1.0)], Relation::Equal, 1.0);
        lp.add_constraint([(x, 1.0), (y, 1.0)], Relation::Equal, 2.0);
        assert_eq!(presolve(&lp).unwrap_err(), SimplexError::Infeasible);
    }

    #[test]
    fn empty_columns_are_fixed_at_their_preferred_bound() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x"); // cost +1, unused -> lower bound 0
        let y = lp.add_variable_with_bounds("y", 0.0, 7.0); // cost −1 -> upper
        let z = lp.add_variable("z"); // cost −1, open above -> must stay
        let w = lp.add_variable("w");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, -1.0);
        lp.set_objective_coefficient(z, -1.0);
        lp.add_constraint([(w, 1.0), (z, 1.0)], Relation::Equal, 1.0);
        let pre = presolve(&lp).unwrap();
        assert_eq!(pre.map.vars[0], VarDisposition::Fixed(0.0));
        assert_eq!(pre.map.vars[1], VarDisposition::Fixed(7.0));
        assert!(matches!(pre.map.vars[2], VarDisposition::Kept(_)));
        assert_eq!(pre.map.objective_offset, -7.0);
    }

    #[test]
    fn alias_pools_costs_and_intersects_bounds() {
        let mut lp = LinearProgram::minimize();
        let a = lp.add_variable_with_bounds("a", 0.0, 10.0);
        let b = lp.add_variable_with_bounds("b", 1.0, 4.0);
        let c = lp.add_variable("c");
        lp.set_objective_coefficient(a, 2.0);
        lp.set_objective_coefficient(b, 3.0);
        lp.set_objective_coefficient(c, 1.0);
        lp.add_constraint([(a, 1.0), (b, -1.0)], Relation::Equal, 0.0);
        lp.add_constraint([(a, 1.0), (c, 1.0)], Relation::GreaterEq, 2.0);
        let pre = presolve(&lp).unwrap();
        assert_eq!(pre.lp.num_variables(), 2);
        // The representative keeps the smaller index (a) with pooled cost and
        // the intersection [1, 4] of the member boxes.
        assert_eq!(pre.lp.bounds(VariableId(0)), (1.0, 4.0));
        assert_eq!(pre.lp.objective_coefficient(VariableId(0)), 5.0);
        assert_eq!(pre.map.vars[1], VarDisposition::Alias(0));
    }
}

//! Compressed sparse column (CSC) matrix storage for the LP pipeline.
//!
//! The mechanism-design LPs this workspace solves have `(n+1)²` variables but only
//! 2 to `n+1` nonzeros per constraint row: differential-privacy ratio rows touch
//! exactly two variables, column-sum rows touch `n+1`.  Storing the constraint
//! matrix densely therefore wastes `O(rows · cols)` memory and forces `O(rows ·
//! cols)` work per simplex pivot; CSC storage gives `O(nnz)` for both.
//!
//! ## Layout
//!
//! A [`SparseMatrix`] keeps three parallel arrays in the standard CSC scheme:
//!
//! * `col_ptr[j] .. col_ptr[j + 1]` is the index range of column `j`,
//! * `row_idx[k]` is the row of the `k`-th stored entry,
//! * `values[k]` is its coefficient.
//!
//! Rows are strictly ascending within every column (the triplet constructor sorts
//! and merges duplicates), so per-column scans are cache-friendly and
//! [`SparseMatrix::get`] can binary-search.
//!
//! The matrix is built from `(row, col, value)` triplets via a counting sort —
//! `O(nnz + cols)`, no comparisons — which is how
//! [`standardize`](crate::standard) assembles the standard-form constraint matrix
//! row by row.

/// An immutable sparse matrix in compressed sparse column form.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseMatrix {
    num_rows: usize,
    num_cols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl SparseMatrix {
    /// Build a matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate `(row, col)` entries are summed; entries that are exactly `0.0`
    /// (including duplicates that cancel) are dropped.  Triplets may arrive in any
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if a triplet lies outside `num_rows × num_cols` or a value is
    /// non-finite.
    pub fn from_triplets(
        num_rows: usize,
        num_cols: usize,
        triplets: &[(usize, usize, f64)],
    ) -> Self {
        for &(r, c, v) in triplets {
            assert!(
                r < num_rows && c < num_cols,
                "triplet ({r}, {c}) outside a {num_rows}x{num_cols} matrix"
            );
            assert!(v.is_finite(), "non-finite value at ({r}, {c})");
        }

        // Counting sort by column.
        let mut counts = vec![0usize; num_cols + 1];
        for &(_, c, _) in triplets {
            counts[c + 1] += 1;
        }
        for j in 0..num_cols {
            counts[j + 1] += counts[j];
        }
        let mut positions = counts.clone();
        let mut row_idx = vec![0usize; triplets.len()];
        let mut values = vec![0.0f64; triplets.len()];
        for &(r, c, v) in triplets {
            let slot = positions[c];
            positions[c] += 1;
            row_idx[slot] = r;
            values[slot] = v;
        }

        // Sort each column by row and merge duplicates in place.
        let mut write = 0usize;
        let mut col_ptr = vec![0usize; num_cols + 1];
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        for j in 0..num_cols {
            let (start, end) = (counts[j], counts[j + 1]);
            scratch.clear();
            scratch.extend(
                row_idx[start..end]
                    .iter()
                    .copied()
                    .zip(values[start..end].iter().copied()),
            );
            scratch.sort_unstable_by_key(|&(r, _)| r);
            let col_start = write;
            for &(r, v) in &scratch {
                if write > col_start && row_idx[write - 1] == r {
                    values[write - 1] += v;
                } else {
                    row_idx[write] = r;
                    values[write] = v;
                    write += 1;
                }
            }
            // Drop entries that cancelled to exactly zero.
            let mut keep = col_start;
            for k in col_start..write {
                if values[k] != 0.0 {
                    row_idx[keep] = row_idx[k];
                    values[keep] = values[k];
                    keep += 1;
                }
            }
            write = keep;
            col_ptr[j + 1] = write;
        }
        row_idx.truncate(write);
        values.truncate(write);

        SparseMatrix {
            num_rows,
            num_cols,
            col_ptr,
            row_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    #[inline]
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    /// Number of explicitly stored (nonzero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `(row, value)` entries of column `j`, rows ascending.
    #[inline]
    pub fn column(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        self.row_idx[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Number of stored entries in column `j`.
    #[inline]
    pub fn column_nnz(&self, j: usize) -> usize {
        self.col_ptr[j + 1] - self.col_ptr[j]
    }

    /// Column `j` as parallel `(rows, values)` slices, rows ascending.
    #[inline]
    pub fn column_slices(&self, j: usize) -> (&[usize], &[f64]) {
        let range = self.col_ptr[j]..self.col_ptr[j + 1];
        (&self.row_idx[range.clone()], &self.values[range])
    }

    /// The value at `(row, col)` (zero when not stored).  `O(log column_nnz)`.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        let range = self.col_ptr[col]..self.col_ptr[col + 1];
        match self.row_idx[range.clone()].binary_search(&row) {
            Ok(offset) => self.values[range.start + offset],
            Err(_) => 0.0,
        }
    }

    /// Sparse dot product of column `j` with a dense vector.
    #[inline]
    pub fn column_dot(&self, j: usize, dense: &[f64]) -> f64 {
        let mut total = 0.0;
        for (r, v) in self.column(j) {
            total += v * dense[r];
        }
        total
    }

    /// Materialise the matrix as dense row-major rows (used by the dense-tableau
    /// fallback backend and by tests).
    pub fn to_dense_rows(&self) -> Vec<Vec<f64>> {
        let mut rows = vec![vec![0.0; self.num_cols]; self.num_rows];
        for (j, window) in self.col_ptr.windows(2).enumerate() {
            let entries = self.row_idx[window[0]..window[1]]
                .iter()
                .zip(&self.values[window[0]..window[1]]);
            for (&r, &v) in entries {
                rows[r][j] = v;
            }
        }
        rows
    }

    /// Density `nnz / (rows · cols)` — handy for logging and bench labels.
    pub fn fill_ratio(&self) -> f64 {
        if self.num_rows == 0 || self.num_cols == 0 {
            return 0.0;
        }
        self.nnz() as f64 / (self.num_rows as f64 * self.num_cols as f64)
    }

    /// Build the compressed sparse **row** mirror of this matrix.
    ///
    /// The revised simplex is column-oriented almost everywhere, but two hot
    /// kernels want rows: Devex pricing multiplies the (sparse) pivot row of
    /// `B⁻¹` against *every* nonbasic column, which is `O(nnz(A))` column-wise
    /// but only `O(Σ_{r ∈ supp} row_nnz(r))` row-wise, and the LU
    /// factorisation's pivot search wants row counts.  Built once per solve.
    pub fn to_row_major(&self) -> RowMajor {
        let mut row_ptr = vec![0usize; self.num_rows + 1];
        for &r in &self.row_idx {
            row_ptr[r + 1] += 1;
        }
        for r in 0..self.num_rows {
            row_ptr[r + 1] += row_ptr[r];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for j in 0..self.num_cols {
            for (r, v) in self.column(j) {
                let slot = cursor[r];
                cursor[r] += 1;
                col_idx[slot] = j;
                values[slot] = v;
            }
        }
        RowMajor {
            row_ptr,
            col_idx,
            values,
        }
    }
}

/// A compressed sparse **row** view of a [`SparseMatrix`] (columns ascending
/// within each row), produced by [`SparseMatrix::to_row_major`].
#[derive(Debug, Clone, PartialEq)]
pub struct RowMajor {
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl RowMajor {
    /// The `(col, value)` entries of row `r`, columns ascending.
    #[inline]
    pub fn row(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let range = self.row_ptr[r]..self.row_ptr[r + 1];
        self.col_idx[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }
}

/// A dense-backed sparse accumulator (the classic "SPA" of sparse-matrix codes):
/// a dense value array plus an explicit pattern of touched indices, so a sparse
/// linear combination costs `O(nnz)` to build and `O(pattern)` to reset — no
/// `O(n)` clears between uses.
///
/// Used by the LU factorisation's Schur updates, the Forrest–Tomlin row
/// elimination, and the Devex pivot-row accumulation.
#[derive(Debug, Clone)]
pub struct SparseAccumulator {
    values: Vec<f64>,
    marked: Vec<bool>,
    pattern: Vec<usize>,
}

impl SparseAccumulator {
    /// An accumulator over indices `0..len`, initially empty.
    pub fn with_len(len: usize) -> Self {
        SparseAccumulator {
            values: vec![0.0; len],
            marked: vec![false; len],
            pattern: Vec::new(),
        }
    }

    /// Add `v` at index `i`, extending the pattern if `i` is untouched.
    #[inline]
    pub fn add(&mut self, i: usize, v: f64) {
        if self.marked[i] {
            self.values[i] += v;
        } else {
            self.marked[i] = true;
            self.values[i] = v;
            self.pattern.push(i);
        }
    }

    /// The current value at index `i` (zero when untouched).
    #[inline]
    pub fn get(&self, i: usize) -> f64 {
        if self.marked[i] {
            self.values[i]
        } else {
            0.0
        }
    }

    /// Whether index `i` is in the pattern.
    #[inline]
    pub fn is_marked(&self, i: usize) -> bool {
        self.marked[i]
    }

    /// The touched indices, in insertion order.
    #[inline]
    pub fn pattern(&self) -> &[usize] {
        &self.pattern
    }

    /// Reset to empty in `O(pattern)`.
    pub fn clear(&mut self) {
        for &i in &self.pattern {
            self.marked[i] = false;
            self.values[i] = 0.0;
        }
        self.pattern.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_from_unordered_triplets() {
        let m = SparseMatrix::from_triplets(
            3,
            4,
            &[
                (2, 1, 5.0),
                (0, 0, 1.0),
                (1, 1, -2.0),
                (0, 3, 4.0),
                (2, 0, 3.0),
            ],
        );
        assert_eq!(m.num_rows(), 3);
        assert_eq!(m.num_cols(), 4);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.get(0, 0), 1.0);
        assert_eq!(m.get(2, 0), 3.0);
        assert_eq!(m.get(1, 1), -2.0);
        assert_eq!(m.get(2, 1), 5.0);
        assert_eq!(m.get(0, 3), 4.0);
        assert_eq!(m.get(1, 3), 0.0);
    }

    #[test]
    fn duplicates_are_summed_and_zeros_dropped() {
        let m = SparseMatrix::from_triplets(
            2,
            2,
            &[(0, 0, 2.0), (0, 0, 1.5), (1, 1, 4.0), (1, 1, -4.0)],
        );
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1, "cancelled entry must be dropped");
    }

    #[test]
    fn columns_iterate_rows_ascending() {
        let m = SparseMatrix::from_triplets(4, 1, &[(3, 0, 3.0), (1, 0, 1.0), (2, 0, 2.0)]);
        let column: Vec<(usize, f64)> = m.column(0).collect();
        assert_eq!(column, vec![(1, 1.0), (2, 2.0), (3, 3.0)]);
        assert_eq!(m.column_nnz(0), 3);
    }

    #[test]
    fn dot_and_densify_agree() {
        let m = SparseMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (2, 0, -2.0), (1, 1, 4.0)]);
        let dense = m.to_dense_rows();
        assert_eq!(dense, vec![vec![1.0, 0.0], vec![0.0, 4.0], vec![-2.0, 0.0]]);
        let x = [1.0, 2.0, 3.0];
        assert_eq!(m.column_dot(0, &x), 1.0 - 6.0);
        assert_eq!(m.column_dot(1, &x), 8.0);
        assert!((m.fill_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_triplets_panic() {
        SparseMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn row_major_mirror_matches_columns() {
        let m = SparseMatrix::from_triplets(
            3,
            4,
            &[
                (2, 1, 5.0),
                (0, 0, 1.0),
                (1, 1, -2.0),
                (0, 3, 4.0),
                (2, 0, 3.0),
            ],
        );
        let rm = m.to_row_major();
        assert_eq!(rm.row(0).collect::<Vec<_>>(), vec![(0, 1.0), (3, 4.0)]);
        assert_eq!(rm.row(1).collect::<Vec<_>>(), vec![(1, -2.0)]);
        assert_eq!(rm.row(2).collect::<Vec<_>>(), vec![(0, 3.0), (1, 5.0)]);
        assert_eq!(rm.row_nnz(2), 2);
        // Round-trip: every stored entry is found through the row view.
        for j in 0..m.num_cols() {
            for (r, v) in m.column(j) {
                assert!(rm.row(r).any(|(c, value)| c == j && value == v));
            }
        }
    }

    #[test]
    fn sparse_accumulator_tracks_pattern_and_resets_cheaply() {
        let mut spa = SparseAccumulator::with_len(5);
        spa.add(3, 1.5);
        spa.add(1, 2.0);
        spa.add(3, -0.5);
        assert_eq!(spa.get(3), 1.0);
        assert_eq!(spa.get(1), 2.0);
        assert_eq!(spa.get(0), 0.0);
        assert!(spa.is_marked(1) && !spa.is_marked(2));
        assert_eq!(spa.pattern(), &[3, 1]);
        spa.clear();
        assert_eq!(spa.pattern(), &[] as &[usize]);
        assert_eq!(spa.get(3), 0.0);
        spa.add(3, 7.0);
        assert_eq!(spa.get(3), 7.0, "cleared slot must start from zero again");
    }
}

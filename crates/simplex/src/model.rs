//! Model-builder API for linear programs.
//!
//! A [`LinearProgram`] is built incrementally: variables are added first (each
//! receiving a [`VariableId`]), then objective coefficients, bounds, and linear
//! constraints.  The builder performs eager validation so that malformed models are
//! rejected at construction time rather than deep inside the solver.
//!
//! Constraints are stored **sparsely in a single arena**: one flat `(variable,
//! coefficient)` term pool plus per-constraint offsets, rather than one heap
//! allocation per row.  The mechanism-design LPs add tens of thousands of two-term
//! rows, so the arena keeps model construction `O(nnz)` with two amortised
//! allocations total, and hands the standardiser contiguous slices to scan.

use crate::error::SimplexError;
use crate::solution::Solution;
use crate::solver::{solve_prepared, SolveOptions};

/// Identifier of a variable inside a [`LinearProgram`].
///
/// The wrapped index is stable for the lifetime of the program and indexes into
/// [`Solution::values`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VariableId(pub(crate) usize);

impl VariableId {
    /// The raw index of the variable (the position in [`Solution::values`]).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// Direction of optimisation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Minimise the objective function.
    Minimize,
    /// Maximise the objective function.
    Maximize,
}

/// Relation of a linear constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    /// `expr <= rhs`
    LessEq,
    /// `expr >= rhs`
    GreaterEq,
    /// `expr == rhs`
    Equal,
}

/// A borrowed view of one constraint `sum_i coeff_i * x_i  (<=|>=|=)  rhs`.
///
/// Views index into the program's term arena; they are produced by
/// [`LinearProgram::constraint`] and [`LinearProgram::constraints`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Constraint<'a> {
    /// Sparse `(variable, coefficient)` terms.  A variable may appear more than
    /// once; coefficients are summed during standardisation.
    pub terms: &'a [(VariableId, f64)],
    /// The relation between the expression and the right-hand side.
    pub relation: Relation,
    /// The right-hand side constant.
    pub rhs: f64,
}

/// Per-variable metadata.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Variable {
    pub(crate) name: String,
    pub(crate) lower: f64,
    pub(crate) upper: f64,
}

/// A linear program under construction.
///
/// Variables are non-negative by default (`0 <= x < +inf`); bounds can be adjusted
/// with [`LinearProgram::set_bounds`].  The objective defaults to all-zero
/// coefficients.
#[derive(Debug, Clone)]
pub struct LinearProgram {
    pub(crate) objective: Objective,
    pub(crate) objective_coefficients: Vec<f64>,
    pub(crate) variables: Vec<Variable>,
    /// Flat term pool; constraint `i` owns `terms[term_ptr[i] .. term_ptr[i + 1]]`.
    pub(crate) terms: Vec<(VariableId, f64)>,
    /// Arena offsets, one more entry than there are constraints.
    pub(crate) term_ptr: Vec<usize>,
    pub(crate) relations: Vec<Relation>,
    pub(crate) rhs_values: Vec<f64>,
}

impl LinearProgram {
    /// Create an empty minimisation problem.
    pub fn minimize() -> Self {
        Self::new(Objective::Minimize)
    }

    /// Create an empty maximisation problem.
    pub fn maximize() -> Self {
        Self::new(Objective::Maximize)
    }

    /// Create an empty program with the given optimisation direction.
    pub fn new(objective: Objective) -> Self {
        LinearProgram {
            objective,
            objective_coefficients: Vec::new(),
            variables: Vec::new(),
            terms: Vec::new(),
            term_ptr: vec![0],
            relations: Vec::new(),
            rhs_values: Vec::new(),
        }
    }

    /// The optimisation direction of this program.
    pub fn objective(&self) -> Objective {
        self.objective
    }

    /// Number of structural variables.
    pub fn num_variables(&self) -> usize {
        self.variables.len()
    }

    /// Number of constraints added so far.
    pub fn num_constraints(&self) -> usize {
        self.relations.len()
    }

    /// Total number of constraint terms (the model's nonzero count before
    /// standardisation).
    pub fn num_terms(&self) -> usize {
        self.terms.len()
    }

    /// Add a non-negative variable with the given (diagnostic) name.
    pub fn add_variable(&mut self, name: impl Into<String>) -> VariableId {
        self.add_variable_with_bounds(name, 0.0, f64::INFINITY)
    }

    /// Add a variable with explicit bounds. `lower` may be `-inf` (free below) and
    /// `upper` may be `+inf` (free above).
    pub fn add_variable_with_bounds(
        &mut self,
        name: impl Into<String>,
        lower: f64,
        upper: f64,
    ) -> VariableId {
        let id = VariableId(self.variables.len());
        self.variables.push(Variable {
            name: name.into(),
            lower,
            upper,
        });
        self.objective_coefficients.push(0.0);
        id
    }

    /// Add `count` non-negative variables named `"{prefix}{i}"`, returning their ids.
    pub fn add_variables(&mut self, prefix: &str, count: usize) -> Vec<VariableId> {
        (0..count)
            .map(|i| self.add_variable(format!("{prefix}{i}")))
            .collect()
    }

    /// Set the objective coefficient of a variable (replacing any previous value).
    pub fn set_objective_coefficient(&mut self, var: VariableId, coefficient: f64) {
        self.objective_coefficients[var.0] = coefficient;
    }

    /// Add `delta` to the objective coefficient of a variable.
    pub fn add_objective_coefficient(&mut self, var: VariableId, delta: f64) {
        self.objective_coefficients[var.0] += delta;
    }

    /// Current objective coefficient of a variable.
    pub fn objective_coefficient(&self, var: VariableId) -> f64 {
        self.objective_coefficients[var.0]
    }

    /// Replace the bounds of a variable.
    pub fn set_bounds(&mut self, var: VariableId, lower: f64, upper: f64) {
        self.variables[var.0].lower = lower;
        self.variables[var.0].upper = upper;
    }

    /// Bounds of a variable as `(lower, upper)`.
    pub fn bounds(&self, var: VariableId) -> (f64, f64) {
        (self.variables[var.0].lower, self.variables[var.0].upper)
    }

    /// Diagnostic name of a variable.
    pub fn variable_name(&self, var: VariableId) -> &str {
        &self.variables[var.0].name
    }

    /// Add a linear constraint from any source of sparse terms (a `vec![...]`, an
    /// array, or a lazily-computed iterator — the terms are written straight into
    /// the constraint arena without an intermediate allocation).  Returns the
    /// constraint's index.
    pub fn add_constraint(
        &mut self,
        terms: impl IntoIterator<Item = (VariableId, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> usize {
        self.terms.extend(terms);
        self.term_ptr.push(self.terms.len());
        self.relations.push(relation);
        self.rhs_values.push(rhs);
        self.relations.len() - 1
    }

    /// A borrowed view of constraint `index`.
    pub fn constraint(&self, index: usize) -> Constraint<'_> {
        Constraint {
            terms: &self.terms[self.term_ptr[index]..self.term_ptr[index + 1]],
            relation: self.relations[index],
            rhs: self.rhs_values[index],
        }
    }

    /// Iterate over all constraints in insertion order.
    pub fn constraints(&self) -> impl ExactSizeIterator<Item = Constraint<'_>> {
        (0..self.num_constraints()).map(|i| self.constraint(i))
    }

    /// Validate the model: all referenced variables exist, all numbers are finite
    /// (except infinite bounds), and bounds are consistent.
    pub fn validate(&self) -> Result<(), SimplexError> {
        if self.variables.is_empty() {
            return Err(SimplexError::EmptyModel);
        }
        for (i, v) in self.variables.iter().enumerate() {
            if v.lower.is_nan() || v.upper.is_nan() {
                return Err(SimplexError::NonFiniteValue {
                    context: "variable bounds",
                });
            }
            if v.lower > v.upper {
                return Err(SimplexError::InconsistentBounds {
                    index: i,
                    lower: v.lower,
                    upper: v.upper,
                });
            }
        }
        for &c in &self.objective_coefficients {
            if !c.is_finite() {
                return Err(SimplexError::NonFiniteValue {
                    context: "objective coefficients",
                });
            }
        }
        for &rhs in &self.rhs_values {
            if !rhs.is_finite() {
                return Err(SimplexError::NonFiniteValue {
                    context: "constraint right-hand side",
                });
            }
        }
        for &(var, coeff) in &self.terms {
            if var.0 >= self.variables.len() {
                return Err(SimplexError::UnknownVariable {
                    index: var.0,
                    num_variables: self.variables.len(),
                });
            }
            if !coeff.is_finite() {
                return Err(SimplexError::NonFiniteValue {
                    context: "constraint coefficients",
                });
            }
        }
        Ok(())
    }

    /// Solve with default [`SolveOptions`] (sparse LU revised simplex, Devex
    /// phase-2 pricing, periodic refactorisation with basis repair).
    pub fn solve(&self) -> Result<Solution, SimplexError> {
        self.solve_with(&SolveOptions::default())
    }

    /// Solve with explicit options (iteration limit, tolerance, pivot and
    /// pricing rules, backend, refactorisation cadence, repair budget).
    pub fn solve_with(&self, options: &SolveOptions) -> Result<Solution, SimplexError> {
        self.validate()?;
        solve_prepared(self, options)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_tracks_variables_and_constraints() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        let y = lp.add_variable_with_bounds("y", 1.0, 5.0);
        assert_eq!(lp.num_variables(), 2);
        assert_eq!(x.index(), 0);
        assert_eq!(y.index(), 1);
        assert_eq!(lp.variable_name(x), "x");
        assert_eq!(lp.bounds(y), (1.0, 5.0));

        lp.set_objective_coefficient(x, 2.0);
        lp.add_objective_coefficient(x, 0.5);
        assert_eq!(lp.objective_coefficient(x), 2.5);

        let idx = lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::LessEq, 3.0);
        assert_eq!(idx, 0);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.constraint(0).relation, Relation::LessEq);
        assert_eq!(lp.constraint(0).terms, &[(x, 1.0), (y, -1.0)]);
    }

    #[test]
    fn constraints_can_come_from_iterators_without_a_vec() {
        let mut lp = LinearProgram::minimize();
        let vars = lp.add_variables("p", 4);
        lp.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Equal, 1.0);
        lp.add_constraint([(vars[0], 2.0), (vars[3], -1.0)], Relation::GreaterEq, 0.0);
        assert_eq!(lp.num_constraints(), 2);
        assert_eq!(lp.num_terms(), 6);
        assert_eq!(lp.constraint(0).terms.len(), 4);
        assert_eq!(lp.constraint(1).rhs, 0.0);
        let collected: Vec<usize> = lp.constraints().map(|c| c.terms.len()).collect();
        assert_eq!(collected, vec![4, 2]);
    }

    #[test]
    fn add_variables_batch_names() {
        let mut lp = LinearProgram::minimize();
        let vars = lp.add_variables("rho_", 3);
        assert_eq!(vars.len(), 3);
        assert_eq!(lp.variable_name(vars[2]), "rho_2");
    }

    #[test]
    fn validate_rejects_empty_model() {
        let lp = LinearProgram::minimize();
        assert_eq!(lp.validate(), Err(SimplexError::EmptyModel));
    }

    #[test]
    fn validate_rejects_unknown_variable() {
        let mut lp = LinearProgram::minimize();
        let _x = lp.add_variable("x");
        lp.add_constraint(vec![(VariableId(7), 1.0)], Relation::Equal, 1.0);
        assert!(matches!(
            lp.validate(),
            Err(SimplexError::UnknownVariable { index: 7, .. })
        ));
    }

    #[test]
    fn validate_rejects_nan_objective() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, f64::NAN);
        assert!(matches!(
            lp.validate(),
            Err(SimplexError::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn validate_rejects_inconsistent_bounds() {
        let mut lp = LinearProgram::minimize();
        lp.add_variable_with_bounds("x", 3.0, 1.0);
        assert!(matches!(
            lp.validate(),
            Err(SimplexError::InconsistentBounds { index: 0, .. })
        ));
    }

    #[test]
    fn validate_rejects_infinite_rhs() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, f64::INFINITY);
        assert!(matches!(
            lp.validate(),
            Err(SimplexError::NonFiniteValue { .. })
        ));
    }

    #[test]
    fn validate_accepts_well_formed_model() {
        let mut lp = LinearProgram::maximize();
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 10.0);
        assert!(lp.validate().is_ok());
    }
}

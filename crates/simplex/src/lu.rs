//! Sparse LU factorisation of the simplex basis with Forrest–Tomlin updates.
//!
//! This module replaces the eta-file (product-form) basis inverse that the
//! revised simplex used through PR 1.  The product form has two asymptotic
//! problems on the mechanism-design LPs:
//!
//! 1. every pivot appends an eta holding the **fully FTRANed** entering column,
//!    which grows denser as the eta file grows — FTRAN/BTRAN cost compounds;
//! 2. refactorisation re-eliminates the basis *through the partially rebuilt
//!    file*, so the residual "bump" columns pay a dense `O(m)` transform each —
//!    at `n ≥ 64` this bump elimination dominated total solve time.
//!
//! The fix is the architecture every production LP code uses (see HiGHS, glpk,
//! or pywr-next's solver layer): factorise the basis as `B = L·U` with
//! Markowitz-style pivoting, and *update* the factors after each basis change
//! with a Forrest–Tomlin rank-one update instead of appending product-form
//! etas.
//!
//! ## Factorisation
//!
//! [`LuFactors::factor`] runs right-looking Gaussian elimination over a copy of
//! the basis columns:
//!
//! * **Singleton peeling**: rows or columns with a single active nonzero pivot
//!   immediately and contribute **zero fill**.  LP bases are almost
//!   permutable-triangular — on the mechanism LPs peeling absorbs essentially
//!   every slack and structural column.
//! * **Markowitz bump pivoting**: the residual bump picks pivots minimising
//!   `(row_count − 1) · (col_count − 1)` among entries passing a threshold test
//!   (`|a_ij| ≥ 0.1 · max|column|`), the standard fill/stability compromise.
//!
//! The result is stored as a sequence of **L operators** (unit column etas) plus
//! sparse **U columns** ordered by a doubly-linked pivot list.  FTRAN is a
//! forward pass through the L operators followed by a backward sparse
//! triangular solve with U; BTRAN is the transposed pair.
//!
//! ## Forrest–Tomlin update
//!
//! When column `q` enters the basis in pivot row `p`, the spike `v = L⁻¹ a_q`
//! replaces U's column for row `p`, and that column is moved to the **end** of
//! the pivot order.  The move leaves a single non-triangular row — row `p`,
//! whose remaining entries in later columns are eliminated by row operations
//! recorded as one **row eta** appended to the L side.  Crucially the row
//! operations touch only row `p` (held in a sparse accumulator during the
//! update), so the stored U columns only ever *lose* entries — U never fills in
//! between refactorisations, which is what keeps FTRAN/BTRAN flat over long
//! pivot runs.  A too-small updated diagonal reports [`LuError::Singular`] and
//! the caller refactorises from scratch (the basis-repair path).
//!
//! ## Suhl–Suhl hypersparse solves
//!
//! The plain [`LuFactors::ftran`]/[`LuFactors::btran`] pair visits **every**
//! stored operator — `O(nnz(L) + nnz(U))` per solve even when the right-hand
//! side is a unit vector and the result has a handful of nonzeros.  On the
//! mechanism LPs (tens of thousands of rows, entering columns with ≤ `n + 2`
//! entries) that dense scan dominates per-pivot cost.  The `*_sparse` variants
//! ([`LuFactors::ftran_sparse`], [`LuFactors::btran_sparse`]) instead compute
//! the result's nonzero **pattern** while they solve, in the style of
//! Gilbert–Peierls reachability as ordered by Suhl & Suhl: each row keeps the
//! list of operators that *read* it ([`LuFactors::ftran_readers`] /
//! [`LuFactors::btran_readers`] for the L side, `row_adj` /
//! `pivot_col_of_row` for the U side), and a solve visits exactly the
//! operators reachable from the input pattern, in elimination order, via a
//! binary heap keyed by operator index (L) or pivot-order stamp (U).  Work is
//! proportional to the reach, not to the factor size.  Inputs already denser
//! than [`SPARSE_RHS_FRACTION`] fall back to the dense scan, which is faster
//! at that point.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::sparse::SparseAccumulator;

/// Sentinel for "no link" in the pivot-order list.
const NONE: usize = usize::MAX;

/// Entries with magnitude at or below this are treated as round-off and dropped
/// during elimination (the periodic refactorisation rebuilds from the exact
/// matrix, so dropped noise cannot accumulate).
const DROP_TOL: f64 = 1e-12;

/// Relative threshold of the Markowitz pivot test: a bump pivot must be at
/// least this fraction of the largest magnitude in its column.
const MARKOWITZ_THRESHOLD: f64 = 0.1;

/// A sparse solve is attempted only when the input pattern holds at most
/// `m / SPARSE_RHS_FRACTION` nonzeros; denser inputs take the plain dense
/// scan, whose straight-line passes beat heap-ordered reach at that density.
const SPARSE_RHS_FRACTION: usize = 8;

/// Bound on how many candidate columns one bump-pivot search examines after
/// the ascending-count stopping rule fails to close the search early.
const MARKOWITZ_CANDIDATES: usize = 8;

/// `true` when a right-hand side with `nnz` nonzeros out of `m` rows is worth
/// the reach-based solve.
fn pattern_is_sparse(nnz: usize, m: usize) -> bool {
    nnz * SPARSE_RHS_FRACTION <= m
}

/// Grow a scratch flag vector to cover indices `0..n`.
fn ensure_flags(flags: &mut Vec<bool>, n: usize) {
    if flags.len() < n {
        flags.resize(n, false);
    }
}

/// Push not-yet-seen L-op indices onto a min-heap (forward reach).
fn push_ops_min(
    ops: &[u32],
    heap: &mut BinaryHeap<Reverse<(u64, usize)>>,
    seen: &mut [bool],
    touched: &mut Vec<usize>,
) {
    for &k in ops {
        let k = k as usize;
        if !seen[k] {
            seen[k] = true;
            touched.push(k);
            heap.push(Reverse((k as u64, k)));
        }
    }
}

/// Push not-yet-seen L-op indices onto a max-heap (backward reach).
fn push_ops_max(
    ops: &[u32],
    heap: &mut BinaryHeap<(u64, usize)>,
    seen: &mut [bool],
    touched: &mut Vec<usize>,
) {
    for &k in ops {
        let k = k as usize;
        if !seen[k] {
            seen[k] = true;
            touched.push(k);
            heap.push((k as u64, k));
        }
    }
}

/// The factorisation or update met a numerically singular basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum LuError {
    /// No acceptable pivot remained (structurally or numerically singular).
    Singular,
}

/// One operator of the "L side" of the factorisation, applied left-to-right in
/// FTRAN.  Column etas come from the factorisation; row etas are appended by
/// Forrest–Tomlin updates.
enum LOp {
    /// `v[r] -= l · v[pivot_row]` for each `(r, l)` — a unit-diagonal column of L.
    Col {
        pivot_row: usize,
        entries: Vec<(usize, f64)>,
    },
    /// `v[pivot_row] -= m · v[r]` for each `(r, m)` — a Forrest–Tomlin row eta.
    Row {
        pivot_row: usize,
        entries: Vec<(usize, f64)>,
    },
}

/// One column of the sparse upper-triangular factor.  `rows`/`vals` hold the
/// above-diagonal entries (rows whose pivot columns come earlier in the order);
/// the diagonal is stored separately as `pivot_value` at `pivot_row`.
struct UCol {
    pivot_row: usize,
    pivot_value: f64,
    rows: Vec<usize>,
    vals: Vec<f64>,
}

impl UCol {
    /// Value stored at `row`, if any (linear scan — U columns are short).
    fn get(&self, row: usize) -> Option<f64> {
        self.rows
            .iter()
            .position(|&r| r == row)
            .map(|k| self.vals[k])
    }

    /// Remove the entry at `row`, if present.
    fn remove(&mut self, row: usize) {
        if let Some(k) = self.rows.iter().position(|&r| r == row) {
            self.rows.swap_remove(k);
            self.vals.swap_remove(k);
        }
    }
}

/// A sparse LU factorisation of an `m × m` basis, with Forrest–Tomlin updates.
///
/// `B⁻¹ = U⁻¹ · (L-ops)` where the L-ops are applied in sequence.  U columns
/// carry stable ids (their slot in `ucols`); the elimination *order* is the
/// doubly-linked list `order_next`/`order_prev`, and relative position queries
/// use the monotone stamps in `ord` (a column moved to the end of the order by
/// an update simply receives a fresh, larger stamp).
pub(crate) struct LuFactors {
    lops: Vec<LOp>,
    ucols: Vec<UCol>,
    order_next: Vec<usize>,
    order_prev: Vec<usize>,
    head: usize,
    tail: usize,
    ord: Vec<u64>,
    next_ord: u64,
    /// `row → ids of U columns holding an above-diagonal entry at that row`.
    row_adj: Vec<Vec<usize>>,
    /// `row → id of the U column pivoted on that row`.
    pivot_col_of_row: Vec<usize>,
    /// Forrest–Tomlin updates applied since the factorisation was built.
    updates: usize,
    /// `row → indices of L-ops that read that row in the FTRAN direction`
    /// (a `Col` op reads its pivot row, a `Row` op reads its entry rows).
    /// Each list is ascending, so the sparse solves can binary-search for
    /// "operators after the one currently firing".
    ftran_readers: Vec<Vec<u32>>,
    /// `row → indices of L-ops that read that row in the BTRAN direction`
    /// (transposed roles: a `Col` op reads its entry rows, a `Row` op its
    /// pivot row).  Ascending, like `ftran_readers`.
    btran_readers: Vec<Vec<u32>>,
    /// Reusable scratch for [`LuFactors::update`] (one update per simplex
    /// pivot — allocating these per call would put two `O(m)` zero-fills on
    /// the hottest loop of the solver).
    scratch_acc: SparseAccumulator,
    scratch_heap: BinaryHeap<Reverse<(u64, usize)>>,
    scratch_seen: Vec<usize>,
    /// Scratch for the reach-based sparse solves: per-row nonzero marks, a
    /// per-node (L-op index or U-column id) visited flag with its undo list,
    /// and the two reach heaps (min-order for forward passes, max-order for
    /// backward passes).
    row_marked: Vec<bool>,
    node_seen: Vec<bool>,
    node_touched: Vec<usize>,
    reach_min: BinaryHeap<Reverse<(u64, usize)>>,
    reach_max: BinaryHeap<(u64, usize)>,
}

impl LuFactors {
    /// Factorise the basis given as `columns` (each a sparse `(row, value)`
    /// list; all `num_rows` columns together must form a nonsingular matrix).
    ///
    /// Returns the factorisation and, for every input column slot, the pivot
    /// row it was assigned to — the caller uses this to re-key its
    /// row-indexed basis bookkeeping.
    ///
    /// `abs_pivot_tol` is the absolute magnitude below which a forced pivot
    /// (row/column singleton, or the best bump candidate) is declared singular.
    pub fn factor(
        num_rows: usize,
        columns: &[Vec<(usize, f64)>],
        abs_pivot_tol: f64,
    ) -> Result<(Self, Vec<usize>), LuError> {
        assert_eq!(columns.len(), num_rows, "basis must be square");
        let m = num_rows;

        // Active submatrix state.
        let mut active: Vec<Vec<(usize, f64)>> = columns.to_vec();
        let mut ufrozen: Vec<Vec<(usize, f64)>> = vec![Vec::new(); m];
        let mut row_cols: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut row_count = vec![0usize; m];
        let mut col_count = vec![0usize; m];
        for (j, col) in active.iter().enumerate() {
            col_count[j] = col.len();
            for &(r, _) in col {
                row_cols[r].push(j);
                row_count[r] += 1;
            }
        }

        let mut assigned_row = vec![false; m];
        let mut pivoted_col = vec![false; m];
        // Unpivoted column ids, swap-removed as pivots are chosen, so the bump
        // search scans only what is left.
        let mut remaining: Vec<usize> = (0..m).collect();
        let mut remaining_pos: Vec<usize> = (0..m).collect();
        let mut row_singletons: Vec<usize> = (0..m).filter(|&r| row_count[r] == 1).collect();
        let mut col_singletons: Vec<usize> = (0..m).filter(|&j| col_count[j] == 1).collect();

        // Bump-pivot candidate queue: columns keyed by their active count,
        // maintained lazily (stale entries are skipped on pop; count changes
        // push a fresh entry rather than updating in place).
        let mut bump: BinaryHeap<Reverse<(usize, usize)>> =
            (0..m).map(|j| Reverse((col_count[j], j))).collect();
        let mut bump_kept: Vec<(usize, usize)> = Vec::new();

        // Per-pivot outputs, in elimination order.
        let mut pivot_rows: Vec<usize> = Vec::with_capacity(m);
        let mut pivot_cols: Vec<usize> = Vec::with_capacity(m);
        let mut lops: Vec<LOp> = Vec::with_capacity(m);
        let mut pivot_values: Vec<f64> = Vec::with_capacity(m);

        // Dense workspace for the Schur updates.
        let mut spa = SparseAccumulator::with_len(m);

        while pivot_rows.len() < m {
            // 1. Row singletons: the row forces its only remaining column.
            let (row, col) = if let Some(r) = pop_valid(&mut row_singletons, |&r| {
                !assigned_row[r] && row_count[r] == 1
            }) {
                let col = row_cols[r]
                    .iter()
                    .copied()
                    .find(|&j| !pivoted_col[j] && active[j].iter().any(|&(rr, _)| rr == r))
                    .expect("row_count said one active column remains");
                (r, col)
            // 2. Column singletons: the column forces its only remaining row.
            } else if let Some(j) = pop_valid(&mut col_singletons, |&j| {
                !pivoted_col[j] && col_count[j] == 1
            }) {
                let row = active[j][0].0;
                (row, j)
            // 3. Markowitz bump pivot with threshold stability test, examining
            // candidate columns in ascending active-count order.  Since the
            // singleton queues drained first, every active row has count ≥ 2,
            // so any entry in a column of count `c` costs at least `c − 1` —
            // once that bound reaches the best cost seen, no later column can
            // win and the search stops (with a candidate cap as a backstop).
            } else {
                let mut best: Option<(usize, usize, usize, f64)> = None;
                bump_kept.clear();
                while let Some(&Reverse((c, j))) = bump.peek() {
                    if pivoted_col[j] || c != col_count[j] {
                        bump.pop();
                        continue;
                    }
                    if let Some((_, _, best_cost, _)) = best {
                        if c > best_cost || bump_kept.len() >= MARKOWITZ_CANDIDATES {
                            break;
                        }
                    }
                    bump.pop();
                    bump_kept.push((c, j));
                    let col_max = active[j]
                        .iter()
                        .fold(0.0f64, |acc, &(_, v)| acc.max(v.abs()));
                    if col_max < abs_pivot_tol {
                        continue;
                    }
                    let acceptable = col_max * MARKOWITZ_THRESHOLD;
                    for &(r, v) in &active[j] {
                        if v.abs() < acceptable || v.abs() < abs_pivot_tol {
                            continue;
                        }
                        let cost = (row_count[r] - 1) * (c - 1);
                        let better = match best {
                            None => true,
                            Some((_, _, best_cost, best_mag)) => {
                                cost < best_cost || (cost == best_cost && v.abs() > best_mag)
                            }
                        };
                        if better {
                            best = Some((r, j, cost, v.abs()));
                        }
                    }
                }
                // Losing candidates stay live for later pivots.
                for &(c, j) in &bump_kept {
                    bump.push(Reverse((c, j)));
                }
                let Some((row, col, _, _)) = best else {
                    return Err(LuError::Singular);
                };
                (row, col)
            };

            let pivot_value = active[col]
                .iter()
                .find(|&&(r, _)| r == row)
                .map(|&(_, v)| v)
                .expect("pivot entry must be active");
            if pivot_value.abs() < abs_pivot_tol {
                return Err(LuError::Singular);
            }

            // Retire the pivot row and column from the active submatrix.
            assigned_row[row] = true;
            pivoted_col[col] = true;
            let pos = remaining_pos[col];
            let last = *remaining.last().expect("remaining nonempty");
            remaining.swap_remove(pos);
            if pos < remaining.len() {
                remaining_pos[last] = pos;
            }

            // L entries: the pivot column's remaining active rows, scaled.
            let c_entries: Vec<(usize, f64)> = active[col]
                .iter()
                .copied()
                .filter(|&(r, _)| r != row)
                .collect();
            for &(r, _) in &c_entries {
                row_count[r] -= 1;
                if row_count[r] == 1 && !assigned_row[r] {
                    row_singletons.push(r);
                }
            }
            row_count[row] = 0;

            // Schur update: eliminate row `row` from every other active column
            // that holds it, freezing the eliminated entry as that column's U
            // contribution.
            let holders: Vec<usize> = row_cols[row]
                .iter()
                .copied()
                .filter(|&j| j != col && !pivoted_col[j])
                .collect();
            for j in holders {
                let Some(k) = active[j].iter().position(|&(r, _)| r == row) else {
                    continue; // stale adjacency entry (value cancelled earlier)
                };
                let u = active[j][k].1;
                active[j].swap_remove(k);
                ufrozen[j].push((row, u));
                let factor = u / pivot_value;

                // active[j] -= factor * c_entries, via the accumulator.
                spa.clear();
                for &(r, v) in &active[j] {
                    spa.add(r, v);
                }
                for &(r, v) in &c_entries {
                    spa.add(r, -factor * v);
                }
                let mut rebuilt: Vec<(usize, f64)> = Vec::with_capacity(spa.pattern().len());
                for &r in spa.pattern() {
                    let v = spa.get(r);
                    let was_present = active[j].iter().any(|&(rr, _)| rr == r);
                    if v.abs() > DROP_TOL {
                        rebuilt.push((r, v));
                        if !was_present {
                            // Fill-in.
                            row_cols[r].push(j);
                            row_count[r] += 1;
                        }
                    } else if was_present {
                        // Cancellation.
                        row_count[r] -= 1;
                        if row_count[r] == 1 && !assigned_row[r] {
                            row_singletons.push(r);
                        }
                    }
                }
                active[j] = rebuilt;
                if col_count[j] != active[j].len() {
                    col_count[j] = active[j].len();
                    bump.push(Reverse((col_count[j], j)));
                }
                if col_count[j] == 0 {
                    return Err(LuError::Singular);
                }
                if col_count[j] == 1 {
                    col_singletons.push(j);
                }
            }
            row_cols[row].clear();

            pivot_rows.push(row);
            pivot_cols.push(col);
            pivot_values.push(pivot_value);
            lops.push(LOp::Col {
                pivot_row: row,
                entries: c_entries
                    .iter()
                    .map(|&(r, v)| (r, v / pivot_value))
                    .collect(),
            });
        }

        // Assemble the U columns in elimination order (id = elimination step).
        let mut ucols: Vec<UCol> = Vec::with_capacity(m);
        let mut row_adj: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut pivot_col_of_row = vec![NONE; m];
        let mut row_of_slot = vec![NONE; m];
        for k in 0..m {
            let col_slot = pivot_cols[k];
            let frozen = std::mem::take(&mut ufrozen[col_slot]);
            for &(r, _) in &frozen {
                row_adj[r].push(k);
            }
            let (rows, vals) = frozen.into_iter().unzip();
            ucols.push(UCol {
                pivot_row: pivot_rows[k],
                pivot_value: pivot_values[k],
                rows,
                vals,
            });
            pivot_col_of_row[pivot_rows[k]] = k;
            row_of_slot[col_slot] = pivot_rows[k];
        }

        let (order_next, order_prev): (Vec<usize>, Vec<usize>) = (0..m)
            .map(|k| {
                (
                    if k + 1 < m { k + 1 } else { NONE },
                    if k > 0 { k - 1 } else { NONE },
                )
            })
            .unzip();
        let mut ftran_readers: Vec<Vec<u32>> = vec![Vec::new(); m];
        let mut btran_readers: Vec<Vec<u32>> = vec![Vec::new(); m];
        for (k, op) in lops.iter().enumerate() {
            if let LOp::Col { pivot_row, entries } = op {
                ftran_readers[*pivot_row].push(k as u32);
                for &(r, _) in entries {
                    btran_readers[r].push(k as u32);
                }
            }
        }
        let factors = LuFactors {
            lops,
            ucols,
            order_next,
            order_prev,
            head: if m > 0 { 0 } else { NONE },
            tail: if m > 0 { m - 1 } else { NONE },
            ord: (0..m as u64).collect(),
            next_ord: m as u64,
            row_adj,
            pivot_col_of_row,
            updates: 0,
            ftran_readers,
            btran_readers,
            scratch_acc: SparseAccumulator::with_len(m),
            scratch_heap: BinaryHeap::new(),
            scratch_seen: Vec::new(),
            row_marked: vec![false; m],
            node_seen: vec![false; m],
            node_touched: Vec::new(),
            reach_min: BinaryHeap::new(),
            reach_max: BinaryHeap::new(),
        };
        Ok((factors, row_of_slot))
    }

    /// Number of Forrest–Tomlin updates applied since [`LuFactors::factor`].
    pub fn updates(&self) -> usize {
        self.updates
    }

    /// Apply the L-side operators: `v ← (L-ops) v`.  After this, `v` is the
    /// "spike" a Forrest–Tomlin update consumes.
    pub fn solve_l(&self, v: &mut [f64]) {
        for op in &self.lops {
            match op {
                LOp::Col { pivot_row, entries } => {
                    let t = v[*pivot_row];
                    if t != 0.0 {
                        for &(r, l) in entries {
                            v[r] -= l * t;
                        }
                    }
                }
                LOp::Row { pivot_row, entries } => {
                    let mut total = v[*pivot_row];
                    for &(r, mult) in entries {
                        total -= mult * v[r];
                    }
                    v[*pivot_row] = total;
                }
            }
        }
    }

    /// Backward sparse triangular solve: `v ← U⁻¹ v`.
    pub fn solve_u(&self, v: &mut [f64]) {
        let mut id = self.tail;
        while id != NONE {
            let c = &self.ucols[id];
            let t = v[c.pivot_row];
            if t != 0.0 {
                let t = t / c.pivot_value;
                v[c.pivot_row] = t;
                for (&r, &val) in c.rows.iter().zip(&c.vals) {
                    v[r] -= val * t;
                }
            }
            id = self.order_prev[id];
        }
    }

    /// FTRAN: `v ← B⁻¹ v`.
    pub fn ftran(&self, v: &mut [f64]) {
        self.solve_l(v);
        self.solve_u(v);
    }

    /// BTRAN: `v ← (B⁻¹)ᵀ v` (equivalently `v' B⁻¹` for a row vector).
    pub fn btran(&self, v: &mut [f64]) {
        self.btran_u_dense(v);
        self.btran_l_dense(v);
    }

    /// BTRAN's first half: `Uᵀ` is lower triangular in pivot order, so this is
    /// a forward substitution over every U column.
    fn btran_u_dense(&self, v: &mut [f64]) {
        let mut id = self.head;
        while id != NONE {
            let c = &self.ucols[id];
            let mut total = v[c.pivot_row];
            for (&r, &val) in c.rows.iter().zip(&c.vals) {
                total -= val * v[r];
            }
            v[c.pivot_row] = total / c.pivot_value;
            id = self.order_next[id];
        }
    }

    /// BTRAN's second half: the transposed L-ops, newest first.
    fn btran_l_dense(&self, v: &mut [f64]) {
        for op in self.lops.iter().rev() {
            match op {
                LOp::Col { pivot_row, entries } => {
                    let mut t = v[*pivot_row];
                    for &(r, l) in entries {
                        t -= l * v[r];
                    }
                    v[*pivot_row] = t;
                }
                LOp::Row { pivot_row, entries } => {
                    let t = v[*pivot_row];
                    if t != 0.0 {
                        for &(r, mult) in entries {
                            v[r] -= mult * t;
                        }
                    }
                }
            }
        }
    }

    /// Sparse L-side forward pass (Suhl–Suhl ordered reach).  `pattern` must
    /// list the nonzero rows of `v` exactly, without duplicates; on return it
    /// lists the nonzero rows of the result.  Returns `false` when the input
    /// was too dense and the plain [`LuFactors::solve_l`] ran instead — the
    /// pattern is then stale and must be treated as dense by the caller.
    pub fn solve_l_sparse(&mut self, v: &mut [f64], pattern: &mut Vec<usize>) -> bool {
        let m = v.len();
        if !pattern_is_sparse(pattern.len(), m) {
            self.solve_l(v);
            return false;
        }
        ensure_flags(&mut self.node_seen, self.lops.len());
        let mut marked = std::mem::take(&mut self.row_marked);
        let mut seen = std::mem::take(&mut self.node_seen);
        let mut touched = std::mem::take(&mut self.node_touched);
        let mut heap = std::mem::take(&mut self.reach_min);
        for &r in pattern.iter() {
            marked[r] = true;
        }
        for &r in pattern.iter() {
            push_ops_min(&self.ftran_readers[r], &mut heap, &mut seen, &mut touched);
        }
        let mut abort_after = None;
        while let Some(Reverse((_, k))) = heap.pop() {
            match &self.lops[k] {
                LOp::Col { pivot_row, entries } => {
                    let t = v[*pivot_row];
                    if t != 0.0 {
                        for &(r, l) in entries {
                            v[r] -= l * t;
                            if !marked[r] {
                                marked[r] = true;
                                pattern.push(r);
                                let readers = &self.ftran_readers[r];
                                let from = readers.partition_point(|&x| (x as usize) <= k);
                                push_ops_min(&readers[from..], &mut heap, &mut seen, &mut touched);
                            }
                        }
                    }
                }
                LOp::Row { pivot_row, entries } => {
                    let p = *pivot_row;
                    let mut total = v[p];
                    for &(r, mult) in entries {
                        total -= mult * v[r];
                    }
                    v[p] = total;
                    if !marked[p] {
                        marked[p] = true;
                        pattern.push(p);
                        let readers = &self.ftran_readers[p];
                        let from = readers.partition_point(|&x| (x as usize) <= k);
                        push_ops_min(&readers[from..], &mut heap, &mut seen, &mut touched);
                    }
                }
            }
            // Suhl's switch: once the result has filled in past the sparse
            // threshold, heap-ordered reach loses to the straight-line scan —
            // stop tracking and finish the remaining operators densely.
            if !pattern_is_sparse(pattern.len(), m) {
                abort_after = Some(k);
                break;
            }
        }
        for &r in pattern.iter() {
            marked[r] = false;
        }
        for &k in &touched {
            seen[k] = false;
        }
        touched.clear();
        heap.clear();
        self.row_marked = marked;
        self.node_seen = seen;
        self.node_touched = touched;
        self.reach_min = heap;
        let Some(last) = abort_after else {
            return true;
        };
        // Dense finish: every operator at or before `last` has either fired or
        // had all-zero inputs (the reach guarantee), so replaying the rest in
        // index order completes the solve.  The pattern is stale from here.
        for op in &self.lops[last + 1..] {
            match op {
                LOp::Col { pivot_row, entries } => {
                    let t = v[*pivot_row];
                    if t != 0.0 {
                        for &(r, l) in entries {
                            v[r] -= l * t;
                        }
                    }
                }
                LOp::Row { pivot_row, entries } => {
                    let mut total = v[*pivot_row];
                    for &(r, mult) in entries {
                        total -= mult * v[r];
                    }
                    v[*pivot_row] = total;
                }
            }
        }
        false
    }

    /// Sparse backward substitution with U, visiting only the U columns
    /// reachable from the input pattern (descending pivot-order stamps).
    /// Same pattern contract and fallback semantics as
    /// [`LuFactors::solve_l_sparse`].
    pub fn solve_u_sparse(&mut self, v: &mut [f64], pattern: &mut Vec<usize>) -> bool {
        let m = v.len();
        if !pattern_is_sparse(pattern.len(), m) {
            self.solve_u(v);
            return false;
        }
        ensure_flags(&mut self.node_seen, self.ucols.len());
        let mut marked = std::mem::take(&mut self.row_marked);
        let mut seen = std::mem::take(&mut self.node_seen);
        let mut touched = std::mem::take(&mut self.node_touched);
        let mut heap = std::mem::take(&mut self.reach_max);
        for &r in pattern.iter() {
            marked[r] = true;
        }
        for &r in pattern.iter() {
            let cid = self.pivot_col_of_row[r];
            if cid != NONE && !seen[cid] {
                seen[cid] = true;
                touched.push(cid);
                heap.push((self.ord[cid], cid));
            }
        }
        let mut abort_at = None;
        while let Some((_, cid)) = heap.pop() {
            let c = &self.ucols[cid];
            let t = v[c.pivot_row];
            if t != 0.0 {
                let t = t / c.pivot_value;
                v[c.pivot_row] = t;
                for (&r, &val) in c.rows.iter().zip(&c.vals) {
                    v[r] -= val * t;
                    if !marked[r] {
                        marked[r] = true;
                        pattern.push(r);
                        let next = self.pivot_col_of_row[r];
                        if next != NONE && !seen[next] {
                            seen[next] = true;
                            touched.push(next);
                            heap.push((self.ord[next], next));
                        }
                    }
                }
            }
            // Suhl's switch (see the L pass): finish densely once filled in.
            if !pattern_is_sparse(pattern.len(), m) {
                abort_at = Some(cid);
                break;
            }
        }
        for &r in pattern.iter() {
            marked[r] = false;
        }
        for &cid in &touched {
            seen[cid] = false;
        }
        touched.clear();
        heap.clear();
        self.row_marked = marked;
        self.node_seen = seen;
        self.node_touched = touched;
        self.reach_max = heap;
        let Some(last) = abort_at else {
            return true;
        };
        // Dense finish: columns later in the order than `last` have all been
        // popped (descending stamps) or were unreachable no-ops, so resuming
        // the plain backward scan from its predecessor completes the solve.
        let mut id = self.order_prev[last];
        while id != NONE {
            let c = &self.ucols[id];
            let t = v[c.pivot_row];
            if t != 0.0 {
                let t = t / c.pivot_value;
                v[c.pivot_row] = t;
                for (&r, &val) in c.rows.iter().zip(&c.vals) {
                    v[r] -= val * t;
                }
            }
            id = self.order_prev[id];
        }
        false
    }

    /// Sparse FTRAN: `v ← B⁻¹ v` with pattern tracking.  Returns `false` when
    /// either triangular pass fell back to the dense scans (the pattern is
    /// then stale).  The solver composes [`LuFactors::solve_l_sparse`] and
    /// [`LuFactors::solve_u_sparse`] directly so it can capture the spike
    /// between the passes; this is the plain composition for everyone else
    /// (currently the differential tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn ftran_sparse(&mut self, v: &mut [f64], pattern: &mut Vec<usize>) -> bool {
        if !self.solve_l_sparse(v, pattern) {
            self.solve_u(v);
            return false;
        }
        self.solve_u_sparse(v, pattern)
    }

    /// Sparse BTRAN: `v ← (B⁻¹)ᵀ v` with pattern tracking.  Returns `false`
    /// when it fell back to the dense scans (the pattern is then stale).
    pub fn btran_sparse(&mut self, v: &mut [f64], pattern: &mut Vec<usize>) -> bool {
        let m = v.len();
        if !pattern_is_sparse(pattern.len(), m) {
            self.btran(v);
            return false;
        }

        // Pass 1: Uᵀ forward substitution in ascending pivot order.  A column
        // fires when its own pivot row is nonzero (the diagonal scaling) or
        // any of its above-diagonal entry rows is (`row_adj`).
        ensure_flags(&mut self.node_seen, self.ucols.len());
        let mut marked = std::mem::take(&mut self.row_marked);
        let mut seen = std::mem::take(&mut self.node_seen);
        let mut touched = std::mem::take(&mut self.node_touched);
        let mut heap = std::mem::take(&mut self.reach_min);
        for &r in pattern.iter() {
            marked[r] = true;
        }
        for &r in pattern.iter() {
            let pc = self.pivot_col_of_row[r];
            if pc != NONE && !seen[pc] {
                seen[pc] = true;
                touched.push(pc);
                heap.push(Reverse((self.ord[pc], pc)));
            }
            for &cid in &self.row_adj[r] {
                if !seen[cid] {
                    seen[cid] = true;
                    touched.push(cid);
                    heap.push(Reverse((self.ord[cid], cid)));
                }
            }
        }
        let mut abort_at = None;
        while let Some(Reverse((_, cid))) = heap.pop() {
            let c = &self.ucols[cid];
            let p = c.pivot_row;
            let mut total = v[p];
            for (&r, &val) in c.rows.iter().zip(&c.vals) {
                total -= val * v[r];
            }
            v[p] = total / c.pivot_value;
            if !marked[p] {
                marked[p] = true;
                pattern.push(p);
                for &next in &self.row_adj[p] {
                    if !seen[next] {
                        seen[next] = true;
                        touched.push(next);
                        heap.push(Reverse((self.ord[next], next)));
                    }
                }
            }
            // Suhl's switch (see the L pass): finish densely once filled in.
            if !pattern_is_sparse(pattern.len(), m) {
                abort_at = Some(cid);
                break;
            }
        }
        for &cid in &touched {
            seen[cid] = false;
        }
        touched.clear();
        if let Some(last) = abort_at {
            // Columns earlier in the order than `last` have all been popped
            // (ascending stamps) or were unreachable no-ops; resume the plain
            // forward scan from its successor, then finish with the dense
            // transposed-L pass.
            heap.clear();
            for &r in pattern.iter() {
                marked[r] = false;
            }
            self.row_marked = marked;
            self.node_seen = seen;
            self.node_touched = touched;
            self.reach_min = heap;
            let mut id = self.order_next[last];
            while id != NONE {
                let c = &self.ucols[id];
                let mut total = v[c.pivot_row];
                for (&r, &val) in c.rows.iter().zip(&c.vals) {
                    total -= val * v[r];
                }
                v[c.pivot_row] = total / c.pivot_value;
                id = self.order_next[id];
            }
            self.btran_l_dense(v);
            return false;
        }

        // If the U pass filled the vector up, finish with the dense L pass.
        if !pattern_is_sparse(pattern.len(), m) {
            for &r in pattern.iter() {
                marked[r] = false;
            }
            self.row_marked = marked;
            self.node_seen = seen;
            self.node_touched = touched;
            self.reach_min = heap;
            self.btran_l_dense(v);
            return false;
        }
        self.reach_min = heap;

        // Pass 2: transposed L-ops, newest first (descending op index).
        ensure_flags(&mut seen, self.lops.len());
        let mut heap = std::mem::take(&mut self.reach_max);
        for &r in pattern.iter() {
            push_ops_max(&self.btran_readers[r], &mut heap, &mut seen, &mut touched);
        }
        let mut abort_after = None;
        while let Some((_, k)) = heap.pop() {
            match &self.lops[k] {
                LOp::Col { pivot_row, entries } => {
                    let p = *pivot_row;
                    let mut t = v[p];
                    for &(r, l) in entries {
                        t -= l * v[r];
                    }
                    v[p] = t;
                    if !marked[p] {
                        marked[p] = true;
                        pattern.push(p);
                        let readers = &self.btran_readers[p];
                        let upto = readers.partition_point(|&x| (x as usize) < k);
                        push_ops_max(&readers[..upto], &mut heap, &mut seen, &mut touched);
                    }
                }
                LOp::Row { pivot_row, entries } => {
                    let t = v[*pivot_row];
                    if t != 0.0 {
                        for &(r, mult) in entries {
                            v[r] -= mult * t;
                            if !marked[r] {
                                marked[r] = true;
                                pattern.push(r);
                                let readers = &self.btran_readers[r];
                                let upto = readers.partition_point(|&x| (x as usize) < k);
                                push_ops_max(&readers[..upto], &mut heap, &mut seen, &mut touched);
                            }
                        }
                    }
                }
            }
            // Suhl's switch (see the L pass): finish densely once filled in.
            if !pattern_is_sparse(pattern.len(), m) {
                abort_after = Some(k);
                break;
            }
        }
        for &r in pattern.iter() {
            marked[r] = false;
        }
        for &k in &touched {
            seen[k] = false;
        }
        touched.clear();
        heap.clear();
        self.row_marked = marked;
        self.node_seen = seen;
        self.node_touched = touched;
        self.reach_max = heap;
        let Some(last) = abort_after else {
            return true;
        };
        // Dense finish: operators newer than `last` have all been popped
        // (descending indices) or were no-ops; replay the older ones
        // newest-first with the plain transposed scan.
        for op in self.lops[..last].iter().rev() {
            match op {
                LOp::Col { pivot_row, entries } => {
                    let mut t = v[*pivot_row];
                    for &(r, l) in entries {
                        t -= l * v[r];
                    }
                    v[*pivot_row] = t;
                }
                LOp::Row { pivot_row, entries } => {
                    let t = v[*pivot_row];
                    if t != 0.0 {
                        for &(r, mult) in entries {
                            v[r] -= mult * t;
                        }
                    }
                }
            }
        }
        false
    }

    /// Sparse BTRAN that **gives up** instead of densifying: when either
    /// pass's nonzero pattern outgrows the hypersparse threshold, the vector
    /// is zeroed back out and `false` is returned.  For callers where the
    /// result is optional (the steepest-edge cross term), abandoning is far
    /// cheaper than the dense finish [`LuFactors::btran_sparse`] would pay.
    /// `cap` bounds the result pattern: the solve abandons as soon as more
    /// than `cap` nonzero rows exist.  A tight cap matters — the reach
    /// exploration itself is the cost, so a failed attempt must fail fast.
    pub fn btran_sparse_bounded(
        &mut self,
        v: &mut [f64],
        pattern: &mut Vec<usize>,
        cap: usize,
    ) -> bool {
        let m = v.len();
        let cap = cap.min(m / SPARSE_RHS_FRACTION);
        // Every row this routine writes is recorded in `pattern` (inputs are
        // pre-marked; fills are pushed when first marked), so zeroing over the
        // pattern restores a clean vector on abandonment.
        macro_rules! abandon {
            ($marked:ident, $seen:ident, $touched:ident, $heap:ident, $heap_slot:ident) => {{
                for &r in pattern.iter() {
                    $marked[r] = false;
                    v[r] = 0.0;
                }
                pattern.clear();
                for &k in &$touched {
                    $seen[k] = false;
                }
                $touched.clear();
                $heap.clear();
                self.row_marked = $marked;
                self.node_seen = $seen;
                self.node_touched = $touched;
                self.$heap_slot = $heap;
                return false;
            }};
        }
        if pattern.len() > cap {
            for &r in pattern.iter() {
                v[r] = 0.0;
            }
            pattern.clear();
            return false;
        }

        // Pass 1: Uᵀ reach, as in `btran_sparse`.
        ensure_flags(&mut self.node_seen, self.ucols.len());
        let mut marked = std::mem::take(&mut self.row_marked);
        let mut seen = std::mem::take(&mut self.node_seen);
        let mut touched = std::mem::take(&mut self.node_touched);
        let mut heap = std::mem::take(&mut self.reach_min);
        for &r in pattern.iter() {
            marked[r] = true;
        }
        for &r in pattern.iter() {
            let pc = self.pivot_col_of_row[r];
            if pc != NONE && !seen[pc] {
                seen[pc] = true;
                touched.push(pc);
                heap.push(Reverse((self.ord[pc], pc)));
            }
            for &cid in &self.row_adj[r] {
                if !seen[cid] {
                    seen[cid] = true;
                    touched.push(cid);
                    heap.push(Reverse((self.ord[cid], cid)));
                }
            }
        }
        while let Some(Reverse((_, cid))) = heap.pop() {
            let c = &self.ucols[cid];
            let p = c.pivot_row;
            let mut total = v[p];
            for (&r, &val) in c.rows.iter().zip(&c.vals) {
                total -= val * v[r];
            }
            v[p] = total / c.pivot_value;
            if !marked[p] {
                marked[p] = true;
                pattern.push(p);
                for &next in &self.row_adj[p] {
                    if !seen[next] {
                        seen[next] = true;
                        touched.push(next);
                        heap.push(Reverse((self.ord[next], next)));
                    }
                }
            }
            if pattern.len() > cap {
                abandon!(marked, seen, touched, heap, reach_min);
            }
        }
        for &cid in &touched {
            seen[cid] = false;
        }
        touched.clear();
        self.reach_min = heap;

        // Pass 2: transposed L-ops, as in `btran_sparse`.
        ensure_flags(&mut seen, self.lops.len());
        let mut heap = std::mem::take(&mut self.reach_max);
        for &r in pattern.iter() {
            push_ops_max(&self.btran_readers[r], &mut heap, &mut seen, &mut touched);
        }
        while let Some((_, k)) = heap.pop() {
            match &self.lops[k] {
                LOp::Col { pivot_row, entries } => {
                    let p = *pivot_row;
                    let mut t = v[p];
                    for &(r, l) in entries {
                        t -= l * v[r];
                    }
                    v[p] = t;
                    if !marked[p] {
                        marked[p] = true;
                        pattern.push(p);
                        let readers = &self.btran_readers[p];
                        let upto = readers.partition_point(|&x| (x as usize) < k);
                        push_ops_max(&readers[..upto], &mut heap, &mut seen, &mut touched);
                    }
                }
                LOp::Row { pivot_row, entries } => {
                    let t = v[*pivot_row];
                    if t != 0.0 {
                        for &(r, mult) in entries {
                            v[r] -= mult * t;
                            if !marked[r] {
                                marked[r] = true;
                                pattern.push(r);
                                let readers = &self.btran_readers[r];
                                let upto = readers.partition_point(|&x| (x as usize) < k);
                                push_ops_max(&readers[..upto], &mut heap, &mut seen, &mut touched);
                            }
                        }
                    }
                }
            }
            if pattern.len() > cap {
                abandon!(marked, seen, touched, heap, reach_max);
            }
        }
        for &r in pattern.iter() {
            marked[r] = false;
        }
        for &k in &touched {
            seen[k] = false;
        }
        touched.clear();
        heap.clear();
        self.row_marked = marked;
        self.node_seen = seen;
        self.node_touched = touched;
        self.reach_max = heap;
        true
    }

    /// Forrest–Tomlin update: the basis column pivoted on `leaving_row` is
    /// replaced by the entering column whose **partial FTRAN** (through
    /// [`LuFactors::solve_l`] only) is `spike`.
    ///
    /// `spike_pattern`, when given, must list the nonzero rows of `spike`
    /// without duplicates (a superset with exact zeros is fine) — the update
    /// then touches only those rows instead of scanning all of `spike`.
    ///
    /// On `Err(Singular)` the factors are left in an inconsistent state and the
    /// caller **must** refactorise from scratch before using them again — this
    /// is the trigger of the basis-repair path.
    pub fn update(
        &mut self,
        leaving_row: usize,
        spike: &[f64],
        spike_pattern: Option<&[usize]>,
    ) -> Result<(), LuError> {
        let p_id = self.pivot_col_of_row[leaving_row];
        debug_assert_ne!(p_id, NONE, "leaving row has no pivot column");

        // Eliminate row `leaving_row` from every U column ordered after the
        // leaving column, processing in ascending order so fill generated into
        // the row by one elimination is seen by the later ones.  All work is
        // confined to the row itself, held in the (reused) accumulator keyed
        // by column id.
        let mut acc = std::mem::replace(&mut self.scratch_acc, SparseAccumulator::with_len(0));
        let mut heap = std::mem::take(&mut self.scratch_heap);
        let mut seen = std::mem::take(&mut self.scratch_seen);
        acc.clear();
        heap.clear();
        seen.clear();
        for &cid in &self.row_adj[leaving_row] {
            debug_assert!(self.ord[cid] > self.ord[p_id]);
            let val = self.ucols[cid]
                .get(leaving_row)
                .expect("row adjacency out of sync with U column");
            acc.add(cid, val);
            heap.push(Reverse((self.ord[cid], cid)));
        }
        self.row_adj[leaving_row].clear();

        let mut eta: Vec<(usize, f64)> = Vec::new();
        while let Some(Reverse((_, cid))) = heap.pop() {
            if seen.contains(&cid) {
                continue; // duplicate heap entry
            }
            seen.push(cid);
            let val = acc.get(cid);
            self.ucols[cid].remove(leaving_row);
            if val.abs() <= DROP_TOL {
                continue;
            }
            let pivot_row = self.ucols[cid].pivot_row;
            let pivot_value = self.ucols[cid].pivot_value;
            let mult = val / pivot_value;
            eta.push((pivot_row, mult));
            // Fill from row `pivot_row` of U into row `leaving_row`.
            for idx in 0..self.row_adj[pivot_row].len() {
                let nid = self.row_adj[pivot_row][idx];
                let u_val = self.ucols[nid]
                    .get(pivot_row)
                    .expect("row adjacency out of sync with U column");
                if !acc.is_marked(nid) {
                    heap.push(Reverse((self.ord[nid], nid)));
                }
                acc.add(nid, -mult * u_val);
            }
        }
        self.scratch_acc = acc;
        self.scratch_heap = heap;
        self.scratch_seen = seen;

        // New diagonal: the spike entry at the leaving row, transformed by the
        // row eta just built.
        let mut diag = spike[leaving_row];
        let mut spike_max = diag.abs();
        for &(r, mult) in &eta {
            diag -= mult * spike[r];
        }

        // Replace the leaving column (reusing its id) with the spike and move
        // it to the end of the pivot order.
        let old_rows = std::mem::take(&mut self.ucols[p_id].rows);
        for &r in &old_rows {
            remove_from(&mut self.row_adj[r], p_id);
        }
        self.ucols[p_id].vals.clear();
        let mut rows = Vec::new();
        let mut vals = Vec::new();
        {
            let mut take = |r: usize, v: f64| {
                if r != leaving_row && v.abs() > DROP_TOL {
                    rows.push(r);
                    vals.push(v);
                    self.row_adj[r].push(p_id);
                    spike_max = spike_max.max(v.abs());
                }
            };
            match spike_pattern {
                Some(pattern) => {
                    for &r in pattern {
                        take(r, spike[r]);
                    }
                }
                None => {
                    for (r, &v) in spike.iter().enumerate() {
                        take(r, v);
                    }
                }
            }
        }
        self.ucols[p_id].rows = rows;
        self.ucols[p_id].vals = vals;
        self.ucols[p_id].pivot_value = diag;
        debug_assert_eq!(self.ucols[p_id].pivot_row, leaving_row);

        self.unlink(p_id);
        self.link_tail(p_id);
        self.ord[p_id] = self.next_ord;
        self.next_ord += 1;

        if !eta.is_empty() {
            let k = self.lops.len() as u32;
            for &(r, _) in &eta {
                self.ftran_readers[r].push(k);
            }
            self.btran_readers[leaving_row].push(k);
            self.lops.push(LOp::Row {
                pivot_row: leaving_row,
                entries: eta,
            });
        }
        self.updates += 1;

        // Stability: a vanishing diagonal relative to the spike scale means the
        // new basis is (numerically) singular.
        if diag.abs() < 1e-11 * spike_max.max(1.0) {
            return Err(LuError::Singular);
        }
        Ok(())
    }

    /// Total stored nonzeros across the L operators (diagnostic).
    #[cfg(test)]
    fn l_nnz(&self) -> usize {
        self.lops
            .iter()
            .map(|op| match op {
                LOp::Col { entries, .. } | LOp::Row { entries, .. } => entries.len(),
            })
            .sum()
    }

    fn unlink(&mut self, id: usize) {
        let (prev, next) = (self.order_prev[id], self.order_next[id]);
        if prev != NONE {
            self.order_next[prev] = next;
        } else {
            self.head = next;
        }
        if next != NONE {
            self.order_prev[next] = prev;
        } else {
            self.tail = prev;
        }
    }

    fn link_tail(&mut self, id: usize) {
        self.order_prev[id] = self.tail;
        self.order_next[id] = NONE;
        if self.tail != NONE {
            self.order_next[self.tail] = id;
        } else {
            self.head = id;
        }
        self.tail = id;
    }
}

/// Pop entries until one satisfies `valid` (lazy deletion for singleton queues).
fn pop_valid<T: Copy>(stack: &mut Vec<T>, valid: impl Fn(&T) -> bool) -> Option<T> {
    while let Some(x) = stack.pop() {
        if valid(&x) {
            return Some(x);
        }
    }
    None
}

fn remove_from(list: &mut Vec<usize>, id: usize) {
    if let Some(k) = list.iter().position(|&x| x == id) {
        list.swap_remove(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift for reproducible random bases.
    struct Rng(u64);
    impl Rng {
        fn next_f64(&mut self) -> f64 {
            self.0 ^= self.0 << 13;
            self.0 ^= self.0 >> 7;
            self.0 ^= self.0 << 17;
            (self.0 >> 11) as f64 / (1u64 << 53) as f64
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next_f64() * n as f64) as usize % n
        }
    }

    /// A random sparse nonsingular basis: a permuted diagonally-dominant matrix
    /// with `extra` random off-diagonal entries.
    fn random_basis(m: usize, extra: usize, rng: &mut Rng) -> Vec<Vec<(usize, f64)>> {
        // Random permutation for the dominant diagonal.
        let mut perm: Vec<usize> = (0..m).collect();
        for i in (1..m).rev() {
            perm.swap(i, rng.below(i + 1));
        }
        let mut cols: Vec<Vec<(usize, f64)>> = (0..m)
            .map(|j| vec![(perm[j], 4.0 + rng.next_f64())])
            .collect();
        for _ in 0..extra {
            let j = rng.below(m);
            let r = rng.below(m);
            if cols[j].iter().all(|&(rr, _)| rr != r) {
                cols[j].push((r, rng.next_f64() * 2.0 - 1.0));
            }
        }
        cols
    }

    fn densify(cols: &[Vec<(usize, f64)>]) -> Vec<Vec<f64>> {
        let m = cols.len();
        let mut dense = vec![vec![0.0; m]; m];
        for (j, col) in cols.iter().enumerate() {
            for &(r, v) in col {
                dense[r][j] = v;
            }
        }
        dense
    }

    /// Dense Gaussian elimination with partial pivoting — the oracle.
    fn dense_solve(a: &[Vec<f64>], b: &[f64]) -> Vec<f64> {
        let m = a.len();
        let mut aug: Vec<Vec<f64>> = a
            .iter()
            .zip(b)
            .map(|(row, &bi)| {
                let mut r = row.clone();
                r.push(bi);
                r
            })
            .collect();
        for k in 0..m {
            let piv = (k..m)
                .max_by(|&i, &j| aug[i][k].abs().partial_cmp(&aug[j][k].abs()).unwrap())
                .unwrap();
            aug.swap(k, piv);
            assert!(aug[k][k].abs() > 1e-12, "oracle met a singular matrix");
            for i in 0..m {
                if i != k && aug[i][k] != 0.0 {
                    let f = aug[i][k] / aug[k][k];
                    let (pivot_row, target_row) = if i < k {
                        let (lo, hi) = aug.split_at_mut(k);
                        (&hi[0], &mut lo[i])
                    } else {
                        let (lo, hi) = aug.split_at_mut(i);
                        (&lo[k], &mut hi[0])
                    };
                    for (t, &p) in target_row[k..=m].iter_mut().zip(&pivot_row[k..=m]) {
                        *t -= f * p;
                    }
                }
            }
        }
        (0..m).map(|k| aug[k][m] / aug[k][k]).collect()
    }

    fn transpose(a: &[Vec<f64>]) -> Vec<Vec<f64>> {
        let m = a.len();
        (0..m).map(|i| (0..m).map(|j| a[j][i]).collect()).collect()
    }

    fn assert_vec_close(a: &[f64], b: &[f64], tol: f64) {
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn factors_the_identity_trivially() {
        let cols: Vec<Vec<(usize, f64)>> = (0..5).map(|j| vec![(j, 1.0)]).collect();
        let (lu, assignment) = LuFactors::factor(5, &cols, 1e-11).unwrap();
        assert_eq!(assignment, vec![0, 1, 2, 3, 4]);
        let mut v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        lu.ftran(&mut v);
        assert_vec_close(&v, &[1.0, 2.0, 3.0, 4.0, 5.0], 1e-14);
        lu.btran(&mut v);
        assert_vec_close(&v, &[1.0, 2.0, 3.0, 4.0, 5.0], 1e-14);
        assert_eq!(lu.l_nnz(), 0, "identity factors with zero fill");
    }

    #[test]
    fn ftran_and_btran_match_the_dense_oracle_on_random_bases() {
        let mut rng = Rng(0x5eed);
        for m in [3usize, 7, 15, 40] {
            for round in 0..4 {
                let cols = random_basis(m, m * 2, &mut rng);
                let dense = densify(&cols);
                let (lu, assignment) = LuFactors::factor(m, &cols, 1e-11)
                    .unwrap_or_else(|_| panic!("m={m} round={round}: factorisation failed"));
                // Assignment must be a permutation of the rows.
                let mut sorted = assignment.clone();
                sorted.sort_unstable();
                assert_eq!(sorted, (0..m).collect::<Vec<_>>());

                let b: Vec<f64> = (0..m).map(|_| rng.next_f64() * 10.0 - 5.0).collect();

                // ftran solves B x = b with x keyed by assigned pivot row.
                let mut x = b.clone();
                lu.ftran(&mut x);
                let oracle = dense_solve(&dense, &b);
                // oracle is keyed by column slot; re-key via the assignment.
                let mut expected = vec![0.0; m];
                for (slot, &row) in assignment.iter().enumerate() {
                    expected[row] = oracle[slot];
                }
                assert_vec_close(&x, &expected, 1e-8);

                // btran solves Bᵀ y = c (with the same keying on the input).
                let c: Vec<f64> = (0..m).map(|_| rng.next_f64() * 4.0 - 2.0).collect();
                let mut y = c.clone();
                lu.btran(&mut y);
                let mut c_slot = vec![0.0; m];
                for (slot, &row) in assignment.iter().enumerate() {
                    c_slot[slot] = c[row];
                }
                let oracle_t = dense_solve(&transpose(&dense), &c_slot);
                assert_vec_close(&y, &oracle_t, 1e-8);
            }
        }
    }

    #[test]
    fn forrest_tomlin_update_matches_a_fresh_factorisation() {
        let mut rng = Rng(0xfeed);
        for m in [5usize, 12, 30] {
            let mut cols = random_basis(m, m * 2, &mut rng);
            let (mut lu, assignment) = LuFactors::factor(m, &cols, 1e-11).unwrap();

            // Replace a sequence of random columns Forrest–Tomlin style.
            for step in 0..6 {
                // New entering column: dense-ish random with a strong anchor on
                // the leaving row so the update is well conditioned.
                // The slot→pivot-row assignment survives FT updates because the
                // entering column inherits the leaving column's pivot row.
                let leaving_row = rng.below(m);
                let slot = assignment.iter().position(|&r| r == leaving_row).unwrap();
                let mut entering: Vec<(usize, f64)> = vec![(leaving_row, 3.0 + rng.next_f64())];
                for _ in 0..4 {
                    let r = rng.below(m);
                    if entering.iter().all(|&(rr, _)| rr != r) {
                        entering.push((r, rng.next_f64() * 2.0 - 1.0));
                    }
                }

                // Spike = L⁻¹ a_q, then update.
                let mut spike = vec![0.0; m];
                for &(r, v) in &entering {
                    spike[r] = v;
                }
                lu.solve_l(&mut spike);
                lu.update(leaving_row, &spike, None)
                    .unwrap_or_else(|_| panic!("m={m} step={step}: update declared singular"));

                // The updated factors must agree with factoring the modified
                // basis from scratch on a probe solve.
                cols[slot] = entering;
                let dense = densify(&cols);
                let b: Vec<f64> = (0..m).map(|_| rng.next_f64() * 10.0 - 5.0).collect();
                let mut x = b.clone();
                lu.ftran(&mut x);
                let oracle = dense_solve(&dense, &b);
                // Keying: position slots keep their pivot rows across FT
                // updates (the entering column inherits `leaving_row`).
                let mut expected = vec![0.0; m];
                for (s, &row) in assignment.iter().enumerate() {
                    expected[row] = oracle[s];
                }
                assert_vec_close(&x, &expected, 1e-7);

                let c: Vec<f64> = (0..m).map(|_| rng.next_f64() * 4.0 - 2.0).collect();
                let mut y = c.clone();
                lu.btran(&mut y);
                let mut c_slot = vec![0.0; m];
                for (s, &row) in assignment.iter().enumerate() {
                    c_slot[s] = c[row];
                }
                let oracle_t = dense_solve(&transpose(&dense), &c_slot);
                assert_vec_close(&y, &oracle_t, 1e-7);
            }
            assert_eq!(lu.updates(), 6);
        }
    }

    #[test]
    fn structurally_singular_bases_are_rejected() {
        // Two identical columns.
        let cols = vec![
            vec![(0, 1.0), (1, 2.0)],
            vec![(0, 1.0), (1, 2.0)],
            vec![(2, 1.0)],
        ];
        assert_eq!(
            LuFactors::factor(3, &cols, 1e-11).err(),
            Some(LuError::Singular)
        );
        // A numerically vanishing forced pivot.
        let cols = vec![vec![(0, 1e-14)], vec![(1, 1.0)]];
        assert_eq!(
            LuFactors::factor(2, &cols, 1e-11).err(),
            Some(LuError::Singular)
        );
    }

    #[test]
    fn update_reports_singularity_for_a_dependent_entering_column() {
        // B = I; replace column 0 by a column with no component on row 0 —
        // the new basis is singular and the update must say so.
        let cols: Vec<Vec<(usize, f64)>> = (0..3).map(|j| vec![(j, 1.0)]).collect();
        let (mut lu, _) = LuFactors::factor(3, &cols, 1e-11).unwrap();
        let mut spike = vec![0.0, 1.0, 0.0];
        lu.solve_l(&mut spike);
        assert_eq!(lu.update(0, &spike, None).err(), Some(LuError::Singular));
    }

    #[test]
    fn sparse_solves_match_dense_solves_before_and_after_updates() {
        // The reach-based FTRAN/BTRAN must agree with the dense scans on
        // arbitrary sparse right-hand sides, and the returned pattern must
        // cover every nonzero of the result.  Exercised across FT updates so
        // the incrementally maintained reader lists are covered too.
        let mut rng = Rng(0x90ad);
        let mut sparse_hits = 0usize;
        for m in [9usize, 24, 64, 120] {
            let cols = random_basis(m, m * 2, &mut rng);
            let (mut lu, _) = LuFactors::factor(m, &cols, 1e-11).unwrap();
            for step in 0..8 {
                // A unit-ish sparse RHS (1-3 nonzeros, always sparse enough).
                let mut v = vec![0.0; m];
                let mut pattern = Vec::new();
                for _ in 0..(1 + step % 3) {
                    let r = rng.below(m);
                    if v[r] == 0.0 {
                        v[r] = rng.next_f64() * 4.0 - 2.0;
                        pattern.push(r);
                    }
                }

                let mut dense_f = v.clone();
                lu.ftran(&mut dense_f);
                let mut sparse_f = v.clone();
                let mut pat_f = pattern.clone();
                if lu.ftran_sparse(&mut sparse_f, &mut pat_f) {
                    sparse_hits += 1;
                    for (r, &x) in dense_f.iter().enumerate() {
                        if x.abs() > 1e-12 {
                            assert!(pat_f.contains(&r), "ftran pattern missed row {r}");
                        }
                    }
                }
                assert_vec_close(&sparse_f, &dense_f, 1e-9);

                let mut dense_b = v.clone();
                lu.btran(&mut dense_b);
                let mut sparse_b = v.clone();
                let mut pat_b = pattern.clone();
                if lu.btran_sparse(&mut sparse_b, &mut pat_b) {
                    sparse_hits += 1;
                    for (r, &x) in dense_b.iter().enumerate() {
                        if x.abs() > 1e-12 {
                            assert!(pat_b.contains(&r), "btran pattern missed row {r}");
                        }
                    }
                }
                assert_vec_close(&sparse_b, &dense_b, 1e-9);

                // Apply a Forrest–Tomlin update through the sparse spike path.
                let leaving_row = rng.below(m);
                let mut spike = vec![0.0; m];
                let mut spike_pat = vec![leaving_row];
                spike[leaving_row] = 3.0 + rng.next_f64();
                for _ in 0..3 {
                    let r = rng.below(m);
                    if spike[r] == 0.0 {
                        spike[r] = rng.next_f64() - 0.5;
                        spike_pat.push(r);
                    }
                }
                if lu.solve_l_sparse(&mut spike, &mut spike_pat) {
                    lu.update(leaving_row, &spike, Some(&spike_pat)).unwrap();
                } else {
                    lu.update(leaving_row, &spike, None).unwrap();
                }
            }
        }
        assert!(
            sparse_hits >= 1,
            "the reach-based paths never ran ({sparse_hits} hits) — thresholds broken?"
        );
    }

    /// On a block-bidiagonal basis (independent 8-row blocks) a unit
    /// right-hand side reaches at most its own block, so the reach-based
    /// solves must complete sparse — and still agree with the dense scans.
    #[test]
    fn reach_solves_complete_sparse_on_a_block_bidiagonal_basis() {
        let m = 512;
        let columns: Vec<Vec<(usize, f64)>> = (0..m)
            .map(|j| {
                let mut col = vec![(j, 2.0)];
                if j + 1 < m && j % 8 != 7 {
                    col.push((j + 1, -1.0));
                }
                col
            })
            .collect();
        let (mut lu, _) = LuFactors::factor(m, &columns, 1e-11).unwrap();
        for seed_row in [0usize, 100, 511] {
            let mut v = vec![0.0; m];
            v[seed_row] = 1.0;
            let mut dense_f = v.clone();
            lu.ftran(&mut dense_f);
            let mut pat = vec![seed_row];
            assert!(lu.ftran_sparse(&mut v, &mut pat), "ftran fell back dense");
            assert_vec_close(&v, &dense_f, 1e-9);
            for (r, &x) in dense_f.iter().enumerate() {
                if x.abs() > 1e-12 {
                    assert!(pat.contains(&r), "ftran pattern missed row {r}");
                }
            }

            let mut v = vec![0.0; m];
            v[seed_row] = 1.0;
            let mut dense_b = v.clone();
            lu.btran(&mut dense_b);
            let mut pat = vec![seed_row];
            assert!(lu.btran_sparse(&mut v, &mut pat), "btran fell back dense");
            assert_vec_close(&v, &dense_b, 1e-9);
            for (r, &x) in dense_b.iter().enumerate() {
                if x.abs() > 1e-12 {
                    assert!(pat.contains(&r), "btran pattern missed row {r}");
                }
            }
        }
    }

    #[test]
    fn dense_inputs_fall_back_to_the_dense_scan() {
        let mut rng = Rng(0xD0_17);
        let m = 16;
        let cols = random_basis(m, m * 3, &mut rng);
        let (mut lu, _) = LuFactors::factor(m, &cols, 1e-11).unwrap();
        let v0: Vec<f64> = (0..m).map(|_| rng.next_f64() + 0.1).collect();
        let mut pattern: Vec<usize> = (0..m).collect();
        let mut v = v0.clone();
        assert!(
            !lu.ftran_sparse(&mut v, &mut pattern),
            "dense RHS must fall back"
        );
        let mut expect = v0.clone();
        lu.ftran(&mut expect);
        assert_vec_close(&v, &expect, 1e-12);
    }

    #[test]
    fn u_never_gains_entries_across_updates() {
        // The Forrest–Tomlin elimination only deletes stored U entries (all new
        // mass lands in the replacement spike column), so U's nonzero count is
        // bounded by the pre-update count plus the spike length.
        let mut rng = Rng(0xabcd);
        let m = 20;
        let cols = random_basis(m, m * 3, &mut rng);
        let (mut lu, _) = LuFactors::factor(m, &cols, 1e-11).unwrap();
        for _ in 0..10 {
            let before: usize = lu.ucols.iter().map(|c| c.rows.len()).sum();
            let leaving_row = rng.below(m);
            let mut spike = vec![0.0; m];
            spike[leaving_row] = 5.0;
            for _ in 0..3 {
                let r = rng.below(m);
                if spike[r] == 0.0 {
                    spike[r] = rng.next_f64() - 0.5;
                }
            }
            lu.solve_l(&mut spike);
            let spike_nnz = spike
                .iter()
                .enumerate()
                .filter(|&(r, v)| r != leaving_row && v.abs() > 1e-12)
                .count();
            lu.update(leaving_row, &spike, None).unwrap();
            let after: usize = lu.ucols.iter().map(|c| c.rows.len()).sum();
            assert!(
                after <= before + spike_nnz,
                "U gained entries beyond the spike: {before} -> {after} (spike {spike_nnz})"
            );
        }
    }
}

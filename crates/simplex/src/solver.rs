//! Two-phase primal simplex drivers and the options shared between them.
//!
//! Two interchangeable backends sit behind [`LinearProgram::solve_with`]:
//!
//! * [`SolverBackend::SparseRevised`] (the default) — the revised simplex method
//!   over the CSC constraint matrix, with the basis inverse held as a sparse LU
//!   factorisation updated in place by Forrest–Tomlin rank-one updates and
//!   refactorised periodically; per-pivot cost is `O(nnz)` (see
//!   [`crate::revised`] and [`crate::lu`]).
//! * [`SolverBackend::DenseTableau`] — the classic dense full-tableau method;
//!   per-pivot cost is `O(rows · cols)`.  Kept as a fallback and as the oracle the
//!   sparse backend is tested against.  It always prices with the Dantzig rule —
//!   [`SolveOptions::pricing`] applies to the sparse backend only.
//!
//! Both backends share standardisation, anti-cycling rules, and termination
//! behaviour, so they report the same optima (the backend-agreement integration
//! tests assert this), differing only in asymptotics.

use serde::{Deserialize, Serialize};

use crate::error::SimplexError;
use crate::model::LinearProgram;
use crate::revised;
use crate::solution::{Solution, SolveStatus};
use crate::standard::{standardize, StandardForm};
use crate::tableau::Tableau;

/// Rule used to choose the entering column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PivotRule {
    /// Most negative reduced cost (classic Dantzig rule).  Fast in practice but can
    /// cycle on degenerate problems.
    Dantzig,
    /// Smallest-index rule (Bland).  Slow but guaranteed to terminate.
    Bland,
    /// Dantzig by default, switching to Bland after a run of consecutive degenerate
    /// pivots and back after the next improving pivot.  This is the default and the
    /// rule used for all experiments; the ablation bench compares the three.
    Hybrid {
        /// Number of consecutive degenerate pivots tolerated before switching to Bland.
        degenerate_threshold: usize,
    },
}

impl Default for PivotRule {
    fn default() -> Self {
        PivotRule::Hybrid {
            degenerate_threshold: 64,
        }
    }
}

/// Pricing rule used by the sparse revised backend to score entering
/// candidates while the anti-cycling machinery of [`PivotRule`] is *not* in
/// Bland mode.  (With `PivotRule::Dantzig` or `PivotRule::Bland` the classic
/// rule is forced and this option is ignored.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum PricingRule {
    /// Most negative reduced cost.  Cheap per iteration but blind to column
    /// scaling, which costs many extra pivots on the heavily degenerate
    /// mechanism LPs.
    Dantzig,
    /// Devex reference-framework pricing (Forrest & Goldfarb): score
    /// `d_j² / γ_j` with resettable reference weights `γ` updated from the
    /// pivot row each iteration.  Approximates steepest-edge at a fraction of
    /// its cost and substantially cuts pivot counts on degenerate problems;
    /// the default.
    #[default]
    Devex,
    /// Projected steepest-edge pricing (Forrest & Goldfarb): the weights are
    /// *exact* squared norms of the candidate columns projected onto a
    /// reference framework, maintained by an update that spends one extra
    /// BTRAN plus one matrix row pass per pivot.  Each entering column's
    /// stored weight is verified against the exact norm computed from its
    /// FTRAN; a large mismatch resets the framework.  Costs noticeably more
    /// per pivot than Devex and wins where degeneracy makes pivot counts the
    /// bottleneck.
    SteepestEdge,
}

impl std::fmt::Display for PricingRule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PricingRule::Dantzig => write!(f, "dantzig"),
            PricingRule::Devex => write!(f, "devex"),
            PricingRule::SteepestEdge => write!(f, "steepest-edge"),
        }
    }
}

/// Which simplex implementation executes the pivots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SolverBackend {
    /// Revised simplex over the sparse (CSC) matrix with an eta-file basis inverse.
    /// Per-pivot cost scales with the number of nonzeros — the right asymptotics
    /// for the mechanism-design LPs, whose rows have 2 to `n+1` nonzeros.
    #[default]
    SparseRevised,
    /// Dense full-tableau simplex.  Per-pivot cost scales with `rows · cols`;
    /// retained as a fallback and as a differential-testing oracle.
    DenseTableau,
}

impl std::fmt::Display for SolverBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolverBackend::SparseRevised => write!(f, "sparse-revised"),
            SolverBackend::DenseTableau => write!(f, "dense-tableau"),
        }
    }
}

/// Which form of the linear program the sparse backend pivots on.
///
/// The mechanism-design LPs have ~2x more constraint rows than columns, so
/// their **dual** has a basis half the size — and because every cost is
/// non-negative, `y = 0` is dual-feasible, which makes Phase 1 vanish in dual
/// form.  [`crate::dual`] builds the dual, solves it with the ordinary
/// machinery, and maps the dual-optimal basis back to a primal-optimal one by
/// complementary slackness, so [`Solution::optimal_basis`](crate::Solution)
/// stays expressed in the *primal* standard form either way: warm starts,
/// serialized bases, and α-family seeding are form-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum LpForm {
    /// Decide per problem: solve tall programs (rows ≥ 1.5 · cols and at
    /// least [`LpForm::AUTO_MIN_ROWS`] rows, no two-sided variable bounds)
    /// in dual form, everything else in primal form.  The default.
    #[default]
    Auto,
    /// Always pivot on the primal (the pre-dual behaviour).
    Primal,
    /// Pivot on the dual whenever the program is eligible (sparse backend,
    /// at least one row and one structural column).  An ineligible or
    /// numerically unlucky dual attempt silently falls back to the primal
    /// path — [`SolveStats::form`] reports which form actually ran.
    Dual,
}

impl LpForm {
    /// Minimum row count before [`LpForm::Auto`] considers the dual form:
    /// below this the whole solve is milliseconds and the extra
    /// dualize/certify factorisations are pure overhead.
    pub const AUTO_MIN_ROWS: usize = 512;
}

impl std::fmt::Display for LpForm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LpForm::Auto => write!(f, "auto"),
            LpForm::Primal => write!(f, "primal"),
            LpForm::Dual => write!(f, "dual"),
        }
    }
}

/// Options controlling a solve.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveOptions {
    /// Hard cap on the total number of pivots across both phases.
    pub max_iterations: usize,
    /// Absolute tolerance used for reduced costs, ratio tests, and feasibility checks.
    pub tolerance: f64,
    /// Anti-cycling entering rule (Dantzig / Bland / the hybrid fallback).
    pub pivot_rule: PivotRule,
    /// Which simplex implementation to run.
    pub backend: SolverBackend,
    /// Sparse backend only: refactorise the basis after this many
    /// Forrest–Tomlin updates.  Lower values cost more factorisations but keep
    /// the factors sparser and numerically fresher.  Treated as a floor — for
    /// tall problems the solver stretches the cadence to `rows / 32`, which
    /// tracks the measured optimum on the mechanism LPs.
    pub refactor_interval: usize,
    /// Sparse backend only: how entering candidates are scored outside Bland
    /// mode (see [`PricingRule`]).
    pub pricing: PricingRule,
    /// Sparse backend only: when nonzero, price in cyclic sections of this many
    /// columns, entering from the first section containing a candidate instead
    /// of always scanning every column (classic partial pricing).  `0` scans
    /// the full column range every iteration.
    pub partial_pricing: usize,
    /// Sparse backend only: how many *consecutive* numerical breakdowns (with
    /// no successful basis update in between) may be repaired — by
    /// refactorising from scratch, falling back to the last good basis —
    /// before the solve gives up with [`SimplexError::NumericalBreakdown`].
    /// Isolated breakdowns over a long run each get a fresh budget;
    /// [`SolveStats::basis_repairs`] reports the total.
    pub max_repairs: usize,
    /// Sparse backend only: seed the solve from this standard-form basis (one
    /// column index per constraint row, as reported by
    /// [`Solution::optimal_basis`](crate::Solution::optimal_basis) of an
    /// earlier solve of an *identically shaped* program).  A valid, dual-feasible
    /// seed skips Phase 1 entirely and replaces most of Phase 2 with a short
    /// **dual simplex** cleanup; a seed that is malformed, singular, or
    /// dual-infeasible silently falls back to the ordinary two-phase primal
    /// path ([`SolveStats::warm_started`] reports which path ran).
    #[serde(default)]
    pub warm_basis: Option<Vec<usize>>,
    /// Run the LP presolve pipeline (aliasing, singleton/empty/duplicate row
    /// elimination, fixed-variable substitution) before standardising.  The
    /// reductions are deterministic, so warm bases and the design cache stay
    /// consistent across runs with the same setting; disable only to compare
    /// against the raw formulation.  [`SolveStats::presolve_rows_removed`] and
    /// [`SolveStats::presolve_cols_removed`] report what it accomplished.
    #[serde(default = "default_presolve")]
    pub presolve: bool,
    /// Sparse backend only: which form of the LP to pivot on (see [`LpForm`]).
    /// [`LpForm::Auto`] (the default) solves tall programs in dual form; a
    /// warm seed composes with either choice — in dual form the stored
    /// primal-optimal basis is mapped to a dual-feasible seed by
    /// complementary slackness, so α-sweeps chain warm in dual form too.
    #[serde(default)]
    pub form: LpForm,
}

// Referenced by the string path in the `#[serde(default = "...")]` attribute
// above; rustc's dead-code pass cannot see through that.
#[allow(dead_code)]
fn default_presolve() -> bool {
    true
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            max_iterations: 500_000,
            tolerance: 1e-9,
            pivot_rule: PivotRule::default(),
            backend: SolverBackend::default(),
            refactor_interval: 64,
            pricing: PricingRule::default(),
            partial_pricing: 0,
            max_repairs: 2,
            warm_basis: None,
            presolve: true,
            form: LpForm::default(),
        }
    }
}

impl SolveOptions {
    /// Options tuned for a problem with `num_variables` LP variables: the
    /// pivot budget scales with the variable count (~60 pivots per variable
    /// comfortably covers the observed worst case — degenerate constrained
    /// designs pivot ≈ 3x columns), pricing is projected steepest edge (the
    /// winner at every measured mechanism-LP size), and [`LpForm::Auto`]
    /// picks the cheaper of the primal and dual forms.  Chain the `with_*`
    /// builders below to override a single knob without re-deriving the rest:
    ///
    /// ```
    /// use cpm_simplex::{PricingRule, SolveOptions};
    /// let options = SolveOptions::tuned(4_096).with_pricing(PricingRule::Devex);
    /// assert_eq!(options.pricing, PricingRule::Devex);
    /// assert!(options.max_iterations >= 60 * 4_096);
    /// ```
    pub fn tuned(num_variables: usize) -> Self {
        SolveOptions {
            max_iterations: 500_000usize.max(60 * num_variables),
            pricing: PricingRule::SteepestEdge,
            form: LpForm::Auto,
            ..SolveOptions::default()
        }
    }

    /// Builder: replace [`SolveOptions::max_iterations`].
    #[must_use]
    pub fn with_max_iterations(mut self, max_iterations: usize) -> Self {
        self.max_iterations = max_iterations;
        self
    }

    /// Builder: replace [`SolveOptions::tolerance`].
    #[must_use]
    pub fn with_tolerance(mut self, tolerance: f64) -> Self {
        self.tolerance = tolerance;
        self
    }

    /// Builder: replace [`SolveOptions::pivot_rule`].
    #[must_use]
    pub fn with_pivot_rule(mut self, pivot_rule: PivotRule) -> Self {
        self.pivot_rule = pivot_rule;
        self
    }

    /// Builder: replace [`SolveOptions::backend`].
    #[must_use]
    pub fn with_backend(mut self, backend: SolverBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Builder: replace [`SolveOptions::refactor_interval`].
    #[must_use]
    pub fn with_refactor_interval(mut self, refactor_interval: usize) -> Self {
        self.refactor_interval = refactor_interval;
        self
    }

    /// Builder: replace [`SolveOptions::pricing`].
    #[must_use]
    pub fn with_pricing(mut self, pricing: PricingRule) -> Self {
        self.pricing = pricing;
        self
    }

    /// Builder: replace [`SolveOptions::partial_pricing`].
    #[must_use]
    pub fn with_partial_pricing(mut self, partial_pricing: usize) -> Self {
        self.partial_pricing = partial_pricing;
        self
    }

    /// Builder: replace [`SolveOptions::max_repairs`].
    #[must_use]
    pub fn with_max_repairs(mut self, max_repairs: usize) -> Self {
        self.max_repairs = max_repairs;
        self
    }

    /// Builder: replace [`SolveOptions::warm_basis`].
    #[must_use]
    pub fn with_warm_basis(mut self, warm_basis: Option<Vec<usize>>) -> Self {
        self.warm_basis = warm_basis;
        self
    }

    /// Builder: replace [`SolveOptions::presolve`].
    #[must_use]
    pub fn with_presolve(mut self, presolve: bool) -> Self {
        self.presolve = presolve;
        self
    }

    /// Builder: replace [`SolveOptions::form`].
    #[must_use]
    pub fn with_form(mut self, form: LpForm) -> Self {
        self.form = form;
        self
    }
}

/// Statistics about a completed solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SolveStats {
    /// Pivots performed in Phase 1 (finding a feasible basis).
    pub phase1_iterations: usize,
    /// Pivots performed in Phase 2 (optimising the user objective).
    pub phase2_iterations: usize,
    /// Number of pivots that were degenerate (did not change the objective).
    pub degenerate_pivots: usize,
    /// Number of times the hybrid rule fell back to Bland's rule.
    pub bland_activations: usize,
    /// Number of artificial variables that were required.
    pub artificial_variables: usize,
    /// Sparse backend only: how many full LU factorisations of the basis were
    /// performed (the initial one, the periodic rebuilds, and any repairs).
    /// This is deliberately **not** the pivot count — each pivot between
    /// factorisations is a rank-one update, reported separately in
    /// [`SolveStats::basis_updates`].
    pub refactorizations: usize,
    /// Sparse backend only: total Forrest–Tomlin rank-one basis updates
    /// applied across the solve (one per pivot that did not trigger a
    /// refactorisation).
    pub basis_updates: usize,
    /// Sparse backend only: how many numerical breakdowns were repaired by
    /// rebuilding the factorisation (possibly from the last good basis)
    /// instead of aborting the solve.
    pub basis_repairs: usize,
    /// Sparse backend only: how many times the Devex reference framework was
    /// reset because its weights overflowed their trust bound.
    pub devex_resets: usize,
    /// Sparse backend only: how many times the projected steepest-edge
    /// reference framework was rebuilt because an entering column's stored
    /// weight disagreed with the exact projected norm of its FTRANed column.
    #[serde(default)]
    pub steepest_edge_resets: usize,
    /// Sparse backend only: boxed nonbasic variables flipped to their opposite
    /// bound by the long-step ratio tests instead of being pivoted through the
    /// basis.
    #[serde(default)]
    pub bound_flips: usize,
    /// Constraint rows removed by presolve before standardisation.
    #[serde(default)]
    pub presolve_rows_removed: usize,
    /// Variables eliminated by presolve (fixed, aliased, or empty) before
    /// standardisation.
    #[serde(default)]
    pub presolve_cols_removed: usize,
    /// Sparse backend only: dual-simplex pivots performed by a warm-started
    /// solve before the primal cleanup confirmed optimality.  Zero for cold
    /// solves (and for warm seeds that fell back to the primal path).
    #[serde(default)]
    pub dual_iterations: usize,
    /// Whether this solve was produced by the warm-start path (a seeded basis
    /// plus a dual-simplex cleanup) rather than the two-phase primal method.
    #[serde(default)]
    pub warm_started: bool,
    /// Which form of the LP the pivots ran on.  [`LpForm::Dual`] means the
    /// dualized program was solved and its optimal basis mapped back to the
    /// primal by complementary slackness; `phase1_iterations` /
    /// `phase2_iterations` then count the dual-form pivots plus the primal
    /// certification cleanup.  Always `Primal` or `Dual` in a reported stat —
    /// never `Auto` (that is an *options* value, resolved before the solve).
    #[serde(default = "default_stats_form")]
    pub form: LpForm,
    /// Which backend produced this solve.
    pub backend: SolverBackend,
}

// Pre-dual snapshots carry no `form` field; every solve they describe ran on
// the primal.  (Referenced by the serde attribute string above.)
#[allow(dead_code)]
fn default_stats_form() -> LpForm {
    LpForm::Primal
}

/// Outcome of running simplex iterations to optimality on one phase.
pub(crate) enum PhaseOutcome {
    /// No improving column remains.
    Optimal,
    /// An improving column has no blocking row.
    Unbounded,
}

/// Book-keeping shared by both backends: remaining pivot budget, statistics, and
/// the Dantzig-to-Bland fallback state of the hybrid rule.
pub(crate) struct PivotState {
    pub iterations_left: usize,
    pub stats: SolveStats,
    pub using_bland: bool,
    degenerate_streak: usize,
}

impl PivotState {
    pub fn new(options: &SolveOptions) -> Self {
        PivotState {
            iterations_left: options.max_iterations,
            stats: SolveStats {
                backend: options.backend,
                // The dual path overrides this after merging its own counters.
                form: LpForm::Primal,
                ..SolveStats::default()
            },
            using_bland: matches!(options.pivot_rule, PivotRule::Bland),
            degenerate_streak: 0,
        }
    }

    /// Reset the per-phase Bland fallback (each phase starts from the configured rule).
    pub fn start_phase(&mut self, options: &SolveOptions) {
        self.using_bland = matches!(options.pivot_rule, PivotRule::Bland);
        self.degenerate_streak = 0;
    }

    /// Record one pivot and update the hybrid-rule state.
    pub fn record_pivot(&mut self, options: &SolveOptions, nondegenerate: bool) {
        self.iterations_left -= 1;
        if nondegenerate {
            self.degenerate_streak = 0;
            if let PivotRule::Hybrid { .. } = options.pivot_rule {
                self.using_bland = false;
            }
        } else {
            self.stats.degenerate_pivots += 1;
            self.degenerate_streak += 1;
            if let PivotRule::Hybrid {
                degenerate_threshold,
            } = options.pivot_rule
            {
                if !self.using_bland && self.degenerate_streak >= degenerate_threshold {
                    self.using_bland = true;
                    self.stats.bland_activations += 1;
                }
            }
        }
    }
}

/// A standard-form optimum as produced by a backend: the point over the core
/// (structural + slack) columns plus the minimisation objective value.
pub(crate) struct SolvedPoint {
    pub z: Vec<f64>,
    pub objective: f64,
    pub stats: SolveStats,
    /// The optimal basis: one column index per row, where an index `>=` the
    /// core column count marks a redundant row whose artificial variable
    /// stayed (harmlessly) basic at zero.  `None` only when the program had
    /// no constraint rows.
    pub basis: Option<Vec<usize>>,
}

/// Solve an already-validated program.  Called by [`LinearProgram::solve_with`].
///
/// This is the observability choke point for the whole solver: every solve is
/// wrapped in a `simplex/lp_solve` span, completed stats are folded into the
/// global metrics registry, and a [`SimplexError::NumericalBreakdown`] that
/// *escapes* (repair budget exhausted — the recoverable ones are handled in
/// [`crate::revised`]) dumps the flight recorder to stderr.  Setting
/// `CPM_OBS_INJECT_BREAKDOWN=1` forces that terminal path without needing a
/// genuinely singular basis (used by the observability integration test; keep
/// it out of multi-test processes — it poisons every solve).
pub(crate) fn solve_prepared(
    lp: &LinearProgram,
    options: &SolveOptions,
) -> Result<Solution, SimplexError> {
    let span = cpm_obs::span!("simplex", "lp_solve");
    let injected = std::env::var("CPM_OBS_INJECT_BREAKDOWN")
        .map(|v| !matches!(v.trim(), "" | "0" | "off" | "false"))
        .unwrap_or(false);
    let result = if injected {
        Err(SimplexError::NumericalBreakdown {
            context: "injected by CPM_OBS_INJECT_BREAKDOWN",
            repairs: 0,
        })
    } else {
        solve_prepared_inner(lp, options)
    };
    match &result {
        Ok(solution) => record_solve_metrics(&solution.stats, span.elapsed_nanos()),
        Err(SimplexError::NumericalBreakdown { context, repairs }) => {
            cpm_obs::counter!("cpm_lp_breakdowns_total").inc();
            cpm_obs::error(
                "simplex",
                format!("terminal numerical breakdown: {context} (after {repairs} repairs)"),
            );
            cpm_obs::flight::dump("solver numerical breakdown");
        }
        Err(_) => {}
    }
    result
}

/// Fold one completed solve's [`SolveStats`] into the metrics registry (see
/// the cpm-obs crate docs for the catalogue).
fn record_solve_metrics(stats: &SolveStats, solve_nanos: u64) {
    if !cpm_obs::enabled() {
        return;
    }
    if stats.form == LpForm::Dual {
        cpm_obs::counter!("cpm_lp_solves_total{form=\"dual\"}").inc();
        cpm_obs::histogram!("cpm_lp_solve_nanos{form=\"dual\"}").record(solve_nanos);
    } else {
        cpm_obs::counter!("cpm_lp_solves_total{form=\"primal\"}").inc();
        cpm_obs::histogram!("cpm_lp_solve_nanos{form=\"primal\"}").record(solve_nanos);
    }
    cpm_obs::counter!("cpm_lp_pivots_total{phase=\"primal\"}")
        .add((stats.phase1_iterations + stats.phase2_iterations) as u64);
    cpm_obs::counter!("cpm_lp_pivots_total{phase=\"dual\"}").add(stats.dual_iterations as u64);
    cpm_obs::counter!("cpm_lp_refactorizations_total").add(stats.refactorizations as u64);
    cpm_obs::counter!("cpm_lp_repairs_total").add(stats.basis_repairs as u64);
    if stats.warm_started {
        cpm_obs::counter!("cpm_lp_warm_started_total").inc();
    }
}

fn solve_prepared_inner(
    lp: &LinearProgram,
    options: &SolveOptions,
) -> Result<Solution, SimplexError> {
    let presolved = if options.presolve {
        Some(crate::presolve::presolve(lp)?)
    } else {
        None
    };
    let (lp, map) = match &presolved {
        Some(pre) => (&pre.lp, Some(&pre.map)),
        None => (lp, None),
    };

    // Presolve may eliminate the entire program (every variable aliased or
    // fixed): the map alone reconstructs the optimum.
    if lp.num_variables() == 0 {
        let map = map.expect("only presolve produces an empty program");
        return Ok(Solution {
            status: SolveStatus::Optimal,
            objective_value: map.objective_offset,
            values: map.expand_values(&[]),
            stats: SolveStats {
                backend: options.backend,
                form: LpForm::Primal,
                presolve_rows_removed: map.rows_removed,
                presolve_cols_removed: map.cols_removed,
                ..SolveStats::default()
            },
            optimal_basis: None,
        });
    }

    // The sparse backend understands boxed columns natively (bound-flipping
    // ratio test), so two-sided bounds stay as boxes instead of extra rows;
    // the dense tableau still wants the row encoding.  The dual-form path
    // wants the row encoding too (its dualize transform folds slack columns
    // into sign bounds on `y`, which requires every primal column unboxed),
    // so the standard form is chosen together with the resolved LP form.
    let form = resolve_form(options, lp);
    let sf = match (options.backend, form) {
        (SolverBackend::SparseRevised, LpForm::Dual) => standardize(lp),
        (SolverBackend::SparseRevised, _) => crate::standard::standardize_boxed(lp),
        (SolverBackend::DenseTableau, _) => standardize(lp),
    };

    let mut solution = if sf.num_rows() == 0 {
        // No constraints: the optimum of a non-negative-variable LP is attained
        // at the lower bounds unless a negative cost runs to an open upper
        // bound, in which case it is unbounded.
        solve_unconstrained(&sf, options)?
    } else {
        let point = match options.backend {
            SolverBackend::SparseRevised => match form {
                LpForm::Dual => match crate::dual::solve_via_dual(&sf, options)? {
                    Some(point) => point,
                    // Ineligible or numerically unlucky dual attempt: the
                    // primal path is always correct.  The row-encoded form is
                    // a valid input for it (a superset of the boxed one).
                    None => revised::solve(&sf, options)?,
                },
                _ => revised::solve(&sf, options)?,
            },
            SolverBackend::DenseTableau => solve_dense(&sf, options)?,
        };

        let values = sf.recover_values(&point.z);
        let mut objective_value = point.objective + sf.objective_constant;
        if sf.maximize {
            objective_value = -objective_value;
        }
        Solution {
            status: SolveStatus::Optimal,
            objective_value,
            values,
            stats: point.stats,
            optimal_basis: point.basis,
        }
    };

    if let Some(map) = map {
        solution.objective_value += map.objective_offset;
        solution.values = map.expand_values(&solution.values);
        solution.stats.presolve_rows_removed = map.rows_removed;
        solution.stats.presolve_cols_removed = map.cols_removed;
    }
    Ok(solution)
}

/// Resolve [`SolveOptions::form`] to the form the solve will actually run on:
/// `Auto` becomes `Dual` exactly when the (presolved) program is tall enough
/// for the half-size dual basis to pay for the dualize and certification
/// factorisations — at least [`LpForm::AUTO_MIN_ROWS`] rows and rows ≥
/// 1.5 · cols — and no variable carries two-sided bounds (boxed columns keep
/// the primal and dual standard forms, and therefore their warm-basis spaces,
/// from coinciding).  The dense tableau always pivots on the primal.
fn resolve_form(options: &SolveOptions, lp: &LinearProgram) -> LpForm {
    if options.backend != SolverBackend::SparseRevised {
        return LpForm::Primal;
    }
    match options.form {
        LpForm::Primal => LpForm::Primal,
        LpForm::Dual => LpForm::Dual,
        LpForm::Auto => {
            let rows = lp.num_constraints();
            let cols = lp.num_variables();
            let boxed = lp
                .variables
                .iter()
                .any(|v| v.lower.is_finite() && v.upper.is_finite() && v.upper > v.lower);
            if rows >= LpForm::AUTO_MIN_ROWS && 2 * rows >= 3 * cols && !boxed {
                LpForm::Dual
            } else {
                LpForm::Primal
            }
        }
    }
}

/// Handle the degenerate "no constraints" case directly.
fn solve_unconstrained(
    sf: &StandardForm,
    options: &SolveOptions,
) -> Result<Solution, SimplexError> {
    // A negative-cost column runs to its upper bound — or without bound when
    // the box is open above.
    let mut z = vec![0.0; sf.num_columns()];
    for (j, &c) in sf.costs.iter().enumerate() {
        if c < 0.0 {
            if sf.upper[j].is_finite() {
                z[j] = sf.upper[j];
            } else {
                return Err(SimplexError::Unbounded);
            }
        }
    }
    let values = sf.recover_values(&z);
    let mut objective_value = sf.objective_constant
        + sf.costs
            .iter()
            .zip(z.iter())
            .map(|(&c, &v)| c * v)
            .sum::<f64>();
    if sf.maximize {
        objective_value = -objective_value;
    }
    Ok(Solution {
        status: SolveStatus::Optimal,
        objective_value,
        values,
        stats: SolveStats {
            backend: options.backend,
            form: LpForm::Primal,
            ..SolveStats::default()
        },
        optimal_basis: None,
    })
}

// ---------------------------------------------------------------------------
// Dense tableau backend.
// ---------------------------------------------------------------------------

fn solve_dense(sf: &StandardForm, options: &SolveOptions) -> Result<SolvedPoint, SimplexError> {
    let eps = options.tolerance;

    // Densify the CSC matrix and append artificial columns for rows without a
    // basic slack.
    let num_core_columns = sf.num_columns();
    let num_artificials = sf.basis_hint.iter().filter(|h| h.is_none()).count();
    let total_columns = num_core_columns + num_artificials;

    let mut rows = sf.matrix.to_dense_rows();
    for row in rows.iter_mut() {
        row.resize(total_columns, 0.0);
    }
    // Insert artificial basics in row order so that `basis[r]` lines up with row `r`.
    let mut basis = vec![usize::MAX; sf.num_rows()];
    let mut artificial_index = 0;
    for (r, hint) in sf.basis_hint.iter().enumerate() {
        match hint {
            Some(col) => basis[r] = *col,
            None => {
                let col = num_core_columns + artificial_index;
                rows[r][col] = 1.0;
                basis[r] = col;
                artificial_index += 1;
            }
        }
    }

    let mut tableau = Tableau::new(rows, sf.rhs.clone(), basis);
    let mut state = PivotState::new(options);
    state.stats.artificial_variables = num_artificials;

    // ------------------------------- Phase 1 -------------------------------
    if num_artificials > 0 {
        let mut phase1_costs = vec![0.0; total_columns];
        for cost in phase1_costs.iter_mut().skip(num_core_columns) {
            *cost = 1.0;
        }
        tableau.set_costs(&phase1_costs);
        let before = state.iterations_left;
        let outcome = run_phase(
            &mut tableau,
            options,
            eps,
            num_core_columns,
            &mut state,
            true,
        )?;
        state.stats.phase1_iterations = before - state.iterations_left;
        if matches!(outcome, PhaseOutcome::Unbounded) {
            // Phase 1 objective is bounded below by zero; unboundedness indicates a
            // numerical breakdown.
            return Err(SimplexError::NumericalBreakdown {
                context: "phase 1 of the dense tableau became unbounded",
                repairs: 0,
            });
        }
        if tableau.objective() > 1e-6 {
            return Err(SimplexError::Infeasible);
        }
        drive_out_artificials(&mut tableau, num_core_columns, eps);
    }

    // ------------------------------- Phase 2 -------------------------------
    let mut phase2_costs = sf.costs.clone();
    phase2_costs.resize(total_columns, 0.0);
    tableau.set_costs(&phase2_costs);
    state.start_phase(options);
    let before = state.iterations_left;
    let outcome = run_phase(
        &mut tableau,
        options,
        eps,
        num_core_columns,
        &mut state,
        false,
    )?;
    state.stats.phase2_iterations = before - state.iterations_left;
    if matches!(outcome, PhaseOutcome::Unbounded) {
        return Err(SimplexError::Unbounded);
    }

    let z = tableau.basic_solution();
    Ok(SolvedPoint {
        z: z[..num_core_columns].to_vec(),
        objective: tableau.objective(),
        stats: state.stats,
        basis: Some(tableau.basis().to_vec()),
    })
}

/// Run simplex pivots until optimality or unboundedness for the current cost row.
fn run_phase(
    tableau: &mut Tableau,
    options: &SolveOptions,
    eps: f64,
    num_core_columns: usize,
    state: &mut PivotState,
    is_phase1: bool,
) -> Result<PhaseOutcome, SimplexError> {
    // In Phase 1 artificial columns may appear in the basis (they start there) but
    // must never *re-enter* once they have left; in Phase 2 they must never enter.
    let entering_limit = if is_phase1 {
        tableau.num_cols()
    } else {
        num_core_columns
    };

    loop {
        if state.iterations_left == 0 {
            return Err(SimplexError::IterationLimit {
                limit: options.max_iterations,
            });
        }

        let entering = choose_entering(
            tableau,
            entering_limit,
            num_core_columns,
            eps,
            state.using_bland,
            is_phase1,
        );
        let Some(col) = entering else {
            return Ok(PhaseOutcome::Optimal);
        };
        let Some(row) = tableau.ratio_test(col, eps) else {
            return Ok(PhaseOutcome::Unbounded);
        };

        let nondegenerate = tableau.pivot(row, col);
        state.record_pivot(options, nondegenerate);
    }
}

/// Choose the entering column according to the active rule.
///
/// Artificial columns (indices `>= num_core_columns`) are never allowed to enter:
/// in Phase 1 they start basic and only ever leave, and in Phase 2 `entering_limit`
/// already excludes them.
fn choose_entering(
    tableau: &Tableau,
    entering_limit: usize,
    num_core_columns: usize,
    eps: f64,
    use_bland: bool,
    is_phase1: bool,
) -> Option<usize> {
    let limit = entering_limit.min(tableau.num_cols());
    let excluded_from = if is_phase1 { num_core_columns } else { limit };
    if use_bland {
        (0..limit)
            .filter(|&j| j < excluded_from)
            .find(|&j| tableau.reduced_cost(j) < -eps)
    } else {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..limit {
            if j >= excluded_from {
                continue;
            }
            let rc = tableau.reduced_cost(j);
            if rc < -eps {
                match best {
                    None => best = Some((j, rc)),
                    Some((_, best_rc)) if rc < best_rc => best = Some((j, rc)),
                    _ => {}
                }
            }
        }
        best.map(|(j, _)| j)
    }
}

/// After Phase 1, pivot any artificial variables that are still basic (at value zero)
/// out of the basis.  Rows where this is impossible are redundant constraints; their
/// artificial stays basic at zero and is harmless because the entire row is zero on
/// the structural columns.
fn drive_out_artificials(tableau: &mut Tableau, num_core_columns: usize, eps: f64) {
    for row in 0..tableau.num_rows() {
        let basic = tableau.basis()[row];
        if basic >= num_core_columns {
            if let Some(col) = tableau.first_nonzero_in_row(row, num_core_columns, eps) {
                tableau.pivot(row, col);
            } else {
                debug_assert!(tableau.row_is_zero_up_to(row, num_core_columns, eps));
                debug_assert!(tableau.rhs(row).abs() <= 1e-6);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearProgram, Relation};

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-7, "{a} != {b}");
    }

    /// Both backends, so every shared driver test exercises each implementation.
    const BACKENDS: [SolverBackend; 2] =
        [SolverBackend::SparseRevised, SolverBackend::DenseTableau];

    fn options_for(backend: SolverBackend) -> SolveOptions {
        SolveOptions {
            backend,
            ..SolveOptions::default()
        }
    }

    /// Pre-PR-6 serialized options carry no `presolve` field and pre-dual
    /// stats carry no `form`; both must fill from their documented defaults
    /// (`true` / `Primal`), not `Default::default()` — this pins the vendored
    /// derive's `#[serde(default = "path")]` support.
    #[test]
    fn serde_defaults_for_missing_presolve_and_form_fields() {
        let mut options_json = serde_json::to_string(&SolveOptions::default()).unwrap();
        assert!(options_json.contains("\"presolve\":true"));
        options_json = options_json.replace("\"presolve\":true,", "");
        let options: SolveOptions = serde_json::from_str(&options_json).unwrap();
        assert!(options.presolve, "missing `presolve` defaults to on");

        let mut stats_json = serde_json::to_string(&SolveStats {
            form: LpForm::Dual,
            ..SolveStats::default()
        })
        .unwrap();
        assert!(stats_json.contains("\"form\":"));
        stats_json = stats_json.replace(",\"form\":\"Dual\"", "");
        assert!(
            !stats_json.contains("form"),
            "field removed from the fixture"
        );
        let stats: SolveStats = serde_json::from_str(&stats_json).unwrap();
        assert_eq!(
            stats.form,
            LpForm::Primal,
            "a pre-dual snapshot's solve ran on the primal"
        );
    }

    #[test]
    fn classic_textbook_maximisation() {
        // max 3x + 5y subject to x <= 4, 2y <= 12, 3x + 2y <= 18.
        for backend in BACKENDS {
            let mut lp = LinearProgram::maximize();
            let x = lp.add_variable("x");
            let y = lp.add_variable("y");
            lp.set_objective_coefficient(x, 3.0);
            lp.set_objective_coefficient(y, 5.0);
            lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 4.0);
            lp.add_constraint(vec![(y, 2.0)], Relation::LessEq, 12.0);
            lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::LessEq, 18.0);
            let solution = lp.solve_with(&options_for(backend)).unwrap();
            assert_close(solution.objective_value, 36.0);
            assert_close(solution.value(x), 2.0);
            assert_close(solution.value(y), 6.0);
            assert_eq!(solution.stats.backend, backend);
        }
    }

    #[test]
    fn equality_constraints_need_phase_one() {
        // min x + 2y subject to x + y = 10, x - y >= 2.
        for backend in BACKENDS {
            let mut lp = LinearProgram::minimize();
            let x = lp.add_variable("x");
            let y = lp.add_variable("y");
            lp.set_objective_coefficient(x, 1.0);
            lp.set_objective_coefficient(y, 2.0);
            lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Equal, 10.0);
            lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::GreaterEq, 2.0);
            let solution = lp.solve_with(&options_for(backend)).unwrap();
            // Optimal at y = 0, x = 10 -> objective 10.
            assert_close(solution.objective_value, 10.0);
            assert_close(solution.value(x), 10.0);
            assert_close(solution.value(y), 0.0);
            assert!(solution.stats.artificial_variables >= 1);
        }
    }

    #[test]
    fn infeasible_program_is_detected() {
        for backend in BACKENDS {
            let mut lp = LinearProgram::minimize();
            let x = lp.add_variable("x");
            lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 1.0);
            lp.add_constraint(vec![(x, 1.0)], Relation::GreaterEq, 2.0);
            assert_eq!(
                lp.solve_with(&options_for(backend)).unwrap_err(),
                SimplexError::Infeasible
            );
        }
    }

    #[test]
    fn unbounded_program_is_detected() {
        for backend in BACKENDS {
            let mut lp = LinearProgram::maximize();
            let x = lp.add_variable("x");
            lp.set_objective_coefficient(x, 1.0);
            lp.add_constraint(vec![(x, -1.0)], Relation::LessEq, 1.0);
            assert_eq!(
                lp.solve_with(&options_for(backend)).unwrap_err(),
                SimplexError::Unbounded
            );
        }
    }

    #[test]
    fn unconstrained_minimisation_sits_at_lower_bounds() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable_with_bounds("x", 2.0, f64::INFINITY);
        lp.set_objective_coefficient(x, 3.0);
        let solution = lp.solve().unwrap();
        assert_close(solution.objective_value, 6.0);
        assert_close(solution.value(x), 2.0);
    }

    #[test]
    fn unconstrained_with_negative_cost_is_unbounded() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, -1.0);
        assert_eq!(lp.solve().unwrap_err(), SimplexError::Unbounded);
    }

    #[test]
    fn degenerate_problem_terminates_with_anticycling_rules() {
        // Beale's classic cycling example.  The pure Dantzig rule cycles forever on
        // this instance (that is the point of the example, and why the hybrid rule is
        // the default); Bland and the hybrid rule must terminate with objective -0.05.
        for backend in BACKENDS {
            for rule in [
                PivotRule::Bland,
                PivotRule::Hybrid {
                    degenerate_threshold: 4,
                },
            ] {
                let mut lp = LinearProgram::minimize();
                let x1 = lp.add_variable("x1");
                let x2 = lp.add_variable("x2");
                let x3 = lp.add_variable("x3");
                let x4 = lp.add_variable("x4");
                lp.set_objective_coefficient(x1, -0.75);
                lp.set_objective_coefficient(x2, 150.0);
                lp.set_objective_coefficient(x3, -0.02);
                lp.set_objective_coefficient(x4, 6.0);
                lp.add_constraint(
                    vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
                    Relation::LessEq,
                    0.0,
                );
                lp.add_constraint(
                    vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
                    Relation::LessEq,
                    0.0,
                );
                lp.add_constraint(vec![(x3, 1.0)], Relation::LessEq, 1.0);
                let options = SolveOptions {
                    pivot_rule: rule,
                    backend,
                    ..SolveOptions::default()
                };
                let solution = lp.solve_with(&options).unwrap();
                assert_close(solution.objective_value, -0.05);
            }
        }
    }

    #[test]
    fn dantzig_rule_cycles_on_beale_and_hits_the_iteration_limit() {
        // Companion to the test above: document that the pure Dantzig rule does cycle
        // on Beale's example, which is why it is not the default.
        for backend in BACKENDS {
            let mut lp = LinearProgram::minimize();
            let x1 = lp.add_variable("x1");
            let x2 = lp.add_variable("x2");
            let x3 = lp.add_variable("x3");
            let x4 = lp.add_variable("x4");
            lp.set_objective_coefficient(x1, -0.75);
            lp.set_objective_coefficient(x2, 150.0);
            lp.set_objective_coefficient(x3, -0.02);
            lp.set_objective_coefficient(x4, 6.0);
            lp.add_constraint(
                vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
                Relation::LessEq,
                0.0,
            );
            lp.add_constraint(
                vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
                Relation::LessEq,
                0.0,
            );
            lp.add_constraint(vec![(x3, 1.0)], Relation::LessEq, 1.0);
            let options = SolveOptions {
                pivot_rule: PivotRule::Dantzig,
                max_iterations: 10_000,
                backend,
                ..SolveOptions::default()
            };
            match lp.solve_with(&options) {
                Err(SimplexError::IterationLimit { .. }) => {}
                Ok(solution) => assert_close(solution.objective_value, -0.05),
                Err(other) => panic!("unexpected error: {other}"),
            }
        }
    }

    #[test]
    fn redundant_equalities_are_tolerated() {
        // x + y = 4 stated twice; the second row becomes redundant after Phase 1.
        for backend in BACKENDS {
            let mut lp = LinearProgram::minimize();
            let x = lp.add_variable("x");
            let y = lp.add_variable("y");
            lp.set_objective_coefficient(x, 1.0);
            lp.set_objective_coefficient(y, 3.0);
            lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Equal, 4.0);
            lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Equal, 4.0);
            let solution = lp.solve_with(&options_for(backend)).unwrap();
            assert_close(solution.objective_value, 4.0);
            assert_close(solution.value(x), 4.0);
        }
    }

    #[test]
    fn stats_are_populated() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Equal, 2.0);
        let solution = lp.solve().unwrap();
        assert!(solution.stats.phase1_iterations + solution.stats.phase2_iterations >= 1);
        assert_eq!(solution.stats.artificial_variables, 1);
        assert_eq!(solution.stats.backend, SolverBackend::SparseRevised);
        // LU accounting: the initial factorisation always runs, every pivot is
        // a rank-one update, and a clean solve needs no repairs.
        assert!(solution.stats.refactorizations >= 1);
        assert!(solution.stats.basis_updates >= 1);
        // Every recorded pivot is a rank-one update (driving residual
        // artificials out after Phase 1 may add a few more).
        assert!(
            solution.stats.basis_updates
                >= solution.stats.phase1_iterations + solution.stats.phase2_iterations
        );
        assert_eq!(solution.stats.basis_repairs, 0);
    }

    #[test]
    fn iteration_limit_is_enforced() {
        for backend in BACKENDS {
            let mut lp = LinearProgram::maximize();
            let x = lp.add_variable("x");
            let y = lp.add_variable("y");
            lp.set_objective_coefficient(x, 3.0);
            lp.set_objective_coefficient(y, 5.0);
            lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 4.0);
            lp.add_constraint(vec![(y, 2.0)], Relation::LessEq, 12.0);
            lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::LessEq, 18.0);
            let options = SolveOptions {
                max_iterations: 1,
                backend,
                ..SolveOptions::default()
            };
            assert!(matches!(
                lp.solve_with(&options).unwrap_err(),
                SimplexError::IterationLimit { limit: 1 }
            ));
        }
    }

    #[test]
    fn aggressive_refactorisation_still_solves() {
        // refactor_interval = 1 forces a rebuild after every pivot; the answer must
        // not change, only the refactorisation count.
        let mut lp = LinearProgram::minimize();
        let vars = lp.add_variables("p", 6);
        for (i, v) in vars.iter().enumerate() {
            lp.set_objective_coefficient(*v, 1.0 + i as f64);
        }
        lp.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Equal, 1.0);
        for w in vars.windows(2) {
            lp.add_constraint(vec![(w[0], 1.0), (w[1], -0.5)], Relation::GreaterEq, 0.0);
        }
        let baseline = lp.solve().unwrap();
        let aggressive = lp
            .solve_with(&SolveOptions {
                refactor_interval: 1,
                ..SolveOptions::default()
            })
            .unwrap();
        assert_close(baseline.objective_value, aggressive.objective_value);
        assert!(aggressive.stats.refactorizations >= baseline.stats.refactorizations);
    }
}

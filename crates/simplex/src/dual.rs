//! Dual-form solving: build the dual of a standardized primal LP, solve it
//! with the ordinary revised-simplex machinery, and map the dual-optimal
//! basis back to a **primal-optimal basis** by complementary slackness.
//!
//! ## Why
//!
//! The mechanism-design LPs are tall: ~2x more rows than columns (33 153 ×
//! 16 641 at n = 128).  The simplex basis is square in the *row* count, so
//! every FTRAN/BTRAN/factorisation on the primal pays for 33 k rows.  The
//! dual of `min c'z, Az = b, z ≥ 0` is `max b'y, A'y ≤ c` — one row per
//! primal *structural* column — so its basis is half the size.  Better
//! still, every mechanism-LP cost is ≥ 0, which makes `y = 0` feasible for
//! the dual: the dual standard form starts from an all-slack basis and
//! **Phase 1 vanishes entirely**.
//!
//! ## The dualize transform
//!
//! [`dualize`] consumes a row-encoded primal [`StandardForm`] (no boxed
//! columns) and produces the dual as a [`LinearProgram`] that the existing
//! standardisation handles:
//!
//! * each primal row `r` becomes a dual variable `y_r`.  Primal slack
//!   columns are *folded into sign bounds* instead of rows of their own: a
//!   `+1` slack on row `r` means the dual constraint `y_r ≤ 0`, a `−1`
//!   surplus means `y_r ≥ 0`, and an equality row leaves `y_r` free.  This
//!   is what keeps the dual at `num_structural` rows rather than
//!   `num_columns` rows;
//! * each primal structural column `j` becomes the dual row
//!   `Σ_r a_rj · y_r ≤ c_j`;
//! * the dual objective is `min −b'y` (the primal minimisation objective is
//!   `−1 ×` the dual optimum).
//!
//! ## The basis-mapping contract
//!
//! Both directions are purely combinatorial — no numerics:
//!
//! * **dual-optimal → primal basis** ([`Dualized::map_dual_basis`]): the
//!   primal basic set is `S = {j : the dual slack of row j is nonbasic}`
//!   (the structurally tight dual rows), one per basic dual `y` column;
//!   every primal row whose `y_r` is *nonbasic* (so `y_r = 0`) is filled
//!   with its own slack column — or an artificial marker for equality rows.
//!   Nonsingularity of the dual basis is equivalent to nonsingularity of
//!   this primal candidate (expand both determinants along their unit
//!   columns and the same `A[Y, S]` minor remains).
//! * **primal seed → dual seed** ([`Dualized::map_primal_seed`]): the exact
//!   inverse, so a stored primal-optimal warm basis becomes a dual-feasible
//!   seed and α-sweeps chain warm in dual form too.
//!
//! The mapped primal basis is then handed to the ordinary warm-start
//! machinery ([`revised::warm_solve`]), which factors it, verifies dual
//! feasibility of the reduced costs, mops up any degenerate residue in a
//! handful of pivots, and **certifies optimality with the primal machinery**
//! — the dual solve is a (very fast) seed generator, never the authority on
//! the answer.  Anything that goes wrong at any step reports `None` and the
//! caller falls back to the cold primal path.

use crate::error::SimplexError;
use crate::model::{LinearProgram, Relation};
use crate::revised;
use crate::solver::{LpForm, SolveOptions, SolvedPoint};
use crate::standard::{standardize_boxed, StandardForm, VariableMapping};

/// A dualized program plus the bookkeeping needed to map bases across forms.
pub(crate) struct Dualized {
    /// Standard form of the dual LP (never boxed: every `y` bound is
    /// one-sided, so `standardize_boxed` produces no finite uppers).
    pub sf: StandardForm,
    /// Per primal row: the primal slack/surplus column folded into `y_r`'s
    /// sign bound, if the row has one (equality rows do not).
    primal_slack_of_row: Vec<Option<usize>>,
    /// Per dual *structural* column: the primal row whose `y` it encodes
    /// (the split columns of a free `y` both map to their row).
    y_col_row: Vec<usize>,
}

/// Scale of the deterministic dual-rhs anti-degeneracy perturbation (see the
/// comment at the constraint loop in [`dualize`]).  Well above the solver's
/// feasibility tolerance (so ties actually break) and small enough that the
/// perturbed optimal basis stays within a few certification pivots of the
/// true one.
const RHS_PERTURBATION: f64 = 1e-6;

/// Build the dual of a row-encoded primal standard form.  The caller must
/// ensure `primal` has no boxed columns (`solve_via_dual` gates on this).
pub(crate) fn dualize(primal: &StandardForm) -> Dualized {
    let m = primal.num_rows();
    let ns = primal.num_structural;
    debug_assert!(primal.upper.iter().all(|u| u.is_infinite()));

    // Locate each row's slack/surplus singleton so it can fold into a bound.
    let mut slack_of_row: Vec<Option<(usize, f64)>> = vec![None; m];
    for col in ns..primal.num_columns() {
        let mut entries = primal.matrix.column(col);
        let (row, value) = entries
            .next()
            .expect("slack columns are nonempty singletons");
        debug_assert!(entries.next().is_none(), "slack columns are singletons");
        debug_assert!(slack_of_row[row].is_none(), "one slack per row");
        slack_of_row[row] = Some((col, value));
    }

    let mut lp = LinearProgram::minimize();
    let y: Vec<_> = (0..m)
        .map(|r| {
            let (lower, upper) = match slack_of_row[r] {
                // `+1` slack: its dual constraint is `y_r <= 0`.
                Some((_, value)) if value > 0.0 => (f64::NEG_INFINITY, 0.0),
                // `-1` surplus: `-y_r <= 0`, i.e. `y_r >= 0`.
                Some(_) => (0.0, f64::INFINITY),
                // Equality row: free multiplier.
                None => (f64::NEG_INFINITY, f64::INFINITY),
            };
            let var = lp.add_variable_with_bounds(format!("y{r}"), lower, upper);
            // max b'y as a minimisation.
            lp.set_objective_coefficient(var, -primal.rhs[r]);
            var
        })
        .collect();
    // One dual row per primal structural column: the primal CSC column *is*
    // the dual row's sparse term list.
    //
    // The rhs carries a tiny deterministic **anti-degeneracy perturbation**.
    // Mechanism-LP costs are full of exact ties (uniform objective weights),
    // and ties in the dual rhs are what make the dual walk spin on degenerate
    // vertices (60%+ zero-step pivots unperturbed).  A low-discrepancy
    // positive offset breaks every tie while keeping `y = 0` feasible
    // (`c ≥ 0` stays `≥ 0`).  Exactness is *not* lost: the perturbed
    // dual-optimal basis is only used as a seed, and the primal certification
    // re-solves with the true costs.
    const PHI_FRAC: f64 = 0.618_033_988_749_894_9;
    for j in 0..ns {
        let jitter = ((j + 1) as f64 * PHI_FRAC).fract();
        let eps = RHS_PERTURBATION * (1.0 + primal.costs[j].abs()) * (0.5 + jitter);
        lp.add_constraint(
            primal.matrix.column(j).map(|(r, a)| (y[r], a)),
            Relation::LessEq,
            primal.costs[j] + eps,
        );
    }

    let sf = standardize_boxed(&lp);
    debug_assert_eq!(sf.num_rows(), ns);
    debug_assert!(sf.upper.iter().all(|u| u.is_infinite()));

    let mut y_col_row = vec![0usize; sf.num_structural];
    for (r, mapping) in sf.mapping.iter().enumerate() {
        match *mapping {
            VariableMapping::Shifted { col, .. } | VariableMapping::Negated { col, .. } => {
                y_col_row[col] = r;
            }
            VariableMapping::Split { pos, neg } => {
                y_col_row[pos] = r;
                y_col_row[neg] = r;
            }
            VariableMapping::Fixed(_) => unreachable!("no dual variable is bound-fixed"),
        }
    }

    Dualized {
        sf,
        primal_slack_of_row: slack_of_row.iter().map(|s| s.map(|(col, _)| col)).collect(),
        y_col_row,
    }
}

impl Dualized {
    /// The dual standard-form slack column of dual row `j` (every dual row is
    /// a `<=` row, so slacks are appended in row order).
    fn dual_slack_col(&self, j: usize) -> usize {
        self.sf.num_structural + j
    }

    /// The dual standard-form column to make basic when `y_r` must be basic.
    /// For a free `y` (primal equality row) the positive split part is used;
    /// if the optimum wants `y_r < 0` the dual cleanup swaps in the negative
    /// part with an ordinary pivot.
    fn y_entry_col(&self, r: usize) -> usize {
        match self.sf.mapping[r] {
            VariableMapping::Shifted { col, .. } | VariableMapping::Negated { col, .. } => col,
            VariableMapping::Split { pos, .. } => pos,
            VariableMapping::Fixed(_) => unreachable!("no dual variable is bound-fixed"),
        }
    }

    /// Map a primal-optimal basis (primal standard-form column per primal
    /// row) to the complementary dual basis, usable as a dual warm seed.
    ///
    /// Basic primal structural columns become *tight* dual rows (their dual
    /// slack leaves the seed); every primal row covered by a basic slack or
    /// artificial has `y_r = 0` nonbasic, and the remaining rows' `y`
    /// columns pair up with the tight dual rows (the pairing inside the set
    /// is arbitrary — the factorisation re-keys rows).  `None` for any seed
    /// that is malformed or double-covers a row; the dual solve then simply
    /// starts cold.
    pub fn map_primal_seed(&self, primal: &StandardForm, seed: &[usize]) -> Option<Vec<usize>> {
        let m = primal.num_rows();
        let ns = primal.num_structural;
        let num_core = primal.num_columns();
        if seed.len() != m {
            return None;
        }
        let mut in_s = vec![false; ns];
        let mut covered = vec![false; m];
        for (slot, &col) in seed.iter().enumerate() {
            let covered_row = if col < ns {
                if in_s[col] {
                    return None;
                }
                in_s[col] = true;
                continue;
            } else if col < num_core {
                // A slack column covers its own row, wherever it is listed.
                primal
                    .matrix
                    .column(col)
                    .next()
                    .map(|(row, _)| row)
                    .expect("slack columns are nonempty")
            } else {
                // Artificial markers keep the row they are listed under basic
                // (the same convention `RevisedState::with_basis` applies).
                slot
            };
            if covered[covered_row] {
                return None;
            }
            covered[covered_row] = true;
        }

        let mut uncovered = (0..m).filter(|&r| !covered[r]);
        let mut dual_seed = Vec::with_capacity(ns);
        for (j, &in_basis) in in_s.iter().enumerate().take(ns) {
            if in_basis {
                dual_seed.push(self.y_entry_col(uncovered.next()?));
            } else {
                dual_seed.push(self.dual_slack_col(j));
            }
        }
        if uncovered.next().is_some() {
            return None;
        }
        Some(dual_seed)
    }

    /// Map a dual-optimal basis back to a primal basis (see the module docs
    /// for the complementary-slackness argument).  `None` when the dual
    /// basis is not mappable (a split `y` with both parts basic, or a count
    /// mismatch) — the caller falls back to the cold primal path.
    pub fn map_dual_basis(
        &self,
        primal: &StandardForm,
        dual_basis: &[usize],
    ) -> Option<Vec<usize>> {
        let nd = self.sf.num_rows();
        let nds = self.sf.num_structural;
        let dual_core = self.sf.num_columns();
        let m = primal.num_rows();
        if dual_basis.len() != nd {
            return None;
        }
        // `tight[j]`: the dual slack of row j is nonbasic and no artificial
        // pins the row — primal column j joins the basic set S.
        let mut tight = vec![true; nd];
        let mut y_basic = vec![false; m];
        for (slot, &col) in dual_basis.iter().enumerate() {
            if col < nds {
                let r = self.y_col_row[col];
                if y_basic[r] {
                    // Both split parts of a free y basic would be singular.
                    return None;
                }
                y_basic[r] = true;
            } else if col < dual_core {
                tight[col - nds] = false;
            } else {
                tight[slot] = false;
            }
        }

        let mut s_cols = (0..nd).filter(|&j| tight[j]);
        let mut primal_basis = Vec::with_capacity(m);
        let mut next_artificial = primal.num_columns();
        for (r, &y_is_basic) in y_basic.iter().enumerate().take(m) {
            if y_is_basic {
                // A basic y_r pairs with one tight dual row's structural
                // column (pairing arbitrary — the factorisation re-keys).
                primal_basis.push(s_cols.next()?);
            } else if let Some(col) = self.primal_slack_of_row[r] {
                primal_basis.push(col);
            } else {
                // Equality row with y_r = 0: redundant at this vertex; keep
                // it basic through an artificial marker, exactly as a cold
                // primal solve reports redundant rows.
                primal_basis.push(next_artificial);
                next_artificial += 1;
            }
        }
        if s_cols.next().is_some() {
            return None;
        }
        Some(primal_basis)
    }
}

/// Solve `sf` (a row-encoded primal standard form) through its dual.
///
/// `Ok(None)` means "not handled here — run the primal path": the program is
/// ineligible (boxed columns, no rows/structural columns), the dual solve hit
/// a non-budget error (a dual infeasibility/unboundedness maps to a primal
/// unboundedness/infeasibility the primal path classifies authoritatively),
/// a caller warm seed mapped into dual form but was declined there (the
/// primal warm path repairs such seeds natively), the returned basis did not
/// map back, or the primal certification declined.  Only
/// [`SimplexError::IterationLimit`] propagates — the budget is shared, so the
/// primal path could not finish either.
pub(crate) fn solve_via_dual(
    sf: &StandardForm,
    options: &SolveOptions,
) -> Result<Option<SolvedPoint>, SimplexError> {
    if sf.num_rows() == 0 || sf.num_structural == 0 {
        return Ok(None);
    }
    if sf.upper.iter().any(|u| u.is_finite()) {
        return Ok(None);
    }

    let dual = dualize(sf);
    let mapped_seed = options
        .warm_basis
        .as_deref()
        .and_then(|seed| dual.map_primal_seed(sf, seed));
    let dual_options = options
        .clone()
        .with_form(LpForm::Primal)
        .with_warm_basis(None);
    let dual_point = match &mapped_seed {
        // A caller seed that maps is tried through the dual-side warm
        // machinery directly.  If it is declined, do NOT pay a cold dual
        // solve: a declined seed here is almost always an α-neighbour basis
        // that is primal-infeasible under the new coefficients — which the
        // dual form sees as *dual* infeasibility it cannot repair, while the
        // primal warm path's dual-simplex cleanup is built for exactly that.
        // Deferring hands the untouched seed back to the primal path.
        Some(seed) => match revised::warm_solve(&dual.sf, &dual_options, seed) {
            Some(point) => point,
            None => return Ok(None),
        },
        None => match revised::solve(&dual.sf, &dual_options) {
            Ok(point) => point,
            Err(error @ SimplexError::IterationLimit { .. }) => return Err(error),
            Err(_) => return Ok(None),
        },
    };

    let Some(primal_seed) = dual_point
        .basis
        .as_deref()
        .and_then(|basis| dual.map_dual_basis(sf, basis))
    else {
        return Ok(None);
    };

    // Certification: the complementary basis is primal-optimal up to
    // degenerate ties, and the ordinary warm-start machinery proves it —
    // factor, exact reduced costs, dual cleanup (0 pivots when the mapping is
    // exact), primal cleanup, fresh-factor confirmation.
    let certify_options = options.clone().with_warm_basis(None);
    let Some(mut point) = revised::warm_solve(sf, &certify_options, &primal_seed) else {
        return Ok(None);
    };

    let ds = dual_point.stats;
    let stats = &mut point.stats;
    stats.form = LpForm::Dual;
    stats.phase1_iterations += ds.phase1_iterations;
    stats.phase2_iterations += ds.phase2_iterations;
    stats.degenerate_pivots += ds.degenerate_pivots;
    stats.bland_activations += ds.bland_activations;
    stats.artificial_variables += ds.artificial_variables;
    stats.refactorizations += ds.refactorizations;
    stats.basis_updates += ds.basis_updates;
    stats.basis_repairs += ds.basis_repairs;
    stats.devex_resets += ds.devex_resets;
    stats.steepest_edge_resets += ds.steepest_edge_resets;
    stats.bound_flips += ds.bound_flips;
    stats.dual_iterations += ds.dual_iterations;
    // "Warm-started" reports whether the *caller's* seed steered the solve —
    // here, whether it survived the map into dual form and was accepted
    // there.  The internal certification warm start is an implementation
    // detail of the dual path, not a seeded solve.
    stats.warm_started = ds.warm_started;
    Ok(Some(point))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearProgram, Relation};
    use crate::solver::SolveOptions;
    use crate::standard::standardize;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    /// Solve `lp` through the dual path and return the point; panics if the
    /// dual path declines (these fixtures are all eligible).
    fn via_dual(lp: &LinearProgram) -> SolvedPoint {
        let sf = standardize(lp);
        solve_via_dual(&sf, &SolveOptions::default())
            .expect("dual solve must not error")
            .expect("fixture must be dual-eligible")
    }

    fn primal_objective(lp: &LinearProgram) -> f64 {
        lp.solve_with(&SolveOptions::default())
            .unwrap()
            .objective_value
    }

    #[test]
    fn dualize_folds_slacks_into_bounds_and_transposes() {
        // min x + 2y  s.t.  x + y >= 2 (surplus),  x - y <= 1 (slack),
        //                   x + 3y = 3 (equality).
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::GreaterEq, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::LessEq, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 3.0)], Relation::Equal, 3.0);
        let sf = standardize(&lp);
        let dual = dualize(&sf);

        // One dual row per primal structural column; the slack columns fold
        // into bounds instead of rows.
        assert_eq!(dual.sf.num_rows(), 2);
        assert_eq!(sf.num_structural, 2);
        // y_0 (>= row with positive rhs keeps its -1 surplus): y_0 >= 0 costs
        // one structural column; y_1 (<= row): y_1 <= 0, negated, one more;
        // y_2 (equality): free, split into two.  Total 4 structural columns.
        assert_eq!(dual.sf.num_structural, 4);
        // Each primal structural column's CSC column became a dual row.
        assert_eq!(dual.sf.num_columns(), 4 + 2);
    }

    #[test]
    fn dual_form_matches_primal_on_inequality_mixes() {
        // The fixture above has a >= row, a <= row, and an equality row.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.set_objective_coefficient(y, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::GreaterEq, 2.0);
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::LessEq, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 3.0)], Relation::Equal, 3.0);
        let point = via_dual(&lp);
        assert_close(point.objective, primal_objective(&lp));
        assert_eq!(point.stats.form, LpForm::Dual);
    }

    #[test]
    fn dual_form_handles_free_and_bounded_variables() {
        // A free variable (split in the primal standard form) and variables
        // with shifted/negated one-sided bounds; also a range-like pair of
        // rows bracketing the same expression.
        let mut lp = LinearProgram::minimize();
        let f = lp.add_variable_with_bounds("f", f64::NEG_INFINITY, f64::INFINITY);
        let lo = lp.add_variable_with_bounds("lo", 1.0, f64::INFINITY);
        let hi = lp.add_variable_with_bounds("hi", f64::NEG_INFINITY, 5.0);
        lp.set_objective_coefficient(f, 1.0);
        lp.set_objective_coefficient(lo, 2.0);
        lp.set_objective_coefficient(hi, -1.0);
        // Range rows: 1 <= f + lo <= 6.
        lp.add_constraint(vec![(f, 1.0), (lo, 1.0)], Relation::GreaterEq, 1.0);
        lp.add_constraint(vec![(f, 1.0), (lo, 1.0)], Relation::LessEq, 6.0);
        lp.add_constraint(vec![(f, 1.0), (hi, 1.0)], Relation::GreaterEq, -2.0);
        let point = via_dual(&lp);
        let sf = standardize(&lp);
        let values = sf.recover_values(&point.z);
        assert_close(
            point.objective + sf.objective_constant,
            primal_objective(&lp),
        );
        // f + lo within the range rows.
        let range = values[0] + values[1];
        assert!((1.0 - 1e-9..=6.0 + 1e-9).contains(&range));
    }

    #[test]
    fn dual_basis_maps_back_to_a_zero_pivot_primal_seed() {
        // The recovered basis must be primal-optimal as-is: re-solving the
        // primal seeded with it performs no pivots at all.
        let mut lp = LinearProgram::minimize();
        let vars = lp.add_variables("p", 6);
        for (i, v) in vars.iter().enumerate() {
            lp.set_objective_coefficient(*v, 1.0 + i as f64);
        }
        lp.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Equal, 1.0);
        for w in vars.windows(2) {
            lp.add_constraint(vec![(w[0], 1.0), (w[1], -0.5)], Relation::GreaterEq, 0.0);
        }
        let point = via_dual(&lp);
        let seed = point.basis.clone().expect("dual path reports a basis");
        let sf = standardize(&lp);
        let reseeded = revised::warm_solve(&sf, &SolveOptions::default(), &seed)
            .expect("a dual-recovered basis must be warm-start-valid");
        assert_eq!(reseeded.stats.dual_iterations, 0);
        assert_eq!(reseeded.stats.phase2_iterations, 0);
        assert_close(reseeded.objective, point.objective);
    }

    #[test]
    fn primal_seed_round_trips_through_the_dual_seed_mapping() {
        let mut lp = LinearProgram::minimize();
        let vars = lp.add_variables("p", 5);
        for (i, v) in vars.iter().enumerate() {
            lp.set_objective_coefficient(*v, 1.0 + (i % 3) as f64);
        }
        lp.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Equal, 1.0);
        for w in vars.windows(2) {
            lp.add_constraint(vec![(w[0], 1.0), (w[1], -0.9)], Relation::GreaterEq, 0.0);
        }
        let sf = standardize(&lp);
        let cold = revised::solve(&sf, &SolveOptions::default()).unwrap();
        let primal_basis = cold.basis.unwrap();

        let dual = dualize(&sf);
        let dual_seed = dual
            .map_primal_seed(&sf, &primal_basis)
            .expect("an optimal primal basis maps to a dual seed");
        // The mapped seed must be accepted by the dual solve's warm path and
        // the whole dual path must reproduce the optimum.
        let options = SolveOptions::default().with_warm_basis(Some(primal_basis));
        let point = solve_via_dual(&sf, &options).unwrap().unwrap();
        assert!(point.stats.warm_started, "mapped seed must be accepted");
        assert_close(point.objective, cold.objective);
        // And the dual seed itself is structurally sound: one entry per dual
        // row, all distinct.
        let mut seen = vec![false; dual.sf.num_columns()];
        assert_eq!(dual_seed.len(), dual.sf.num_rows());
        for &col in &dual_seed {
            assert!(!seen[col]);
            seen[col] = true;
        }
    }

    #[test]
    fn infeasible_and_unbounded_programs_fall_back_to_the_primal_path() {
        // Infeasible primal: the dual is unbounded; the path must decline
        // rather than misreport.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::GreaterEq, 2.0);
        let sf = standardize(&lp);
        assert!(solve_via_dual(&sf, &SolveOptions::default())
            .unwrap()
            .is_none());

        // Unbounded primal: the dual is infeasible; same contract.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, -1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::GreaterEq, 1.0);
        let sf = standardize(&lp);
        assert!(solve_via_dual(&sf, &SolveOptions::default())
            .unwrap()
            .is_none());
    }

    #[test]
    fn boxed_standard_forms_are_declined() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable_with_bounds("x", 0.0, 2.0);
        lp.set_objective_coefficient(x, -1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 5.0);
        let sf = crate::standard::standardize_boxed(&lp);
        assert!(solve_via_dual(&sf, &SolveOptions::default())
            .unwrap()
            .is_none());
        // The row encoding of the same program is eligible and agrees.
        let point = via_dual(&lp);
        let row_sf = standardize(&lp);
        assert_close(
            point.objective + row_sf.objective_constant,
            primal_objective(&lp),
        );
    }
}

//! Conversion of a user-facing [`LinearProgram`] into sparse standard form.
//!
//! Standard form here means
//!
//! ```text
//! minimise   c' z
//! subject to A z = b,   z >= 0,   b >= 0
//! ```
//!
//! obtained by shifting / splitting bounded and free variables, adding slack and
//! surplus columns, and flipping the sign of rows with negative right-hand sides.
//! Rows that end up containing a `+1` slack column with non-negative right-hand side
//! record that column as a *basis hint*; the solver only needs artificial variables
//! for the remaining rows, which keeps Phase 1 small for the mechanism-design LPs
//! (whose inequality constraints almost all have zero right-hand sides).
//!
//! The constraint matrix `A` is assembled as `(row, col, value)` triplets and
//! compressed into a CSC [`SparseMatrix`] — no dense row is ever materialised, so
//! standardisation is `O(nnz)` in time and memory.  The dense-tableau backend
//! densifies on demand; the revised-simplex backend consumes the CSC columns
//! directly.

use crate::model::{LinearProgram, Objective, Relation};
use crate::sparse::SparseMatrix;

/// How a user variable is reconstructed from standard-form columns.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum VariableMapping {
    /// `x = offset + z[col]`
    Shifted { col: usize, offset: f64 },
    /// `x = offset - z[col]` (used for variables with only an upper bound)
    Negated { col: usize, offset: f64 },
    /// `x = z[pos] - z[neg]` (free variable split)
    Split { pos: usize, neg: usize },
    /// `x` is fixed to a constant by its bounds.
    Fixed(f64),
}

/// The standard-form program handed to the simplex backends.
#[derive(Debug, Clone)]
pub(crate) struct StandardForm {
    /// The constraint matrix over all columns (structural + slack/surplus), CSC.
    pub matrix: SparseMatrix,
    /// Right-hand sides, all non-negative.
    pub rhs: Vec<f64>,
    /// Minimisation costs for every column (structural + slack/surplus).
    pub costs: Vec<f64>,
    /// Per-column upper bound (`f64::INFINITY` when unbounded above).  Finite
    /// entries mark **boxed** columns `0 <= z <= u`, produced by the boxed
    /// standardisation of two-sided variable bounds; the sparse backend keeps
    /// them nonbasic at either bound and flips them through the box instead of
    /// pivoting where the ratio test allows.
    pub upper: Vec<f64>,
    /// Number of structural columns; columns `num_structural..num_columns()`
    /// are the slack/surplus singletons appended per inequality row (the
    /// dualize transform folds them into sign bounds on the dual variables).
    pub num_structural: usize,
    /// Per-row column index usable as the initial basic variable, if any.
    pub basis_hint: Vec<Option<usize>>,
    /// Mapping from user variables to standard-form columns.
    pub mapping: Vec<VariableMapping>,
    /// Constant added to the (minimisation) objective by variable shifts.
    pub objective_constant: f64,
    /// Whether the user asked to maximise (the reported objective must be negated back).
    pub maximize: bool,
}

impl StandardForm {
    /// Number of columns (excluding artificials, which the solver appends itself).
    pub fn num_columns(&self) -> usize {
        self.costs.len()
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rhs.len()
    }

    /// Coefficient at `(row, col)` — test/diagnostic accessor.
    #[cfg(test)]
    pub fn coeff(&self, row: usize, col: usize) -> f64 {
        self.matrix.get(row, col)
    }

    /// Recover the user-variable values from a standard-form point.
    pub fn recover_values(&self, z: &[f64]) -> Vec<f64> {
        self.mapping
            .iter()
            .map(|m| match *m {
                VariableMapping::Shifted { col, offset } => offset + z[col],
                VariableMapping::Negated { col, offset } => offset - z[col],
                VariableMapping::Split { pos, neg } => z[pos] - z[neg],
                VariableMapping::Fixed(v) => v,
            })
            .collect()
    }
}

/// Build the sparse standard form of `lp`, expressing two-sided variable
/// bounds as extra `x <= u` rows (every column then has bounds `[0, inf)`).
/// The dense-tableau backend requires this shape.
pub(crate) fn standardize(lp: &LinearProgram) -> StandardForm {
    standardize_with(lp, false)
}

/// Build the sparse standard form of `lp` with two-sided variable bounds kept
/// as **boxed columns** (`StandardForm::upper`) instead of extra rows.  One
/// row and one slack column fewer per bounded variable, and the sparse
/// backend's bound-flipping ratio test needs the box representation.
pub(crate) fn standardize_boxed(lp: &LinearProgram) -> StandardForm {
    standardize_with(lp, true)
}

fn standardize_with(lp: &LinearProgram, boxed: bool) -> StandardForm {
    let maximize = lp.objective == Objective::Maximize;
    let sign = if maximize { -1.0 } else { 1.0 };

    // 1. Map user variables to standard-form columns.
    let mut mapping = Vec::with_capacity(lp.variables.len());
    let mut costs: Vec<f64> = Vec::new();
    let mut objective_constant = 0.0;
    // Extra `column <= bound` rows generated by two-sided bounds, expressed directly
    // in terms of standard-form columns (row mode only).
    let mut extra_upper_rows: Vec<(usize, f64)> = Vec::new();
    // Boxed-column upper bounds (box mode only), parallel to `costs`.
    let mut upper: Vec<f64> = Vec::new();

    for (i, var) in lp.variables.iter().enumerate() {
        let c = sign * lp.objective_coefficients[i];
        let (lower, upper_bound) = (var.lower, var.upper);
        if lower.is_finite() && upper_bound.is_finite() && (upper_bound - lower).abs() == 0.0 {
            // Fixed variable: contributes a constant to the objective and to each row.
            objective_constant += c * lower;
            mapping.push(VariableMapping::Fixed(lower));
        } else if lower.is_finite() {
            let col = costs.len();
            costs.push(c);
            upper.push(f64::INFINITY);
            objective_constant += c * lower;
            mapping.push(VariableMapping::Shifted { col, offset: lower });
            if upper_bound.is_finite() {
                if boxed {
                    upper[col] = upper_bound - lower;
                } else {
                    extra_upper_rows.push((col, upper_bound - lower));
                }
            }
        } else if upper_bound.is_finite() {
            // Only an upper bound: substitute x = upper - z, z >= 0.
            let col = costs.len();
            costs.push(-c);
            upper.push(f64::INFINITY);
            objective_constant += c * upper_bound;
            mapping.push(VariableMapping::Negated {
                col,
                offset: upper_bound,
            });
        } else {
            // Free variable: split into positive and negative parts.
            let pos = costs.len();
            costs.push(c);
            let neg = costs.len();
            costs.push(-c);
            upper.push(f64::INFINITY);
            upper.push(f64::INFINITY);
            mapping.push(VariableMapping::Split { pos, neg });
        }
    }

    let num_structural_columns = costs.len();
    let num_rows = lp.num_constraints() + extra_upper_rows.len();
    let num_slacks = lp
        .constraints()
        .filter(|c| c.relation != Relation::Equal)
        .count()
        + extra_upper_rows.len();
    let total_columns = num_structural_columns + num_slacks;
    costs.resize(total_columns, 0.0);
    upper.resize(total_columns, f64::INFINITY);

    // 2. Emit each row's sparse terms (over standard-form columns) as triplets,
    //    appending the slack/surplus entry and flipping signs where needed.
    let mut triplets: Vec<(usize, usize, f64)> = Vec::with_capacity(lp.num_terms() + num_rows);
    let mut rhs_vec = Vec::with_capacity(num_rows);
    let mut basis_hint = Vec::with_capacity(num_rows);
    let mut next_slack = num_structural_columns;
    // Scratch sparse row, reused across constraints (merged via sort below).
    let mut row_terms: Vec<(usize, f64)> = Vec::new();

    let mut push_row = |row_terms: &mut Vec<(usize, f64)>,
                        relation: Relation,
                        mut rhs: f64,
                        triplets: &mut Vec<(usize, usize, f64)>,
                        rhs_vec: &mut Vec<f64>,
                        basis_hint: &mut Vec<Option<usize>>| {
        let row = rhs_vec.len();
        let slack = match relation {
            Relation::LessEq => {
                let col = next_slack;
                next_slack += 1;
                row_terms.push((col, 1.0));
                Some(col)
            }
            Relation::GreaterEq => {
                let col = next_slack;
                next_slack += 1;
                row_terms.push((col, -1.0));
                Some(col)
            }
            Relation::Equal => None,
        };
        // Flip the row when the right-hand side is negative, and also for `>=` rows
        // with a zero right-hand side: flipping turns their surplus column into a
        // `+1` slack usable as the initial basic variable, which is what keeps
        // Phase 1 tiny for the mechanism-design LPs (all DP inequalities have rhs 0).
        let flip = rhs < 0.0 || (rhs == 0.0 && relation == Relation::GreaterEq);
        let row_sign = if flip { -1.0 } else { 1.0 };
        if flip {
            rhs = -rhs;
        }
        let mut slack_value = 0.0;
        for &(col, value) in row_terms.iter() {
            if Some(col) == slack {
                slack_value = row_sign * value;
            }
            triplets.push((row, col, row_sign * value));
        }
        let hint = slack.filter(|_| slack_value > 0.0);
        rhs_vec.push(rhs);
        basis_hint.push(hint);
    };

    for constraint in lp.constraints() {
        row_terms.clear();
        let mut rhs = constraint.rhs;
        for &(var, coefficient) in constraint.terms {
            match mapping[var.index()] {
                VariableMapping::Shifted { col, offset } => {
                    row_terms.push((col, coefficient));
                    rhs -= coefficient * offset;
                }
                VariableMapping::Negated { col, offset } => {
                    row_terms.push((col, -coefficient));
                    rhs -= coefficient * offset;
                }
                VariableMapping::Split { pos, neg } => {
                    row_terms.push((pos, coefficient));
                    row_terms.push((neg, -coefficient));
                }
                VariableMapping::Fixed(v) => {
                    rhs -= coefficient * v;
                }
            }
        }
        push_row(
            &mut row_terms,
            constraint.relation,
            rhs,
            &mut triplets,
            &mut rhs_vec,
            &mut basis_hint,
        );
    }
    for &(col, bound) in &extra_upper_rows {
        row_terms.clear();
        row_terms.push((col, 1.0));
        push_row(
            &mut row_terms,
            Relation::LessEq,
            bound,
            &mut triplets,
            &mut rhs_vec,
            &mut basis_hint,
        );
    }

    // 3. Compress to CSC; `from_triplets` merges duplicate terms per row/column.
    let matrix = SparseMatrix::from_triplets(num_rows, total_columns, &triplets);

    StandardForm {
        matrix,
        rhs: rhs_vec,
        costs,
        upper,
        num_structural: num_structural_columns,
        basis_hint,
        mapping,
        objective_constant,
        maximize,
    }
}

/// Activity tolerance for [`crash_basis`] row classification: a row whose
/// activity is within this distance of its right-hand side — **relative to
/// the magnitude of the row's own terms** — is treated as *tight* at the
/// conjectured point.  The relative scale matters: mechanism LPs have rows
/// whose terms decay geometrically (down to ~1e-13 at n = 256), and an
/// absolute tolerance would classify every far-tail row as tight and wreck
/// the crash.  Against the per-row scale, float cancellation noise sits at
/// ~1e-16 while a genuinely loose geometric-tail row sits at ~1e-1, so 1e-7
/// separates them with room on both sides.
///
/// Build a **crash basis** for `lp` from a conjectured (near-)optimal point.
///
/// `values` gives one value per model variable.  The returned vector is a
/// standard-form basis — one column per constraint row, in the basis space of
/// [`SolveOptions::warm_basis`](crate::SolveOptions::warm_basis) — encoding
/// the active set the point implies: variables strictly between their bounds
/// become basic, rows with visible slack keep their slack column basic, and
/// the leftover rows (the tight ones) host the basic structural columns.
/// When the point has more interior variables than tight rows, the smallest
/// ones are demoted to nonbasic (they are the near-degenerate tail); when it
/// has fewer, the unclaimed rows fall back to their own slack column — or an
/// artificial marker for equality rows — exactly as a cold solve treats
/// redundant rows.
///
/// The seed is a *hint*, never an answer: the warm-start machinery factors
/// it, rejects it if singular or dual-infeasible, repairs residual primal
/// infeasibility with the dual-simplex cleanup, and certifies optimality with
/// the ordinary primal machinery.  A conjecture that is exactly the optimal
/// vertex (e.g. the closed-form Geometric Mechanism on the unconstrained
/// BASICDP program) reduces the whole solve to one factorisation; a merely
/// *feasible* conjecture with the same cost structure still skips Phase 1 and
/// most of Phase 2.
///
/// Returns `None` when `values` has the wrong length.  The basis is expressed
/// against the standard form of `lp` itself — callers that solve with
/// presolve enabled rely on the reduction being a no-op for the seed to fit
/// (a mismatched seed is silently discarded by the solver, never misused).
pub fn crash_basis(lp: &LinearProgram, values: &[f64]) -> Option<Vec<usize>> {
    if values.len() != lp.num_variables() {
        return None;
    }
    let sf = standardize_boxed(lp);
    let m = sf.num_rows();
    let num_core = sf.num_columns();

    // Interior structural columns, remembered with their distance from the
    // nearest bound so the near-degenerate tail can be demoted first.  A
    // strictly positive distance counts — closed-form conjectures produce
    // exact zeros at the bounds they sit on, and geometrically decaying
    // interiors (~1e-13 at n = 256) are interior all the same.
    let mut interior: Vec<(f64, usize)> = Vec::new();
    for (var, mapping) in sf.mapping.iter().enumerate() {
        let value = values[var];
        match *mapping {
            VariableMapping::Shifted { col, offset } => {
                let dist_lower = value - offset;
                let dist_upper = sf.upper[col] - dist_lower;
                if dist_lower > 0.0 && dist_upper > 0.0 {
                    interior.push((dist_lower.min(dist_upper), col));
                }
            }
            VariableMapping::Negated { col, offset } => {
                let dist = offset - value;
                if dist > 0.0 {
                    interior.push((dist, col));
                }
            }
            VariableMapping::Split { pos, neg } => {
                if value > 0.0 {
                    interior.push((value, pos));
                } else if value < 0.0 {
                    interior.push((-value, neg));
                }
            }
            VariableMapping::Fixed(_) => {}
        }
    }

    // Row activities at the conjectured point, from the model itself (the
    // standard form may have flipped row signs; the model view has not).
    let mut slots: Vec<Option<usize>> = vec![None; m];
    let mut slack_cursor = sf.num_structural;
    for (row, constraint) in lp.constraints().enumerate() {
        let mut activity = 0.0;
        let mut scale = constraint.rhs.abs();
        for &(var, coeff) in constraint.terms {
            let term = coeff * values[var.index()];
            activity += term;
            scale = scale.max(term.abs());
        }
        let slack_col = match constraint.relation {
            Relation::Equal => continue,
            _ => {
                let col = slack_cursor;
                slack_cursor += 1;
                col
            }
        };
        if (activity - constraint.rhs).abs() > 1e-7 * scale {
            slots[row] = Some(slack_col);
        }
    }
    debug_assert_eq!(slack_cursor, num_core);

    // Hand the empty slots (tight + equality rows) to the largest interior
    // columns; demote any excess, and pad any shortfall with the row's own
    // slack — or an artificial marker on equality rows, which the solver's
    // seeded path re-keys to that slot.
    let open = slots.iter().filter(|slot| slot.is_none()).count();
    if interior.len() > open {
        interior.sort_by(|a, b| b.0.total_cmp(&a.0));
        interior.truncate(open);
    }
    let mut spares = interior.iter().map(|&(_, col)| col);
    let mut basis = Vec::with_capacity(m);
    for (row, slot) in slots.into_iter().enumerate() {
        basis.push(match slot {
            Some(col) => col,
            None => match spares.next() {
                Some(col) => col,
                None => match lp.constraint(row).relation {
                    Relation::Equal => num_core + row,
                    // Tight row left over: keep its slack basic at zero, the
                    // same degenerate state a cold solve would report.
                    _ => {
                        sf.num_structural
                            + lp.constraints()
                                .take(row)
                                .filter(|c| c.relation != Relation::Equal)
                                .count()
                    }
                },
            },
        });
    }
    Some(basis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearProgram, Relation};

    #[test]
    fn less_eq_rows_get_basic_slack_hints() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 4.0);
        let sf = standardize(&lp);
        assert_eq!(sf.num_rows(), 1);
        assert_eq!(sf.num_columns(), 2);
        assert_eq!(sf.basis_hint[0], Some(1));
        assert_eq!(sf.rhs[0], 4.0);
    }

    #[test]
    fn greater_eq_with_zero_rhs_becomes_basic_after_flip() {
        // x - y >= 0 has rhs 0; after adding the surplus and flipping the sign the
        // surplus column becomes +1 and is usable as the initial basic variable.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::GreaterEq, 0.0);
        let sf = standardize(&lp);
        assert_eq!(sf.basis_hint[0], Some(2));
        // Row was flipped: -x + y + s = 0.
        assert_eq!(sf.coeff(0, 0), -1.0);
        assert_eq!(sf.coeff(0, 1), 1.0);
        assert_eq!(sf.coeff(0, 2), 1.0);
    }

    #[test]
    fn greater_eq_with_positive_rhs_has_no_hint() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        lp.add_constraint(vec![(x, 1.0)], Relation::GreaterEq, 3.0);
        let sf = standardize(&lp);
        assert_eq!(sf.basis_hint[0], None);
        assert_eq!(sf.coeff(0, 1), -1.0);
    }

    #[test]
    fn equality_rows_have_no_slack() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        lp.add_constraint(vec![(x, 1.0)], Relation::Equal, 1.0);
        let sf = standardize(&lp);
        assert_eq!(sf.num_columns(), 1);
        assert_eq!(sf.basis_hint[0], None);
    }

    #[test]
    fn lower_bound_shift_adjusts_rhs_and_constant() {
        // x in [2, inf), minimise 3x subject to x <= 5  =>  z = x - 2.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable_with_bounds("x", 2.0, f64::INFINITY);
        lp.set_objective_coefficient(x, 3.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 5.0);
        let sf = standardize(&lp);
        assert_eq!(sf.objective_constant, 6.0);
        assert_eq!(sf.rhs[0], 3.0);
        assert_eq!(sf.recover_values(&[1.0, 0.0]), vec![3.0]);
    }

    #[test]
    fn fixed_variable_is_substituted() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable_with_bounds("x", 2.0, 2.0);
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::LessEq, 10.0);
        let sf = standardize(&lp);
        // only y (plus its slack) remains as columns
        assert_eq!(sf.num_columns(), 2);
        assert_eq!(sf.objective_constant, 2.0);
        assert_eq!(sf.rhs[0], 8.0);
        assert_eq!(sf.mapping[0], VariableMapping::Fixed(2.0));
    }

    #[test]
    fn free_variable_is_split() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable_with_bounds("x", f64::NEG_INFINITY, f64::INFINITY);
        lp.set_objective_coefficient(x, 1.0);
        lp.add_constraint(vec![(x, 1.0)], Relation::GreaterEq, -5.0);
        let sf = standardize(&lp);
        assert_eq!(sf.mapping[0], VariableMapping::Split { pos: 0, neg: 1 });
        assert_eq!(sf.recover_values(&[0.0, 5.0, 0.0]), vec![-5.0]);
    }

    #[test]
    fn upper_bounded_only_variable_is_negated() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable_with_bounds("x", f64::NEG_INFINITY, 4.0);
        lp.set_objective_coefficient(x, 2.0);
        let sf = standardize(&lp);
        assert_eq!(
            sf.mapping[0],
            VariableMapping::Negated {
                col: 0,
                offset: 4.0
            }
        );
        assert_eq!(sf.costs[0], -2.0);
        assert_eq!(sf.objective_constant, 8.0);
        assert_eq!(sf.recover_values(&[1.0]), vec![3.0]);
    }

    #[test]
    fn two_sided_bounds_add_upper_row() {
        let mut lp = LinearProgram::minimize();
        let _x = lp.add_variable_with_bounds("x", 1.0, 4.0);
        let sf = standardize(&lp);
        assert_eq!(sf.num_rows(), 1);
        assert_eq!(sf.rhs[0], 3.0);
        assert_eq!(sf.basis_hint[0], Some(1));
    }

    #[test]
    fn maximization_flips_cost_sign() {
        let mut lp = LinearProgram::maximize();
        let x = lp.add_variable("x");
        lp.set_objective_coefficient(x, 5.0);
        let sf = standardize(&lp);
        assert!(sf.maximize);
        assert_eq!(sf.costs[0], -5.0);
    }

    #[test]
    fn duplicate_terms_merge_in_the_matrix() {
        // 2x expressed as x + x must appear as a single CSC entry of 2.0.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        lp.add_constraint(vec![(x, 1.0), (x, 1.0)], Relation::LessEq, 6.0);
        let sf = standardize(&lp);
        assert_eq!(sf.coeff(0, 0), 2.0);
        assert_eq!(sf.matrix.column_nnz(0), 1);
    }

    #[test]
    fn dp_shaped_rows_stay_sparse() {
        // 100 two-term ratio rows over 100 variables: nnz must scale with terms,
        // not with rows x cols.
        let mut lp = LinearProgram::minimize();
        let vars = lp.add_variables("x", 100);
        for w in vars.windows(2) {
            lp.add_constraint(vec![(w[0], 1.0), (w[1], -0.9)], Relation::GreaterEq, 0.0);
        }
        let sf = standardize(&lp);
        // 2 structural terms + 1 slack per row.
        assert_eq!(sf.matrix.nnz(), 99 * 3);
        assert!(sf.matrix.fill_ratio() < 0.02);
    }
}

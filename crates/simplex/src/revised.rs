//! Revised simplex over the sparse standard form.
//!
//! The dense tableau updates every entry of an `m × n` matrix per pivot —
//! `O(m · n)` — even though the mechanism-design LPs have only 2 to `n+1` nonzeros
//! per row.  The revised method never materialises the tableau: it keeps the
//! original CSC matrix `A` untouched and represents the basis inverse implicitly
//! through a **sparse LU factorisation** (see [`crate::lu`]), so one pivot costs
//! `O(nnz)`.
//!
//! ## Basis representation: LU factors with Forrest–Tomlin updates
//!
//! The basis matrix is factorised as `B = L·U` with Markowitz pivoting
//! (row/column-singleton peeling plus threshold pivoting on the residual bump).
//! Each simplex pivot then applies a Forrest–Tomlin rank-one **update** to the
//! factors instead of appending a product-form eta: U only ever *loses* stored
//! entries between factorisations, so FTRAN/BTRAN stay flat over long runs —
//! the property the old eta file lacked.  Every
//! [`SolveOptions::refactor_interval`] updates the factors are rebuilt from the
//! exact basis columns, which also bounds numerical drift.
//!
//! * **FTRAN** (`B⁻¹ a`) is a forward pass through the L operators followed by
//!   a backward sparse triangular solve with U.
//! * **BTRAN** (`y' B⁻¹`) is the transposed pair in reverse.
//!
//! ## Pricing: Devex with incremental reduced costs
//!
//! Outside the anti-cycling Bland fallback, the driver maintains the reduced
//! costs `d` incrementally from the pivot row of each iteration (one extra
//! BTRAN of a unit vector plus a sparse row-wise pass over `A`), and scores
//! entering candidates with Devex reference weights — `d_j² / γ_j` — updated
//! from the same pivot row ([`PricingRule::Devex`]).  The weights reset when
//! they overflow their trust bound, and `d` is recomputed exactly at every
//! refactorisation and before optimality is declared.  Partial pricing
//! ([`SolveOptions::partial_pricing`]) optionally scans cyclic column sections
//! instead of the full range.
//!
//! ## Basis repair
//!
//! A numerical breakdown during an update or a factorisation no longer aborts
//! the solve: the driver refactorises from scratch, falling back to the last
//! good basis if the current one is singular, up to
//! [`SolveOptions::max_repairs`] times ([`SolveStats::basis_repairs`] reports
//! how often this fired).

use crate::error::SimplexError;
use crate::lu::LuFactors;
use crate::solver::{PhaseOutcome, PivotState, PricingRule, SolveOptions, SolvedPoint};
use crate::sparse::{RowMajor, SparseAccumulator};
use crate::standard::StandardForm;

/// Devex weights above this bound trigger a reference-framework reset.
const DEVEX_WEIGHT_LIMIT: f64 = 1e7;

/// A dense vector paired with its nonzero pattern, as produced by the
/// hypersparse LU solves.  `dense` marks a vector whose pattern is stale —
/// a sparse solve fell back to the dense scan — so consumers must walk the
/// whole vector instead of the pattern.
#[derive(Clone)]
struct PatVec {
    values: Vec<f64>,
    pattern: Vec<usize>,
    dense: bool,
}

impl PatVec {
    fn new(len: usize) -> Self {
        PatVec {
            values: vec![0.0; len],
            pattern: Vec::new(),
            dense: false,
        }
    }

    /// Zero the vector, using the pattern when it is trustworthy.
    fn clear(&mut self) {
        if self.dense {
            self.values.fill(0.0);
            self.dense = false;
        } else {
            for &r in &self.pattern {
                self.values[r] = 0.0;
            }
        }
        self.pattern.clear();
    }

    /// Record a nonzero on a freshly cleared vector.
    fn set(&mut self, r: usize, v: f64) {
        self.values[r] = v;
        self.pattern.push(r);
    }
}

/// Iterate the nonzeros of a [`PatVec`] as `(index, value)` pairs, walking the
/// pattern when it is valid and the whole vector otherwise.
macro_rules! for_nz {
    ($pv:expr, $r:ident, $v:ident, $body:block) => {
        if $pv.dense {
            for ($r, &$v) in $pv.values.iter().enumerate() {
                if $v != 0.0 $body
            }
        } else {
            for &$r in $pv.pattern.iter() {
                let $v = $pv.values[$r];
                if $v != 0.0 $body
            }
        }
    };
}

/// What the (long-step) ratio test decided for an entering column.
enum RatioOutcome {
    /// No basic variable and no bound blocks the step: the program is
    /// unbounded along this column.
    Unbounded,
    /// The entering column hits its **own** opposite bound before any basic
    /// variable blocks: flip it through the box — no pivot, no factor update.
    BoundFlip,
    /// Ordinary pivot: the basic variable on `row` leaves, at its lower bound
    /// or (boxed basics only) at its upper bound.
    Pivot { row: usize, to_upper: bool },
}

/// The revised-simplex working state: basis bookkeeping, the LU factors, and
/// the current basic solution.
struct RevisedState<'a> {
    sf: &'a StandardForm,
    /// Structural + slack column count; columns `>= num_core` are artificials.
    num_core: usize,
    /// Unit row of each artificial column (`col = num_core + i`).
    artificial_rows: Vec<usize>,
    /// Basic column of each row.
    basis: Vec<usize>,
    /// Whether each column (core + artificial) is currently basic.
    in_basis: Vec<bool>,
    /// The LU factorisation of the current basis.
    lu: LuFactors,
    /// CSR mirror of the core constraint matrix, for the pivot-row pass.
    row_major: RowMajor,
    /// Current basic solution `x_B = B⁻¹ b`, indexed by row.
    xb: Vec<f64>,
    /// Basis snapshot taken at the last successful factorisation — the
    /// fallback point of the repair path.
    last_good_basis: Vec<usize>,
    /// Partial FTRAN (through the L operators only) of the last entering
    /// column — the spike consumed by the Forrest–Tomlin update — with its
    /// nonzero pattern (`spike_dense` marks a stale pattern, as in [`PatVec`]).
    spike: Vec<f64>,
    spike_pattern: Vec<usize>,
    spike_dense: bool,
    /// EWMA of the FTRAN result density (`nnz / m`), used to skip the
    /// reach-based U pass when results have been filling in anyway — the
    /// bookkeeping up to the abort point is pure overhead then.
    ftran_density: f64,
    factorizations: usize,
    total_updates: usize,
    /// Total repairs across the solve (reported in the stats).
    repairs: usize,
    /// Repairs since the last successful Forrest–Tomlin update — the value
    /// checked against [`SolveOptions::max_repairs`], so isolated breakdowns
    /// over a long run never exhaust the budget, while breakdowns that recur
    /// without any progress in between still terminate the solve.
    repair_streak: usize,
    /// Set when the factorisation was rebuilt: reduced costs must be
    /// recomputed before the next pricing decision.
    dirty_reduced_costs: bool,
    /// Set when a repair rolled the basis back: Devex weights must reset.
    dirty_weights: bool,
    /// Whether any core column is boxed (`sf.upper` finite); gates all the
    /// bound-side bookkeeping so unboxed programs pay nothing.
    has_boxes: bool,
    /// Nonbasic boxed core columns currently sitting at their **upper** bound
    /// (`z_j = u_j`); everything else nonbasic sits at zero.
    at_upper: Vec<bool>,
    /// `at_upper` snapshot taken with [`RevisedState::last_good_basis`] — a
    /// repair rollback must restore both or the recomputed `x_B` would belong
    /// to a different vertex.
    last_good_at_upper: Vec<bool>,
}

impl<'a> RevisedState<'a> {
    fn new(sf: &'a StandardForm) -> Result<Self, SimplexError> {
        let num_rows = sf.num_rows();
        let num_core = sf.num_columns();
        let mut artificial_rows = Vec::new();
        let mut basis = vec![usize::MAX; num_rows];
        for (r, hint) in sf.basis_hint.iter().enumerate() {
            match hint {
                Some(col) => basis[r] = *col,
                None => {
                    basis[r] = num_core + artificial_rows.len();
                    artificial_rows.push(r);
                }
            }
        }
        let mut in_basis = vec![false; num_core + artificial_rows.len()];
        for &col in &basis {
            in_basis[col] = true;
        }
        let mut state = RevisedState {
            sf,
            num_core,
            artificial_rows,
            basis: basis.clone(),
            in_basis,
            // Placeholder; replaced by the initial factorisation below (the
            // initial basis is all slacks/artificials, i.e. the identity, so
            // this cannot fail for want of pivots).
            lu: LuFactors::factor(0, &[], 1e-11)
                .expect("empty factorisation")
                .0,
            row_major: sf.matrix.to_row_major(),
            xb: sf.rhs.clone(),
            last_good_basis: basis,
            spike: vec![0.0; num_rows],
            spike_pattern: Vec::new(),
            spike_dense: false,
            ftran_density: 0.0,
            factorizations: 0,
            total_updates: 0,
            repairs: 0,
            repair_streak: 0,
            dirty_reduced_costs: false,
            dirty_weights: false,
            has_boxes: sf.upper.iter().any(|u| u.is_finite()),
            at_upper: vec![false; num_core],
            last_good_at_upper: vec![false; num_core],
        };
        state.refactorize()?;
        Ok(state)
    }

    /// A state seeded from an explicit (already validated: right length, core
    /// entries distinct) basis — the warm-start entry point.  Seed entries
    /// `>= num_core` mark rows the donor solve kept basic through an
    /// artificial variable (redundant constraints); each such row receives a
    /// fresh artificial column here.  Fails when the seeded basis is
    /// numerically singular.
    fn with_basis(sf: &'a StandardForm, seed: &[usize]) -> Result<Self, SimplexError> {
        let num_rows = sf.num_rows();
        let num_core = sf.num_columns();
        let mut artificial_rows = Vec::new();
        let mut basis = Vec::with_capacity(num_rows);
        for (r, &col) in seed.iter().enumerate() {
            if col < num_core {
                basis.push(col);
            } else {
                basis.push(num_core + artificial_rows.len());
                artificial_rows.push(r);
            }
        }
        let mut in_basis = vec![false; num_core + artificial_rows.len()];
        for &col in &basis {
            in_basis[col] = true;
        }
        let mut state = RevisedState {
            sf,
            num_core,
            artificial_rows,
            basis: basis.clone(),
            in_basis,
            lu: LuFactors::factor(0, &[], 1e-11)
                .expect("empty factorisation")
                .0,
            row_major: sf.matrix.to_row_major(),
            xb: sf.rhs.clone(),
            last_good_basis: basis,
            spike: vec![0.0; num_rows],
            spike_pattern: Vec::new(),
            spike_dense: false,
            ftran_density: 0.0,
            factorizations: 0,
            total_updates: 0,
            repairs: 0,
            repair_streak: 0,
            dirty_reduced_costs: false,
            dirty_weights: false,
            has_boxes: sf.upper.iter().any(|u| u.is_finite()),
            at_upper: vec![false; num_core],
            last_good_at_upper: vec![false; num_core],
        };
        state.refactorize()?;
        Ok(state)
    }

    /// Upper bound of a column's standard-form value (`z`), `INFINITY` for
    /// slacks without boxes and for artificials.
    #[inline]
    fn ub(&self, col: usize) -> f64 {
        if col < self.num_core {
            self.sf.upper[col]
        } else {
            f64::INFINITY
        }
    }

    fn num_rows(&self) -> usize {
        self.sf.num_rows()
    }

    fn num_artificials(&self) -> usize {
        self.artificial_rows.len()
    }

    /// The `(row, value)` entries of column `j`, covering artificials as unit
    /// columns.
    fn column_rows(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (rows, values, unit) = if j < self.num_core {
            let (rows, values) = self.sf.matrix.column_slices(j);
            (rows, values, None)
        } else {
            (
                &[][..],
                &[][..],
                Some(self.artificial_rows[j - self.num_core]),
            )
        };
        rows.iter()
            .copied()
            .zip(values.iter().copied())
            .chain(unit.map(|r| (r, 1.0)))
    }

    /// Dot product of column `j` with a dense row vector.
    fn column_dot(&self, j: usize, dense: &[f64]) -> f64 {
        if j < self.num_core {
            self.sf.matrix.column_dot(j, dense)
        } else {
            dense[self.artificial_rows[j - self.num_core]]
        }
    }

    /// FTRAN the entering column `j` into `w` (`w = B⁻¹ a_j`), saving the
    /// partial result after the L pass as the Forrest–Tomlin spike (with its
    /// pattern, so the update can stay sparse too).
    fn ftran_column(&mut self, j: usize, w: &mut PatVec) {
        w.clear();
        if j < self.num_core {
            for (r, v) in self.sf.matrix.column(j) {
                w.set(r, v);
            }
        } else {
            w.set(self.artificial_rows[j - self.num_core], 1.0);
        }
        let l_sparse = self.lu.solve_l_sparse(&mut w.values, &mut w.pattern);

        // Save the spike before the U pass.
        if self.spike_dense {
            self.spike.fill(0.0);
        } else {
            for &r in &self.spike_pattern {
                self.spike[r] = 0.0;
            }
        }
        self.spike_pattern.clear();
        if l_sparse {
            for &r in &w.pattern {
                self.spike[r] = w.values[r];
            }
            self.spike_pattern.extend_from_slice(&w.pattern);
            self.spike_dense = false;
            if self.ftran_density > 0.2 {
                self.lu.solve_u(&mut w.values);
                w.dense = true;
            } else {
                w.dense = !self.lu.solve_u_sparse(&mut w.values, &mut w.pattern);
            }
            if !w.dense {
                // Ascending row order keeps every pattern consumer (ratio-test
                // tie-breaks, FP accumulation) bitwise identical to the dense
                // scans, so the pivot trajectory is independent of which path
                // each solve took.
                w.pattern.sort_unstable();
            }
        } else {
            self.spike.copy_from_slice(&w.values);
            self.spike_dense = true;
            self.lu.solve_u(&mut w.values);
            w.dense = true;
        }
        if w.dense {
            // Harvest the nonzero pattern from the dense result: even solves
            // that densified *during elimination* usually end mostly zero on
            // these LPs, and every downstream consumer (ratio test, basic-
            // solution update, steepest-edge masking) iterates the pattern.
            // The ascending harvest order matches the dense scan order, so
            // trajectories are bitwise unchanged.
            w.pattern.clear();
            for (r, &v) in w.values.iter().enumerate() {
                if v != 0.0 {
                    w.pattern.push(r);
                }
            }
            if w.pattern.len() * 4 <= w.values.len() {
                w.dense = false;
            } else {
                w.pattern.clear();
            }
        }
        let m = w.values.len().max(1);
        let density = if w.dense {
            1.0
        } else {
            w.pattern.len() as f64 / m as f64
        };
        self.ftran_density = 0.9 * self.ftran_density + 0.1 * density;
        if !w.dense {}
    }

    /// BTRAN: overwrite `y` with `y B⁻¹` (dense — used for full cost vectors).
    fn btran(&self, y: &mut [f64]) {
        self.lu.btran(y);
    }

    /// Sparse BTRAN of the unit vector `e_row` into `rho` — the pivot-row
    /// transform `ρ' = e_r' B⁻¹`.
    fn btran_unit(&mut self, row: usize, rho: &mut PatVec) {
        rho.clear();
        rho.set(row, 1.0);
        rho.dense = !self.lu.btran_sparse(&mut rho.values, &mut rho.pattern);
        if !rho.dense {
            rho.pattern.sort_unstable(); // see ftran_column on why
        } else {
            // Same dense-result pattern harvest as `ftran_column`.
            rho.pattern.clear();
            for (r, &v) in rho.values.iter().enumerate() {
                if v != 0.0 {
                    rho.pattern.push(r);
                }
            }
            if rho.pattern.len() * 4 <= rho.values.len() {
                rho.dense = false;
            } else {
                rho.pattern.clear();
            }
        }
        if !rho.dense {}
    }

    /// Bounded sparse BTRAN of an already-populated pattern vector in place
    /// (used for the masked steepest-edge reference vector `w̃`).  Returns
    /// `false` — with `v` zeroed back out — when the solve abandoned because
    /// the result densified; the caller treats the cross term as unavailable
    /// rather than paying a dense solve for an optional quantity.
    fn btran_patvec(&mut self, v: &mut PatVec) -> bool {
        debug_assert!(!v.dense);
        let cap = (2 * v.pattern.len()).max(128);
        if self
            .lu
            .btran_sparse_bounded(&mut v.values, &mut v.pattern, cap)
        {
            v.pattern.sort_unstable(); // see ftran_column on why
            true
        } else {
            false
        }
    }

    /// Ratio test.  `None` means the column is unbounded.
    ///
    /// Two variants, matching the entering rule in force:
    ///
    /// * **Bland mode** (`use_bland`): the textbook rule — exact minimum ratio,
    ///   ties broken by the smallest basic-variable index.  This is what Bland's
    ///   termination guarantee requires of the *leaving* choice, so the
    ///   anti-cycling fallback keeps its guarantee on this backend too.
    /// * **Harris mode** (default): pass 1 computes the largest step `θ` that
    ///   keeps every basic variable above `−feas_tol` (a slightly relaxed
    ///   bound); pass 2 picks, among the rows whose exact ratio fits under that
    ///   bound, the one with the **largest pivot element**.  Preferring large
    ///   pivots is what keeps the basis numerically honest over thousands of
    ///   degenerate pivots; the tiny transient infeasibility (≤ `feas_tol`) is
    ///   absorbed by the clamping in [`RevisedState::apply_pivot`] and by the
    ///   exact `x_B` recomputation at every refactorisation.
    ///
    /// Boxed extension (the *long-step* part): an entering column at its lower
    /// bound moves up (`σ = +1`), one at its upper bound moves down
    /// (`σ = −1`); basic variables move by `−σ θ w_r` and may block at either
    /// of their own bounds, and the entering column's own span `u_q` is a
    /// third limit — when it is the tightest, the column just flips to its
    /// opposite bound with no pivot at all ([`RatioOutcome::BoundFlip`]).
    fn ratio_test(&self, w: &PatVec, entering: usize, eps: f64, use_bland: bool) -> RatioOutcome {
        let sigma = if self.has_boxes && entering < self.num_core && self.at_upper[entering] {
            -1.0
        } else {
            1.0
        };
        let span = self.ub(entering);
        if use_bland {
            let mut best: Option<(usize, f64, bool)> = None;
            for_nz!(w, r, wr, {
                let delta = sigma * wr;
                let cand = if delta > eps {
                    Some((self.xb[r] / delta, false))
                } else if delta < -eps {
                    let ub = self.ub(self.basis[r]);
                    if ub.is_finite() {
                        Some(((ub - self.xb[r]) / -delta, true))
                    } else {
                        None
                    }
                } else {
                    None
                };
                if let Some((ratio, to_upper)) = cand {
                    match best {
                        None => best = Some((r, ratio, to_upper)),
                        Some((best_row, best_ratio, _)) => {
                            if ratio < best_ratio - eps
                                || (ratio < best_ratio + eps
                                    && self.basis[r] < self.basis[best_row])
                            {
                                best = Some((r, ratio, to_upper));
                            }
                        }
                    }
                }
            });
            return match best {
                Some((row, ratio, to_upper)) if ratio <= span => {
                    RatioOutcome::Pivot { row, to_upper }
                }
                _ if span.is_finite() => RatioOutcome::BoundFlip,
                Some((row, _, to_upper)) => RatioOutcome::Pivot { row, to_upper },
                None => RatioOutcome::Unbounded,
            };
        }
        let feas_tol = eps.max(1e-10);
        let mut theta_bound = f64::INFINITY;
        for_nz!(w, r, wr, {
            let delta = sigma * wr;
            if delta > eps {
                theta_bound = theta_bound.min((self.xb[r] + feas_tol) / delta);
            } else if delta < -eps {
                let ub = self.ub(self.basis[r]);
                if ub.is_finite() {
                    theta_bound = theta_bound.min((ub - self.xb[r] + feas_tol) / -delta);
                }
            }
        });
        if span < theta_bound {
            return RatioOutcome::BoundFlip;
        }
        if theta_bound.is_infinite() {
            return RatioOutcome::Unbounded;
        }
        let mut best: Option<(usize, f64, bool)> = None;
        for_nz!(w, r, wr, {
            let delta = sigma * wr;
            let cand = if delta > eps && self.xb[r] / delta <= theta_bound {
                Some(false)
            } else if delta < -eps {
                let ub = self.ub(self.basis[r]);
                if ub.is_finite() && (ub - self.xb[r]) / -delta <= theta_bound {
                    Some(true)
                } else {
                    None
                }
            } else {
                None
            };
            if let Some(to_upper) = cand {
                match best {
                    None => best = Some((r, delta.abs(), to_upper)),
                    Some((_, best_mag, _)) if delta.abs() > best_mag => {
                        best = Some((r, delta.abs(), to_upper))
                    }
                    _ => {}
                }
            }
        });
        match best {
            Some((row, _, to_upper)) => RatioOutcome::Pivot { row, to_upper },
            // Unreachable in exact arithmetic (the pass-1 minimiser fits its
            // own bound); flip if the box allows, else report unbounded and
            // let the caller's certification machinery decide.
            None if span.is_finite() => RatioOutcome::BoundFlip,
            None => RatioOutcome::Unbounded,
        }
    }

    /// Execute the basis change `col` enters / row `row` leaves, given the
    /// already FTRANed entering column `w` (whose L-stage spike is still saved
    /// from [`RevisedState::ftran_column`]).  Updates the basic solution, the
    /// basis books, and the LU factors (repairing on breakdown).  Returns
    /// `true` for a non-degenerate pivot.
    fn apply_pivot(
        &mut self,
        row: usize,
        col: usize,
        w: &PatVec,
        to_upper: bool,
        options: &SolveOptions,
    ) -> Result<bool, SimplexError> {
        let pivot_value = w.values[row];
        debug_assert!(pivot_value.abs() > 0.0, "pivot on a zero element");
        let sigma = if self.has_boxes && col < self.num_core && self.at_upper[col] {
            -1.0
        } else {
            1.0
        };
        let leaving = self.basis[row];
        // Step length t: how far the entering variable travels from its
        // current bound (`t >= 0`); the leaving variable lands exactly on the
        // bound the ratio test picked.
        let t = if to_upper {
            (self.ub(leaving) - self.xb[row]) / -(sigma * pivot_value)
        } else {
            self.xb[row] / (sigma * pivot_value)
        };
        let nondegenerate = t > 0.0;

        // Update the basic solution: the entering variable moves by t from its
        // bound, every other basic variable retreats along the column.
        for_nz!(w, r, wr, {
            if r != row {
                self.xb[r] -= sigma * wr * t;
                if self.xb[r] < 0.0 && self.xb[r] > -1e-11 {
                    self.xb[r] = 0.0;
                } else if self.has_boxes {
                    let ub = self.ub(self.basis[r]);
                    if self.xb[r] > ub && self.xb[r] < ub + 1e-11 {
                        self.xb[r] = ub;
                    }
                }
            }
        });
        self.xb[row] = if sigma > 0.0 { t } else { self.ub(col) - t };

        if self.has_boxes {
            if to_upper {
                // Artificials and plain slacks have no finite upper bound, so
                // a variable leaving at its upper bound is always a core
                // boxed column.
                self.at_upper[leaving] = true;
            }
            if col < self.num_core {
                self.at_upper[col] = false;
            }
        }
        self.in_basis[self.basis[row]] = false;
        self.in_basis[col] = true;
        self.basis[row] = col;
        self.total_updates += 1;

        let spike_pattern = if self.spike_dense {
            None
        } else {
            Some(self.spike_pattern.as_slice())
        };
        if self.lu.update(row, &self.spike, spike_pattern).is_err() {
            // The update left the factors unusable; rebuild from scratch (this
            // recomputes x_B exactly from the repaired basis).
            self.repair(options, "Forrest–Tomlin update met a singular basis", false)?;
        } else {
            self.repair_streak = 0;
        }
        Ok(nondegenerate)
    }

    /// Flip a nonbasic boxed column to its opposite bound: the basic solution
    /// absorbs the full span of the box along the FTRANed column `w`, the
    /// basis and its factors stay untouched.
    fn bound_flip(&mut self, col: usize, w: &PatVec) {
        debug_assert!(col < self.num_core && self.ub(col).is_finite());
        let span = self.ub(col);
        let sigma = if self.at_upper[col] { -1.0 } else { 1.0 };
        for_nz!(w, r, wr, {
            self.xb[r] -= sigma * wr * span;
            if self.xb[r] < 0.0 && self.xb[r] > -1e-11 {
                self.xb[r] = 0.0;
            } else {
                let ub = self.ub(self.basis[r]);
                if self.xb[r] > ub && self.xb[r] < ub + 1e-11 {
                    self.xb[r] = ub;
                }
            }
        });
        self.at_upper[col] = !self.at_upper[col];
    }

    /// Rebuild the LU factors from the current basis columns and recompute
    /// `x_B = B⁻¹ b` from scratch.  Retries once with a relaxed pivot
    /// threshold before reporting the basis singular — a basis reached by
    /// exact pivoting is nonsingular, so a rejected pivot usually means drift,
    /// and a badly conditioned exact representation beats none.
    fn refactorize(&mut self) -> Result<(), SimplexError> {
        let refactor_started = std::time::Instant::now();
        let num_rows = self.num_rows();
        let columns: Vec<Vec<(usize, f64)>> = self
            .basis
            .iter()
            .map(|&col| self.column_rows(col).collect())
            .collect();
        let (lu, row_of_slot) = LuFactors::factor(num_rows, &columns, 1e-11)
            .or_else(|_| LuFactors::factor(num_rows, &columns, 1e-13))
            .map_err(|_| SimplexError::NumericalBreakdown {
                context: "LU factorisation met a numerically singular basis",
                repairs: self.repairs,
            })?;

        // The factorisation may re-key which row each basic column pivots on.
        let old_basis = self.basis.clone();
        for (slot, &new_row) in row_of_slot.iter().enumerate() {
            self.basis[new_row] = old_basis[slot];
        }
        self.lu = lu;
        self.factorizations += 1;
        // Fresh factors are at their sparsest: let the FTRAN path try the
        // hypersparse route again instead of staying locked dense by the
        // tail-of-window density estimate.
        self.ftran_density = 0.0;
        self.last_good_basis.clone_from(&self.basis);
        if self.has_boxes {
            self.last_good_at_upper.clone_from(&self.at_upper);
        }
        self.dirty_reduced_costs = true;

        // Fresh basic solution; clamp the usual tiny negative round-off.  With
        // boxed columns the effective right-hand side subtracts the at-upper
        // nonbasic contributions: x_B = B⁻¹ (b − Σ_{j at upper} u_j a_j).
        self.xb.copy_from_slice(&self.sf.rhs);
        if self.has_boxes {
            let mut xb = std::mem::take(&mut self.xb);
            for (j, &up) in self.at_upper.iter().enumerate() {
                if up {
                    let u = self.sf.upper[j];
                    for (r, v) in self.sf.matrix.column(j) {
                        xb[r] -= u * v;
                    }
                }
            }
            self.xb = xb;
        }
        let mut xb = std::mem::take(&mut self.xb);
        self.lu.ftran(&mut xb);
        for (r, value) in xb.iter_mut().enumerate() {
            if *value < 0.0 && *value > -1e-9 {
                *value = 0.0;
            } else if self.has_boxes {
                let ub = self.ub(self.basis[r]);
                if *value > ub && *value < ub + 1e-9 {
                    *value = ub;
                }
            }
        }
        self.xb = xb;
        cpm_obs::histogram!("cpm_lp_refactorize_nanos").record_duration(refactor_started.elapsed());
        Ok(())
    }

    /// Basis-repair recovery: refactorise from scratch after a breakdown,
    /// rolling back to the last good basis when the current one is singular.
    /// Each attempt (one factorisation, preceded by a rollback where needed)
    /// consumes one unit of [`SolveOptions::max_repairs`].
    ///
    /// `current_basis_failed` tells the repair that a factorisation of the
    /// *current* basis was just attempted and failed (the refactorisation call
    /// sites), so re-running the identical deterministic factorisation would
    /// waste a budget unit — roll back first instead.  Breakdowns during a
    /// Forrest–Tomlin update pass `false`: there the current basis has not
    /// been factorised yet and usually is fine.
    fn repair(
        &mut self,
        options: &SolveOptions,
        context: &'static str,
        current_basis_failed: bool,
    ) -> Result<(), SimplexError> {
        // Repairs are rare and always interesting: span them so the flight
        // recorder shows the recovery attempts leading up to any breakdown.
        let repair_span = cpm_obs::span!("simplex", "basis_repair");
        let mut roll_back_first = current_basis_failed;
        loop {
            if self.repair_streak >= options.max_repairs {
                return Err(SimplexError::NumericalBreakdown {
                    context,
                    repairs: self.repairs,
                });
            }
            self.repairs += 1;
            self.repair_streak += 1;
            self.dirty_weights = true;
            if roll_back_first {
                if self.basis == self.last_good_basis {
                    // Nothing left to roll back to.
                    return Err(SimplexError::NumericalBreakdown {
                        context,
                        repairs: self.repairs,
                    });
                }
                self.basis.clone_from(&self.last_good_basis);
                if self.has_boxes {
                    self.at_upper.clone_from(&self.last_good_at_upper);
                }
                self.in_basis.fill(false);
                for &col in &self.basis {
                    self.in_basis[col] = true;
                }
            }
            if self.refactorize().is_ok() {
                cpm_obs::histogram!("cpm_lp_repair_nanos").record(repair_span.elapsed_nanos());
                return Ok(());
            }
            roll_back_first = true;
        }
    }

    /// The current objective `c_B' x_B` (plus `Σ c_j u_j` over nonbasic
    /// at-upper boxed columns) under the given cost vector.
    fn objective(&self, costs: &[f64]) -> f64 {
        let basic: f64 = self
            .basis
            .iter()
            .zip(self.xb.iter())
            .map(|(&col, &value)| costs[col] * value)
            .sum();
        if !self.has_boxes {
            return basic;
        }
        basic
            + self
                .at_upper
                .iter()
                .enumerate()
                .filter(|&(_, &up)| up)
                .map(|(j, _)| costs[j] * self.sf.upper[j])
                .sum::<f64>()
    }
}

/// Entering-column pricing state shared across a phase: reduced costs over the
/// core columns (maintained incrementally from the pivot row) and the Devex
/// reference weights.
struct Pricing {
    rule: PricingRule,
    /// Reduced costs of the core columns (meaningless for basic columns).
    d: Vec<f64>,
    /// Reference-framework weights: Devex estimates, or exact projected
    /// steepest-edge norms `γ_j` under [`PricingRule::SteepestEdge`].
    weights: Vec<f64>,
    weight_max: f64,
    /// Steepest edge only: membership of each core column in the reference
    /// framework `F` fixed at the last rebuild (`γ_j = δ(j∈F) + Σ w_i²` over
    /// rows whose basic variable is in `F`).
    in_ref: Vec<bool>,
    /// Steepest edge only: the framework must be rebuilt from the current
    /// nonbasic set before the next pivot.
    ref_stale: bool,
    /// Candidate list: the nonbasic columns whose reduced cost is currently
    /// attractive.  Maintained incrementally (the pivot-row update is the only
    /// thing that changes a reduced cost), so pricing scans this list instead
    /// of every column; an exact recompute rebuilds it, which is what keeps
    /// optimality proofs sound even if the list went stale.
    list: Vec<usize>,
    in_list: Vec<bool>,
    /// `d` must be recomputed from scratch before the next use.
    dirty: bool,
    /// `d` is exact (recomputed and not yet drifted by incremental updates), so
    /// entering candidates need no FTRAN-side verification and an empty scan
    /// proves optimality.
    exact: bool,
    /// Partial-pricing cursor (start of the section scanned first).
    cursor: usize,
    resets: usize,
}

/// Reduced costs below this join the candidate list (a strict superset of the
/// `d < -tolerance` test pricing applies, so the list never hides a winner).
const CANDIDATE_EPS: f64 = 1e-10;

/// Lower bound applied to steepest-edge weights after each update.
const GAMMA_FLOOR: f64 = 1e-4;

impl Pricing {
    fn new(num_core: usize, rule: PricingRule) -> Self {
        Pricing {
            rule,
            d: vec![0.0; num_core],
            weights: vec![1.0; num_core],
            weight_max: 1.0,
            in_ref: vec![false; num_core],
            ref_stale: true,
            list: Vec::new(),
            in_list: vec![false; num_core],
            dirty: true,
            exact: false,
            cursor: 0,
            resets: 0,
        }
    }

    /// Reset the reference framework (all weights back to one; steepest edge
    /// additionally re-anchors `F` to the current nonbasic set lazily).
    fn reset_weights(&mut self) {
        self.weights.fill(1.0);
        self.weight_max = 1.0;
        self.ref_stale = true;
        self.resets += 1;
    }

    /// Steepest edge: fix the reference framework to the current nonbasic set
    /// with unit weights (each nonbasic column's projected norm is then
    /// exactly `δ(j∈F) = 1`).
    fn rebuild_reference(&mut self, in_basis: &[bool]) {
        for (j, r) in self.in_ref.iter_mut().enumerate() {
            *r = !in_basis[j];
        }
        self.weights.fill(1.0);
        self.weight_max = 1.0;
        self.ref_stale = false;
    }

    /// Exact projected steepest-edge norm of the entering column from its
    /// FTRANed representation `w = B⁻¹ a_q`.
    fn exact_gamma(&self, w: &PatVec, basis_cols: &[usize], entering: usize) -> f64 {
        let mut g = if self.in_ref[entering] { 1.0 } else { 0.0 };
        for_nz!(w, i, wi, {
            let c = basis_cols[i];
            if c < self.in_ref.len() && self.in_ref[c] {
                g += wi * wi;
            }
        });
        g
    }

    /// Put `j` on the candidate list if its reduced cost warrants it
    /// (side-aware: an at-upper column prices favourably on *positive* `d`).
    #[inline]
    fn consider_candidate(&mut self, j: usize, up: bool) {
        if !self.in_list[j] && favourable(self.d[j], up, CANDIDATE_EPS) {
            self.in_list[j] = true;
            self.list.push(j);
        }
    }

    /// Recompute the reduced costs exactly: `y = c_B' B⁻¹`, then
    /// `d_j = c_j − y' a_j` per nonbasic core column.
    fn recompute(&mut self, basis: &RevisedState<'_>, costs: &[f64], y: &mut [f64]) {
        for (r, slot) in y.iter_mut().enumerate() {
            *slot = costs[basis.basis[r]];
        }
        basis.btran(y);
        for &j in &self.list {
            self.in_list[j] = false;
        }
        self.list.clear();
        for (j, d) in self.d.iter_mut().enumerate() {
            *d = if basis.in_basis[j] {
                0.0
            } else {
                costs[j] - basis.column_dot(j, y)
            };
            if !basis.in_basis[j]
                && favourable(*d, basis.has_boxes && basis.at_upper[j], CANDIDATE_EPS)
            {
                self.in_list[j] = true;
                self.list.push(j);
            }
        }
        self.dirty = false;
        self.exact = true;
    }

    /// Pick the entering column per the active rule, or `None` when no
    /// candidate prices favourably.  With partial pricing the scan walks
    /// cyclic sections and stops at the first section holding a candidate.
    fn select(
        &mut self,
        eps: f64,
        partial: usize,
        in_basis: &[bool],
        at_upper: &[bool],
    ) -> Option<usize> {
        let n = self.d.len();
        if n == 0 {
            return None;
        }
        if partial == 0 || partial >= n {
            return self.select_from_list(eps, in_basis, at_upper);
        }
        let sections = n.div_ceil(partial);
        for s in 0..sections {
            let start = (self.cursor + s * partial) % n;
            let end = (start + partial).min(n);
            if let Some(j) = self.select_range(eps, in_basis, at_upper, start, end) {
                self.cursor = start;
                return Some(j);
            }
            // Wrap the tail section around to keep sections aligned to the
            // cursor rather than to zero.
            if start + partial > n {
                if let Some(j) = self.select_range(eps, in_basis, at_upper, 0, start + partial - n)
                {
                    self.cursor = start;
                    return Some(j);
                }
            }
        }
        None
    }

    /// Scan the candidate list, evicting entries that went basic or stopped
    /// pricing favourably (they re-join through
    /// [`Pricing::consider_candidate`] if an update revives them).
    fn select_from_list(
        &mut self,
        eps: f64,
        in_basis: &[bool],
        at_upper: &[bool],
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        let mut k = 0;
        while k < self.list.len() {
            let j = self.list[k];
            if in_basis[j] || !favourable(self.d[j], at_upper[j], CANDIDATE_EPS) {
                self.in_list[j] = false;
                self.list.swap_remove(k);
                continue;
            }
            let d = self.d[j];
            if favourable(d, at_upper[j], eps) {
                let score = match self.rule {
                    PricingRule::Dantzig => d.abs(),
                    PricingRule::Devex | PricingRule::SteepestEdge => d * d / self.weights[j],
                };
                match best {
                    None => best = Some((j, score)),
                    Some((_, best_score)) if score > best_score => best = Some((j, score)),
                    _ => {}
                }
            }
            k += 1;
        }
        best.map(|(j, _)| j)
    }

    fn select_range(
        &self,
        eps: f64,
        in_basis: &[bool],
        at_upper: &[bool],
        start: usize,
        end: usize,
    ) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        #[allow(clippy::needless_range_loop)] // parallel arrays indexed by j
        for j in start..end {
            if in_basis[j] {
                continue;
            }
            let d = self.d[j];
            if favourable(d, at_upper[j], eps) {
                let score = match self.rule {
                    PricingRule::Dantzig => d.abs(),
                    PricingRule::Devex | PricingRule::SteepestEdge => d * d / self.weights[j],
                };
                match best {
                    None => best = Some((j, score)),
                    Some((_, best_score)) if score > best_score => best = Some((j, score)),
                    _ => {}
                }
            }
        }
        best.map(|(j, _)| j)
    }

    /// Incrementally update `d` and the Devex weights from the pivot row.
    ///
    /// `alpha` holds the pivot row `e_r' B⁻¹ A` over the core columns,
    /// `alpha_rq = w[row]` is the pivot element, `d_q` the entering column's
    /// (verified) reduced cost, and `leaving` the column leaving the basis.
    #[allow(clippy::too_many_arguments)]
    fn update_from_pivot_row(
        &mut self,
        alpha: &SparseAccumulator,
        alpha_rq: f64,
        entering: usize,
        d_q: f64,
        leaving: usize,
        leaving_to_upper: bool,
        in_basis: &[bool],
        at_upper: &[bool],
    ) {
        let theta_d = d_q / alpha_rq;
        let gamma_q = self.weights[entering].max(1.0);
        for &j in alpha.pattern() {
            if j == entering || in_basis[j] {
                continue;
            }
            let a = alpha.get(j);
            if a == 0.0 {
                continue;
            }
            self.d[j] -= theta_d * a;
            self.consider_candidate(j, at_upper[j]);
            let ratio = a / alpha_rq;
            let candidate = ratio * ratio * gamma_q;
            if candidate > self.weights[j] {
                self.weights[j] = candidate;
                self.weight_max = self.weight_max.max(candidate);
            }
        }
        // The leaving column re-enters the nonbasic set: its pivot-row entry is
        // exactly one (B⁻¹ a_leaving = e_r), so its new reduced cost is −θ_d.
        if leaving < self.d.len() {
            self.d[leaving] = -theta_d;
            self.consider_candidate(leaving, leaving_to_upper);
            let w = (gamma_q / (alpha_rq * alpha_rq)).max(1.0);
            self.weights[leaving] = w;
            self.weight_max = self.weight_max.max(w);
        }
        self.d[entering] = 0.0;
        self.exact = false;
        if self.weight_max > DEVEX_WEIGHT_LIMIT {
            self.reset_weights();
        }
    }

    /// The projected steepest-edge counterpart of
    /// [`Pricing::update_from_pivot_row`].
    ///
    /// With `q` entering on row `r` and `l = basis[r]` leaving, the projected
    /// norm of every nonbasic column with `α_rj ≠ 0` transforms as
    ///
    /// ```text
    /// γ_j' = γ_j − 2·(α_rj/α_rq)·τ_j + (α_rj/α_rq)²·γ_q − 2·δ(l∈F)·α_rj²
    /// ```
    ///
    /// where `γ_q` is the **exact** norm of the entering column (recomputed
    /// from its FTRAN) and `τ_j = a_j' B⁻ᵀ w̃` with `w̃` the entering FTRAN
    /// masked to reference rows other than `r`.  The leaving column's new
    /// representation is `e_r − (w − e_r)/α_rq`, which collapses to
    /// `γ_l' = γ_q / α_rq²` in the reference norm.  Every weight is clamped
    /// from below by the exactly-known row-`r` component so drift can only
    /// make columns *more* attractive to the verification step, never
    /// invisible to it.
    #[allow(clippy::too_many_arguments)]
    fn update_steepest(
        &mut self,
        alpha: &SparseAccumulator,
        tau: &SparseAccumulator,
        alpha_rq: f64,
        gamma_q: f64,
        entering: usize,
        d_q: f64,
        leaving: usize,
        leaving_to_upper: bool,
        leaving_in_ref: bool,
        in_basis: &[bool],
        at_upper: &[bool],
    ) {
        let theta_d = d_q / alpha_rq;
        let entering_in_ref = self.in_ref[entering];
        for &j in alpha.pattern() {
            if j == entering || in_basis[j] {
                continue;
            }
            let a = alpha.get(j);
            if a == 0.0 {
                continue;
            }
            self.d[j] -= theta_d * a;
            self.consider_candidate(j, at_upper[j]);
            let ratio = a / alpha_rq;
            let mut g = self.weights[j] - 2.0 * ratio * tau.get(j) + ratio * ratio * gamma_q;
            if leaving_in_ref {
                g -= 2.0 * a * a;
            }
            // The new row-r component is exactly α_rj/α_rq (projected iff the
            // entering column sits in F), plus δ(j∈F): a hard lower bound.
            let mut floor = if self.in_ref[j] { 1.0 } else { 0.0 };
            if entering_in_ref {
                floor += ratio * ratio;
            }
            self.weights[j] = g.max(floor).max(GAMMA_FLOOR);
        }
        if leaving < self.d.len() {
            self.d[leaving] = -theta_d;
            self.consider_candidate(leaving, leaving_to_upper);
            let inv = 1.0 / (alpha_rq * alpha_rq);
            self.weights[leaving] = (gamma_q * inv).max(GAMMA_FLOOR);
        }
        self.d[entering] = 0.0;
        self.exact = false;
    }
}

/// Does a nonbasic column price favourably?  At the lower bound it wants a
/// negative reduced cost (move up); at the upper bound a positive one (move
/// down).
#[inline]
fn favourable(d: f64, at_upper: bool, thresh: f64) -> bool {
    if at_upper {
        d > thresh
    } else {
        d < -thresh
    }
}

/// Work vectors shared across phases: a dense cost-BTRAN buffer plus
/// pattern-tracked FTRAN/BTRAN results and the pivot-row accumulator.
struct Workspace {
    y: Vec<f64>,
    w: PatVec,
    rho: PatVec,
    alpha: SparseAccumulator,
    /// Steepest-edge scratch: the masked reference vector `w̃` (then `B⁻ᵀ w̃`).
    v: PatVec,
    /// Steepest-edge scratch: the row `τ = (B⁻ᵀ w̃)' A` over the core columns.
    tau: SparseAccumulator,
}

impl Workspace {
    fn new(num_rows: usize, num_core: usize) -> Self {
        Workspace {
            y: vec![0.0; num_rows],
            w: PatVec::new(num_rows),
            rho: PatVec::new(num_rows),
            alpha: SparseAccumulator::with_len(num_core),
            v: PatVec::new(num_rows),
            tau: SparseAccumulator::with_len(num_core),
        }
    }

    /// Compute the pivot row `α = ρ' A` over the core columns into `alpha`
    /// from the BTRANed unit vector in `rho`.
    fn pivot_row(&mut self, row_major: &RowMajor) {
        self.alpha.clear();
        let rho = &self.rho;
        let alpha = &mut self.alpha;
        for_nz!(rho, r, rho_r, {
            for (j, v) in row_major.row(r) {
                alpha.add(j, v * rho_r);
            }
        });
    }

    /// Compute `τ = v' A` over the core columns into `tau` from the BTRANed
    /// masked reference vector in `v` (the steepest-edge cross term).
    fn tau_row(&mut self, row_major: &RowMajor) {
        self.tau.clear();
        let v = &self.v;
        let tau = &mut self.tau;
        for_nz!(v, r, v_r, {
            for (j, a) in row_major.row(r) {
                tau.add(j, a * v_r);
            }
        });
    }
}

/// Solve the standard form with the sparse revised simplex.
///
/// When [`SolveOptions::warm_basis`] carries a usable seed (right shape,
/// nonsingular, dual feasible), the solve runs the **dual simplex** warm-start
/// path instead of the two-phase primal method; any defect in the seed falls
/// back to the cold path silently ([`crate::SolveStats::warm_started`] reports
/// which path produced the answer).
pub(crate) fn solve(
    sf: &StandardForm,
    options: &SolveOptions,
) -> Result<SolvedPoint, SimplexError> {
    if let Some(seed) = options.warm_basis.as_deref() {
        if let Some(point) = warm_solve(sf, options, seed) {
            return Ok(point);
        }
    }
    cold_solve(sf, options)
}

/// The original two-phase primal path (Phase 1 over artificials, Phase 2 with
/// the user costs).
fn cold_solve(sf: &StandardForm, options: &SolveOptions) -> Result<SolvedPoint, SimplexError> {
    let eps = options.tolerance;
    let num_rows = sf.num_rows();
    let num_core = sf.num_columns();

    let mut basis = RevisedState::new(sf)?;
    let total_columns = num_core + basis.num_artificials();

    let mut state = PivotState::new(options);
    state.stats.artificial_variables = basis.num_artificials();

    let mut ws = Workspace::new(num_rows, num_core);
    let mut pricing = Pricing::new(num_core, pricing_rule(options));

    // ------------------------------- Phase 1 -------------------------------
    if basis.num_artificials() > 0 {
        let mut phase1_costs = vec![0.0; total_columns];
        for cost in phase1_costs.iter_mut().skip(num_core) {
            *cost = 1.0;
        }
        // Phase 1 always prices with Dantzig scoring: on the artificial-sum
        // objective Devex's norm estimates systematically prefer small-pivot
        // columns and inflate the pivot count ~10x (measured on the mechanism
        // LPs), while Dantzig drives the artificials out in near-minimal
        // pivots.  The configured rule applies to Phase 2.
        pricing.rule = PricingRule::Dantzig;
        let before = state.iterations_left;
        let phase_span = cpm_obs::span!("simplex", "phase1");
        let outcome = run_phase(
            &mut basis,
            &phase1_costs,
            options,
            &mut state,
            &mut pricing,
            &mut ws,
        )?;
        cpm_obs::histogram!("cpm_lp_phase_nanos{phase=\"phase1\"}")
            .record(phase_span.elapsed_nanos());
        drop(phase_span);
        state.stats.phase1_iterations = before - state.iterations_left;
        if matches!(outcome, PhaseOutcome::Unbounded) {
            // Phase 1 is bounded below by zero; unboundedness is numerical.
            return Err(SimplexError::NumericalBreakdown {
                context: "phase 1 of the revised simplex became unbounded",
                repairs: basis.repairs,
            });
        }
        if basis.objective(&phase1_costs) > 1e-6 {
            return Err(SimplexError::Infeasible);
        }
        drive_out_artificials(&mut basis, eps, options, &mut ws)?;
    }

    // ------------------------------- Phase 2 -------------------------------
    let mut phase2_costs = sf.costs.clone();
    phase2_costs.resize(total_columns, 0.0);
    state.start_phase(options);
    pricing.rule = pricing_rule(options);
    pricing.dirty = true;
    pricing.reset_weights();
    pricing.resets -= 1; // the phase boundary is not a mid-run framework reset
    let before = state.iterations_left;
    let phase_span = cpm_obs::span!("simplex", "phase2");
    let outcome = run_phase(
        &mut basis,
        &phase2_costs,
        options,
        &mut state,
        &mut pricing,
        &mut ws,
    )?;
    cpm_obs::histogram!("cpm_lp_phase_nanos{phase=\"phase2\"}").record(phase_span.elapsed_nanos());
    drop(phase_span);
    state.stats.phase2_iterations = before - state.iterations_left;
    if matches!(outcome, PhaseOutcome::Unbounded) {
        return Err(SimplexError::Unbounded);
    }

    let mut z = vec![0.0; num_core];
    if basis.has_boxes {
        for (j, &up) in basis.at_upper.iter().enumerate() {
            if up {
                z[j] = sf.upper[j];
            }
        }
    }
    for (r, &col) in basis.basis.iter().enumerate() {
        if col < num_core {
            z[col] = basis.xb[r];
        }
    }
    state.stats.refactorizations = basis.factorizations;
    state.stats.basis_updates = basis.total_updates;
    state.stats.basis_repairs = basis.repairs;
    if matches!(pricing.rule, PricingRule::SteepestEdge) {
        state.stats.steepest_edge_resets = pricing.resets;
    } else {
        state.stats.devex_resets = pricing.resets;
    }
    Ok(SolvedPoint {
        objective: basis.objective(&phase2_costs),
        z,
        stats: state.stats,
        basis: Some(basis.basis.clone()),
    })
}

/// The pricing rule in force when Bland mode is off: the legacy
/// [`PivotRule::Dantzig`](crate::PivotRule::Dantzig) forces Dantzig scoring,
/// otherwise [`SolveOptions::pricing`] decides.
fn pricing_rule(options: &SolveOptions) -> PricingRule {
    match options.pivot_rule {
        crate::solver::PivotRule::Dantzig => PricingRule::Dantzig,
        _ => options.pricing,
    }
}

// ---------------------------------------------------------------------------
// Dual-simplex warm starts.
// ---------------------------------------------------------------------------

/// How a dual-simplex cleanup ended.
enum DualOutcome {
    /// Every basic variable is (within tolerance) non-negative — hand over to
    /// the primal Phase-2 machinery for certification.
    PrimalFeasible,
    /// The cleanup cannot make progress (no entering candidate, a numerical
    /// breakdown beyond the repair budget, or the pivot budget ran out).  The
    /// caller falls back to the cold primal path, which is always correct.
    Stalled,
}

/// Exact reduced costs of every core column under the current basis:
/// `y = c_B' B⁻¹`, then `d_j = c_j − y' a_j` (zero for basic columns).
fn exact_reduced_costs(basis: &RevisedState<'_>, costs: &[f64], y: &mut [f64], d: &mut [f64]) {
    for (r, slot) in y.iter_mut().enumerate() {
        *slot = costs[basis.basis[r]];
    }
    basis.btran(y);
    for (j, dj) in d.iter_mut().enumerate() {
        *dj = if basis.in_basis[j] {
            0.0
        } else {
            costs[j] - basis.column_dot(j, y)
        };
    }
}

/// Attempt the warm-started solve: factor the seeded basis, verify dual
/// feasibility of the Phase-2 costs, run the dual simplex to primal
/// feasibility, and certify with a primal cleanup.  `None` means "fall back to
/// the cold path" — a malformed/singular/dual-infeasible seed, a stalled dual
/// phase, or anything numerically suspicious.
pub(crate) fn warm_solve(
    sf: &StandardForm,
    options: &SolveOptions,
    seed: &[usize],
) -> Option<SolvedPoint> {
    let num_rows = sf.num_rows();
    let num_core = sf.num_columns();

    // The dual warm path has no bound-flipping machinery: a boxed standard
    // form (only produced for LPs with two-sided bounds, which mechanism LPs
    // never have) takes the cold primal path instead.
    if sf.upper.iter().any(|u| u.is_finite()) {
        return None;
    }

    // Shape check: one column per row, core entries distinct.  Entries beyond
    // the core columns mark rows the donor kept basic through an artificial
    // (redundant constraints) — those need no distinctness, each receives a
    // fresh artificial in `with_basis`.
    if seed.len() != num_rows || num_rows == 0 {
        return None;
    }
    let mut seen = vec![false; num_core];
    for &col in seed {
        if col < num_core {
            if seen[col] {
                return None;
            }
            seen[col] = true;
        }
    }

    let _warm_span = cpm_obs::span!("simplex", "warm_solve");
    let mut basis = RevisedState::with_basis(sf, seed).ok()?;
    let mut state = PivotState::new(options);
    state.stats.artificial_variables = basis.num_artificials();
    let mut ws = Workspace::new(num_rows, num_core);
    // Phase-2 costs; residual artificials cost zero, exactly as in the cold
    // path's Phase 2 (they can only leave the basis, never enter — neither
    // the dual ratio test nor the primal pricing scans beyond the core).
    let mut costs = sf.costs.clone();
    costs.resize(num_core + basis.num_artificials(), 0.0);
    let costs = &costs[..];

    // Dual feasibility at the seed.  The tolerance is deliberately looser than
    // the pivot tolerance: an α-neighbour's optimal basis is typically a few
    // ulps dual-infeasible under the perturbed matrix, and the primal cleanup
    // below repairs anything this slack lets through.
    let mut d = vec![0.0; num_core];
    exact_reduced_costs(&basis, costs, &mut ws.y, &mut d);
    let dual_tol = (options.tolerance * 100.0).max(1e-7);
    if d.iter()
        .enumerate()
        .any(|(j, &dj)| !basis.in_basis[j] && dj < -dual_tol)
    {
        return None;
    }

    match dual_phase(&mut basis, costs, &mut d, options, &mut state, &mut ws) {
        Ok(DualOutcome::PrimalFeasible) => {}
        _ => return None,
    }

    // Primal cleanup: mops up the bounded dual infeasibility the relaxed seed
    // check and the ratio-test slack allowed, and certifies optimality with
    // the existing (fresh-factor-confirming) phase machinery.  Near-neighbour
    // warm starts terminate here in a handful of pivots.
    let mut pricing = Pricing::new(num_core, pricing_rule(options));
    state.start_phase(options);
    let before = state.iterations_left;
    let outcome = run_phase(
        &mut basis,
        costs,
        options,
        &mut state,
        &mut pricing,
        &mut ws,
    )
    .ok()?;
    state.stats.phase2_iterations = before - state.iterations_left;
    if matches!(outcome, PhaseOutcome::Unbounded) {
        // Could be genuine unboundedness or a bad seed; let the cold path be
        // the authority either way.
        return None;
    }

    // A residual artificial that refuses to stay at zero means the donor's
    // redundant rows are *not* redundant under this problem's coefficients —
    // the "optimum" would violate a real constraint.  Only the cold path
    // (whose Phase 1 minimises exactly these) can decide feasibility.
    for (r, &col) in basis.basis.iter().enumerate() {
        if col >= num_core && basis.xb[r].abs() > 1e-7 {
            return None;
        }
    }

    let mut z = vec![0.0; num_core];
    if basis.has_boxes {
        for (j, &up) in basis.at_upper.iter().enumerate() {
            if up {
                z[j] = sf.upper[j];
            }
        }
    }
    for (r, &col) in basis.basis.iter().enumerate() {
        if col < num_core {
            z[col] = basis.xb[r];
        }
    }
    state.stats.refactorizations = basis.factorizations;
    state.stats.basis_updates = basis.total_updates;
    state.stats.basis_repairs = basis.repairs;
    if matches!(pricing.rule, PricingRule::SteepestEdge) {
        state.stats.steepest_edge_resets = pricing.resets;
    } else {
        state.stats.devex_resets = pricing.resets;
    }
    state.stats.warm_started = true;
    Some(SolvedPoint {
        objective: basis.objective(costs),
        z,
        stats: state.stats,
        basis: Some(basis.basis.clone()),
    })
}

/// Run dual-simplex pivots until the basic solution is primal feasible.
///
/// Per iteration:
///
/// 1. **Leaving row** by dual Devex pricing: score `x_r² / w_r` over the rows
///    with `x_r < −tol` (the reference weights `w` are updated from the
///    FTRANed entering column each pivot, mirroring primal Devex with the
///    roles of rows and columns swapped).
/// 2. **Pivot row** `e_r' B⁻¹ A` over the core columns — the same
///    BTRAN-plus-CSR-pass the primal pricing update uses.
/// 3. **Dual ratio test** (Harris-style two passes) over the nonbasic columns
///    with `α_rj < −eps`: pass 1 bounds the dual step by the most restrictive
///    slightly-relaxed ratio `d_j / −α_rj`, pass 2 picks the largest pivot
///    element under that bound.  Negative `d_j` within the seed slack is
///    clamped to zero for the test; the primal cleanup settles the difference.
/// 4. **Pivot** via the ordinary Forrest–Tomlin update path, plus an
///    incremental dual update of `d` from the pivot row.
///
/// Any stall (no entering candidate — primal infeasible in exact arithmetic —
/// a breakdown beyond the repair budget, or the pivot budget running out)
/// reports [`DualOutcome::Stalled`] and the caller falls back to the cold
/// path, so this phase never has to be heroic about edge cases.
fn dual_phase(
    basis: &mut RevisedState<'_>,
    costs: &[f64],
    d: &mut [f64],
    options: &SolveOptions,
    state: &mut PivotState,
    ws: &mut Workspace,
) -> Result<DualOutcome, SimplexError> {
    let eps = options.tolerance;
    let feas_tol = eps.max(1e-9);
    let mut weights = vec![1.0f64; basis.num_rows()];
    let mut weight_max = 1.0f64;
    // A warm start whose cleanup rivals a cold solve in pivots is not worth
    // finishing — give up and let the cold path run undisturbed.
    let budget = basis.num_rows().max(512);
    let mut pivots = 0usize;
    // Whether the current iteration is already the post-refactorisation retry
    // of a FTRAN/BTRAN pivot disagreement (see below).
    let mut mismatch_retry = false;

    loop {
        if pivots >= budget || state.iterations_left == 0 {
            return Ok(DualOutcome::Stalled);
        }
        let interval = options.refactor_interval.max(basis.num_rows() / 32).max(1);
        if basis.lu.updates() >= interval
            && basis.refactorize().is_err()
            && basis
                .repair(options, "dual-phase periodic refactorisation", true)
                .is_err()
        {
            return Ok(DualOutcome::Stalled);
        }
        if basis.dirty_reduced_costs {
            exact_reduced_costs(basis, costs, &mut ws.y, d);
            basis.dirty_reduced_costs = false;
        }
        if basis.dirty_weights {
            weights.fill(1.0);
            weight_max = 1.0;
            basis.dirty_weights = false;
        }

        // ---- leaving row (dual Devex) -----------------------------------
        let mut leaving: Option<(usize, f64)> = None;
        for (r, &x) in basis.xb.iter().enumerate() {
            if x < -feas_tol {
                let score = x * x / weights[r];
                if leaving.is_none_or(|(_, best)| score > best) {
                    leaving = Some((r, score));
                }
            }
        }
        let Some((row, _)) = leaving else {
            return Ok(DualOutcome::PrimalFeasible);
        };

        // ---- pivot row over the core columns ----------------------------
        basis.btran_unit(row, &mut ws.rho);
        ws.pivot_row(&basis.row_major);

        // ---- dual ratio test (two passes) -------------------------------
        let mut theta_bound = f64::INFINITY;
        for &j in ws.alpha.pattern() {
            if basis.in_basis[j] {
                continue;
            }
            let a = ws.alpha.get(j);
            if a < -eps {
                theta_bound = theta_bound.min((d[j].max(0.0) + feas_tol) / -a);
            }
        }
        if theta_bound.is_infinite() {
            return Ok(DualOutcome::Stalled);
        }
        let mut entering: Option<(usize, f64)> = None;
        for &j in ws.alpha.pattern() {
            if basis.in_basis[j] {
                continue;
            }
            let a = ws.alpha.get(j);
            if a < -eps
                && d[j].max(0.0) / -a <= theta_bound
                && entering.is_none_or(|(_, best)| -a > best)
            {
                entering = Some((j, -a));
            }
        }
        let Some((col, _)) = entering else {
            return Ok(DualOutcome::Stalled);
        };

        basis.ftran_column(col, &mut ws.w);
        let pivot = ws.w.values[row];
        if pivot >= -eps * 0.5 {
            // The FTRANed pivot disagrees with the BTRAN pivot row: the
            // factors have drifted.  Rebuild once and retry the iteration —
            // but only once per pivot: with *fresh* factors the disagreement
            // is pure rounding at the tolerance boundary, and since nothing
            // else in the iteration changes, retrying again would select the
            // identical (row, col) and spin forever.
            if mismatch_retry || basis.refactorize().is_err() {
                return Ok(DualOutcome::Stalled);
            }
            mismatch_retry = true;
            continue;
        }
        mismatch_retry = false;

        // ---- incremental dual update from the pivot row ------------------
        let theta_d = d[col].max(0.0) / pivot; // ≤ 0 by construction
        for &j in ws.alpha.pattern() {
            if j == col || basis.in_basis[j] {
                continue;
            }
            let a = ws.alpha.get(j);
            if a != 0.0 {
                d[j] -= theta_d * a;
            }
        }
        let leaving_col = basis.basis[row];
        if leaving_col < d.len() {
            d[leaving_col] = -theta_d;
        }
        d[col] = 0.0;

        // ---- dual Devex weight update from the FTRANed column ------------
        let gamma_r = weights[row].max(1.0);
        {
            let w = &ws.w;
            for_nz!(w, i, wi, {
                if i != row {
                    let ratio = wi / pivot;
                    let candidate = ratio * ratio * gamma_r;
                    if candidate > weights[i] {
                        weights[i] = candidate;
                        weight_max = weight_max.max(candidate);
                    }
                }
            });
        }
        weights[row] = (gamma_r / (pivot * pivot)).max(1.0);
        weight_max = weight_max.max(weights[row]);
        if weight_max > DEVEX_WEIGHT_LIMIT {
            weights.fill(1.0);
            weight_max = 1.0;
        }

        if basis.apply_pivot(row, col, &ws.w, false, options).is_err() {
            return Ok(DualOutcome::Stalled);
        }
        state.iterations_left -= 1;
        state.stats.dual_iterations += 1;
        pivots += 1;
    }
}

/// Run revised-simplex pivots until the current costs are optimal or unbounded.
fn run_phase(
    basis: &mut RevisedState<'_>,
    costs: &[f64],
    options: &SolveOptions,
    state: &mut PivotState,
    pricing: &mut Pricing,
    ws: &mut Workspace,
) -> Result<PhaseOutcome, SimplexError> {
    let eps = options.tolerance;
    loop {
        if state.iterations_left == 0 {
            return Err(SimplexError::IterationLimit {
                limit: options.max_iterations,
            });
        }
        // The configured interval is a floor: for tall problems a longer update
        // run amortises the factorisation cost better (the measured optimum
        // tracks rows/32 on the mechanism LPs), so stretch the cadence with
        // the row count.
        let interval = options.refactor_interval.max(basis.num_rows() / 32).max(1);
        if basis.lu.updates() >= interval {
            if basis.refactorize().is_err() {
                basis.repair(options, "periodic refactorisation", true)?;
            }
            // Steepest edge re-initialises exactly at each refactorisation:
            // re-anchoring `F` to the current nonbasic set makes every weight
            // exactly one, and a young framework keeps the masked reference
            // vector w̃ small, which is what keeps the per-pivot cross-term
            // BTRAN on the sparse path.
            pricing.ref_stale = true;
        }
        if basis.dirty_reduced_costs {
            pricing.dirty = true;
            basis.dirty_reduced_costs = false;
        }
        if basis.dirty_weights {
            pricing.reset_weights();
            basis.dirty_weights = false;
        }
        if matches!(pricing.rule, PricingRule::SteepestEdge) && pricing.ref_stale {
            pricing.rebuild_reference(&basis.in_basis);
        }

        // ---- entering column -------------------------------------------------
        let entering = loop {
            if state.using_bland {
                break price_bland(basis, costs, eps, &mut ws.y);
            }
            if pricing.dirty {
                pricing.recompute(basis, costs, &mut ws.y);
            }
            match pricing.select(
                eps,
                options.partial_pricing,
                &basis.in_basis,
                &basis.at_upper,
            ) {
                Some(j) => break Some(j),
                None if !pricing.exact => {
                    // The incremental reduced costs may have drifted; prove
                    // optimality (or find a survivor) from exact ones.
                    pricing.dirty = true;
                }
                None => break None,
            }
        };
        let Some(col) = entering else {
            // Confirm optimality on *fresh* factors: the reduced costs above
            // are exact with respect to the current factorisation, but the
            // factorisation itself accumulates Forrest–Tomlin round-off, so a
            // long update run can fake convergence.  One rebuild per phase end
            // is cheap insurance; after it `updates() == 0`, so a clean second
            // pass terminates.
            if !state.using_bland && basis.lu.updates() > 0 {
                if basis.refactorize().is_err() {
                    basis.repair(options, "optimality confirmation refactorisation", true)?;
                }
                continue;
            }
            return Ok(PhaseOutcome::Optimal);
        };

        basis.ftran_column(col, &mut ws.w);

        // Verify a candidate priced from drifted reduced costs against the
        // FTRANed column before pivoting on it.
        let mut d_actual = costs[col];
        {
            let w = &ws.w;
            for_nz!(w, r, wr, {
                d_actual -= costs[basis.basis[r]] * wr;
            });
        }
        let entering_up = basis.has_boxes && col < basis.num_core && basis.at_upper[col];
        if !state.using_bland && !pricing.exact && !favourable(d_actual, entering_up, eps * 0.5) {
            pricing.d[col] = d_actual;
            pricing.dirty = true;
            continue;
        }

        let (row, to_upper) = match basis.ratio_test(&ws.w, col, eps, state.using_bland) {
            RatioOutcome::Unbounded => return Ok(PhaseOutcome::Unbounded),
            RatioOutcome::BoundFlip => {
                // Long-step: the entering column's own box is the tightest
                // limit — flip it through to the opposite bound.  The basis
                // (and its factors) are untouched, the reduced costs are
                // unchanged, and the move strictly improves the objective, so
                // it is safe even under Bland's rule.
                basis.bound_flip(col, &ws.w);
                state.stats.bound_flips += 1;
                state.record_pivot(options, true);
                continue;
            }
            RatioOutcome::Pivot { row, to_upper } => (row, to_upper),
        };

        // ---- pricing update from the pivot row (before the basis changes) ----
        if !state.using_bland {
            basis.btran_unit(row, &mut ws.rho);
            ws.pivot_row(&basis.row_major);
            let leaving = basis.basis[row];
            if matches!(pricing.rule, PricingRule::SteepestEdge) {
                // The entering FTRAN gives the projected norm exactly, for
                // free; a stored weight far from it means the incremental
                // updates have degraded and the framework is re-anchored.
                let exact = pricing.exact_gamma(&ws.w, &basis.basis, col);
                let stored = pricing.weights[col];
                let gamma_q = if exact > 16.0 * stored || stored > 16.0 * exact {
                    pricing.rebuild_reference(&basis.in_basis);
                    pricing.resets += 1;
                    1.0
                } else {
                    exact
                };
                let leaving_in_ref = leaving < pricing.in_ref.len() && pricing.in_ref[leaving];
                // Build w̃ — the entering FTRAN masked to reference rows other
                // than the pivot row — then τ = (B⁻ᵀ w̃)' A for the cross term.
                ws.v.clear();
                {
                    let (w, v) = (&ws.w, &mut ws.v);
                    for_nz!(w, i, wi, {
                        if i != row {
                            let c = basis.basis[i];
                            if c < pricing.in_ref.len() && pricing.in_ref[c] {
                                v.set(i, wi);
                            }
                        }
                    });
                }
                if ws.v.pattern.is_empty() {
                    ws.tau.clear();
                } else {
                    let have_tau = basis.btran_patvec(&mut ws.v);
                    if have_tau {
                        ws.tau_row(&basis.row_major);
                    } else {
                        // Abandoned BTRAN: update without the cross term; the
                        // floors keep the weights safe and the entering-side
                        // exactness check catches any 16x drift.
                        ws.tau.clear();
                    }
                }
                pricing.update_steepest(
                    &ws.alpha,
                    &ws.tau,
                    ws.w.values[row],
                    gamma_q,
                    col,
                    d_actual,
                    leaving,
                    to_upper,
                    leaving_in_ref,
                    &basis.in_basis,
                    &basis.at_upper,
                );
            } else {
                pricing.update_from_pivot_row(
                    &ws.alpha,
                    ws.w.values[row],
                    col,
                    d_actual,
                    leaving,
                    to_upper,
                    &basis.in_basis,
                    &basis.at_upper,
                );
            }
        } else {
            // Bland mode prices exactly each iteration; the incremental state
            // is stale once we leave it.
            pricing.dirty = true;
        }

        let nondegenerate = basis.apply_pivot(row, col, &ws.w, to_upper, options)?;
        state.record_pivot(options, nondegenerate);
    }
}

/// Bland's rule pricing: the smallest-index nonbasic column with a negative
/// exact reduced cost (recomputed every iteration, as the termination
/// guarantee requires).  Artificial columns are never allowed to enter — the
/// scan stops at the core columns (they start basic and only ever leave).
fn price_bland(basis: &RevisedState<'_>, costs: &[f64], eps: f64, y: &mut [f64]) -> Option<usize> {
    for (r, slot) in y.iter_mut().enumerate() {
        *slot = costs[basis.basis[r]];
    }
    basis.btran(y);
    (0..basis.num_core).find(|&j| {
        !basis.in_basis[j]
            && favourable(
                costs[j] - basis.column_dot(j, y),
                basis.has_boxes && basis.at_upper[j],
                eps,
            )
    })
}

/// After Phase 1, pivot any artificial variables that are still basic (at value
/// zero) out of the basis.  For each such row `r` the structural coefficients of
/// the transformed row are `ρ' a_j` with `ρ = (B⁻¹)' e_r` (one BTRAN of a unit
/// vector); rows where every structural coefficient vanishes are redundant
/// constraints, and their artificial stays harmlessly basic at zero.
fn drive_out_artificials(
    basis: &mut RevisedState<'_>,
    eps: f64,
    options: &SolveOptions,
    ws: &mut Workspace,
) -> Result<(), SimplexError> {
    // A repair inside apply_pivot refactorises, which can re-key (permute)
    // which row each basic column lives on — a fixed front-to-back scan would
    // then skip an artificial that moved to an already-visited row.  Restart
    // the scan whenever a repair fired; the restart budget is generous (each
    // restart requires a fresh breakdown, and redundant rows pivot nothing).
    let mut restarts = 0usize;
    'scan: loop {
        for row in 0..basis.num_rows() {
            if basis.basis[row] < basis.num_core {
                continue;
            }
            basis.btran_unit(row, &mut ws.rho);
            let replacement = (0..basis.num_core)
                .find(|&j| !basis.in_basis[j] && basis.column_dot(j, &ws.rho.values).abs() > eps);
            if let Some(col) = replacement {
                basis.ftran_column(col, &mut ws.w);
                debug_assert!(ws.w.values[row].abs() > eps * 0.5);
                let repairs_before = basis.repairs;
                basis.apply_pivot(row, col, &ws.w, false, options)?;
                if basis.repairs != repairs_before && restarts < basis.num_rows() {
                    restarts += 1;
                    continue 'scan;
                }
            } else {
                debug_assert!(basis.xb[row].abs() <= 1e-6);
            }
        }
        return Ok(());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearProgram, Relation};
    use crate::standard::standardize;

    /// FTRAN then BTRAN against hand-checked basis algebra.
    #[test]
    fn lu_transforms_match_matrix_algebra() {
        // B = [[2, 1], [0, 1]]: pivot col0 at row0 (w = [2, 0]), then col1 at row1.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.add_constraint(vec![(x, 2.0), (y, 1.0)], Relation::Equal, 4.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Equal, 1.0);
        let sf = standardize(&lp);
        let options = SolveOptions::default();
        let mut state = RevisedState::new(&sf).unwrap();

        let mut w = PatVec::new(2);
        state.ftran_column(0, &mut w);
        let w0 = w.clone();
        state.apply_pivot(0, 0, &w0, false, &options).unwrap();
        state.ftran_column(1, &mut w);
        let w1 = w.clone();
        state.apply_pivot(1, 1, &w1, false, &options).unwrap();

        // B^{-1} = [[0.5, -0.5], [0, 1]]; check on a probe vector.
        let mut v = vec![4.0, 1.0];
        state.lu.ftran(&mut v);
        assert!((v[0] - 1.5).abs() < 1e-12);
        assert!((v[1] - 1.0).abs() < 1e-12);

        // y' B^{-1} for y = [1, 0] is the first row of B^{-1}.
        let mut row = vec![1.0, 0.0];
        state.btran(&mut row);
        assert!((row[0] - 0.5).abs() < 1e-12);
        assert!((row[1] - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn refactorisation_preserves_the_basic_solution() {
        let mut lp = LinearProgram::minimize();
        let vars = lp.add_variables("x", 4);
        for (i, v) in vars.iter().enumerate() {
            lp.set_objective_coefficient(*v, (i + 1) as f64);
        }
        lp.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Equal, 2.0);
        for w in vars.windows(2) {
            lp.add_constraint(vec![(w[0], 1.0), (w[1], -0.8)], Relation::GreaterEq, 0.0);
        }
        let sf = standardize(&lp);
        let options = SolveOptions::default();
        let mut state = PivotState::new(&options);
        let mut basis = RevisedState::new(&sf).unwrap();
        let mut ws = Workspace::new(sf.num_rows(), sf.num_columns());
        let mut pricing = Pricing::new(sf.num_columns(), PricingRule::Devex);

        // Run phase 1 to completion, then refactorise and compare xb.
        let total = sf.num_columns() + basis.num_artificials();
        let mut phase1 = vec![0.0; total];
        for cost in phase1.iter_mut().skip(sf.num_columns()) {
            *cost = 1.0;
        }
        let _ = run_phase(
            &mut basis,
            &phase1,
            &options,
            &mut state,
            &mut pricing,
            &mut ws,
        );
        let before = basis.xb.clone();
        // The factorisation may re-key rows, so compare as multisets of
        // (basic column, value) pairs.
        let mut pairs_before: Vec<(usize, i64)> = basis
            .basis
            .iter()
            .zip(before.iter())
            .map(|(&c, &v)| (c, (v * 1e8).round() as i64))
            .collect();
        basis.refactorize().unwrap();
        let mut pairs_after: Vec<(usize, i64)> = basis
            .basis
            .iter()
            .zip(basis.xb.iter())
            .map(|(&c, &v)| (c, (v * 1e8).round() as i64))
            .collect();
        pairs_before.sort_unstable();
        pairs_after.sort_unstable();
        assert_eq!(pairs_before, pairs_after);
    }

    #[test]
    fn repair_rolls_back_to_the_last_good_basis() {
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 3.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::LessEq, 4.0);
        let sf = standardize(&lp);
        let options = SolveOptions::default();
        let mut basis = RevisedState::new(&sf).unwrap();
        let good = {
            let mut sorted = basis.basis.clone();
            sorted.sort_unstable();
            sorted
        };

        // Corrupt the books into a structurally singular basis (one column
        // basic in both rows): refactorisation must fail, and repair must
        // fall back to the last good snapshot.
        basis.basis[1] = basis.basis[0];
        assert!(basis.refactorize().is_err());
        basis.repair(&options, "test corruption", true).unwrap();
        let mut restored = basis.basis.clone();
        restored.sort_unstable();
        assert_eq!(restored, good);
        assert!(basis.repairs >= 1, "repair count must be recorded");
        assert!(basis.dirty_weights, "a rollback must reset Devex weights");

        // With the budget exhausted the same corruption reports breakdown.
        basis.repair_streak = options.max_repairs;
        basis.basis[1] = basis.basis[0];
        assert!(matches!(
            basis.repair(&options, "test corruption", true),
            Err(SimplexError::NumericalBreakdown { .. })
        ));
    }

    #[test]
    fn partial_pricing_sections_cover_all_columns() {
        let mut pricing = Pricing::new(10, PricingRule::Devex);
        pricing.d.fill(1.0);
        pricing.d[7] = -1.0;
        pricing.dirty = false;
        pricing.exact = true;
        let in_basis = vec![false; 10];
        let at_upper = vec![false; 10];
        // A 3-wide section scan must still find the single candidate at 7.
        assert_eq!(pricing.select(1e-9, 3, &in_basis, &at_upper), Some(7));
        // And remember where it found it.
        assert_eq!(pricing.cursor % 10, 6);
    }
}

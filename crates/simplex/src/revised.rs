//! Revised simplex over the sparse standard form.
//!
//! The dense tableau updates every entry of an `m × n` matrix per pivot —
//! `O(m · n)` — even though the mechanism-design LPs have only 2 to `n+1` nonzeros
//! per row.  The revised method never materialises the tableau: it keeps the
//! original CSC matrix `A` untouched and represents the basis inverse implicitly,
//! so one pivot costs `O(nnz(A) + eta work)`.
//!
//! ## Basis representation: eta file (product form of the inverse)
//!
//! The initial basis consists of slack and artificial unit columns, so `B₀ = I`.
//! Each pivot multiplies the inverse by an elementary *eta matrix* `E` that differs
//! from the identity only in the pivot column; storing just that column (the
//! [`Eta`]) gives
//!
//! ```text
//! B⁻¹ = E_k · E_{k-1} · … · E_1
//! ```
//!
//! * **FTRAN** (`B⁻¹ a`, needed for the entering column and the basic solution)
//!   applies the etas oldest → newest; an eta whose pivot row holds a zero is
//!   skipped entirely, which is what keeps FTRAN cheap for sparse columns.
//! * **BTRAN** (`c_B' B⁻¹`, needed to price reduced costs) applies them
//!   newest → oldest; each eta only rewrites its own pivot-row component.
//!
//! ## Periodic refactorisation
//!
//! The eta file grows by one per pivot, and rounding errors accumulate through it.
//! Every [`SolveOptions::refactor_interval`] pivots the file is rebuilt from
//! scratch by re-eliminating the current basis columns against the identity and
//! the basic solution is recomputed as `B⁻¹ b`.  LP bases are almost
//! permutable-triangular, so the rebuild peels row singletons first (zero fill;
//! see [`RevisedState::refactorize`]) and only the small residual bump pays for
//! general elimination, with threshold pivoting biased towards sparse rows.  This
//! bounds both the FTRAN/BTRAN cost and the numerical drift; the refactorisation
//! count is reported in [`cpm_simplex::SolveStats`](crate::SolveStats).

use crate::error::SimplexError;
use crate::solver::{PhaseOutcome, PivotState, SolveOptions, SolvedPoint};
use crate::standard::StandardForm;

/// One elementary transformation of the basis inverse: the pivot column of an eta
/// matrix, split into the inverted pivot element and the off-pivot entries.
struct Eta {
    pivot_row: usize,
    pivot_inv: f64,
    /// `(row, value)` pairs of the pre-pivot column, excluding the pivot row.
    entries: Vec<(usize, f64)>,
}

/// The revised-simplex working state: basis bookkeeping, the eta file, and the
/// current basic solution.
struct RevisedState<'a> {
    sf: &'a StandardForm,
    /// Structural + slack column count; columns `>= num_core` are artificials.
    num_core: usize,
    /// Unit row of each artificial column (`col = num_core + i`).
    artificial_rows: Vec<usize>,
    /// Basic column of each row.
    basis: Vec<usize>,
    /// Whether each column (core + artificial) is currently basic.
    in_basis: Vec<bool>,
    etas: Vec<Eta>,
    /// Pivot-generated etas appended since the last refactorisation.  This — not
    /// the total file length — drives the refactorisation trigger: a rebuilt file
    /// legitimately holds one eta per non-singleton basic column.
    updates_since_refactor: usize,
    /// Current basic solution `x_B = B⁻¹ b`, indexed by row.
    xb: Vec<f64>,
    refactorizations: usize,
}

impl<'a> RevisedState<'a> {
    fn new(sf: &'a StandardForm) -> Self {
        let num_rows = sf.num_rows();
        let num_core = sf.num_columns();
        let mut artificial_rows = Vec::new();
        let mut basis = vec![usize::MAX; num_rows];
        for (r, hint) in sf.basis_hint.iter().enumerate() {
            match hint {
                Some(col) => basis[r] = *col,
                None => {
                    basis[r] = num_core + artificial_rows.len();
                    artificial_rows.push(r);
                }
            }
        }
        let mut in_basis = vec![false; num_core + artificial_rows.len()];
        for &col in &basis {
            in_basis[col] = true;
        }
        RevisedState {
            sf,
            num_core,
            artificial_rows,
            basis,
            in_basis,
            etas: Vec::new(),
            updates_since_refactor: 0,
            xb: sf.rhs.clone(),
            refactorizations: 0,
        }
    }

    fn num_rows(&self) -> usize {
        self.sf.num_rows()
    }

    fn num_artificials(&self) -> usize {
        self.artificial_rows.len()
    }

    /// Scatter column `j` of the (core + artificial) constraint matrix into `out`.
    fn scatter_column(&self, j: usize, out: &mut [f64]) {
        out.fill(0.0);
        if j < self.num_core {
            for (r, v) in self.sf.matrix.column(j) {
                out[r] = v;
            }
        } else {
            out[self.artificial_rows[j - self.num_core]] = 1.0;
        }
    }

    /// The `(row, value)` entries of column `j`, covering artificials as unit
    /// columns.
    fn column_rows(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let (rows, values, unit) = if j < self.num_core {
            let (rows, values) = self.sf.matrix.column_slices(j);
            (rows, values, None)
        } else {
            (
                &[][..],
                &[][..],
                Some(self.artificial_rows[j - self.num_core]),
            )
        };
        rows.iter()
            .copied()
            .zip(values.iter().copied())
            .chain(unit.map(|r| (r, 1.0)))
    }

    /// Dot product of column `j` with a dense row vector.
    fn column_dot(&self, j: usize, dense: &[f64]) -> f64 {
        if j < self.num_core {
            self.sf.matrix.column_dot(j, dense)
        } else {
            dense[self.artificial_rows[j - self.num_core]]
        }
    }

    /// FTRAN: overwrite `v` with `B⁻¹ v` by applying the eta file oldest → newest.
    fn ftran(&self, v: &mut [f64]) {
        for eta in &self.etas {
            let pivot_value = v[eta.pivot_row];
            if pivot_value == 0.0 {
                continue;
            }
            let t = pivot_value * eta.pivot_inv;
            for &(row, value) in &eta.entries {
                v[row] -= value * t;
            }
            v[eta.pivot_row] = t;
        }
    }

    /// BTRAN: overwrite `y` with `y B⁻¹` by applying the eta file newest → oldest.
    fn btran(&self, y: &mut [f64]) {
        for eta in self.etas.iter().rev() {
            let mut total = y[eta.pivot_row];
            for &(row, value) in &eta.entries {
                total -= y[row] * value;
            }
            y[eta.pivot_row] = total * eta.pivot_inv;
        }
    }

    /// `w = B⁻¹ a_j` for an entering candidate.
    fn ftran_column(&self, j: usize, w: &mut [f64]) {
        self.scatter_column(j, w);
        self.ftran(w);
    }

    /// Ratio test.  `None` means the column is unbounded.
    ///
    /// Two variants, matching the entering rule in force:
    ///
    /// * **Bland mode** (`use_bland`): the textbook rule — exact minimum ratio,
    ///   ties broken by the smallest basic-variable index.  This is what Bland's
    ///   termination guarantee requires of the *leaving* choice, so the
    ///   anti-cycling fallback keeps its guarantee on this backend too.
    /// * **Harris mode** (default): pass 1 computes the largest step `θ` that
    ///   keeps every basic variable above `−feas_tol` (a slightly relaxed
    ///   bound); pass 2 picks, among the rows whose exact ratio fits under that
    ///   bound, the one with the **largest pivot element**.  Preferring large
    ///   pivots is what keeps the basis numerically honest over thousands of
    ///   degenerate pivots — the naive min-ratio rule happily pivots on
    ///   `1e-9`-sized elements until the basis is effectively singular; the tiny
    ///   transient infeasibility (≤ `feas_tol`) is absorbed by the clamping in
    ///   [`RevisedState::pivot`] and by the exact `x_B` recomputation at every
    ///   refactorisation.
    fn ratio_test(&self, w: &[f64], eps: f64, use_bland: bool) -> Option<usize> {
        if use_bland {
            let mut best: Option<(usize, f64)> = None;
            for (r, &wr) in w.iter().enumerate() {
                if wr > eps {
                    let ratio = self.xb[r] / wr;
                    match best {
                        None => best = Some((r, ratio)),
                        Some((best_row, best_ratio)) => {
                            if ratio < best_ratio - eps
                                || (ratio < best_ratio + eps
                                    && self.basis[r] < self.basis[best_row])
                            {
                                best = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            return best.map(|(r, _)| r);
        }
        let feas_tol = eps.max(1e-10);
        let mut theta_bound = f64::INFINITY;
        for (r, &wr) in w.iter().enumerate() {
            if wr > eps {
                theta_bound = theta_bound.min((self.xb[r] + feas_tol) / wr);
            }
        }
        if theta_bound.is_infinite() {
            return None;
        }
        let mut best: Option<(usize, f64)> = None;
        for (r, &wr) in w.iter().enumerate() {
            if wr > eps && self.xb[r] / wr <= theta_bound {
                match best {
                    None => best = Some((r, wr)),
                    Some((_, best_wr)) if wr > best_wr => best = Some((r, wr)),
                    _ => {}
                }
            }
        }
        best.map(|(r, _)| r)
    }

    /// Execute the basis change `col` enters / row `row` leaves, given the already
    /// FTRANed entering column `w`.  Returns `true` for a non-degenerate pivot.
    fn pivot(&mut self, row: usize, col: usize, w: &[f64]) -> bool {
        let pivot_value = w[row];
        debug_assert!(pivot_value.abs() > 0.0, "pivot on a zero element");
        let nondegenerate = self.xb[row] > 0.0;

        // Update the basic solution: the entering variable moves to θ, every other
        // basic variable retreats along the column.
        let theta = self.xb[row] / pivot_value;
        for (r, &wr) in w.iter().enumerate() {
            if r != row && wr != 0.0 {
                self.xb[r] -= wr * theta;
                if self.xb[r] < 0.0 && self.xb[r] > -1e-11 {
                    self.xb[r] = 0.0;
                }
            }
        }
        self.xb[row] = theta;

        // Record the eta and swap the basis books.  Entries below the drop
        // tolerance are round-off noise relative to the pivot scale; keeping them
        // would only bloat every later FTRAN/BTRAN (the periodic refactorisation
        // rebuilds from the exact matrix, so dropped noise cannot accumulate).
        let drop_tolerance = 1e-12 * pivot_value.abs().max(1.0);
        let entries: Vec<(usize, f64)> = w
            .iter()
            .enumerate()
            .filter(|&(r, &v)| r != row && v.abs() > drop_tolerance)
            .map(|(r, &v)| (r, v))
            .collect();
        self.etas.push(Eta {
            pivot_row: row,
            pivot_inv: 1.0 / pivot_value,
            entries,
        });
        self.updates_since_refactor += 1;
        self.in_basis[self.basis[row]] = false;
        self.in_basis[col] = true;
        self.basis[row] = col;
        nondegenerate
    }

    /// Rebuild the eta file from the current basis (Gaussian elimination against
    /// the identity) and recompute `x_B = B⁻¹ b` from scratch.
    ///
    /// The elimination order matters enormously for fill-in, and LP bases are
    /// almost permutable-triangular, so the rebuild runs in two stages:
    ///
    /// 1. **Row-singleton peeling** (Suhl–Suhl style): repeatedly take a row
    ///    touched by exactly one remaining basic column and pivot that column
    ///    there.  By construction the peeled column has no entries in earlier
    ///    pivot rows, so its FTRAN is the identity — the eta is just the original
    ///    column and the peel contributes **zero fill**.  On the mechanism LPs
    ///    this absorbs the slack columns and nearly all structural columns.
    /// 2. **Bump elimination**: whatever cannot be peeled (usually a small
    ///    kernel) is processed by ascending column count with partial pivoting
    ///    over the still-unassigned rows.
    fn refactorize(&mut self) -> Result<(), SimplexError> {
        // A basis reached by exact pivoting is nonsingular, so an unacceptable
        // pivot during the rebuild means numerical drift, not a hopeless model:
        // retry once with a relaxed threshold (a badly conditioned but exact
        // representation beats none) before reporting breakdown.
        let saved_basis = self.basis.clone();
        let outcome = self.try_refactorize(1e-11).or_else(|_| {
            self.basis = saved_basis;
            self.try_refactorize(1e-13)
        });
        if outcome.is_ok() {
            self.refactorizations += 1;
        }
        outcome
    }

    fn try_refactorize(&mut self, pivot_threshold: f64) -> Result<(), SimplexError> {
        self.updates_since_refactor = 0;
        let num_rows = self.num_rows();
        let old_basis = std::mem::take(&mut self.basis);
        self.etas.clear();

        // Row -> basic-columns adjacency (CSR over the basis submatrix).
        let mut row_count = vec![0usize; num_rows];
        for &col in &old_basis {
            for (r, _) in self.column_rows(col) {
                row_count[r] += 1;
            }
        }
        let mut row_start = vec![0usize; num_rows + 1];
        for r in 0..num_rows {
            row_start[r + 1] = row_start[r] + row_count[r];
        }
        let mut row_cols = vec![0usize; row_start[num_rows]];
        {
            let mut cursor = row_start.clone();
            for (slot, &col) in old_basis.iter().enumerate() {
                for (r, _) in self.column_rows(col) {
                    row_cols[cursor[r]] = slot;
                    cursor[r] += 1;
                }
            }
        }

        let mut assigned = vec![false; num_rows];
        let mut new_basis = vec![usize::MAX; num_rows];
        let mut removed = vec![false; old_basis.len()];
        let mut singleton_rows: Vec<usize> = (0..num_rows).filter(|&r| row_count[r] == 1).collect();

        // Stage 1: peel row singletons — zero-fill etas copied from the matrix.
        while let Some(row) = singleton_rows.pop() {
            if assigned[row] || row_count[row] != 1 {
                continue;
            }
            let slot = row_cols[row_start[row]..row_start[row + 1]]
                .iter()
                .copied()
                .find(|&s| !removed[s])
                .expect("row_count said one column remains");
            let col = old_basis[slot];
            removed[slot] = true;
            assigned[row] = true;
            new_basis[row] = col;
            let mut pivot_value = 0.0;
            let mut entries = Vec::new();
            for (r, v) in self.column_rows(col) {
                if r == row {
                    pivot_value = v;
                } else {
                    entries.push((r, v));
                }
                row_count[r] -= 1;
                if row_count[r] == 1 && !assigned[r] {
                    singleton_rows.push(r);
                }
            }
            if pivot_value.abs() < pivot_threshold {
                return Err(SimplexError::NumericalBreakdown {
                    context: "refactorisation met a numerically singular basis",
                });
            }
            if pivot_value != 1.0 || !entries.is_empty() {
                self.etas.push(Eta {
                    pivot_row: row,
                    pivot_inv: 1.0 / pivot_value,
                    entries,
                });
            }
        }

        // Stage 2: eliminate the bump.  Pivot rows are chosen by threshold
        // pivoting: among the numerically acceptable rows (within a factor of the
        // column maximum) prefer the sparsest row of the remaining submatrix — a
        // cheap Markowitz-style bias that keeps the fill-in of the rebuilt file
        // close to the basis's own nonzero count.
        let mut bump: Vec<usize> = (0..old_basis.len()).filter(|&s| !removed[s]).collect();
        bump.sort_by_key(|&slot| self.column_len(old_basis[slot]));
        let mut w = vec![0.0; num_rows];
        for &slot in &bump {
            let col = old_basis[slot];
            self.ftran_column(col, &mut w);
            let mut max_magnitude = 0.0f64;
            for (r, &wr) in w.iter().enumerate() {
                if !assigned[r] {
                    max_magnitude = max_magnitude.max(wr.abs());
                }
            }
            if max_magnitude < pivot_threshold {
                return Err(SimplexError::NumericalBreakdown {
                    context: "refactorisation met a numerically singular basis",
                });
            }
            let acceptable = max_magnitude * 0.01;
            let mut best: Option<(usize, usize)> = None;
            for (r, &wr) in w.iter().enumerate() {
                if !assigned[r] && wr.abs() >= acceptable {
                    let degree = row_count[r];
                    if best.is_none_or(|(_, d)| degree < d) {
                        best = Some((r, degree));
                    }
                }
            }
            let Some((row, _)) = best else {
                return Err(SimplexError::NumericalBreakdown {
                    context: "refactorisation ran out of pivot rows",
                });
            };
            assigned[row] = true;
            new_basis[row] = col;
            for (r, _) in self.column_rows(col) {
                row_count[r] = row_count[r].saturating_sub(1);
            }
            let drop_tolerance = 1e-12 * w[row].abs().max(1.0);
            let entries: Vec<(usize, f64)> = w
                .iter()
                .enumerate()
                .filter(|&(r, &v)| r != row && v.abs() > drop_tolerance)
                .map(|(r, &v)| (r, v))
                .collect();
            self.etas.push(Eta {
                pivot_row: row,
                pivot_inv: 1.0 / w[row],
                entries,
            });
        }

        self.basis = new_basis;
        // Fresh basic solution; clamp the usual tiny negative round-off.
        self.xb.copy_from_slice(&self.sf.rhs);
        let mut xb = std::mem::take(&mut self.xb);
        self.ftran(&mut xb);
        for value in xb.iter_mut() {
            if *value < 0.0 && *value > -1e-9 {
                *value = 0.0;
            }
        }
        self.xb = xb;
        Ok(())
    }

    fn column_len(&self, j: usize) -> usize {
        if j < self.num_core {
            self.sf.matrix.column_nnz(j)
        } else {
            1
        }
    }

    /// The current objective `c_B' x_B` under the given cost vector.
    fn objective(&self, costs: &[f64]) -> f64 {
        self.basis
            .iter()
            .zip(self.xb.iter())
            .map(|(&col, &value)| costs[col] * value)
            .sum()
    }
}

/// Solve the standard form with the sparse revised simplex.
pub(crate) fn solve(
    sf: &StandardForm,
    options: &SolveOptions,
) -> Result<SolvedPoint, SimplexError> {
    let eps = options.tolerance;
    let num_rows = sf.num_rows();
    let num_core = sf.num_columns();

    let mut basis = RevisedState::new(sf);
    let total_columns = num_core + basis.num_artificials();

    let mut state = PivotState::new(options);
    state.stats.artificial_variables = basis.num_artificials();

    // Reusable dense work vectors.
    let mut y = vec![0.0; num_rows];
    let mut w = vec![0.0; num_rows];

    // ------------------------------- Phase 1 -------------------------------
    if basis.num_artificials() > 0 {
        let mut phase1_costs = vec![0.0; total_columns];
        for cost in phase1_costs.iter_mut().skip(num_core) {
            *cost = 1.0;
        }
        let before = state.iterations_left;
        let outcome = run_phase(
            &mut basis,
            &phase1_costs,
            options,
            &mut state,
            &mut y,
            &mut w,
        )?;
        state.stats.phase1_iterations = before - state.iterations_left;
        if matches!(outcome, PhaseOutcome::Unbounded) {
            // Phase 1 is bounded below by zero; unboundedness is numerical.
            return Err(SimplexError::NumericalBreakdown {
                context: "phase 1 of the revised simplex became unbounded",
            });
        }
        if basis.objective(&phase1_costs) > 1e-6 {
            return Err(SimplexError::Infeasible);
        }
        drive_out_artificials(&mut basis, eps, &mut y, &mut w);
    }

    // ------------------------------- Phase 2 -------------------------------
    let mut phase2_costs = sf.costs.clone();
    phase2_costs.resize(total_columns, 0.0);
    state.start_phase(options);
    let before = state.iterations_left;
    let outcome = run_phase(
        &mut basis,
        &phase2_costs,
        options,
        &mut state,
        &mut y,
        &mut w,
    )?;
    state.stats.phase2_iterations = before - state.iterations_left;
    if matches!(outcome, PhaseOutcome::Unbounded) {
        return Err(SimplexError::Unbounded);
    }

    let mut z = vec![0.0; num_core];
    for (r, &col) in basis.basis.iter().enumerate() {
        if col < num_core {
            z[col] = basis.xb[r];
        }
    }
    state.stats.refactorizations = basis.refactorizations;
    Ok(SolvedPoint {
        objective: basis.objective(&phase2_costs),
        z,
        stats: state.stats,
    })
}

/// Run revised-simplex pivots until the current costs are optimal or unbounded.
fn run_phase(
    basis: &mut RevisedState<'_>,
    costs: &[f64],
    options: &SolveOptions,
    state: &mut PivotState,
    y: &mut [f64],
    w: &mut [f64],
) -> Result<PhaseOutcome, SimplexError> {
    let eps = options.tolerance;
    loop {
        if state.iterations_left == 0 {
            return Err(SimplexError::IterationLimit {
                limit: options.max_iterations,
            });
        }
        // The configured interval is a floor: for tall problems a longer eta
        // file amortises the rebuild better (measured optimum tracks rows/16 on
        // the mechanism LPs), so stretch the cadence with the row count.
        let interval = options.refactor_interval.max(basis.num_rows() / 16).max(1);
        if basis.updates_since_refactor >= interval {
            basis.refactorize()?;
        }

        let entering = price(basis, costs, eps, state.using_bland, y);
        let Some(col) = entering else {
            return Ok(PhaseOutcome::Optimal);
        };
        basis.ftran_column(col, w);
        let Some(row) = basis.ratio_test(w, eps, state.using_bland) else {
            return Ok(PhaseOutcome::Unbounded);
        };
        let nondegenerate = basis.pivot(row, col, w);
        state.record_pivot(options, nondegenerate);
    }
}

/// Price the nonbasic columns under the current basis: compute the simplex
/// multipliers `y = c_B' B⁻¹` by BTRAN, then reduced costs `d_j = c_j − y' a_j`
/// by sparse dot products.  Returns the entering column per the active rule, or
/// `None` at optimality.
///
/// Artificial columns are never allowed to enter — the scan stops at the core
/// columns in both phases (they start basic in Phase 1 and only ever leave).
fn price(
    basis: &RevisedState<'_>,
    costs: &[f64],
    eps: f64,
    use_bland: bool,
    y: &mut [f64],
) -> Option<usize> {
    for (r, slot) in y.iter_mut().enumerate() {
        *slot = costs[basis.basis[r]];
    }
    basis.btran(y);

    let limit = basis.num_core;
    if use_bland {
        (0..limit).find(|&j| !basis.in_basis[j] && costs[j] - basis.column_dot(j, y) < -eps)
    } else {
        let mut best: Option<(usize, f64)> = None;
        for (j, &cost) in costs[..limit].iter().enumerate() {
            if basis.in_basis[j] {
                continue;
            }
            let rc = cost - basis.column_dot(j, y);
            if rc < -eps {
                match best {
                    None => best = Some((j, rc)),
                    Some((_, best_rc)) if rc < best_rc => best = Some((j, rc)),
                    _ => {}
                }
            }
        }
        best.map(|(j, _)| j)
    }
}

/// After Phase 1, pivot any artificial variables that are still basic (at value
/// zero) out of the basis.  For each such row `r` the structural coefficients of
/// the transformed row are `ρ' a_j` with `ρ = (B⁻¹)' e_r` (one BTRAN of a unit
/// vector); rows where every structural coefficient vanishes are redundant
/// constraints, and their artificial stays harmlessly basic at zero.
fn drive_out_artificials(basis: &mut RevisedState<'_>, eps: f64, rho: &mut [f64], w: &mut [f64]) {
    for row in 0..basis.num_rows() {
        if basis.basis[row] < basis.num_core {
            continue;
        }
        rho.fill(0.0);
        rho[row] = 1.0;
        basis.btran(rho);
        let replacement = (0..basis.num_core)
            .find(|&j| !basis.in_basis[j] && basis.column_dot(j, rho).abs() > eps);
        if let Some(col) = replacement {
            basis.ftran_column(col, w);
            debug_assert!(w[row].abs() > eps * 0.5);
            basis.pivot(row, col, w);
        } else {
            debug_assert!(basis.xb[row].abs() <= 1e-6);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinearProgram, Relation};
    use crate::standard::standardize;

    /// FTRAN then BTRAN against a hand-checked eta file.
    #[test]
    fn eta_transforms_match_matrix_algebra() {
        // B = [[2, 1], [0, 1]]: pivot col0 at row0 (w = [2, 0]), then col1 at row1.
        let mut lp = LinearProgram::minimize();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.add_constraint(vec![(x, 2.0), (y, 1.0)], Relation::Equal, 4.0);
        lp.add_constraint(vec![(y, 1.0)], Relation::Equal, 1.0);
        let sf = standardize(&lp);
        let mut state = RevisedState::new(&sf);

        let mut w = vec![0.0; 2];
        state.ftran_column(0, &mut w);
        state.pivot(0, 0, &w.clone());
        state.ftran_column(1, &mut w);
        state.pivot(1, 1, &w.clone());

        // B^{-1} = [[0.5, -0.5], [0, 1]]; check on a probe vector.
        let mut v = vec![4.0, 1.0];
        state.ftran(&mut v);
        assert!((v[0] - 1.5).abs() < 1e-12);
        assert!((v[1] - 1.0).abs() < 1e-12);

        // y' B^{-1} for y = [1, 0] is the first row of B^{-1}.
        let mut row = vec![1.0, 0.0];
        state.btran(&mut row);
        assert!((row[0] - 0.5).abs() < 1e-12);
        assert!((row[1] - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn refactorisation_preserves_the_basic_solution() {
        let mut lp = LinearProgram::minimize();
        let vars = lp.add_variables("x", 4);
        for (i, v) in vars.iter().enumerate() {
            lp.set_objective_coefficient(*v, (i + 1) as f64);
        }
        lp.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Equal, 2.0);
        for w in vars.windows(2) {
            lp.add_constraint(vec![(w[0], 1.0), (w[1], -0.8)], Relation::GreaterEq, 0.0);
        }
        let sf = standardize(&lp);
        let options = SolveOptions::default();
        let mut state = PivotState::new(&options);
        let mut basis = RevisedState::new(&sf);
        let mut y = vec![0.0; sf.num_rows()];
        let mut w = vec![0.0; sf.num_rows()];

        // Run a few pivots of phase 1 manually, then refactorise and compare xb.
        let total = sf.num_columns() + basis.num_artificials();
        let mut phase1 = vec![0.0; total];
        for cost in phase1.iter_mut().skip(sf.num_columns()) {
            *cost = 1.0;
        }
        let _ = run_phase(&mut basis, &phase1, &options, &mut state, &mut y, &mut w);
        let before = basis.xb.clone();
        basis.refactorize().unwrap();
        for (a, b) in before.iter().zip(basis.xb.iter()) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }
}

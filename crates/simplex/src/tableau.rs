//! Dense simplex tableau and pivot operations.

/// A dense full tableau: the constraint matrix (including slack and artificial
/// columns), the right-hand side, the current reduced-cost row, the objective value
/// of the current basic solution, and the basis.
#[derive(Debug, Clone)]
pub(crate) struct Tableau {
    num_rows: usize,
    num_cols: usize,
    /// Row-major `num_rows * num_cols` constraint coefficients.
    a: Vec<f64>,
    /// Right-hand sides (kept non-negative throughout).
    rhs: Vec<f64>,
    /// Reduced costs for the current basis and cost vector.
    reduced: Vec<f64>,
    /// Objective value `c_B' x_B` of the current basic solution.
    objective: f64,
    /// Basic column of each row.
    basis: Vec<usize>,
}

impl Tableau {
    /// Create a tableau from dense rows, right-hand sides, and an initial basis.
    ///
    /// The initial basis must be valid: `basis[r]` must be a column whose only
    /// non-zero entry is a `1.0` in row `r` (slack or artificial column).
    pub fn new(rows: Vec<Vec<f64>>, rhs: Vec<f64>, basis: Vec<usize>) -> Self {
        let num_rows = rows.len();
        let num_cols = if num_rows == 0 { 0 } else { rows[0].len() };
        debug_assert!(rows.iter().all(|r| r.len() == num_cols));
        debug_assert_eq!(rhs.len(), num_rows);
        debug_assert_eq!(basis.len(), num_rows);
        let mut a = Vec::with_capacity(num_rows * num_cols);
        for row in &rows {
            a.extend_from_slice(row);
        }
        Tableau {
            num_rows,
            num_cols,
            a,
            rhs,
            reduced: vec![0.0; num_cols],
            objective: 0.0,
            basis,
        }
    }

    #[inline]
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    #[inline]
    pub fn num_cols(&self) -> usize {
        self.num_cols
    }

    #[inline]
    pub fn basis(&self) -> &[usize] {
        &self.basis
    }

    #[inline]
    pub fn rhs(&self, row: usize) -> f64 {
        self.rhs[row]
    }

    #[inline]
    pub fn objective(&self) -> f64 {
        self.objective
    }

    #[inline]
    pub fn reduced_cost(&self, col: usize) -> f64 {
        self.reduced[col]
    }

    #[inline]
    fn at(&self, row: usize, col: usize) -> f64 {
        self.a[row * self.num_cols + col]
    }

    #[inline]
    fn row(&self, row: usize) -> &[f64] {
        &self.a[row * self.num_cols..(row + 1) * self.num_cols]
    }

    /// Recompute the reduced-cost row and objective value for a new cost vector,
    /// given the current basis.  `costs[j]` is the cost of column `j`.
    pub fn set_costs(&mut self, costs: &[f64]) {
        debug_assert_eq!(costs.len(), self.num_cols);
        // reduced_j = c_j - sum_r c_{basis[r]} * a[r][j];   objective = sum_r c_{basis[r]} * rhs[r]
        self.reduced.copy_from_slice(costs);
        self.objective = 0.0;
        for r in 0..self.num_rows {
            let cb = costs[self.basis[r]];
            if cb != 0.0 {
                self.objective += cb * self.rhs[r];
                let row = &self.a[r * self.num_cols..(r + 1) * self.num_cols];
                for (j, &arj) in row.iter().enumerate() {
                    self.reduced[j] -= cb * arj;
                }
            }
        }
    }

    /// Extract the current basic solution as a dense vector over all columns.
    pub fn basic_solution(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.num_cols];
        for r in 0..self.num_rows {
            x[self.basis[r]] = self.rhs[r];
        }
        x
    }

    /// The ratio test: among rows with `a[r][col] > eps`, pick the one minimising
    /// `rhs[r] / a[r][col]`, breaking ties by the smallest basic-variable index
    /// (which is what Bland's rule requires).  Returns `None` if no row qualifies,
    /// i.e. the column is unbounded.
    pub fn ratio_test(&self, col: usize, eps: f64) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..self.num_rows {
            let arc = self.at(r, col);
            if arc > eps {
                let ratio = self.rhs[r] / arc;
                match best {
                    None => best = Some((r, ratio)),
                    Some((best_row, best_ratio)) => {
                        if ratio < best_ratio - eps
                            || (ratio < best_ratio + eps && self.basis[r] < self.basis[best_row])
                        {
                            best = Some((r, ratio));
                        }
                    }
                }
            }
        }
        best.map(|(r, _)| r)
    }

    /// Perform a pivot on `(row, col)`: column `col` enters the basis, the variable
    /// basic in `row` leaves.  Returns `true` if the pivot was non-degenerate
    /// (the objective strictly changed, i.e. the leaving value was positive).
    pub fn pivot(&mut self, row: usize, col: usize) -> bool {
        let pivot_value = self.at(row, col);
        debug_assert!(pivot_value.abs() > 0.0, "pivot on a zero element");
        let nondegenerate = self.rhs[row] > 0.0;

        // Normalise the pivot row.
        let inv = 1.0 / pivot_value;
        {
            let start = row * self.num_cols;
            for value in &mut self.a[start..start + self.num_cols] {
                *value *= inv;
            }
            self.rhs[row] *= inv;
        }

        // Eliminate the entering column from every other row.
        for r in 0..self.num_rows {
            if r == row {
                continue;
            }
            let factor = self.at(r, col);
            if factor != 0.0 {
                let (pivot_row_start, target_row_start) = (row * self.num_cols, r * self.num_cols);
                for j in 0..self.num_cols {
                    let pivot_entry = self.a[pivot_row_start + j];
                    if pivot_entry != 0.0 {
                        self.a[target_row_start + j] -= factor * pivot_entry;
                    }
                }
                self.rhs[r] -= factor * self.rhs[row];
                if self.rhs[r] < 0.0 && self.rhs[r] > -1e-11 {
                    self.rhs[r] = 0.0;
                }
            }
        }

        // Eliminate from the reduced-cost row.
        let rc_factor = self.reduced[col];
        if rc_factor != 0.0 {
            let pivot_row_start = row * self.num_cols;
            for j in 0..self.num_cols {
                let pivot_entry = self.a[pivot_row_start + j];
                if pivot_entry != 0.0 {
                    self.reduced[j] -= rc_factor * pivot_entry;
                }
            }
            // The entering variable takes the value now stored in `rhs[row]`, so the
            // objective changes by (reduced cost of entering column) * (that value).
            self.objective += rc_factor * self.rhs[row];
        }
        // Force exact zero in the entering column's reduced cost to avoid drift.
        self.reduced[col] = 0.0;

        self.basis[row] = col;
        nondegenerate
    }

    /// Find the row (if any) whose basic variable is `col`.
    #[cfg(test)]
    pub fn row_of_basic(&self, col: usize) -> Option<usize> {
        self.basis.iter().position(|&b| b == col)
    }

    /// True if the row has no entry with magnitude above `eps` among the columns in
    /// `0..limit` (used to detect redundant rows when driving artificials out).
    pub fn row_is_zero_up_to(&self, row: usize, limit: usize, eps: f64) -> bool {
        self.row(row)[..limit].iter().all(|&v| v.abs() <= eps)
    }

    /// First column in `0..limit` with `|a[row][col]| > eps`, if any.
    pub fn first_nonzero_in_row(&self, row: usize, limit: usize, eps: f64) -> Option<usize> {
        self.row(row)[..limit].iter().position(|&v| v.abs() > eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Small helper building the tableau for
    ///   min -3x - 5y  s.t.  x + s1 = 4,  2y + s2 = 12,  3x + 2y + s3 = 18.
    fn example_tableau() -> Tableau {
        let rows = vec![
            vec![1.0, 0.0, 1.0, 0.0, 0.0],
            vec![0.0, 2.0, 0.0, 1.0, 0.0],
            vec![3.0, 2.0, 0.0, 0.0, 1.0],
        ];
        let rhs = vec![4.0, 12.0, 18.0];
        let basis = vec![2, 3, 4];
        Tableau::new(rows, rhs, basis)
    }

    #[test]
    fn set_costs_computes_reduced_costs_for_slack_basis() {
        let mut t = example_tableau();
        t.set_costs(&[-3.0, -5.0, 0.0, 0.0, 0.0]);
        assert_eq!(t.reduced_cost(0), -3.0);
        assert_eq!(t.reduced_cost(1), -5.0);
        assert_eq!(t.objective(), 0.0);
    }

    #[test]
    fn pivot_updates_objective_and_basis() {
        let mut t = example_tableau();
        t.set_costs(&[-3.0, -5.0, 0.0, 0.0, 0.0]);
        // Enter y (column 1): ratio test picks row 1 (12/2 = 6 vs 18/2 = 9).
        let row = t.ratio_test(1, 1e-9).unwrap();
        assert_eq!(row, 1);
        let nondegenerate = t.pivot(row, 1);
        assert!(nondegenerate);
        assert_eq!(t.basis()[1], 1);
        assert!((t.objective() - (-30.0)).abs() < 1e-12);
        // Enter x (column 0): ratio test now picks row 2 (6/3 = 2 vs 4/1 = 4).
        let row = t.ratio_test(0, 1e-9).unwrap();
        assert_eq!(row, 2);
        t.pivot(row, 0);
        assert!((t.objective() - (-36.0)).abs() < 1e-12);
        // Optimal: no negative reduced costs.
        assert!((0..t.num_cols()).all(|j| t.reduced_cost(j) >= -1e-9));
        let x = t.basic_solution();
        assert!((x[0] - 2.0).abs() < 1e-9);
        assert!((x[1] - 6.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_test_detects_unbounded_column() {
        let rows = vec![vec![-1.0, 1.0, 0.0], vec![0.0, 0.0, 1.0]];
        let rhs = vec![1.0, 2.0];
        let basis = vec![1, 2];
        let t = Tableau::new(rows, rhs, basis);
        assert_eq!(t.ratio_test(0, 1e-9), None);
    }

    #[test]
    fn degenerate_pivot_is_reported() {
        let rows = vec![vec![1.0, 1.0, 0.0], vec![1.0, 0.0, 1.0]];
        let rhs = vec![0.0, 5.0];
        let basis = vec![1, 2];
        let mut t = Tableau::new(rows, rhs, basis);
        t.set_costs(&[-1.0, 0.0, 0.0]);
        let row = t.ratio_test(0, 1e-9).unwrap();
        assert_eq!(row, 0);
        let nondegenerate = t.pivot(row, 0);
        assert!(!nondegenerate);
    }

    #[test]
    fn row_helpers_find_nonzero_columns() {
        let t = example_tableau();
        assert!(!t.row_is_zero_up_to(0, 2, 1e-9));
        assert!(t.row_is_zero_up_to(1, 1, 1e-9));
        assert_eq!(t.first_nonzero_in_row(1, 2, 1e-9), Some(1));
        assert_eq!(t.first_nonzero_in_row(1, 1, 1e-9), None);
    }

    #[test]
    fn row_of_basic_locates_basis_members() {
        let t = example_tableau();
        assert_eq!(t.row_of_basic(3), Some(1));
        assert_eq!(t.row_of_basic(0), None);
    }
}

//! Solution representation returned by the solver.

use crate::model::VariableId;
use crate::solver::SolveStats;

/// Status of a completed solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
}

/// The result of successfully solving a [`crate::LinearProgram`].
///
/// Infeasibility, unboundedness, and iteration-limit failures are reported through
/// [`crate::SimplexError`] instead, so a `Solution` always carries an optimal point.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Status of the solve (always [`SolveStatus::Optimal`] at present; kept as an
    /// enum so that callers match on it and future relaxations stay source-compatible).
    pub status: SolveStatus,
    /// Optimal objective value in the *user's* orientation (i.e. already negated back
    /// for maximisation problems).
    pub objective_value: f64,
    /// Value of each structural variable, indexed by [`VariableId::index`].
    pub values: Vec<f64>,
    /// Iteration counts and pivot-rule statistics.
    pub stats: SolveStats,
    /// The optimal basis over *standard-form* columns (one column index per
    /// constraint row), usable as [`SolveOptions::warm_basis`] to seed a
    /// dual-simplex re-solve of an **identically shaped** program (same
    /// variables, bounds, and constraint relations — only the coefficients may
    /// differ).  An index `>=` the standard-form column count marks a
    /// redundant row whose artificial variable stayed basic at zero; the
    /// warm-start path re-creates an artificial for such rows (and falls back
    /// to the cold path if it refuses to stay at zero under the perturbed
    /// coefficients).  `None` only when the program had no constraint rows.
    ///
    /// [`SolveOptions::warm_basis`]: crate::SolveOptions::warm_basis
    pub optimal_basis: Option<Vec<usize>>,
}

impl Solution {
    /// Value of a single variable.
    #[inline]
    pub fn value(&self, var: VariableId) -> f64 {
        self.values[var.index()]
    }

    /// Values of a slice of variables, in order.
    pub fn values_of(&self, vars: &[VariableId]) -> Vec<f64> {
        vars.iter().map(|&v| self.value(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let solution = Solution {
            status: SolveStatus::Optimal,
            objective_value: 1.5,
            values: vec![0.25, 0.75],
            stats: SolveStats::default(),
            optimal_basis: None,
        };
        assert_eq!(solution.value(VariableId(0)), 0.25);
        assert_eq!(
            solution.values_of(&[VariableId(1), VariableId(0)]),
            vec![0.75, 0.25]
        );
    }
}

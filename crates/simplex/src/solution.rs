//! Solution representation returned by the solver.

use crate::model::VariableId;
use crate::solver::SolveStats;

/// Status of a completed solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveStatus {
    /// An optimal basic feasible solution was found.
    Optimal,
}

/// The result of successfully solving a [`crate::LinearProgram`].
///
/// Infeasibility, unboundedness, and iteration-limit failures are reported through
/// [`crate::SimplexError`] instead, so a `Solution` always carries an optimal point.
#[derive(Debug, Clone, PartialEq)]
pub struct Solution {
    /// Status of the solve (always [`SolveStatus::Optimal`] at present; kept as an
    /// enum so that callers match on it and future relaxations stay source-compatible).
    pub status: SolveStatus,
    /// Optimal objective value in the *user's* orientation (i.e. already negated back
    /// for maximisation problems).
    pub objective_value: f64,
    /// Value of each structural variable, indexed by [`VariableId::index`].
    pub values: Vec<f64>,
    /// Iteration counts and pivot-rule statistics.
    pub stats: SolveStats,
}

impl Solution {
    /// Value of a single variable.
    #[inline]
    pub fn value(&self, var: VariableId) -> f64 {
        self.values[var.index()]
    }

    /// Values of a slice of variables, in order.
    pub fn values_of(&self, vars: &[VariableId]) -> Vec<f64> {
        vars.iter().map(|&v| self.value(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_accessors() {
        let solution = Solution {
            status: SolveStatus::Optimal,
            objective_value: 1.5,
            values: vec![0.25, 0.75],
            stats: SolveStats::default(),
        };
        assert_eq!(solution.value(VariableId(0)), 0.25);
        assert_eq!(
            solution.values_of(&[VariableId(1), VariableId(0)]),
            vec![0.75, 0.25]
        );
    }
}

//! # cpm-simplex
//!
//! A small, dependency-free **sparse** linear-programming solver used by
//! [`cpm-core`](https://example.org) to solve the constrained mechanism-design LPs of
//! *"Constrained Private Mechanisms for Count Data"* (ICDE 2018).
//!
//! The paper solves all constrained designs with an off-the-shelf LP solver
//! (PyLPSolve / lp_solve).  No LP solver crate is part of the allowed offline
//! dependency set for this reproduction, so this crate implements the classic
//! **two-phase primal simplex** method with two interchangeable backends:
//!
//! * a [`LinearProgram`] model-builder API (named variables, bounds, `<=`/`>=`/`=`
//!   constraints, minimisation or maximisation objectives) storing constraints
//!   sparsely in a term arena,
//! * an **LP presolve pass** that shrinks the model before standardisation and
//!   reconstructs the full solution — values, duals, and basis — afterwards,
//! * conversion to sparse (CSC) standard form with slack / surplus / artificial
//!   variables — see [`SparseMatrix`],
//! * Phase 1 (minimise the sum of artificials) to find a basic feasible solution,
//! * Phase 2 with the user objective,
//! * the **revised simplex** default backend ([`SolverBackend::SparseRevised`]):
//!   the basis inverse is a **sparse LU factorisation** maintained by
//!   Forrest–Tomlin rank-one updates, so a pivot costs `O(nnz)` instead of the
//!   dense tableau's `O(rows · cols)` — the mechanism-design LPs have only 2 to
//!   `n+1` nonzeros per row, so this is the difference between toy and
//!   production group sizes,
//! * the dense full tableau retained as [`SolverBackend::DenseTableau`], selectable
//!   through [`SolveOptions::backend`] and used as a differential-testing oracle,
//! * **dual-simplex warm starts** ([`SolveOptions::warm_basis`]): seeding a
//!   solve with the [`Solution::optimal_basis`] of an identically shaped
//!   program skips Phase 1 entirely and replaces most of Phase 2 with a short
//!   dual cleanup (dual Devex row pricing + Harris-style dual ratio test),
//!   then certifies optimality with the ordinary primal machinery — the
//!   re-optimisation tool behind α sweeps, where one `(n, properties,
//!   objective)` family is re-solved under small coefficient perturbations.
//!   Any defective seed (wrong shape, singular, dual-infeasible) falls back
//!   to the cold primal path silently; [`SolveStats::warm_started`] and
//!   [`SolveStats::dual_iterations`] report which path ran,
//! * a **dual-form solve path** ([`SolveOptions::form`], [`LpForm`]): tall
//!   programs (the mechanism LPs have ~2x more rows than columns) are
//!   transposed by `dual.rs` and solved as `min −b'y, A'y ≤ c` — one row per
//!   primal *structural* column, so the basis is half the size, and because
//!   the mechanism costs satisfy `c ≥ 0` the all-slack start is feasible and
//!   **phase 1 vanishes**.  The dual-optimal basis maps back to a
//!   primal-optimal basis by complementary slackness and is certified with
//!   the ordinary warm-start machinery, so callers still receive primal
//!   values, duals, objective, and a warm-start-valid
//!   [`Solution::optimal_basis`].  [`SolveStats::form`] reports which form
//!   ran,
//! * a **crash-basis constructor** ([`crash_basis`]): turns a conjectured
//!   optimal point (e.g. a closed-form mechanism the caller believes is the
//!   LP's optimum) into a standard-form basis by classifying tight rows and
//!   interior columns, usable as a warm seed.  The seed is a *hint, never an
//!   answer*: it flows through the same warm-start verification as any other
//!   seed, so a wrong conjecture costs one declined factorisation and falls
//!   back to the cold path — it can never produce a wrong optimum.
//!
//! ## Architecture: the presolve → standardise → solve → postsolve pipeline
//!
//! A call to [`LinearProgram::solve`] flows through five layers:
//!
//! ```text
//! LinearProgram          model.rs      named variables, bounds, constraint arena
//!       │ presolve                     (skipped when SolveOptions::presolve = false)
//!       ▼
//! PresolvedProgram       presolve.rs   α≈1 ratio-row aliasing, singleton rows →
//!       │                              bounds, fixed-variable substitution,
//!       │                              duplicate/dominated row folding, empty
//!       │                              columns; records a postsolve map
//!       │ standardize
//!       ▼
//! StandardForm           standard.rs   min c'z, Az = b, z ≥ 0 (boxed columns keep
//!       │                sparse.rs     finite uppers), b ≥ 0; CSC matrix
//!       │                              (SparseMatrix + RowMajor mirror + SPA utils)
//!       │ LpForm::Dual (tall programs, row-encoded, Auto-picked by aspect ratio)
//!       ├──────────────▶ dual.rs       dualize: rows ↔ columns, slack columns fold
//!       │                              into y sign bounds, c ≥ 0 ⇒ all-slack start
//!       │                              (no phase 1); solve the transpose with the
//!       │                              same revised machinery below, then map the
//!       │                              dual basis back by complementary slackness
//!       │                              (basic structural column ⇔ tight dual row,
//!       │                              basic y_r ⇔ nonbasic primal slack) and
//!       │                              certify it through the warm-start path —
//!       │                              the recovered basis is primal-optimal and
//!       │                              warm-start-valid (a re-solve takes 0 pivots)
//!       ▼
//! revised simplex        revised.rs    two-phase driver, Harris two-pass +
//!       │                              long-step/bound-flipping ratio tests,
//!       │                              Devex / steepest-edge / Dantzig / Bland
//!       │                              pricing, incremental reduced costs,
//!       │                              basis repair, dual-simplex warm starts
//!       ▼
//! LU basis inverse       lu.rs         Markowitz factorisation (singleton peeling
//!       │                              + threshold pivoting), Suhl–Suhl ordered
//!       │ postsolve                    sparse triangular FTRAN/BTRAN with
//!       ▼                              dense-result pattern harvest,
//! Solution               solution.rs   Forrest–Tomlin updates; postsolve expands
//!                                      values and basis back to the original model
//! ```
//!
//! Presolve (on by default via [`SolveOptions::presolve`]) targets the
//! reductions that actually occur in the mechanism LPs: weak-honesty
//! singleton rows fold into variable bounds, α = 1 DP-ratio pairs alias whole
//! variable chains, and property rows duplicated by the implication closure
//! collapse to the tightest representative.  The postsolve map restores
//! removed variables and rows so [`Solution::optimal_basis`] stays expressed
//! in the *original* standard form — warm starts and basis provenance work
//! identically with presolve on or off.  [`SolveStats::presolve_rows_removed`]
//! and [`SolveStats::presolve_cols_removed`] attribute the shrinkage.
//!
//! The LU factors are rebuilt every [`SolveOptions::refactor_interval`]
//! Forrest–Tomlin updates — treated as a floor and stretched to `rows / 32` on
//! tall problems — and whenever an update signals numerical trouble (the
//! *basis repair* path, bounded by [`SolveOptions::max_repairs`]).
//!
//! ## Pricing × ratio-test option matrix
//!
//! Entering-variable pricing is selected by [`SolveOptions::pricing`]; the
//! leaving side always runs the Harris two-pass ratio test extended with
//! long-step **bound flips**: when the tightest limit is the entering (or a
//! passing boxed) variable's *opposite bound*, the variable flips across its
//! box without a basis change ([`SolveStats::bound_flips`]).
//!
//! | [`PricingRule`]  | score                         | per-pivot cost | best for |
//! |------------------|-------------------------------|----------------|----------|
//! | `Dantzig`        | most negative reduced cost    | cheapest       | small / well-scaled LPs |
//! | `Devex`          | `d_j² / γ_j`, reference grows | one extra BTRAN row | mid-size degenerate LPs |
//! | `SteepestEdge`   | `d_j² / ‖B⁻¹a_j‖²` exact in the reference frame, weights rebuilt on refactorisation | pivot-column FTRAN reuse + masked updates | the large mechanism LPs (n ≥ 64: fewest pivots, best locality) |
//!
//! All rules fall back to Bland's rule when degeneracy stalls progress,
//! guaranteeing termination; [`SolveOptions::partial_pricing`] optionally
//! prices in cyclic column sections under any rule.  `cpm-core`'s
//! `recommended_options` picks per problem size: steepest edge for the
//! mechanism designs (it wins at every measured n — ~2x fewer phase-2 pivots
//! at n = 64), `max_iterations` scaled to `60 · dim²`, presolve on.
//! [`SolveStats`] reports factorisations, rank-one updates, repairs, bound
//! flips, and per-rule framework resets ([`SolveStats::devex_resets`],
//! [`SolveStats::steepest_edge_resets`]) separately.
//!
//! ## Example
//!
//! ```
//! use cpm_simplex::{LinearProgram, Relation, SolveStatus};
//!
//! // minimise  -3x - 5y
//! // subject to x      <= 4
//! //                 2y <= 12
//! //            3x + 2y <= 18
//! //            x, y >= 0
//! let mut lp = LinearProgram::minimize();
//! let x = lp.add_variable("x");
//! let y = lp.add_variable("y");
//! lp.set_objective_coefficient(x, -3.0);
//! lp.set_objective_coefficient(y, -5.0);
//! lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 4.0);
//! lp.add_constraint(vec![(y, 2.0)], Relation::LessEq, 12.0);
//! lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::LessEq, 18.0);
//!
//! let solution = lp.solve().unwrap();
//! assert_eq!(solution.status, SolveStatus::Optimal);
//! assert!((solution.objective_value - (-36.0)).abs() < 1e-9);
//! assert!((solution.value(x) - 2.0).abs() < 1e-9);
//! assert!((solution.value(y) - 6.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dual;
mod error;
mod lu;
mod model;
mod presolve;
mod revised;
mod solution;
mod solver;
pub mod sparse;
mod standard;
mod tableau;

pub use error::SimplexError;
pub use model::{Constraint, LinearProgram, Objective, Relation, VariableId};
pub use solution::{Solution, SolveStatus};
pub use solver::{LpForm, PivotRule, PricingRule, SolveOptions, SolveStats, SolverBackend};
pub use sparse::SparseMatrix;
pub use standard::crash_basis;

//! Differential tests: the sparse revised-simplex backend and the dense tableau
//! backend must classify every program identically (optimal / infeasible /
//! unbounded) and report the same optimal objective value, on the
//! mechanism-design-shaped LPs this workspace exists for as well as on degenerate
//! and pathological edge cases.
//!
//! The optimal *point* may legitimately differ between backends when the optimum
//! face is not a single vertex, so the tests compare objectives (to `1e-6`) and
//! validate feasibility of each returned point, not coordinates.

// The grid construction mirrors the paper's double-subscript notation; explicit
// index loops are clearer than iterator chains here.
#![allow(clippy::needless_range_loop)]

use cpm_simplex::{
    LinearProgram, PivotRule, Relation, SimplexError, SolveOptions, SolverBackend, VariableId,
};
use proptest::prelude::*;

const AGREEMENT_TOLERANCE: f64 = 1e-6;

fn options(backend: SolverBackend) -> SolveOptions {
    SolveOptions {
        backend,
        max_iterations: 2_000_000,
        ..SolveOptions::default()
    }
}

/// Solve with both backends; expect both to succeed and agree on the objective.
/// Returns the two objective values for further checks.
fn assert_backends_agree(lp: &LinearProgram, label: &str) -> (f64, f64) {
    let sparse = lp
        .solve_with(&options(SolverBackend::SparseRevised))
        .unwrap_or_else(|e| panic!("{label}: sparse backend failed: {e}"));
    let dense = lp
        .solve_with(&options(SolverBackend::DenseTableau))
        .unwrap_or_else(|e| panic!("{label}: dense backend failed: {e}"));
    assert!(
        (sparse.objective_value - dense.objective_value).abs() < AGREEMENT_TOLERANCE,
        "{label}: sparse {} vs dense {}",
        sparse.objective_value,
        dense.objective_value
    );
    (sparse.objective_value, dense.objective_value)
}

/// The BASICDP-shaped LP of the paper: an (n+1)x(n+1) grid of probability
/// variables, column sums equal to one, DP ratio rows between adjacent columns,
/// and the (unscaled, uniform-prior) L0 objective.
fn basic_dp_lp(n: usize, alpha: f64) -> (LinearProgram, Vec<Vec<VariableId>>) {
    let dim = n + 1;
    let mut lp = LinearProgram::minimize();
    let mut vars = Vec::with_capacity(dim);
    for i in 0..dim {
        let mut row = Vec::with_capacity(dim);
        for j in 0..dim {
            let v = lp.add_variable(format!("rho_{i}_{j}"));
            if i != j {
                lp.set_objective_coefficient(v, 1.0 / dim as f64);
            }
            row.push(v);
        }
        vars.push(row);
    }
    for j in 0..dim {
        lp.add_constraint((0..dim).map(|i| (vars[i][j], 1.0)), Relation::Equal, 1.0);
    }
    for i in 0..dim {
        for j in 0..n {
            lp.add_constraint(
                [(vars[i][j], 1.0), (vars[i][j + 1], -alpha)],
                Relation::GreaterEq,
                0.0,
            );
            lp.add_constraint(
                [(vars[i][j + 1], 1.0), (vars[i][j], -alpha)],
                Relation::GreaterEq,
                0.0,
            );
        }
    }
    (lp, vars)
}

/// Closed form for the BASICDP L0 optimum (Theorem 3 of the paper).
fn geometric_optimum(n: usize, alpha: f64) -> f64 {
    let trace = (n as f64 - 1.0) * (1.0 - alpha) / (1.0 + alpha) + 2.0 / (1.0 + alpha);
    1.0 - trace / (n as f64 + 1.0)
}

#[test]
fn backends_agree_on_mechanism_shaped_lps() {
    for n in [2usize, 4, 6, 9] {
        for alpha in [0.3, 0.62, 0.9] {
            let (lp, vars) = basic_dp_lp(n, alpha);
            let label = format!("basic_dp n={n} alpha={alpha}");
            let (sparse_objective, _) = assert_backends_agree(&lp, &label);
            assert!(
                (sparse_objective - geometric_optimum(n, alpha)).abs() < 1e-7,
                "{label}: objective {sparse_objective} disagrees with the closed form"
            );
            // Each backend's point must be a column-stochastic matrix.
            for backend in [SolverBackend::SparseRevised, SolverBackend::DenseTableau] {
                let solution = lp.solve_with(&options(backend)).unwrap();
                for j in 0..=n {
                    let total: f64 = (0..=n).map(|i| solution.value(vars[i][j])).sum();
                    assert!(
                        (total - 1.0).abs() < 1e-7,
                        "{label} ({backend:?}): column {j} sums to {total}"
                    );
                    for i in 0..=n {
                        assert!(
                            solution.value(vars[i][j]) > -1e-9,
                            "{label}: negative entry"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn backends_agree_with_weak_honesty_rows() {
    for n in [2usize, 4, 6] {
        for alpha in [0.62, 0.9] {
            let (mut lp, vars) = basic_dp_lp(n, alpha);
            let bound = 1.0 / (n as f64 + 1.0);
            for (i, row) in vars.iter().enumerate() {
                lp.add_constraint([(row[i], 1.0)], Relation::GreaterEq, bound);
            }
            assert_backends_agree(&lp, &format!("weak_honesty n={n} alpha={alpha}"));
        }
    }
}

#[test]
fn backends_agree_on_all_pivot_rules() {
    let (lp, _) = basic_dp_lp(5, 0.76);
    let mut objectives = Vec::new();
    for backend in [SolverBackend::SparseRevised, SolverBackend::DenseTableau] {
        for rule in [
            PivotRule::Dantzig,
            PivotRule::Bland,
            PivotRule::Hybrid {
                degenerate_threshold: 16,
            },
        ] {
            let solve_options = SolveOptions {
                pivot_rule: rule,
                ..options(backend)
            };
            objectives.push(lp.solve_with(&solve_options).unwrap().objective_value);
        }
    }
    for pair in objectives.windows(2) {
        assert!(
            (pair[0] - pair[1]).abs() < AGREEMENT_TOLERANCE,
            "{objectives:?}"
        );
    }
}

#[test]
fn pricing_rules_and_partial_pricing_agree_with_the_oracle() {
    use cpm_simplex::PricingRule;
    let (lp, _) = basic_dp_lp(6, 0.9);
    let dense = lp
        .solve_with(&options(SolverBackend::DenseTableau))
        .unwrap()
        .objective_value;
    for pricing in [PricingRule::Devex, PricingRule::Dantzig] {
        for partial in [0usize, 7, 64] {
            let solve_options = SolveOptions {
                pricing,
                partial_pricing: partial,
                ..options(SolverBackend::SparseRevised)
            };
            let solution = lp.solve_with(&solve_options).unwrap();
            assert!(
                (solution.objective_value - dense).abs() < AGREEMENT_TOLERANCE,
                "pricing {pricing} partial {partial}: {} vs {dense}",
                solution.objective_value
            );
        }
    }
}

#[test]
fn backends_agree_on_degenerate_beale() {
    // Beale's cycling example — maximally degenerate; the hybrid rule must reach
    // the same optimum through either backend.
    let mut lp = LinearProgram::minimize();
    let x1 = lp.add_variable("x1");
    let x2 = lp.add_variable("x2");
    let x3 = lp.add_variable("x3");
    let x4 = lp.add_variable("x4");
    lp.set_objective_coefficient(x1, -0.75);
    lp.set_objective_coefficient(x2, 150.0);
    lp.set_objective_coefficient(x3, -0.02);
    lp.set_objective_coefficient(x4, 6.0);
    lp.add_constraint(
        [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        Relation::LessEq,
        0.0,
    );
    lp.add_constraint(
        [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        Relation::LessEq,
        0.0,
    );
    lp.add_constraint([(x3, 1.0)], Relation::LessEq, 1.0);
    let (objective, _) = assert_backends_agree(&lp, "beale");
    assert!((objective - (-0.05)).abs() < 1e-7);
}

#[test]
fn backends_agree_that_contradictory_rows_are_infeasible() {
    let mut lp = LinearProgram::minimize();
    let x = lp.add_variable("x");
    let y = lp.add_variable("y");
    lp.add_constraint([(x, 1.0), (y, 1.0)], Relation::Equal, 1.0);
    lp.add_constraint([(x, 1.0), (y, 1.0)], Relation::Equal, 2.0);
    for backend in [SolverBackend::SparseRevised, SolverBackend::DenseTableau] {
        assert_eq!(
            lp.solve_with(&options(backend)).unwrap_err(),
            SimplexError::Infeasible,
            "{backend:?}"
        );
    }
}

#[test]
fn backends_agree_that_open_programs_are_unbounded() {
    let mut lp = LinearProgram::maximize();
    let x = lp.add_variable("x");
    let y = lp.add_variable("y");
    lp.set_objective_coefficient(x, 1.0);
    lp.set_objective_coefficient(y, 2.0);
    lp.add_constraint([(x, 1.0), (y, -1.0)], Relation::LessEq, 3.0);
    for backend in [SolverBackend::SparseRevised, SolverBackend::DenseTableau] {
        assert_eq!(
            lp.solve_with(&options(backend)).unwrap_err(),
            SimplexError::Unbounded,
            "{backend:?}"
        );
    }
}

#[test]
fn backends_agree_on_redundant_equalities() {
    let mut lp = LinearProgram::minimize();
    let x = lp.add_variable("x");
    let y = lp.add_variable("y");
    lp.set_objective_coefficient(x, 2.0);
    lp.set_objective_coefficient(y, 1.0);
    lp.add_constraint([(x, 1.0), (y, 1.0)], Relation::Equal, 4.0);
    lp.add_constraint([(x, 1.0), (y, 1.0)], Relation::Equal, 4.0);
    lp.add_constraint([(x, 2.0), (y, 2.0)], Relation::Equal, 8.0);
    let (objective, _) = assert_backends_agree(&lp, "redundant equalities");
    assert!((objective - 4.0).abs() < 1e-9);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random bounded `<=` programs: both backends find the same optimum.
    #[test]
    fn prop_backends_agree_on_random_le_programs(
        rows in proptest::collection::vec(
            proptest::collection::vec(0.0f64..5.0, 5),
            1..10,
        ),
        rhs in proptest::collection::vec(0.5f64..10.0, 10),
        costs in proptest::collection::vec(-3.0f64..3.0, 5),
    ) {
        // Maximise a mixed-sign objective over a bounded box-ish polytope (the
        // program is bounded because every variable also gets a unit cap).
        let mut lp = LinearProgram::maximize();
        let vars = lp.add_variables("x", 5);
        for (v, c) in vars.iter().zip(costs.iter()) {
            lp.set_objective_coefficient(*v, *c);
        }
        for (i, row) in rows.iter().enumerate() {
            let terms: Vec<_> = vars.iter().zip(row.iter()).map(|(&v, &a)| (v, a)).collect();
            lp.add_constraint(terms, Relation::LessEq, rhs[i.min(rhs.len() - 1)]);
        }
        for &v in &vars {
            lp.add_constraint([(v, 1.0)], Relation::LessEq, 1.0);
        }
        let sparse = lp.solve_with(&options(SolverBackend::SparseRevised)).unwrap();
        let dense = lp.solve_with(&options(SolverBackend::DenseTableau)).unwrap();
        prop_assert!(
            (sparse.objective_value - dense.objective_value).abs() < AGREEMENT_TOLERANCE,
            "sparse {} vs dense {}", sparse.objective_value, dense.objective_value
        );
    }

    /// Heavily degenerate random programs — many zero right-hand sides, so
    /// nearly every vertex is degenerate and the LU-backed revised simplex
    /// leans hard on its anti-cycling and basis-update machinery.  The dense
    /// tableau is the oracle.
    #[test]
    fn prop_backends_agree_on_degenerate_programs(
        signs in proptest::collection::vec(0.0f64..1.0, 36),
        costs in proptest::collection::vec(-2.0f64..2.0, 6),
    ) {
        let mut lp = LinearProgram::minimize();
        let vars = lp.add_variables("x", 6);
        for (v, c) in vars.iter().zip(costs.iter()) {
            lp.set_objective_coefficient(*v, *c);
        }
        // Six ternary-coefficient rows with rhs 0 (maximum degeneracy), one
        // normalising row, and unit caps to keep the program bounded.
        for row in 0..6 {
            let terms: Vec<_> = vars
                .iter()
                .enumerate()
                .map(|(k, &v)| {
                    let s = signs[row * 6 + k];
                    let coefficient = if s < 1.0 / 3.0 {
                        -1.0
                    } else if s < 2.0 / 3.0 {
                        0.0
                    } else {
                        1.0
                    };
                    (v, coefficient)
                })
                .filter(|&(_, c)| c != 0.0)
                .collect();
            if !terms.is_empty() {
                lp.add_constraint(terms, Relation::GreaterEq, 0.0);
            }
        }
        lp.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Equal, 1.0);
        for &v in &vars {
            lp.add_constraint([(v, 1.0)], Relation::LessEq, 1.0);
        }
        let sparse = lp.solve_with(&options(SolverBackend::SparseRevised));
        let dense = lp.solve_with(&options(SolverBackend::DenseTableau));
        match (sparse, dense) {
            (Ok(s), Ok(d)) => prop_assert!(
                (s.objective_value - d.objective_value).abs() < AGREEMENT_TOLERANCE,
                "sparse {} vs dense {}", s.objective_value, d.objective_value
            ),
            (Err(se), Err(de)) => prop_assert_eq!(se, de),
            (s, d) => prop_assert!(false, "status disagreement: sparse {s:?} vs dense {d:?}"),
        }
    }

    /// Random DP-shaped instances: agreement plus the Theorem-3 closed form.
    #[test]
    fn prop_backends_agree_on_random_dp_instances(n in 1usize..6, alpha in 0.05f64..0.99) {
        let (lp, _) = basic_dp_lp(n, alpha);
        let sparse = lp.solve_with(&options(SolverBackend::SparseRevised)).unwrap();
        let dense = lp.solve_with(&options(SolverBackend::DenseTableau)).unwrap();
        prop_assert!(
            (sparse.objective_value - dense.objective_value).abs() < AGREEMENT_TOLERANCE,
            "sparse {} vs dense {}", sparse.objective_value, dense.objective_value
        );
        let expected = geometric_optimum(n, alpha);
        prop_assert!((sparse.objective_value - expected).abs() < 1e-6);
    }
}

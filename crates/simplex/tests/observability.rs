//! Flight-recorder integration: an injected terminal solver breakdown must
//! fail the solve *and* dump the flight recorder.
//!
//! `CPM_OBS_INJECT_BREAKDOWN` poisons every `solve_prepared` call in the
//! process, so this lives in its own integration-test binary (one process per
//! test file) and runs as a single `#[test]` — the other simplex test binaries
//! never see the variable.

use cpm_simplex::{LinearProgram, Relation, SimplexError, SolveStatus};

fn small_feasible_lp() -> LinearProgram {
    let mut lp = LinearProgram::minimize();
    let x1 = lp.add_variable("x1");
    let x2 = lp.add_variable("x2");
    lp.set_objective_coefficient(x1, 0.6);
    lp.set_objective_coefficient(x2, 0.35);
    lp.add_constraint(vec![(x1, 5.0), (x2, 7.0)], Relation::GreaterEq, 8.0);
    lp.add_constraint(vec![(x1, 4.0), (x2, 2.0)], Relation::GreaterEq, 15.0);
    lp
}

#[test]
fn injected_breakdown_dumps_flight_recorder() {
    let lp = small_feasible_lp();

    // Sanity: the program solves cleanly before injection, and the solve
    // leaves spans in the flight recorder for the dump to replay.
    let solution = lp.solve().expect("uninjected solve succeeds");
    assert_eq!(solution.status, SolveStatus::Optimal);
    assert!(
        !cpm_obs::flight::recent().is_empty(),
        "solve should leave spans in the flight recorder"
    );

    let dumps_before = cpm_obs::registry().counter("cpm_flight_dumps_total").get();
    let breakdowns_before = cpm_obs::registry().counter("cpm_lp_breakdowns_total").get();

    std::env::set_var("CPM_OBS_INJECT_BREAKDOWN", "1");
    let err = lp.solve().expect_err("injected solve must fail");
    std::env::set_var("CPM_OBS_INJECT_BREAKDOWN", "0");

    assert!(
        matches!(err, SimplexError::NumericalBreakdown { .. }),
        "expected NumericalBreakdown, got {err:?}"
    );
    let dumps_after = cpm_obs::registry().counter("cpm_flight_dumps_total").get();
    let breakdowns_after = cpm_obs::registry().counter("cpm_lp_breakdowns_total").get();
    assert_eq!(
        dumps_after,
        dumps_before + 1,
        "terminal breakdown must dump the flight recorder exactly once"
    );
    assert_eq!(breakdowns_after, breakdowns_before + 1);

    // The dump drains into any writer; replaying it here shows the recorder
    // retained the pre-breakdown solve spans.
    let mut replay = Vec::new();
    let replayed = cpm_obs::flight::dump_to(&mut replay, "test replay");
    assert!(replayed > 0, "recorder should still hold records");
    let text = String::from_utf8(replay).expect("dump is valid UTF-8");
    assert!(
        text.contains("simplex"),
        "dump should mention the simplex target:\n{text}"
    );

    // Injection off again: the same program solves.
    lp.solve().expect("solve succeeds after clearing injection");
}

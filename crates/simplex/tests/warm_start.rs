//! Dual-simplex warm starts through the public API: a solve's
//! `Solution::optimal_basis` seeds `SolveOptions::warm_basis` of a re-solve,
//! which must agree with the cold answer while skipping Phase 1 — and every
//! defective seed must fall back to the cold primal path instead of erroring.

use cpm_simplex::{LinearProgram, Relation, SolveOptions, VariableId};

fn assert_close(a: f64, b: f64) {
    assert!((a - b).abs() < 1e-7, "{a} != {b}");
}

/// A mechanism-shaped LP: a probability-style equality row plus chained ratio
/// inequalities whose coefficient is the `alpha` parameter being swept.
fn ratio_lp(n: usize, alpha: f64) -> (LinearProgram, Vec<VariableId>) {
    let mut lp = LinearProgram::minimize();
    let vars = lp.add_variables("p", n);
    for (i, v) in vars.iter().enumerate() {
        lp.set_objective_coefficient(*v, 1.0 + i as f64 * 0.25);
    }
    lp.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Equal, 1.0);
    for w in vars.windows(2) {
        lp.add_constraint(vec![(w[0], 1.0), (w[1], -alpha)], Relation::GreaterEq, 0.0);
        lp.add_constraint(vec![(w[1], 1.0), (w[0], -alpha)], Relation::GreaterEq, 0.0);
    }
    (lp, vars)
}

fn warm_options(basis: Vec<usize>) -> SolveOptions {
    SolveOptions {
        warm_basis: Some(basis),
        ..SolveOptions::default()
    }
}

#[test]
fn resolving_with_the_own_optimal_basis_is_warm_and_pivot_free() {
    let (lp, _) = ratio_lp(12, 0.8);
    let cold = lp.solve().unwrap();
    let basis = cold
        .optimal_basis
        .clone()
        .expect("a clean solve reports its basis");

    let warm = lp.solve_with(&warm_options(basis)).unwrap();
    assert!(warm.stats.warm_started, "the warm path must have run");
    assert_eq!(
        warm.stats.phase1_iterations, 0,
        "no Phase 1 on a warm start"
    );
    assert_eq!(
        warm.stats.dual_iterations, 0,
        "the own optimal basis is already primal feasible"
    );
    assert_close(warm.objective_value, cold.objective_value);
    for (w, c) in warm.values.iter().zip(cold.values.iter()) {
        assert_close(*w, *c);
    }
}

#[test]
fn alpha_neighbour_warm_start_agrees_with_the_cold_solve() {
    let (base, _) = ratio_lp(16, 0.80);
    let seed = base
        .solve()
        .unwrap()
        .optimal_basis
        .expect("basis available");

    for alpha in [0.78, 0.79, 0.81, 0.82, 0.85] {
        let (lp, _) = ratio_lp(16, alpha);
        let cold = lp.solve().unwrap();
        let warm = lp.solve_with(&warm_options(seed.clone())).unwrap();
        assert_close(warm.objective_value, cold.objective_value);
        for (w, c) in warm.values.iter().zip(cold.values.iter()) {
            assert_close(*w, *c);
        }
        let cold_pivots = cold.stats.phase1_iterations + cold.stats.phase2_iterations;
        let warm_pivots = warm.stats.phase1_iterations
            + warm.stats.phase2_iterations
            + warm.stats.dual_iterations;
        if warm.stats.warm_started {
            assert_eq!(warm.stats.phase1_iterations, 0);
            assert!(
                warm_pivots <= cold_pivots,
                "alpha {alpha}: warm {warm_pivots} pivots vs cold {cold_pivots}"
            );
        }
    }
}

#[test]
fn dual_infeasible_seed_falls_back_to_the_primal_path() {
    // max 3x + 5y over three <= rows: the all-slack basis is primal feasible
    // but badly dual infeasible (both structural reduced costs are negative),
    // so the warm path must decline and the primal path must still answer.
    let mut lp = LinearProgram::maximize();
    let x = lp.add_variable("x");
    let y = lp.add_variable("y");
    lp.set_objective_coefficient(x, 3.0);
    lp.set_objective_coefficient(y, 5.0);
    lp.add_constraint(vec![(x, 1.0)], Relation::LessEq, 4.0);
    lp.add_constraint(vec![(y, 2.0)], Relation::LessEq, 12.0);
    lp.add_constraint(vec![(x, 3.0), (y, 2.0)], Relation::LessEq, 18.0);
    // Standard form: columns 0..1 structural, 2..4 slacks; the slack basis.
    let solution = lp.solve_with(&warm_options(vec![2, 3, 4])).unwrap();
    assert!(
        !solution.stats.warm_started,
        "a dual-infeasible seed must not take the warm path"
    );
    assert_close(solution.objective_value, 36.0);
    assert_close(solution.value(x), 2.0);
    assert_close(solution.value(y), 6.0);
}

#[test]
fn malformed_seeds_fall_back_instead_of_erroring() {
    let (lp, _) = ratio_lp(8, 0.7);
    let cold = lp.solve().unwrap();
    let good = cold.optimal_basis.clone().unwrap();

    // Wrong length, duplicate entries, out-of-range column: all must solve
    // cold, none may error or take the warm path.
    let mut duplicated = good.clone();
    duplicated[1] = duplicated[0];
    let mut out_of_range = good.clone();
    out_of_range[0] = usize::MAX;
    for bad in [vec![0usize; 3], duplicated, out_of_range, Vec::new()] {
        let solution = lp.solve_with(&warm_options(bad)).unwrap();
        assert!(!solution.stats.warm_started);
        assert_close(solution.objective_value, cold.objective_value);
    }
}

#[test]
fn singular_seed_falls_back() {
    // A structurally valid (distinct, in-range) basis can still be singular:
    // two surplus columns of rows that became linearly dependent... simplest
    // robust construction: pick structural columns that cannot span the rows.
    let mut lp = LinearProgram::minimize();
    let x = lp.add_variable("x");
    let y = lp.add_variable("y");
    lp.set_objective_coefficient(x, 1.0);
    lp.set_objective_coefficient(y, 2.0);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Equal, 10.0);
    lp.add_constraint(vec![(x, 2.0), (y, 2.0)], Relation::LessEq, 30.0);
    // Columns: x = 0, y = 1, slack of row 1 = 2.  {x, y} is singular on these
    // two rows once the slack is excluded?  No — [[1,1],[2,2]] is singular.
    let solution = lp.solve_with(&warm_options(vec![0, 1])).unwrap();
    assert!(!solution.stats.warm_started, "singular seed must fall back");
    assert_close(solution.objective_value, 10.0);
}

#[test]
fn warm_basis_round_trips_through_solve_options_serde() {
    let options = SolveOptions {
        warm_basis: Some(vec![3, 1, 4, 1 + 4]),
        ..SolveOptions::default()
    };
    let text = serde_json::to_string(&options).unwrap();
    let back: SolveOptions = serde_json::from_str(&text).unwrap();
    assert_eq!(back, options);

    // Options serialised before the warm-basis field existed still load.
    let legacy = serde_json::to_string(&SolveOptions::default()).unwrap();
    let legacy = legacy.replace(",\"warm_basis\":null", "");
    assert!(!legacy.contains("warm_basis"));
    let back: SolveOptions = serde_json::from_str(&legacy).unwrap();
    assert_eq!(back, SolveOptions::default());
}

//! Differential unit tests for the pricing rules (Devex vs projected steepest
//! edge vs Dantzig) and the long-step/bound-flipping ratio test: every rule
//! must land on the same optimum, and boxed LPs must flip bounds instead of
//! pivoting where the long step applies.

// The grid construction mirrors the paper's double-subscript notation; explicit
// index loops are clearer than iterator chains here.
#![allow(clippy::needless_range_loop)]

use cpm_simplex::{LinearProgram, PricingRule, Relation, SolveOptions, SolverBackend, VariableId};

/// The BASICDP-shaped grid LP from the mechanism formulation (see
/// `mechanism_shaped_lps.rs`): degenerate, ratio-coupled, equality-normalised.
fn dp_lp(n: usize, alpha: f64) -> LinearProgram {
    let dim = n + 1;
    let mut lp = LinearProgram::minimize();
    let mut vars: Vec<Vec<VariableId>> = Vec::with_capacity(dim);
    for i in 0..dim {
        let mut row = Vec::with_capacity(dim);
        for j in 0..dim {
            let v = lp.add_variable(format!("rho_{i}_{j}"));
            if i != j {
                lp.set_objective_coefficient(v, 1.0 / dim as f64);
            }
            row.push(v);
        }
        vars.push(row);
    }
    for j in 0..dim {
        let terms: Vec<_> = (0..dim).map(|i| (vars[i][j], 1.0)).collect();
        lp.add_constraint(terms, Relation::Equal, 1.0);
    }
    for i in 0..dim {
        for j in 0..n {
            lp.add_constraint(
                vec![(vars[i][j], 1.0), (vars[i][j + 1], -alpha)],
                Relation::GreaterEq,
                0.0,
            );
            lp.add_constraint(
                vec![(vars[i][j + 1], 1.0), (vars[i][j], -alpha)],
                Relation::GreaterEq,
                0.0,
            );
        }
    }
    lp
}

fn sparse_options(pricing: PricingRule) -> SolveOptions {
    SolveOptions {
        backend: SolverBackend::SparseRevised,
        pricing,
        max_iterations: 2_000_000,
        ..SolveOptions::default()
    }
}

#[test]
fn steepest_edge_agrees_with_devex_and_dantzig_on_the_dp_lp() {
    let lp = dp_lp(6, 0.76);
    let devex = lp.solve_with(&sparse_options(PricingRule::Devex)).unwrap();
    let steepest = lp
        .solve_with(&sparse_options(PricingRule::SteepestEdge))
        .unwrap();
    let dantzig = lp
        .solve_with(&sparse_options(PricingRule::Dantzig))
        .unwrap();
    assert!((steepest.objective_value - devex.objective_value).abs() < 1e-8);
    assert!((steepest.objective_value - dantzig.objective_value).abs() < 1e-8);
    // Both reference-framework rules must actually have run their machinery.
    assert!(steepest.stats.phase2_iterations > 0);
    assert!(devex.stats.phase2_iterations > 0);
    // Resets are rare on a well-conditioned LP but the counters must at least
    // be wired: Devex resets belong to Devex runs, steepest-edge resets to
    // steepest-edge runs.
    assert_eq!(steepest.stats.devex_resets, 0);
    assert_eq!(devex.stats.steepest_edge_resets, 0);
}

#[test]
fn steepest_edge_agrees_with_the_dense_oracle() {
    let lp = dp_lp(5, 0.62);
    let sparse = lp
        .solve_with(&sparse_options(PricingRule::SteepestEdge))
        .unwrap();
    let dense = lp
        .solve_with(&SolveOptions {
            backend: SolverBackend::DenseTableau,
            ..SolveOptions::default()
        })
        .unwrap();
    assert!((sparse.objective_value - dense.objective_value).abs() < 1e-8);
}

/// A pure box LP: maximise the sum of K variables in `[0, 1]` under one loose
/// aggregate cap.  Every entering variable hits its *own* upper bound before
/// the slack blocks, so the long-step ratio test should flip each one to its
/// upper bound without a single basis change.
#[test]
fn loose_caps_are_solved_by_bound_flips_not_pivots() {
    const K: usize = 12;
    let mut lp = LinearProgram::minimize();
    let vars: Vec<VariableId> = (0..K)
        .map(|i| {
            let v = lp.add_variable_with_bounds(format!("x{i}"), 0.0, 1.0);
            lp.set_objective_coefficient(v, -1.0);
            v
        })
        .collect();
    lp.add_constraint(
        vars.iter().map(|&v| (v, 1.0)),
        Relation::LessEq,
        2.0 * K as f64,
    );
    let solution = lp.solve_with(&sparse_options(PricingRule::Devex)).unwrap();
    assert!((solution.objective_value - -(K as f64)).abs() < 1e-9);
    for &v in &vars {
        assert!((solution.value(v) - 1.0).abs() < 1e-9);
    }
    assert!(
        solution.stats.bound_flips >= K,
        "every variable should reach its box by flipping (flips: {}, pivots: {})",
        solution.stats.bound_flips,
        solution.stats.phase1_iterations + solution.stats.phase2_iterations
    );
    assert_eq!(solution.stats.phase1_iterations, 0);
}

/// With a *tight* cap the flips can no longer finish the job: some variables
/// must enter the basis, and the optimum sits on the cap.  Flip-enabled and
/// dense solves must agree exactly.
#[test]
fn tight_caps_mix_flips_and_pivots_and_agree_with_dense() {
    const K: usize = 8;
    let cap = 4.5;
    let mut lp = LinearProgram::minimize();
    let vars: Vec<VariableId> = (0..K)
        .map(|i| {
            let v = lp.add_variable_with_bounds(format!("x{i}"), 0.0, 1.0);
            // Distinct costs make the optimum unique: fill the cheapest first.
            lp.set_objective_coefficient(v, -(K as f64 - i as f64));
            v
        })
        .collect();
    lp.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::LessEq, cap);
    let sparse = lp
        .solve_with(&sparse_options(PricingRule::SteepestEdge))
        .unwrap();
    let dense = lp
        .solve_with(&SolveOptions {
            backend: SolverBackend::DenseTableau,
            ..SolveOptions::default()
        })
        .unwrap();
    // Greedy closed form: x0..x3 = 1, x4 = 0.5 -> -(8+7+6+5) - 4*0.5.
    let expected = -(8.0 + 7.0 + 6.0 + 5.0) - 4.0 * 0.5;
    assert!((sparse.objective_value - expected).abs() < 1e-9);
    assert!((sparse.objective_value - dense.objective_value).abs() < 1e-9);
    assert!(
        sparse.stats.bound_flips > 0,
        "the cheap prefix should still arrive by flipping (stats: {:?})",
        sparse.stats
    );
}

//! Stress tests shaped like the mechanism-design LPs that `cpm-core` generates:
//! probability-simplex columns coupled by ratio ("DP-style") constraints.  These
//! exercise exactly the degenerate structure the solver must handle in production,
//! without depending on `cpm-core`.

// The grid construction mirrors the paper's double-subscript notation; explicit index
// loops are clearer than iterator chains here.
#![allow(clippy::needless_range_loop)]

use cpm_simplex::{LinearProgram, PivotRule, Relation, SolveOptions, VariableId};
use proptest::prelude::*;

/// Build the BASICDP-shaped LP: an (n+1)x(n+1) grid of variables, column sums equal
/// to one, ratio constraints between adjacent columns in every row, and a cost of 1
/// on every off-diagonal cell (the L0 objective with uniform weights, unscaled).
fn basic_dp_lp(n: usize, alpha: f64) -> (LinearProgram, Vec<Vec<VariableId>>) {
    let dim = n + 1;
    let mut lp = LinearProgram::minimize();
    let mut vars = Vec::with_capacity(dim);
    for i in 0..dim {
        let mut row = Vec::with_capacity(dim);
        for j in 0..dim {
            let v = lp.add_variable(format!("rho_{i}_{j}"));
            if i != j {
                lp.set_objective_coefficient(v, 1.0 / dim as f64);
            }
            row.push(v);
        }
        vars.push(row);
    }
    for j in 0..dim {
        let terms: Vec<_> = (0..dim).map(|i| (vars[i][j], 1.0)).collect();
        lp.add_constraint(terms, Relation::Equal, 1.0);
    }
    for i in 0..dim {
        for j in 0..n {
            lp.add_constraint(
                vec![(vars[i][j], 1.0), (vars[i][j + 1], -alpha)],
                Relation::GreaterEq,
                0.0,
            );
            lp.add_constraint(
                vec![(vars[i][j + 1], 1.0), (vars[i][j], -alpha)],
                Relation::GreaterEq,
                0.0,
            );
        }
    }
    (lp, vars)
}

/// Closed form for the optimum of the BASICDP L0 problem (Theorem 3 of the paper):
/// the unscaled objective of the truncated geometric mechanism, n/(n+1) * 2a/(1+a)
/// ... expressed directly via its trace (n-1) (1-a)/(1+a) + 2/(1+a).
fn geometric_optimum(n: usize, alpha: f64) -> f64 {
    let trace = (n as f64 - 1.0) * (1.0 - alpha) / (1.0 + alpha) + 2.0 / (1.0 + alpha);
    1.0 - trace / (n as f64 + 1.0)
}

#[test]
fn basic_dp_lp_matches_the_geometric_closed_form() {
    for n in [2usize, 4, 6, 9] {
        for alpha in [0.3, 0.62, 0.9] {
            let (lp, vars) = basic_dp_lp(n, alpha);
            let solution = lp.solve().unwrap();
            let expected = geometric_optimum(n, alpha);
            assert!(
                (solution.objective_value - expected).abs() < 1e-7,
                "n={n} alpha={alpha}: {} vs {expected}",
                solution.objective_value
            );
            // The solution must be a valid column-stochastic matrix.
            for j in 0..=n {
                let total: f64 = (0..=n).map(|i| solution.value(vars[i][j])).sum();
                assert!((total - 1.0).abs() < 1e-7);
            }
        }
    }
}

#[test]
fn all_pivot_rules_agree_on_the_dp_shaped_lp() {
    let (lp, _) = basic_dp_lp(5, 0.76);
    let mut objectives = Vec::new();
    for rule in [
        PivotRule::Dantzig,
        PivotRule::Bland,
        PivotRule::Hybrid {
            degenerate_threshold: 16,
        },
    ] {
        let options = SolveOptions {
            pivot_rule: rule,
            max_iterations: 2_000_000,
            ..SolveOptions::default()
        };
        objectives.push(lp.solve_with(&options).unwrap().objective_value);
    }
    assert!((objectives[0] - objectives[1]).abs() < 1e-7);
    assert!((objectives[1] - objectives[2]).abs() < 1e-7);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any alpha and small n, the BASICDP optimum matches the geometric closed
    /// form and the LP never reports infeasibility or unboundedness.
    #[test]
    fn prop_basic_dp_objective_matches_theory(n in 1usize..7, alpha in 0.05f64..0.99) {
        let (lp, _) = basic_dp_lp(n, alpha);
        let solution = lp.solve().unwrap();
        let expected = geometric_optimum(n, alpha);
        prop_assert!((solution.objective_value - expected).abs() < 1e-6,
            "n={} alpha={}: {} vs {}", n, alpha, solution.objective_value, expected);
    }

    /// Adding a diagonal lower bound (the weak-honesty constraint) keeps the LP
    /// feasible and can only increase the optimum; the bound 1/(n+1) is always
    /// attainable because the uniform matrix is feasible.
    #[test]
    fn prop_weak_honesty_rows_keep_the_lp_feasible(n in 1usize..6, alpha in 0.05f64..0.99) {
        let (mut lp, vars) = basic_dp_lp(n, alpha);
        let bound = 1.0 / (n as f64 + 1.0);
        for (i, row) in vars.iter().enumerate() {
            lp.add_constraint(vec![(row[i], 1.0)], Relation::GreaterEq, bound);
        }
        let constrained = lp.solve().unwrap().objective_value;
        let unconstrained = geometric_optimum(n, alpha);
        prop_assert!(constrained + 1e-7 >= unconstrained);
        prop_assert!(constrained <= n as f64 / (n as f64 + 1.0) + 1e-7);
    }
}

//! Integration and property-based tests for the simplex solver.

use cpm_simplex::{LinearProgram, PivotRule, Relation, SimplexError, SolveOptions, SolveStatus};
use proptest::prelude::*;

fn assert_close(a: f64, b: f64, tol: f64) {
    assert!((a - b).abs() < tol, "{a} != {b} (tol {tol})");
}

#[test]
fn diet_style_problem() {
    // min 0.6 x1 + 0.35 x2
    // s.t. 5 x1 + 7 x2 >= 8
    //      4 x1 + 2 x2 >= 15
    //      2 x1 + 1 x2 >= 3
    let mut lp = LinearProgram::minimize();
    let x1 = lp.add_variable("x1");
    let x2 = lp.add_variable("x2");
    lp.set_objective_coefficient(x1, 0.6);
    lp.set_objective_coefficient(x2, 0.35);
    lp.add_constraint(vec![(x1, 5.0), (x2, 7.0)], Relation::GreaterEq, 8.0);
    lp.add_constraint(vec![(x1, 4.0), (x2, 2.0)], Relation::GreaterEq, 15.0);
    lp.add_constraint(vec![(x1, 2.0), (x2, 1.0)], Relation::GreaterEq, 3.0);
    let solution = lp.solve().unwrap();
    assert_eq!(solution.status, SolveStatus::Optimal);
    // Optimum: x1 = 3.75, x2 = 0 -> 2.25.
    assert_close(solution.objective_value, 2.25, 1e-7);
    assert_close(solution.value(x1), 3.75, 1e-7);
    assert_close(solution.value(x2), 0.0, 1e-7);
}

#[test]
fn transportation_problem_with_equalities() {
    // Two supplies (10, 20), two demands (15, 15); costs [[2, 3], [4, 1]].
    // Optimal: ship 10 from s0->d0, 5 from s1->d0, 15 from s1->d1 => 20 + 20 + 15 = 55.
    let mut lp = LinearProgram::minimize();
    let x00 = lp.add_variable("x00");
    let x01 = lp.add_variable("x01");
    let x10 = lp.add_variable("x10");
    let x11 = lp.add_variable("x11");
    for (v, c) in [(x00, 2.0), (x01, 3.0), (x10, 4.0), (x11, 1.0)] {
        lp.set_objective_coefficient(v, c);
    }
    lp.add_constraint(vec![(x00, 1.0), (x01, 1.0)], Relation::Equal, 10.0);
    lp.add_constraint(vec![(x10, 1.0), (x11, 1.0)], Relation::Equal, 20.0);
    lp.add_constraint(vec![(x00, 1.0), (x10, 1.0)], Relation::Equal, 15.0);
    lp.add_constraint(vec![(x01, 1.0), (x11, 1.0)], Relation::Equal, 15.0);
    let solution = lp.solve().unwrap();
    assert_close(solution.objective_value, 55.0, 1e-7);
    assert_close(solution.value(x00), 10.0, 1e-7);
    assert_close(solution.value(x10), 5.0, 1e-7);
    assert_close(solution.value(x11), 15.0, 1e-7);
}

#[test]
fn probability_simplex_minimisation_picks_cheapest_vertex() {
    // min c'p subject to sum p = 1, p >= 0: the optimum is the smallest cost.
    let costs = [3.0, 1.5, 2.0, 0.25, 4.0];
    let mut lp = LinearProgram::minimize();
    let vars = lp.add_variables("p", costs.len());
    for (v, c) in vars.iter().zip(costs.iter()) {
        lp.set_objective_coefficient(*v, *c);
    }
    lp.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Equal, 1.0);
    let solution = lp.solve().unwrap();
    assert_close(solution.objective_value, 0.25, 1e-9);
    assert_close(solution.value(vars[3]), 1.0, 1e-9);
}

#[test]
fn all_pivot_rules_agree_on_objective() {
    let build = || {
        let mut lp = LinearProgram::minimize();
        let vars = lp.add_variables("x", 6);
        for (i, v) in vars.iter().enumerate() {
            lp.set_objective_coefficient(*v, (i as f64) - 2.5);
        }
        lp.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Equal, 3.0);
        for w in vars.windows(2) {
            lp.add_constraint(vec![(w[0], 1.0), (w[1], -1.0)], Relation::LessEq, 1.0);
            lp.add_constraint(vec![(w[1], 1.0), (w[0], -1.0)], Relation::LessEq, 1.0);
        }
        (lp, vars)
    };
    let mut objectives = Vec::new();
    for rule in [
        PivotRule::Dantzig,
        PivotRule::Bland,
        PivotRule::Hybrid {
            degenerate_threshold: 8,
        },
    ] {
        let (lp, _) = build();
        let options = SolveOptions {
            pivot_rule: rule,
            ..SolveOptions::default()
        };
        objectives.push(lp.solve_with(&options).unwrap().objective_value);
    }
    assert_close(objectives[0], objectives[1], 1e-7);
    assert_close(objectives[1], objectives[2], 1e-7);
}

#[test]
fn bounded_variables_respect_their_box() {
    // max x + y with 1 <= x <= 2, 0 <= y <= 3 and x + y <= 4.
    let mut lp = LinearProgram::maximize();
    let x = lp.add_variable_with_bounds("x", 1.0, 2.0);
    let y = lp.add_variable_with_bounds("y", 0.0, 3.0);
    lp.set_objective_coefficient(x, 1.0);
    lp.set_objective_coefficient(y, 1.0);
    lp.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::LessEq, 4.0);
    let solution = lp.solve().unwrap();
    assert_close(solution.objective_value, 4.0, 1e-9);
    assert!(solution.value(x) >= 1.0 - 1e-9 && solution.value(x) <= 2.0 + 1e-9);
    assert!(solution.value(y) >= -1e-9 && solution.value(y) <= 3.0 + 1e-9);
}

#[test]
fn duplicate_terms_are_summed() {
    // 2x expressed as x + x.
    let mut lp = LinearProgram::minimize();
    let x = lp.add_variable("x");
    lp.set_objective_coefficient(x, 1.0);
    lp.add_constraint(vec![(x, 1.0), (x, 1.0)], Relation::GreaterEq, 6.0);
    let solution = lp.solve().unwrap();
    assert_close(solution.value(x), 3.0, 1e-9);
}

#[test]
fn infeasible_bounds_vs_constraints() {
    let mut lp = LinearProgram::minimize();
    let x = lp.add_variable_with_bounds("x", 0.0, 1.0);
    lp.add_constraint(vec![(x, 1.0)], Relation::GreaterEq, 5.0);
    assert_eq!(lp.solve().unwrap_err(), SimplexError::Infeasible);
}

// ------------------------- property-based tests -------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For the probability-simplex LP `min c'p, sum p = 1, p >= 0` the optimum is
    /// always `min_i c_i`, whatever the costs are.
    #[test]
    fn prop_simplex_vertex_optimum(costs in proptest::collection::vec(0.0f64..100.0, 1..12)) {
        let mut lp = LinearProgram::minimize();
        let vars = lp.add_variables("p", costs.len());
        for (v, c) in vars.iter().zip(costs.iter()) {
            lp.set_objective_coefficient(*v, *c);
        }
        lp.add_constraint(vars.iter().map(|&v| (v, 1.0)), Relation::Equal, 1.0);
        let solution = lp.solve().unwrap();
        let best = costs.iter().cloned().fold(f64::INFINITY, f64::min);
        prop_assert!((solution.objective_value - best).abs() < 1e-7);
        let total: f64 = solution.values.iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-7);
        prop_assert!(solution.values.iter().all(|&v| v >= -1e-9));
    }

    /// Randomly generated `<=` programs with non-negative coefficients and rhs are
    /// always feasible (x = 0) and bounded when costs are non-negative, and the
    /// solver must return a feasible point no worse than the origin.
    #[test]
    fn prop_nonnegative_le_programs_are_solved(
        rows in proptest::collection::vec(
            proptest::collection::vec(0.0f64..5.0, 4),
            1..8,
        ),
        rhs in proptest::collection::vec(0.0f64..10.0, 8),
        costs in proptest::collection::vec(0.0f64..3.0, 4),
    ) {
        let mut lp = LinearProgram::minimize();
        let vars = lp.add_variables("x", 4);
        for (v, c) in vars.iter().zip(costs.iter()) {
            lp.set_objective_coefficient(*v, *c);
        }
        for (i, row) in rows.iter().enumerate() {
            let terms: Vec<_> = vars.iter().zip(row.iter()).map(|(&v, &a)| (v, a)).collect();
            lp.add_constraint(terms, Relation::LessEq, rhs[i.min(rhs.len() - 1)]);
        }
        let solution = lp.solve().unwrap();
        // With non-negative costs the origin is optimal, so the optimum is 0.
        prop_assert!(solution.objective_value.abs() < 1e-7);
        // The returned point must satisfy every constraint.
        for (i, row) in rows.iter().enumerate() {
            let lhs: f64 = row.iter().zip(solution.values.iter()).map(|(a, x)| a * x).sum();
            prop_assert!(lhs <= rhs[i.min(rhs.len() - 1)] + 1e-7);
        }
    }

    /// The solver's optimum for `max c'x, Ax <= b, x >= 0` must match a brute-force
    /// scan over the vertices of a tiny 2-variable polytope (enumerated via pairwise
    /// constraint intersections).
    #[test]
    fn prop_two_variable_max_matches_vertex_enumeration(
        a in proptest::collection::vec((0.1f64..4.0, 0.1f64..4.0, 1.0f64..20.0), 2..5),
        c0 in 0.1f64..5.0,
        c1 in 0.1f64..5.0,
    ) {
        let mut lp = LinearProgram::maximize();
        let x = lp.add_variable("x");
        let y = lp.add_variable("y");
        lp.set_objective_coefficient(x, c0);
        lp.set_objective_coefficient(y, c1);
        for &(ax, ay, b) in &a {
            lp.add_constraint(vec![(x, ax), (y, ay)], Relation::LessEq, b);
        }
        let solution = lp.solve().unwrap();

        // Enumerate candidate vertices: axis intersections and pairwise intersections.
        let feasible = |px: f64, py: f64| {
            px >= -1e-9
                && py >= -1e-9
                && a.iter().all(|&(ax, ay, b)| ax * px + ay * py <= b + 1e-7)
        };
        let mut best = 0.0f64; // origin
        let mut consider = |px: f64, py: f64| {
            if feasible(px, py) {
                best = best.max(c0 * px + c1 * py);
            }
        };
        for &(ax, ay, b) in &a {
            consider(b / ax, 0.0);
            consider(0.0, b / ay);
        }
        for i in 0..a.len() {
            for j in (i + 1)..a.len() {
                let (a1, b1, r1) = a[i];
                let (a2, b2, r2) = a[j];
                let det = a1 * b2 - a2 * b1;
                if det.abs() > 1e-9 {
                    let px = (r1 * b2 - r2 * b1) / det;
                    let py = (a1 * r2 - a2 * r1) / det;
                    consider(px, py);
                }
            }
        }
        prop_assert!((solution.objective_value - best).abs() < 1e-5,
            "simplex {} vs enumeration {}", solution.objective_value, best);
    }
}

//! Property-based tests for the collect pipeline: the matrix-inversion
//! estimator is unbiased in expectation for random invertible mechanisms and
//! random populations, and sharded/merged accumulation is bit-for-bit equal to
//! single-threaded ingestion of the same stream.

use std::sync::Arc;

use cpm_collect::prelude::*;
use cpm_core::prelude::*;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn gm_design(n: usize, alpha: f64) -> DesignedMechanism {
    // The unconstrained L0 design is the Geometric Mechanism — always
    // invertible (unlike the Uniform mechanism), which is what an estimator
    // proptest needs.
    MechanismSpec::new(n, Alpha::new(alpha).unwrap())
        .design()
        .unwrap()
}

/// Draw a random population over `0..=n` (counts summing to `total`) from a
/// seeded multinomial with random cell weights.
fn random_population(n: usize, total: u64, rng: &mut StdRng) -> Vec<u64> {
    let weights: Vec<f64> = (0..=n).map(|_| rng.gen_range(0.05f64..1.0)).collect();
    let weight_sum: f64 = weights.iter().sum();
    let mut counts: Vec<u64> = weights
        .iter()
        .map(|w| (w / weight_sum * total as f64).floor() as u64)
        .collect();
    let assigned: u64 = counts.iter().sum();
    counts[0] += total - assigned;
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Over seeded trials, the mean of `t̂_k` lands within the CI half-width
    /// of the true `t_k`: the estimator is unbiased in expectation.
    #[test]
    fn estimates_are_unbiased_in_expectation(
        n in 4usize..12,
        alpha in 0.3f64..0.9,
        seed in 0u64..1_000,
    ) {
        let design = gm_design(n, alpha);
        let sampler = design.alias_sampler();
        let trials = 8;
        let per_trial: u64 = 40_000;
        let mut rng = StdRng::seed_from_u64(seed);
        let truth = random_population(n, per_trial, &mut rng);
        // Watch the cell with the largest true count (best signal-to-noise).
        let watched = truth
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .map(|(k, _)| k)
            .unwrap();

        let mut estimates_of_watched = Vec::with_capacity(trials);
        let mut variance_of_watched = 0.0;
        for trial in 0..trials {
            let mut draw_rng =
                StdRng::seed_from_u64(seed ^ (0x9E37_79B9 + trial as u64));
            let collector = ReportCollector::new();
            for (input, &count) in truth.iter().enumerate() {
                collector.ingest_batch(
                    &design.key(),
                    (0..count).map(|_| sampler.sample(input, &mut draw_rng)),
                );
            }
            let observed = collector.observed(&design.key()).unwrap();
            prop_assert_eq!(observed.iter().sum::<u64>(), per_trial);
            let freq = estimate_from_design(&design, &observed).unwrap();
            estimates_of_watched.push(freq.estimates[watched]);
            variance_of_watched = freq.variances[watched];
        }

        let mean: f64 = estimates_of_watched.iter().sum::<f64>() / trials as f64;
        // CI for the mean of `trials` independent estimates, with a generous
        // z (≈5σ) so the deterministic seeds stay far from the boundary.
        let half_width = 5.0 * (variance_of_watched / trials as f64).sqrt();
        prop_assert!(
            (mean - truth[watched] as f64).abs() <= half_width.max(1.0),
            "cell {}: mean estimate {} vs truth {} (half-width {})",
            watched, mean, truth[watched], half_width
        );
    }

    /// Partitioning a mixed-key report stream across sub-collectors (ingested
    /// from threads) and merging equals single-threaded ingestion bit-for-bit.
    #[test]
    fn sharded_merge_equals_single_threaded_ingest(
        seed in 0u64..10_000,
        reports_len in 1usize..4_000,
        parts in 2usize..6,
    ) {
        let keys = [
            SpecKey::new(4, Alpha::new(0.5).unwrap(), PropertySet::empty()),
            SpecKey::new(9, Alpha::new(0.9).unwrap(),
                         PropertySet::empty().with(Property::Fairness)),
            SpecKey::new(32, Alpha::new(0.76).unwrap(), PropertySet::empty()),
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        let reports: Vec<Report> = (0..reports_len)
            .map(|_| {
                let key = keys[rng.gen_range(0usize..keys.len())];
                let output = rng.gen_range(0usize..=key.n) as u32;
                Report::new(key, output).unwrap()
            })
            .collect();

        // Reference: one collector, one thread, in stream order.
        let reference = ReportCollector::new();
        reference.ingest_reports(&reports);

        // Sharded: split the stream into `parts` slices, ingest each from its
        // own thread into its own collector, then merge.
        let chunk = reports.len().div_ceil(parts);
        let merged = ReportCollector::with_shards(4);
        let handles: Vec<_> = reports
            .chunks(chunk)
            .map(|slice| {
                let slice = slice.to_vec();
                let sub = Arc::new(ReportCollector::with_shards(2));
                let worker = Arc::clone(&sub);
                let handle = std::thread::spawn(move || worker.ingest_reports(&slice));
                (sub, handle)
            })
            .collect();
        for (sub, handle) in handles {
            handle.join().unwrap();
            merged.merge_from(&sub);
        }

        prop_assert_eq!(merged.keys(), reference.keys());
        for key in reference.keys() {
            prop_assert_eq!(
                merged.observed(&key).unwrap(),
                reference.observed(&key).unwrap()
            );
        }
        prop_assert_eq!(
            merged.stats().ingested,
            reference.stats().ingested
        );
    }
}

//! Lock-striped, per-[`SpecKey`] report accumulators.
//!
//! The collector mirrors the sharding of the serve side's `DesignCache`: keys
//! hash onto a fixed set of mutex-striped shards, and each key owns an
//! [`Arc`]'d block of per-output [`AtomicU64`] counters.  A batch takes its
//! shard lock exactly once (to resolve the key's accumulator), then counts
//! lock-free with relaxed atomic adds — which is what lets a single core
//! ingest millions of reports per second while other threads ingest, merge,
//! or snapshot concurrently.
//!
//! Counters are `u64` and merges saturate, so the accumulator cannot wrap or
//! poison on any input — at 10 M reports/sec a single counter takes ~58,000
//! years to saturate, at which point the estimate is clamped rather than
//! corrupted.
//!
//! Memory is bounded against untrusted report streams on two axes: a key's
//! group size may not exceed [`wire::REPORT_MAX_N`] (capping one counter block
//! at ~512 KiB instead of letting a hostile `n` demand gigabytes), and the
//! collector holds at most `max_keys` distinct accumulators
//! ([`DEFAULT_MAX_KEYS`] unless configured via
//! [`ReportCollector::with_limits`]).  Since α is keyed by raw `f64` bits, a
//! client could otherwise mint an unlimited number of distinct keys and grow
//! the map without bound.  Reports violating either bound are counted as
//! rejected, never allocated for.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use cpm_core::SpecKey;

use crate::wire::{self, Report};

/// Default shard count, matching the design cache's stripe width.
pub const DEFAULT_SHARDS: usize = 16;

/// Default cap on distinct keys holding live accumulators.
///
/// Unlike the design cache, the collector never evicts — evicting would
/// silently drop counts and bias every later estimate — so beyond the cap new
/// keys are *rejected* (their reports count as rejected) rather than displacing
/// old ones.  At the default, worst-case resident memory is
/// `DEFAULT_MAX_KEYS × (REPORT_MAX_N + 1) × 8` bytes only if every key uses the
/// maximal group size; realistic mixes sit orders of magnitude lower.
pub const DEFAULT_MAX_KEYS: usize = 4096;

/// Per-key counter block: one atomic counter per output index `0..=n`.
#[derive(Debug)]
struct KeyAccumulator {
    counts: Vec<AtomicU64>,
}

impl KeyAccumulator {
    fn new(dim: usize) -> Self {
        KeyAccumulator {
            counts: (0..dim).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn snapshot(&self) -> Vec<u64> {
        self.counts
            .iter()
            .map(|c| c.load(Ordering::Relaxed))
            .collect()
    }
}

/// Outcome of one ingest call: how many reports landed and how many were
/// rejected (out-of-range output for their key).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IngestSummary {
    /// Reports counted into an accumulator.
    pub accepted: u64,
    /// Reports dropped for an out-of-range output.
    pub rejected: u64,
}

impl IngestSummary {
    fn absorb(&mut self, other: IngestSummary) {
        self.accepted += other.accepted;
        self.rejected += other.rejected;
    }
}

/// Lifetime totals for a collector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CollectorStats {
    /// Reports accepted since construction.
    pub ingested: u64,
    /// Reports rejected since construction.
    pub rejected: u64,
    /// Ingest calls (batches) served.
    pub batches: u64,
    /// Distinct keys holding live accumulators.
    pub keys: usize,
}

/// The sharded report collector.
///
/// Cheap to construct (empty stripes, no per-key state until the first report
/// for that key arrives) and safe to share behind an [`Arc`] between the
/// serve engine, wire front end, and estimator snapshots.
#[derive(Debug)]
pub struct ReportCollector {
    shards: Vec<Mutex<HashMap<SpecKey, Arc<KeyAccumulator>>>>,
    max_keys: usize,
    key_count: AtomicUsize,
    ingested: AtomicU64,
    rejected: AtomicU64,
    batches: AtomicU64,
}

impl Default for ReportCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl ReportCollector {
    /// A collector with [`DEFAULT_SHARDS`] stripes and [`DEFAULT_MAX_KEYS`].
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS)
    }

    /// A collector with an explicit stripe count (minimum 1) and the default
    /// key cap.
    pub fn with_shards(shards: usize) -> Self {
        Self::with_limits(shards, DEFAULT_MAX_KEYS)
    }

    /// A collector with explicit stripe count and distinct-key cap (both
    /// clamped to a minimum of 1).  Reports for keys beyond the cap are
    /// rejected, never allocated for.
    pub fn with_limits(shards: usize, max_keys: usize) -> Self {
        let shards = shards.max(1);
        ReportCollector {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            max_keys: max_keys.max(1),
            key_count: AtomicUsize::new(0),
            ingested: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            batches: AtomicU64::new(0),
        }
    }

    /// The distinct-key cap this collector enforces.
    pub fn max_keys(&self) -> usize {
        self.max_keys
    }

    fn shard_of(&self, key: &SpecKey) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    /// Resolve (creating on first sight) the counter block for `key`.  One
    /// shard-lock acquisition; the returned handle counts lock-free.
    ///
    /// `None` when the key is inadmissible: its group size exceeds
    /// [`wire::REPORT_MAX_N`] (the counter block would be attacker-sized), or
    /// it is unseen and the collector already holds `max_keys` accumulators.
    fn accumulator(&self, key: &SpecKey) -> Option<Arc<KeyAccumulator>> {
        if key.n == 0 || key.n > wire::REPORT_MAX_N {
            return None;
        }
        let mut shard = self.shards[self.shard_of(key)]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if let Some(existing) = shard.get(key) {
            return Some(Arc::clone(existing));
        }
        // Claim a key slot before allocating; the atomic keeps the cap exact
        // across shards (keys are never removed, so a claimed slot is final).
        if self
            .key_count
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |count| {
                (count < self.max_keys).then_some(count + 1)
            })
            .is_err()
        {
            return None;
        }
        let created = Arc::new(KeyAccumulator::new(key.n + 1));
        shard.insert(*key, Arc::clone(&created));
        drop(shard);
        if cpm_obs::enabled() {
            cpm_obs::gauge!("cpm_collect_keys").add(1);
        }
        Some(created)
    }

    /// Ingest one report.  Returns whether it was accepted.
    pub fn ingest(&self, key: &SpecKey, output: usize) -> bool {
        self.ingest_batch(key, std::iter::once(output)).accepted == 1
    }

    /// Ingest a batch of outputs for a single key — the line-rate path.
    ///
    /// The shard lock is taken once; each report is a single relaxed atomic
    /// add.  Out-of-range outputs — and whole batches for inadmissible keys
    /// (group size beyond [`wire::REPORT_MAX_N`], or a new key past the
    /// `max_keys` cap) — are counted as rejected, never panicked on.
    pub fn ingest_batch(
        &self,
        key: &SpecKey,
        outputs: impl IntoIterator<Item = usize>,
    ) -> IngestSummary {
        let start = cpm_obs::enabled().then(cpm_obs::now_nanos);
        let accumulator = self.accumulator(key);
        let mut summary = IngestSummary::default();
        match accumulator {
            Some(accumulator) => {
                let dim = accumulator.counts.len();
                for output in outputs {
                    if output < dim {
                        accumulator.counts[output].fetch_add(1, Ordering::Relaxed);
                        summary.accepted += 1;
                    } else {
                        summary.rejected += 1;
                    }
                }
            }
            None => summary.rejected = outputs.into_iter().count() as u64,
        }
        self.ingested.fetch_add(summary.accepted, Ordering::Relaxed);
        self.rejected.fetch_add(summary.rejected, Ordering::Relaxed);
        self.batches.fetch_add(1, Ordering::Relaxed);
        if let Some(start) = start {
            cpm_obs::counter!("cpm_collect_reports_total").add(summary.accepted);
            if summary.rejected > 0 {
                cpm_obs::counter!("cpm_collect_rejected_total").add(summary.rejected);
            }
            cpm_obs::counter!("cpm_collect_batches_total").inc();
            cpm_obs::histogram!("cpm_collect_ingest_nanos")
                .record(cpm_obs::now_nanos().saturating_sub(start));
        }
        summary
    }

    /// Ingest decoded wire reports, which may mix keys: consecutive runs of
    /// the same key share one accumulator resolution.
    pub fn ingest_reports(&self, reports: &[Report]) -> IngestSummary {
        let mut summary = IngestSummary::default();
        let mut start = 0;
        while start < reports.len() {
            let key = reports[start].key;
            let mut end = start + 1;
            while end < reports.len() && reports[end].key == key {
                end += 1;
            }
            summary.absorb(
                self.ingest_batch(&key, reports[start..end].iter().map(|r| r.output as usize)),
            );
            start = end;
        }
        summary
    }

    /// The observed output histogram for `key` (`counts[i]` = reports of
    /// output `i`), or `None` if no report for the key ever arrived.
    pub fn observed(&self, key: &SpecKey) -> Option<Vec<u64>> {
        let shard = self.shards[self.shard_of(key)]
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        shard.get(key).map(|acc| acc.snapshot())
    }

    /// Total reports observed for `key`.
    pub fn total(&self, key: &SpecKey) -> u64 {
        self.observed(key)
            .map(|counts| counts.iter().sum())
            .unwrap_or(0)
    }

    /// Every key with a live accumulator, sorted for deterministic snapshots.
    pub fn keys(&self) -> Vec<SpecKey> {
        let mut keys: Vec<SpecKey> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .keys()
                    .copied()
                    .collect::<Vec<_>>()
            })
            .collect();
        keys.sort();
        keys
    }

    /// Number of distinct keys with live accumulators.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|shard| {
                shard
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .len()
            })
            .sum()
    }

    /// Whether no key has reported yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fold another collector's counts into this one, key by key, with
    /// saturating adds (the overflow-safe merge for fan-in topologies where
    /// per-thread or per-process collectors drain into one).
    pub fn merge_from(&self, other: &ReportCollector) {
        for key in other.keys() {
            let Some(counts) = other.observed(&key) else {
                continue;
            };
            let Some(accumulator) = self.accumulator(&key) else {
                // Key inadmissible here (over this collector's key cap): its
                // counts stay behind in `other` rather than vanish silently.
                self.rejected
                    .fetch_add(counts.iter().sum(), Ordering::Relaxed);
                continue;
            };
            let mut accepted = 0u64;
            for (output, &count) in counts.iter().enumerate() {
                if count == 0 || output >= accumulator.counts.len() {
                    continue;
                }
                let slot = &accumulator.counts[output];
                // Saturating compare-exchange loop: never wraps past u64::MAX.
                let mut current = slot.load(Ordering::Relaxed);
                loop {
                    let next = current.saturating_add(count);
                    match slot.compare_exchange_weak(
                        current,
                        next,
                        Ordering::Relaxed,
                        Ordering::Relaxed,
                    ) {
                        Ok(_) => break,
                        Err(seen) => current = seen,
                    }
                }
                accepted = accepted.saturating_add(count);
            }
            self.ingested.fetch_add(accepted, Ordering::Relaxed);
        }
    }

    /// Lifetime totals.
    pub fn stats(&self) -> CollectorStats {
        CollectorStats {
            ingested: self.ingested.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            keys: self.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::{Alpha, PropertySet};

    fn key(n: usize, alpha: f64) -> SpecKey {
        SpecKey::new(n, Alpha::new(alpha).unwrap(), PropertySet::empty())
    }

    #[test]
    fn ingest_counts_land_on_the_right_outputs() {
        let collector = ReportCollector::new();
        let k = key(4, 0.9);
        let summary = collector.ingest_batch(&k, [0, 1, 1, 4, 4, 4]);
        assert_eq!(
            summary,
            IngestSummary {
                accepted: 6,
                rejected: 0
            }
        );
        assert_eq!(collector.observed(&k).unwrap(), vec![1, 2, 0, 0, 3]);
        assert_eq!(collector.total(&k), 6);
        assert!(collector.observed(&key(5, 0.9)).is_none());
    }

    #[test]
    fn out_of_range_outputs_are_rejected_not_panicked() {
        let collector = ReportCollector::new();
        let k = key(2, 0.5);
        let summary = collector.ingest_batch(&k, [0, 3, 99]);
        assert_eq!(
            summary,
            IngestSummary {
                accepted: 1,
                rejected: 2
            }
        );
        let stats = collector.stats();
        assert_eq!((stats.ingested, stats.rejected), (1, 2));
    }

    #[test]
    fn keys_are_isolated_and_sorted() {
        let collector = ReportCollector::with_shards(4);
        let (a, b) = (key(3, 0.5), key(8, 0.9));
        collector.ingest(&b, 7);
        collector.ingest(&a, 1);
        assert_eq!(collector.keys(), {
            let mut expected = vec![a, b];
            expected.sort();
            expected
        });
        assert_eq!(collector.observed(&a).unwrap()[1], 1);
        assert_eq!(collector.observed(&b).unwrap()[7], 1);
        assert_eq!(collector.len(), 2);
    }

    #[test]
    fn concurrent_ingest_loses_nothing() {
        let collector = Arc::new(ReportCollector::new());
        let k = key(8, 0.9);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let collector = Arc::clone(&collector);
                std::thread::spawn(move || {
                    collector.ingest_batch(&k, (0..10_000).map(move |i| (i + t) % 9));
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(collector.total(&k), 80_000);
    }

    #[test]
    fn merge_adds_counts_across_collectors() {
        let a = ReportCollector::new();
        let b = ReportCollector::new();
        let k = key(2, 0.5);
        a.ingest_batch(&k, [0, 1, 1]);
        b.ingest_batch(&k, [1, 2]);
        a.merge_from(&b);
        assert_eq!(a.observed(&k).unwrap(), vec![1, 3, 1]);
    }

    #[test]
    fn merge_saturates_at_u64_max() {
        let k = key(2, 0.5);
        let target = ReportCollector::new();
        target.ingest_batch(&k, [0, 0, 0]);
        let huge = ReportCollector::new();
        huge.accumulator(&k).unwrap().counts[0].store(u64::MAX - 1, Ordering::Relaxed);
        target.merge_from(&huge);
        assert_eq!(
            target.observed(&k).unwrap()[0],
            u64::MAX,
            "clamped, not wrapped"
        );
    }

    #[test]
    fn oversized_group_sizes_never_allocate() {
        let collector = ReportCollector::new();
        // A key claiming n = u32::MAX - 1 would demand a ~34 GB counter block;
        // it must bounce as rejected without touching the shard maps.
        let hostile = key(u32::MAX as usize - 1, 0.9);
        let summary = collector.ingest_batch(&hostile, [0, 1, 2]);
        assert_eq!(
            summary,
            IngestSummary {
                accepted: 0,
                rejected: 3
            }
        );
        assert!(collector.is_empty());
        assert!(collector.observed(&hostile).is_none());
        // The bound is wire::REPORT_MAX_N exactly.
        assert!(collector.ingest(&key(wire::REPORT_MAX_N, 0.9), 0));
        assert!(!collector.ingest(&key(wire::REPORT_MAX_N + 1, 0.9), 0));
    }

    #[test]
    fn key_cap_rejects_new_keys_but_keeps_serving_old_ones() {
        let collector = ReportCollector::with_limits(4, 2);
        assert_eq!(collector.max_keys(), 2);
        let (a, b, c) = (key(2, 0.5), key(3, 0.5), key(4, 0.5));
        assert!(collector.ingest(&a, 0));
        assert!(collector.ingest(&b, 0));
        // Third distinct key is over the cap: rejected, not evicting.
        assert!(!collector.ingest(&c, 0));
        assert_eq!(collector.len(), 2);
        // Existing keys keep accumulating.
        assert!(collector.ingest(&a, 1));
        assert_eq!(collector.observed(&a).unwrap(), vec![1, 1, 0]);
        assert!(collector.observed(&c).is_none());
        let stats = collector.stats();
        assert_eq!((stats.ingested, stats.rejected, stats.keys), (3, 1, 2));
    }

    #[test]
    fn merge_into_capped_collector_counts_overflow_as_rejected() {
        let source = ReportCollector::new();
        let (a, b) = (key(2, 0.5), key(3, 0.5));
        source.ingest_batch(&a, [0, 1]);
        source.ingest_batch(&b, [2, 2, 2]);
        let target = ReportCollector::with_limits(4, 1);
        target.merge_from(&source);
        // Exactly one key fits; the other key's counts are tallied as rejected
        // (and remain intact in the source).
        assert_eq!(target.len(), 1);
        let stats = target.stats();
        assert_eq!(stats.ingested + stats.rejected, 5);
        assert!(stats.rejected > 0);
        assert_eq!(source.total(&a) + source.total(&b), 5);
    }

    #[test]
    fn mixed_key_report_streams_group_runs() {
        use crate::wire::Report;
        let collector = ReportCollector::new();
        let (a, b) = (key(3, 0.5), key(8, 0.9));
        let reports = vec![
            Report::new(a, 0).unwrap(),
            Report::new(a, 1).unwrap(),
            Report::new(b, 8).unwrap(),
            Report::new(a, 1).unwrap(),
        ];
        let summary = collector.ingest_reports(&reports);
        assert_eq!(summary.accepted, 4);
        assert_eq!(collector.observed(&a).unwrap(), vec![1, 2, 0, 0]);
        assert_eq!(collector.observed(&b).unwrap()[8], 1);
    }
}

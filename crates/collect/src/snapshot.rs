//! Periodic estimate snapshots with atomic tmp-rename persistence.
//!
//! Mirrors `cpm_serve::snapshot`'s discipline: a snapshot file is a JSON
//! array, written to a `.tmp` sibling, fsynced, and renamed into place so a
//! concurrent reader (a dashboard, the next process generation) never
//! observes a torn file.  Unlike design snapshots these are *outputs* — a
//! frozen view of what the collector currently believes about each key's
//! input distribution.

use std::io;
use std::path::Path;

use cpm_core::SpecKey;
use serde::{Deserialize, Serialize};

use crate::estimator::FrequencyEstimates;

/// One key's frozen estimate: the collector's belief at snapshot time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EstimateSnapshot {
    /// The mechanism the reports were drawn from.
    pub key: SpecKey,
    /// Reports behind the estimate.
    pub total_reports: u64,
    /// Unbiased per-cell frequency estimates (`0..=n`).
    pub estimates: Vec<f64>,
    /// Plug-in variances, aligned with `estimates`.
    pub variances: Vec<f64>,
}

impl EstimateSnapshot {
    /// Freeze a [`FrequencyEstimates`] under its key.
    pub fn from_estimates(key: SpecKey, estimates: &FrequencyEstimates) -> Self {
        EstimateSnapshot {
            key,
            total_reports: estimates.total_reports,
            estimates: estimates.estimates.clone(),
            variances: estimates.variances.clone(),
        }
    }

    /// Internal-consistency check used on read: both vectors must span the
    /// key's `0..=n` cells.
    fn validate(&self) -> Result<(), String> {
        let dim = self.key.n + 1;
        if self.estimates.len() != dim || self.variances.len() != dim {
            return Err(format!(
                "snapshot for {} carries {} estimates / {} variances, expected {dim}",
                self.key,
                self.estimates.len(),
                self.variances.len()
            ));
        }
        Ok(())
    }
}

/// Write snapshots atomically (`.tmp` sibling + fsync + rename).
pub fn write_file<P: AsRef<Path>>(path: P, snapshots: &[EstimateSnapshot]) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let text = serde_json::to_string(&snapshots.to_vec())
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Read a snapshot file, validating each entry's shape against its key.
pub fn read_file<P: AsRef<Path>>(path: P) -> io::Result<Vec<EstimateSnapshot>> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)?;
    let snapshots: Vec<EstimateSnapshot> = serde_json::from_str(&text).map_err(|e| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("parsing {}: {e}", path.display()),
        )
    })?;
    for snapshot in &snapshots {
        snapshot
            .validate()
            .map_err(|msg| io::Error::new(io::ErrorKind::InvalidData, msg))?;
    }
    Ok(snapshots)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::{Alpha, PropertySet};

    fn snapshot(n: usize) -> EstimateSnapshot {
        EstimateSnapshot {
            key: SpecKey::new(n, Alpha::new(0.9).unwrap(), PropertySet::empty()),
            total_reports: 42,
            estimates: vec![1.5; n + 1],
            variances: vec![0.25; n + 1],
        }
    }

    #[test]
    fn write_then_read_round_trips_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join("cpm_collect_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("estimates.json");
        let snapshots = vec![snapshot(3), snapshot(5)];
        write_file(&path, &snapshots).unwrap();
        assert!(
            !path.with_extension("json.tmp").exists(),
            "the tmp sibling must be renamed away"
        );
        let restored = read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored, snapshots);
    }

    #[test]
    fn malformed_shapes_are_rejected_on_read() {
        let dir = std::env::temp_dir().join("cpm_collect_snapshot_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.json");
        let mut bad = snapshot(3);
        bad.estimates.pop();
        write_file(&path, &[bad]).unwrap();
        let err = read_file(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("expected 4"), "{err}");
    }

    #[test]
    fn from_estimates_freezes_the_current_belief() {
        let estimates = FrequencyEstimates {
            total_reports: 7,
            estimates: vec![1.0, 2.0, 4.0],
            variances: vec![0.1, 0.2, 0.3],
        };
        let key = SpecKey::new(2, Alpha::new(0.5).unwrap(), PropertySet::empty());
        let frozen = EstimateSnapshot::from_estimates(key, &estimates);
        assert_eq!(frozen.total_reports, 7);
        assert_eq!(frozen.estimates, estimates.estimates);
        frozen.validate().unwrap();
    }
}

//! Matrix-inversion frequency estimation over accumulated reports.
//!
//! The repo's mechanism matrices are column-stochastic with
//! `M[i][j] = Pr[output = i | input = j]`, so an observed output histogram `o`
//! over `N` independent reports satisfies `E[o] = M·t` where `t` is the true
//! input histogram.  With `A = M⁻¹` the estimator is simply
//!
//! ```text
//! t̂ = A·o
//! ```
//!
//! which is *unbiased*: `E[t̂] = A·M·t = t`.  (The issue statement writes the
//! solve as `M̂ᵀx = observed`; with this repo's column-stochastic row-major
//! convention no transpose is needed — `M⁻¹` applied to the observed histogram
//! is already the estimator.)
//!
//! Each report is an independent categorical draw, so the estimator's
//! per-coordinate variance has the closed form
//! `Var(t̂_k) = Σ_i A_ki²·E[o_i] − t_k`; the plug-in version replaces the
//! expectations with their observed/estimated values (clamped at zero, since
//! plug-in can go slightly negative at small counts).  Summing over `k` gives
//! the paper's closed-form expected squared error, exposed here as
//! [`expected_rmse`] — the oracle the end-to-end round-trip test checks its
//! empirical RMSE against.

use cpm_core::{CoreError, DesignedMechanism, Mechanism};
use cpm_eval::metrics::{confidence_interval, ConfidenceInterval};

/// Unbiased input-frequency estimates for one mechanism's report stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FrequencyEstimates {
    /// Total reports behind the estimate (`Σ observed`).
    pub total_reports: u64,
    /// `t̂_k` for each input count `k` in `0..=n`.  Individual entries may be
    /// negative (the unbiased estimator is not constrained to the simplex).
    pub estimates: Vec<f64>,
    /// Plug-in variance of each `t̂_k`, clamped at zero.
    pub variances: Vec<f64>,
}

impl FrequencyEstimates {
    /// Number of histogram cells (`n + 1`).
    pub fn len(&self) -> usize {
        self.estimates.len()
    }

    /// Whether the estimate is empty (never true for a designed mechanism).
    pub fn is_empty(&self) -> bool {
        self.estimates.is_empty()
    }

    /// Normal-approximation confidence interval for cell `k` at `level`.
    pub fn confidence_interval(&self, k: usize, level: f64) -> ConfidenceInterval {
        confidence_interval(self.estimates[k], self.variances[k], level)
    }

    /// The estimates clamped to `[0, ∞)` and rounded to integer counts — the
    /// form `cpm_eval`'s empirical metrics score against a true histogram.
    pub fn rounded_counts(&self) -> Vec<usize> {
        self.estimates
            .iter()
            .map(|&e| e.max(0.0).round() as usize)
            .collect()
    }

    /// Empirical root-mean-square error against a known true histogram
    /// (test/benchmark oracle; real deployments have no truth to compare to).
    pub fn rmse_against(&self, truth: &[f64]) -> f64 {
        assert_eq!(truth.len(), self.estimates.len());
        let sum_squares: f64 = self
            .estimates
            .iter()
            .zip(truth)
            .map(|(&e, &t)| (e - t) * (e - t))
            .sum();
        (sum_squares / truth.len() as f64).sqrt()
    }
}

/// Estimate input frequencies from a raw inverse matrix (row-major
/// `dim × dim`) and an observed output histogram of length `dim`.
pub fn estimate_with_inverse(inverse: &[f64], observed: &[u64]) -> FrequencyEstimates {
    let dim = observed.len();
    assert_eq!(
        inverse.len(),
        dim * dim,
        "inverse must be dim x dim for the observed histogram"
    );
    let start = cpm_obs::enabled().then(cpm_obs::now_nanos);
    let observed_f: Vec<f64> = observed.iter().map(|&c| c as f64).collect();
    let total_reports: u64 = observed.iter().fold(0u64, |acc, &c| acc.saturating_add(c));
    let mut estimates = vec![0.0; dim];
    let mut variances = vec![0.0; dim];
    for k in 0..dim {
        let row = &inverse[k * dim..(k + 1) * dim];
        let mut est = 0.0;
        let mut second_moment = 0.0;
        for i in 0..dim {
            est += row[i] * observed_f[i];
            second_moment += row[i] * row[i] * observed_f[i];
        }
        estimates[k] = est;
        variances[k] = (second_moment - est).max(0.0);
    }
    if let Some(start) = start {
        cpm_obs::counter!("cpm_collect_estimates_total").inc();
        cpm_obs::histogram!("cpm_collect_estimate_nanos")
            .record(cpm_obs::now_nanos().saturating_sub(start));
    }
    FrequencyEstimates {
        total_reports,
        estimates,
        variances,
    }
}

/// Estimate input frequencies for a designed mechanism, using its cached
/// inverse.  Fails for singular designs (the Uniform mechanism).
pub fn estimate_from_design(
    design: &DesignedMechanism,
    observed: &[u64],
) -> Result<FrequencyEstimates, CoreError> {
    let dim = design.mechanism().dim();
    if observed.len() != dim {
        return Err(CoreError::DimensionMismatch {
            entries: observed.len(),
            expected: dim,
        });
    }
    Ok(estimate_with_inverse(design.inverse()?, observed))
}

/// Estimate input frequencies for a raw mechanism (factors the inverse on
/// every call; prefer [`estimate_from_design`] for repeated estimates).
pub fn estimate(mechanism: &Mechanism, observed: &[u64]) -> Result<FrequencyEstimates, CoreError> {
    let dim = mechanism.dim();
    if observed.len() != dim {
        return Err(CoreError::DimensionMismatch {
            entries: observed.len(),
            expected: dim,
        });
    }
    Ok(estimate_with_inverse(&mechanism.inverse()?, observed))
}

/// The closed-form expected root-mean-square error of the estimator on a true
/// input histogram `truth` (counts, summing to the population size `N`):
///
/// ```text
/// E[Σ_k (t̂_k − t_k)²] = Σ_i (Σ_k A_ki²)·E[o_i] − N,   E[o] = M·t
/// ```
///
/// divided by the cell count and square-rooted.  This is the paper's error
/// bound specialised to the deployed design; the end-to-end test asserts the
/// empirical RMSE lands within 2× of it.
pub fn expected_rmse(mechanism: &Mechanism, truth: &[f64]) -> Result<f64, CoreError> {
    let dim = mechanism.dim();
    if truth.len() != dim {
        return Err(CoreError::DimensionMismatch {
            entries: truth.len(),
            expected: dim,
        });
    }
    let inverse = mechanism.inverse()?;
    let population: f64 = truth.iter().sum();
    let mut expected_sse = -population;
    for i in 0..dim {
        // E[o_i] = Σ_j M_ij t_j.
        let expected_observed: f64 = (0..dim).map(|j| mechanism.prob(i, j) * truth[j]).sum();
        let column_norm: f64 = (0..dim)
            .map(|k| {
                let a = inverse[k * dim + i];
                a * a
            })
            .sum();
        expected_sse += column_norm * expected_observed;
    }
    Ok((expected_sse.max(0.0) / dim as f64).sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::prelude::*;

    fn gm_design(n: usize, alpha: f64) -> DesignedMechanism {
        MechanismSpec::new(n, Alpha::new(alpha).unwrap())
            .design()
            .unwrap()
    }

    #[test]
    fn exact_expected_histogram_recovers_the_truth_exactly() {
        // Feed the estimator o = M·t (the noiseless expectation, scaled to
        // integers): t̂ must equal t to solver precision.
        let design = gm_design(6, 0.5);
        let m = design.mechanism();
        let dim = m.dim();
        let truth: Vec<f64> = (0..dim).map(|k| (1000 * (k + 1)) as f64).collect();
        // Build integer-valued o by scaling: use a large multiple so rounding
        // is negligible.
        let observed: Vec<u64> = (0..dim)
            .map(|i| {
                let expected: f64 = (0..dim).map(|j| m.prob(i, j) * truth[j] * 1e6).sum();
                expected.round() as u64
            })
            .collect();
        let estimates = estimate_from_design(&design, &observed).unwrap();
        for (k, &t) in truth.iter().enumerate() {
            let scaled = estimates.estimates[k] / 1e6;
            assert!((scaled - t).abs() < 1.0, "cell {k}: {scaled} vs {t}");
        }
    }

    #[test]
    fn estimates_sum_to_the_report_total() {
        // Every column of M⁻¹ sums to 1 (M is column-stochastic), so Σt̂ = Σo.
        let design = gm_design(8, 0.9);
        let observed: Vec<u64> = (0..design.mechanism().dim())
            .map(|i| (i as u64 + 1) * 37)
            .collect();
        let total: u64 = observed.iter().sum();
        let estimates = estimate_from_design(&design, &observed).unwrap();
        assert_eq!(estimates.total_reports, total);
        let sum: f64 = estimates.estimates.iter().sum();
        assert!(
            (sum - total as f64).abs() < 1e-6 * total as f64,
            "{sum} vs {total}"
        );
    }

    #[test]
    fn uniform_mechanism_reports_singular() {
        // The Uniform mechanism's identical columns carry nothing to invert.
        let um = UniformMechanism::new(4).unwrap();
        let observed = vec![5u64; 5];
        let err = estimate(um.matrix(), &observed).unwrap_err();
        assert!(matches!(err, CoreError::SingularMatrix { .. }), "{err}");
    }

    #[test]
    fn cached_inverse_is_reused_and_errs_are_cached_too() {
        let design = gm_design(5, 0.7);
        let first = design.inverse().unwrap().as_ptr();
        let second = design.inverse().unwrap().as_ptr();
        assert_eq!(first, second, "the inverse must be factored once");
    }

    #[test]
    fn dimension_mismatches_are_reported() {
        let design = gm_design(4, 0.5);
        let err = estimate_from_design(&design, &[1, 2, 3]).unwrap_err();
        assert!(matches!(err, CoreError::DimensionMismatch { .. }));
        let err = expected_rmse(design.mechanism(), &[1.0]).unwrap_err();
        assert!(matches!(err, CoreError::DimensionMismatch { .. }));
    }

    #[test]
    fn plug_in_variance_tracks_the_closed_form() {
        // With o set to its expectation, the plug-in per-cell variances summed
        // and normalised must reproduce expected_rmse almost exactly.
        let design = gm_design(6, 0.8);
        let m = design.mechanism();
        let dim = m.dim();
        let truth: Vec<f64> = vec![10_000.0; dim];
        let observed: Vec<u64> = (0..dim)
            .map(|i| {
                (0..dim)
                    .map(|j| m.prob(i, j) * truth[j])
                    .sum::<f64>()
                    .round() as u64
            })
            .collect();
        let estimates = estimate_from_design(&design, &observed).unwrap();
        let plug_in_rmse = (estimates.variances.iter().sum::<f64>() / dim as f64).sqrt();
        let oracle = expected_rmse(m, &truth).unwrap();
        assert!(
            (plug_in_rmse - oracle).abs() < 0.05 * oracle.max(1.0),
            "plug-in {plug_in_rmse} vs closed form {oracle}"
        );
    }

    #[test]
    fn confidence_intervals_wrap_the_eval_helpers() {
        let design = gm_design(4, 0.9);
        let observed = vec![100u64; 5];
        let estimates = estimate_from_design(&design, &observed).unwrap();
        let ci = estimates.confidence_interval(2, 0.95);
        assert_eq!(ci.level, 0.95);
        assert!(ci.half_width > 0.0);
        assert!(ci.contains(estimates.estimates[2]));
    }
}

//! # cpm-collect — report collection and frequency estimation
//!
//! The consuming half of the local-differential-privacy loop.  `cpm-serve`
//! designs mechanisms and privatizes draws; this crate ingests the resulting
//! *reports* — (mechanism key, privatized output) pairs, never true inputs —
//! and inverts the designed mechanism matrix to recover unbiased estimates of
//! the true input-frequency histogram, with plug-in variances and confidence
//! intervals (the paper's Section V error machinery promoted from offline
//! evaluation to an online estimator).
//!
//! ```text
//!  clients                    collector
//!  ───────                    ─────────
//!  draw ~ M(·|input) ──report──▶ wire::decode_batch      (b"CPMR" frames)
//!                                   │
//!                                   ▼
//!                              ReportCollector            (lock-striped,
//!                                   │ observed()           atomic counters)
//!                                   ▼
//!                              estimator::estimate_from_design
//!                                   │ t̂ = M⁻¹·o, Var̂, CIs
//!                                   ▼
//!                              snapshot::write_file        (atomic tmp-rename)
//! ```
//!
//! * [`wire`] — the fixed-size binary report format (20-byte records under a
//!   versioned batch header) that rides the serve front end's length-prefixed
//!   framing; every field validated on decode.
//! * [`accumulator`] — [`ReportCollector`]: per-key output histograms sharded
//!   like the design cache, one shard-lock acquisition per batch and one
//!   relaxed atomic add per report, with saturating cross-collector merge.
//! * [`estimator`] — the matrix-inversion estimator over a
//!   [`DesignedMechanism`](cpm_core::DesignedMechanism)'s cached inverse,
//!   plus the closed-form [`expected_rmse`] oracle the end-to-end tests
//!   assert against.
//! * [`snapshot`] — periodic [`EstimateSnapshot`] persistence with the same
//!   atomic tmp-rename discipline as `cpm_serve::snapshot`.
//!
//! The serve front end exposes the pipeline over the wire as binary report
//! frames plus JSON `{"op":"report"}` / `{"op":"estimate"}` — see
//! `cpm_serve::frontend` for the grammar.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accumulator;
pub mod estimator;
pub mod snapshot;
pub mod wire;

pub use accumulator::{
    CollectorStats, IngestSummary, ReportCollector, DEFAULT_MAX_KEYS, DEFAULT_SHARDS,
};
pub use estimator::{
    estimate, estimate_from_design, estimate_with_inverse, expected_rmse, FrequencyEstimates,
};
pub use snapshot::EstimateSnapshot;
pub use wire::{Report, WireError, REPORT_MAGIC, REPORT_MAX_N, WIRE_VERSION};

/// Commonly used items, re-exported for `use cpm_collect::prelude::*`.
pub mod prelude {
    pub use crate::accumulator::{CollectorStats, IngestSummary, ReportCollector};
    pub use crate::estimator::{
        estimate, estimate_from_design, estimate_with_inverse, expected_rmse, FrequencyEstimates,
    };
    pub use crate::snapshot::EstimateSnapshot;
    pub use crate::wire::{self, Report, WireError};
}

//! The fixed-size binary report wire format.
//!
//! A *report* is the whole client→collector payload of local differential
//! privacy: the mechanism the client drew from (its bit-exact [`SpecKey`]) and
//! the privatized output index — never the true input.  Reports travel in
//! *batch frames* that ride the serve front end's existing 4-byte
//! length-prefixed framing; the first bytes of the payload distinguish a
//! binary report frame from a JSON request (JSON can never start with
//! [`REPORT_MAGIC`]).
//!
//! ## Frame layout (all integers little-endian)
//!
//! ```text
//! header (12 bytes)                 records (20 bytes each)
//! +-------+---------+------+-------+ +-----+------------+-------+-----+-----+--------+
//! | magic | version | rsvd | count | |  n  | alpha bits | props | obj |  d  | output |
//! | 4B    | u16     | u16  | u32   | | u32 | u64        | u8    | u8  | u16 | u32    |
//! +-------+---------+------+-------+ +-----+------------+-------+-----+-----+--------+
//! ```
//!
//! * `magic` — [`REPORT_MAGIC`] (`b"CPMR"`).
//! * `version` — [`WIRE_VERSION`]; decoding accepts exactly this version and
//!   rejects everything else (no cross-version compatibility window).
//! * `count` — number of records; the frame length must match exactly.
//! * `alpha bits` — the IEEE-754 bits of α, bit-exact with [`AlphaKey`] so a
//!   decoded report lands on the same cache/accumulator key that designed it.
//! * `props` — [`PropertySet::bits`] (values ≥ 128 are invalid).
//! * `obj`/`d` — objective tag (`0=L0, 1=L1, 2=L2, 3=L0,d`) and the `L0,d`
//!   threshold (must be 0 unless the tag is `3`).
//! * `output` — the reported output index in `0..=n`.
//!
//! Every field is validated on decode: a hostile or corrupt frame yields a
//! [`WireError`], never a panic or a poisoned accumulator.  In particular the
//! group size is bounded by [`REPORT_MAX_N`] — the accumulator allocates
//! `n + 1` counters per key, so an unbounded `n` straight off the wire would
//! let one 20-byte record demand gigabytes.

use std::fmt;

use cpm_core::SpecKey;
use cpm_wire::{put_spec_key, take_spec_key, KeyError, Reader, SpecKeyError, Wire};

/// Leading bytes of a binary report frame.
pub const REPORT_MAGIC: [u8; 4] = *b"CPMR";

/// Current frame version; bump on any layout change.
pub const WIRE_VERSION: u16 = 1;

/// Largest group size accepted from the wire (and by the accumulator).
///
/// The design side solves an `O(n²)` LP per mechanism, so group sizes far
/// below this are already impractical to *serve*; the bound exists so that an
/// untrusted report cannot make the collector allocate `n + 1` counters for an
/// arbitrary `n` (at the cap, one key's counter block is ~512 KiB, not the
/// ~34 GB a hostile `n = u32::MAX` record would otherwise demand).  The value
/// is the workspace-wide [`cpm_wire::MAX_GROUP_SIZE`], enforced inside the
/// shared [`SpecKey`] codec, so the `CPMR` and `CPMF` formats agree on it by
/// construction.
pub const REPORT_MAX_N: usize = cpm_wire::MAX_GROUP_SIZE;

/// Bytes in the batch-frame header.
pub const HEADER_LEN: usize = 12;

/// Bytes per report record: the shared [`cpm_wire::SPEC_KEY_LEN`]-byte key
/// codec plus the `u32` output.
pub const RECORD_LEN: usize = cpm_wire::SPEC_KEY_LEN + 4;

/// One privatized report: which designed mechanism produced it and the output
/// index the client drew.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// The mechanism the client was served.
    pub key: SpecKey,
    /// The privatized output index, in `0..=key.n`.
    pub output: u32,
}

impl Report {
    /// Build a report, checking the output range.
    pub fn new(key: SpecKey, output: u32) -> Result<Self, WireError> {
        if output as usize > key.n {
            return Err(WireError::OutputOutOfRange { output, n: key.n });
        }
        Ok(Report { key, output })
    }
}

/// Decoding/encoding failures for binary report frames.
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// The payload does not start with [`REPORT_MAGIC`].
    BadMagic,
    /// The frame's version is not the exact [`WIRE_VERSION`] this decoder
    /// speaks (older and newer frames are both refused).
    UnsupportedVersion(u16),
    /// The payload length does not match `HEADER_LEN + count * RECORD_LEN`.
    LengthMismatch {
        /// Declared record count.
        count: u32,
        /// Actual payload length in bytes.
        len: usize,
    },
    /// A record's α bits decode to a value outside `(0, 1]`.
    InvalidAlpha(f64),
    /// A record's property bitmask has undefined bits set.
    InvalidProperties(u8),
    /// A record's objective tag is unknown, or `d` is inconsistent with it.
    InvalidObjective {
        /// The objective tag byte.
        tag: u8,
        /// The accompanying distance field.
        d: u16,
    },
    /// A record's group size is zero or exceeds [`REPORT_MAX_N`].
    InvalidGroupSize,
    /// A batch holds more records than the `u32` count field can declare.
    BatchTooLarge(usize),
    /// The `L0,d` threshold exceeds the group size.
    DistanceTooLarge {
        /// The threshold.
        d: usize,
        /// The group size.
        n: usize,
    },
    /// A reported output exceeds the key's group size.
    OutputOutOfRange {
        /// The reported output.
        output: u32,
        /// The group size.
        n: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::BadMagic => write!(f, "payload does not start with the CPMR report magic"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported report frame version {v} (decoder speaks {WIRE_VERSION})"
                )
            }
            WireError::LengthMismatch { count, len } => write!(
                f,
                "frame declares {count} records but carries {len} bytes \
                 (expected {})",
                HEADER_LEN + *count as usize * RECORD_LEN
            ),
            WireError::InvalidAlpha(value) => {
                write!(f, "report alpha {value} is outside (0, 1]")
            }
            WireError::InvalidProperties(bits) => {
                write!(f, "report property bitmask {bits:#04x} has undefined bits")
            }
            WireError::InvalidObjective { tag, d } => {
                write!(f, "report objective tag {tag} with d = {d} is invalid")
            }
            WireError::InvalidGroupSize => {
                write!(f, "report group size n must be in 1..={REPORT_MAX_N}")
            }
            WireError::BatchTooLarge(len) => {
                write!(
                    f,
                    "batch of {len} reports exceeds the u32 record-count field"
                )
            }
            WireError::DistanceTooLarge { d, n } => {
                write!(f, "report L0,d threshold {d} exceeds group size {n}")
            }
            WireError::OutputOutOfRange { output, n } => {
                write!(f, "report output {output} exceeds group size {n}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Whether a frame payload looks like a binary report frame (magic match).
pub fn is_report_frame(payload: &[u8]) -> bool {
    payload.len() >= REPORT_MAGIC.len() && payload[..REPORT_MAGIC.len()] == REPORT_MAGIC
}

/// Translate a shared-codec key failure into this format's error surface.
fn key_error(error: KeyError) -> WireError {
    match error {
        KeyError::InvalidAlpha(value) => WireError::InvalidAlpha(value),
        KeyError::InvalidProperties(bits) => WireError::InvalidProperties(bits),
        KeyError::InvalidObjective { tag, d } => WireError::InvalidObjective { tag, d },
        KeyError::InvalidGroupSize => WireError::InvalidGroupSize,
        KeyError::DistanceTooLarge { d, n } => WireError::DistanceTooLarge { d, n },
    }
}

/// Append one record's 20 bytes to `out`: the shared [`SpecKey`] codec
/// ([`cpm_wire::put_spec_key`]) followed by the `u32` output.
///
/// Fails when the key cannot be represented or would be refused on decode:
/// `n` outside `1..=`[`REPORT_MAX_N`], or an `L0,d` threshold beyond `u16`
/// (both far outside any designable mechanism).
pub fn encode_record(report: &Report, out: &mut Vec<u8>) -> Result<(), WireError> {
    put_spec_key(&report.key, out).map_err(key_error)?;
    report.output.put(out);
    Ok(())
}

/// Decode one 20-byte record, validating every field.
pub fn decode_record(bytes: &[u8]) -> Result<Report, WireError> {
    assert_eq!(bytes.len(), RECORD_LEN, "record slice must be RECORD_LEN");
    let mut reader = Reader::new(bytes);
    let key = take_spec_key(&mut reader).map_err(|error| match error {
        SpecKeyError::Key(error) => key_error(error),
        // The slice is exactly RECORD_LEN, so the 16-byte key cannot truncate.
        SpecKeyError::Decode(_) => unreachable!("RECORD_LEN slice cannot truncate a key"),
    })?;
    let output = u32::take(&mut reader).expect("RECORD_LEN slice carries the output");
    Report::new(key, output)
}

/// Encode a batch of reports as one frame payload (header + records), ready to
/// hand to the length-prefixed framer.
pub fn encode_batch(reports: &[Report]) -> Result<Vec<u8>, WireError> {
    if reports.len() > u32::MAX as usize {
        return Err(WireError::BatchTooLarge(reports.len()));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + reports.len() * RECORD_LEN);
    out.extend_from_slice(&REPORT_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&(reports.len() as u32).to_le_bytes());
    for report in reports {
        encode_record(report, &mut out)?;
    }
    Ok(out)
}

/// Decode a frame payload into its reports, validating the header and every
/// record.
pub fn decode_batch(payload: &[u8]) -> Result<Vec<Report>, WireError> {
    if !is_report_frame(payload) {
        return Err(WireError::BadMagic);
    }
    if payload.len() < HEADER_LEN {
        return Err(WireError::LengthMismatch {
            count: 0,
            len: payload.len(),
        });
    }
    let version = u16::from_le_bytes(payload[4..6].try_into().unwrap());
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion(version));
    }
    let count = u32::from_le_bytes(payload[8..12].try_into().unwrap());
    let expected = HEADER_LEN + count as usize * RECORD_LEN;
    if payload.len() != expected {
        return Err(WireError::LengthMismatch {
            count,
            len: payload.len(),
        });
    }
    let mut reports = Vec::with_capacity(count as usize);
    for chunk in payload[HEADER_LEN..].chunks_exact(RECORD_LEN) {
        reports.push(decode_record(chunk)?);
    }
    Ok(reports)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::{Alpha, ObjectiveKey, Property, PropertySet};

    fn key(n: usize, alpha: f64) -> SpecKey {
        SpecKey::new(n, Alpha::new(alpha).unwrap(), PropertySet::empty())
    }

    fn keyed(n: usize, alpha: f64, objective: ObjectiveKey) -> SpecKey {
        SpecKey::with_objective(
            n,
            Alpha::new(alpha).unwrap(),
            PropertySet::empty(),
            objective,
        )
    }

    #[test]
    fn batch_round_trips_every_objective_and_property_mix() {
        let keys = [
            key(8, 0.9),
            keyed(32, 0.5, ObjectiveKey::L1),
            keyed(4, 0.76, ObjectiveKey::L2),
            keyed(16, 0.3, ObjectiveKey::L0Beyond(2)),
            SpecKey::new(
                6,
                Alpha::new(0.65).unwrap(),
                PropertySet::empty()
                    .with(Property::Fairness)
                    .with(Property::WeakHonesty),
            ),
        ];
        let reports: Vec<Report> = keys
            .iter()
            .enumerate()
            .map(|(i, &k)| Report::new(k, i as u32).unwrap())
            .collect();
        let payload = encode_batch(&reports).unwrap();
        assert!(is_report_frame(&payload));
        assert_eq!(payload.len(), HEADER_LEN + reports.len() * RECORD_LEN);
        let decoded = decode_batch(&payload).unwrap();
        assert_eq!(decoded, reports);
    }

    #[test]
    fn alpha_bits_survive_bit_exactly() {
        // 0.1 has no exact binary representation; the key must still match.
        let k = key(5, 0.1);
        let payload = encode_batch(&[Report::new(k, 3).unwrap()]).unwrap();
        let decoded = decode_batch(&payload).unwrap();
        assert_eq!(decoded[0].key, k);
        assert_eq!(decoded[0].key.alpha.bits(), k.alpha.bits());
    }

    #[test]
    fn hostile_frames_are_rejected_not_panicked() {
        assert_eq!(decode_batch(b"not a frame"), Err(WireError::BadMagic));
        assert_eq!(decode_batch(b""), Err(WireError::BadMagic));
        // Magic present but the header itself is truncated.
        let good = encode_batch(&[Report::new(key(8, 0.9), 1).unwrap()]).unwrap();
        assert!(matches!(
            decode_batch(&good[..HEADER_LEN - 2]),
            Err(WireError::LengthMismatch { count: 0, .. })
        ));
    }

    #[test]
    fn truncated_and_overlong_frames_are_length_mismatches() {
        let good = encode_batch(&[Report::new(key(8, 0.9), 1).unwrap()]).unwrap();
        let truncated = &good[..good.len() - 1];
        assert!(matches!(
            decode_batch(truncated),
            Err(WireError::LengthMismatch { .. })
        ));
        let mut overlong = good.clone();
        overlong.push(0);
        assert!(matches!(
            decode_batch(&overlong),
            Err(WireError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn non_current_versions_are_refused() {
        // Only the exact WIRE_VERSION is accepted: newer...
        let mut payload = encode_batch(&[Report::new(key(8, 0.9), 1).unwrap()]).unwrap();
        payload[4..6].copy_from_slice(&2u16.to_le_bytes());
        assert_eq!(
            decode_batch(&payload),
            Err(WireError::UnsupportedVersion(2))
        );
        // ...and older frames alike.
        payload[4..6].copy_from_slice(&0u16.to_le_bytes());
        assert_eq!(
            decode_batch(&payload),
            Err(WireError::UnsupportedVersion(0))
        );
    }

    #[test]
    fn oversized_group_sizes_are_refused_without_allocating() {
        // A single well-formed record claiming n = u32::MAX - 1 must bounce at
        // validation, not reach an accumulator that would allocate ~34 GB.
        let mut payload = encode_batch(&[Report::new(key(8, 0.9), 0).unwrap()]).unwrap();
        payload[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&(u32::MAX - 1).to_le_bytes());
        assert_eq!(decode_batch(&payload), Err(WireError::InvalidGroupSize));
        // The bound is exact: REPORT_MAX_N passes, REPORT_MAX_N + 1 does not.
        payload[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&(REPORT_MAX_N as u32).to_le_bytes());
        assert!(decode_batch(&payload).is_ok());
        payload[HEADER_LEN..HEADER_LEN + 4]
            .copy_from_slice(&(REPORT_MAX_N as u32 + 1).to_le_bytes());
        assert_eq!(decode_batch(&payload), Err(WireError::InvalidGroupSize));
        // Encoding refuses the same keys decoding would.
        let huge = Report {
            key: key(REPORT_MAX_N + 1, 0.9),
            output: 0,
        };
        assert_eq!(
            encode_record(&huge, &mut Vec::new()),
            Err(WireError::InvalidGroupSize)
        );
    }

    #[test]
    fn corrupt_records_name_the_bad_field() {
        let base = Report::new(key(8, 0.9), 1).unwrap();
        // α out of range.
        let mut payload = encode_batch(&[base]).unwrap();
        payload[HEADER_LEN + 4..HEADER_LEN + 12].copy_from_slice(&2.0f64.to_bits().to_le_bytes());
        assert!(matches!(
            decode_batch(&payload),
            Err(WireError::InvalidAlpha(v)) if v == 2.0
        ));
        // Undefined property bit.
        let mut payload = encode_batch(&[base]).unwrap();
        payload[HEADER_LEN + 12] = 0x80;
        assert_eq!(
            decode_batch(&payload),
            Err(WireError::InvalidProperties(0x80))
        );
        // Unknown objective tag.
        let mut payload = encode_batch(&[base]).unwrap();
        payload[HEADER_LEN + 13] = 9;
        assert!(matches!(
            decode_batch(&payload),
            Err(WireError::InvalidObjective { tag: 9, .. })
        ));
        // Non-zero d on a non-L0,d objective.
        let mut payload = encode_batch(&[base]).unwrap();
        payload[HEADER_LEN + 14] = 1;
        assert!(matches!(
            decode_batch(&payload),
            Err(WireError::InvalidObjective { tag: 0, d: 1 })
        ));
        // Output beyond n.
        let mut payload = encode_batch(&[base]).unwrap();
        payload[HEADER_LEN + 16..HEADER_LEN + 20].copy_from_slice(&9u32.to_le_bytes());
        assert_eq!(
            decode_batch(&payload),
            Err(WireError::OutputOutOfRange { output: 9, n: 8 })
        );
        // Zero group size.
        let mut payload = encode_batch(&[base]).unwrap();
        payload[HEADER_LEN..HEADER_LEN + 4].copy_from_slice(&0u32.to_le_bytes());
        assert_eq!(decode_batch(&payload), Err(WireError::InvalidGroupSize));
    }

    #[test]
    fn report_new_checks_the_output_range() {
        assert!(Report::new(key(4, 0.5), 4).is_ok());
        assert_eq!(
            Report::new(key(4, 0.5), 5),
            Err(WireError::OutputOutOfRange { output: 5, n: 4 })
        );
    }
}

//! The socket front end under concurrency: one engine, one TCP listener, N
//! client threads hammering the same protocol — every client gets correct
//! responses, the shared cache designs each key exactly once, and the server
//! shuts down cleanly with accurate totals.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;

use cpm_serve::frontend::{read_frame, write_frame, WireResponse};
use cpm_serve::prelude::*;

fn roundtrip<S: Read + Write>(stream: &mut S, request: &str) -> WireResponse {
    write_frame(stream, request.as_bytes()).unwrap();
    let payload = read_frame(stream).unwrap().expect("a response frame");
    serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap()
}

#[test]
fn concurrent_tcp_clients_share_one_engine_and_one_design_per_key() {
    let clients = 6;
    let engine = Arc::new(Engine::with_defaults());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = Server::tcp(Arc::clone(&engine), listener).unwrap();
    let addr = server.local_addr().unwrap();

    std::thread::scope(|scope| {
        for t in 0..clients {
            scope.spawn(move || {
                let mut stream = TcpStream::connect(addr).unwrap();
                // Every client asks for the same LP key (WM at n = 6) and a
                // client-specific GM key.
                let wm = roundtrip(
                    &mut stream,
                    r#"{"op": "privatize", "n": 6, "alpha": 0.9, "properties": "CM",
                        "inputs": [0, 3, 6]}"#,
                );
                assert!(wm.ok, "client {t}: {}", wm.error);
                assert_eq!(wm.outputs.len(), 3);
                assert!(wm.outputs.iter().all(|&o| o <= 6));

                let gm = roundtrip(
                    &mut stream,
                    &format!(
                        r#"{{"op": "privatize", "n": {}, "alpha": 0.5, "inputs": [1, 2]}}"#,
                        4 + t
                    ),
                );
                assert!(gm.ok, "client {t}: {}", gm.error);
                assert_eq!(gm.outputs.len(), 2);

                roundtrip(&mut stream, r#"{"op": "shutdown"}"#);
            });
        }
    });

    let summary = server.stop();
    assert_eq!(summary.connections, clients as u64);
    assert_eq!(summary.frames, clients as u64 * 3);
    assert_eq!(summary.draws, clients as u64 * 5);

    // Single flight held across connections: the WM key was designed once (the
    // only LP), and each distinct GM key once.
    let stats = engine.cache_stats();
    assert_eq!(stats.lp_solves, 1, "stats: {stats:?}");
    assert_eq!(stats.design_solves, 1 + clients as u64);
}

#[test]
fn stop_returns_even_with_an_idle_connection_open() {
    // A client that connects and then goes silent must not block shutdown: the
    // drain closes its socket, unblocking the connection thread's read.
    let engine = Arc::new(Engine::with_defaults());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = Server::tcp(Arc::clone(&engine), listener).unwrap();
    let addr = server.local_addr().unwrap();

    let mut idle = TcpStream::connect(addr).unwrap();
    // One stats roundtrip proves the server accepted the connection and its
    // thread is live; then the client goes silent with the stream open.
    let response = roundtrip(&mut idle, r#"{"op": "stats"}"#);
    assert!(response.ok);

    let (sender, receiver) = std::sync::mpsc::channel();
    let stopper = std::thread::spawn(move || {
        let summary = server.stop();
        sender.send(summary).unwrap();
    });
    let summary = receiver
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("stop() must not hang on an idle connection");
    stopper.join().unwrap();
    assert_eq!(summary.connections, 1, "the idle connection closed cleanly");
    assert_eq!(summary.frames, 1, "just the synchronising stats frame");
    drop(idle);
}

#[test]
fn the_listener_outlives_individual_connection_shutdowns() {
    let engine = Arc::new(Engine::with_defaults());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = Server::tcp(Arc::clone(&engine), listener).unwrap();
    let addr = server.local_addr().unwrap();

    // A client sends shutdown: its connection closes, the listener stays up.
    let mut first = TcpStream::connect(addr).unwrap();
    roundtrip(&mut first, r#"{"op": "shutdown"}"#);
    drop(first);

    // A second client connects fine afterwards.
    let mut second = TcpStream::connect(addr).unwrap();
    let response = roundtrip(
        &mut second,
        r#"{"op": "privatize", "n": 5, "alpha": 0.5, "inputs": [5]}"#,
    );
    assert!(response.ok, "error: {}", response.error);
    roundtrip(&mut second, r#"{"op": "stats"}"#);
    drop(second);

    let summary = server.stop();
    assert_eq!(summary.connections, 2);
}

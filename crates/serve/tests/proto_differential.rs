//! Differential and adversarial tests for the protocol layer.
//!
//! Two properties pin the compact binary codec to the JSON codec:
//!
//! 1. **Decode equivalence** — a JSON wire request and the `CPMF` encoding of
//!    the op it denotes decode to the *same* [`Op`], for every op kind.
//! 2. **Dispatch equivalence** — feeding the same op sequence through a
//!    JSON-codec connection and a binary-codec connection (against two
//!    identically seeded engines) yields semantically identical responses:
//!    same success/failure, same outputs bit-for-bit, same counters, same
//!    estimates.  Only the wall-clock timing fields may differ.
//!
//! The adversarial half feeds the state machine hostile input: truncated
//! frames, corrupted headers, and random bytes behind a valid `CPMF` magic.
//! None of it may panic, and a connection that survives a malformed frame
//! must keep serving well-formed ones.

use cpm_serve::proto::{self, Op, ProtoConfig, ProtoConnection};
use cpm_serve::{Engine, EngineConfig, WireRequest, WireResponse};
use proptest::prelude::*;

/// Parse-valid mechanism specs the generators draw from.  Small `n` keeps
/// design solves cheap; the constrained entries exercise the LP path.
const KEYS: &[(usize, f64, &str, &str)] = &[
    (4, 0.5, "", ""),
    (5, 0.75, "", "L1"),
    (6, 0.5, "", "L2"),
    (4, 0.9, "", "L0"),
];

fn request_for(op_idx: usize, key_idx: usize, values: &[usize]) -> WireRequest {
    let (n, alpha, properties, objective) = KEYS[key_idx % KEYS.len()];
    let clamped: Vec<usize> = values.iter().map(|v| v % n).collect();
    let (op, inputs, reports) = match op_idx {
        0 => ("privatize", clamped, Vec::new()),
        1 => ("warm", Vec::new(), Vec::new()),
        2 => ("report", Vec::new(), clamped),
        3 => ("estimate", Vec::new(), Vec::new()),
        4 => ("stats", Vec::new(), Vec::new()),
        5 => ("metrics", Vec::new(), Vec::new()),
        _ => ("shutdown", Vec::new(), Vec::new()),
    };
    WireRequest {
        op: op.to_string(),
        n,
        alpha,
        properties: properties.to_string(),
        objective: objective.to_string(),
        inputs,
        reports,
    }
}

/// Length-prefix one payload the way every framed codec expects it.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Pull every complete length-prefixed response frame out of a connection.
fn drain_frames(conn: &mut ProtoConnection) -> Vec<Vec<u8>> {
    let pending = conn.pending_output().to_vec();
    conn.advance_output(pending.len());
    let mut frames = Vec::new();
    let mut cursor = 0;
    while cursor + 4 <= pending.len() {
        let len = u32::from_le_bytes(pending[cursor..cursor + 4].try_into().unwrap()) as usize;
        cursor += 4;
        assert!(cursor + len <= pending.len(), "torn response frame");
        frames.push(pending[cursor..cursor + len].to_vec());
        cursor += len;
    }
    assert_eq!(
        cursor,
        pending.len(),
        "trailing bytes after response frames"
    );
    frames
}

/// Blank the fields that legitimately differ between two equivalent
/// dispatches: wall-clock timings, and the metrics exposition (the registry
/// is process-global, so its text moves between any two scrapes).
fn normalized(mut response: WireResponse) -> serde::Value {
    response.design_micros = 0;
    response.sample_micros = 0;
    response.metrics = String::new();
    serde::Serialize::to_value(&response)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Property 1: both codecs decode to the identical [`Op`].
    #[test]
    fn json_and_binary_requests_decode_to_the_same_op(
        op_idx in 0usize..7,
        key_idx in 0usize..4,
        values in proptest::collection::vec(0usize..64, 0..6),
    ) {
        let request = request_for(op_idx, key_idx, &values);
        let op = proto::op_from_request(&request).map_err(|e| e.to_string())?;
        let encoded = proto::encode_request(&op).map_err(|e| e.to_string())?;
        prop_assert!(proto::is_binary_frame(&encoded));
        let decoded = proto::decode_request(&encoded).map_err(|e| e.to_string())?;
        prop_assert_eq!(&decoded, &op);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property 2: the same op sequence through the JSON codec and the binary
    /// codec produces semantically identical responses.  Two engines with the
    /// same seed replay identically, so even privatize draws must agree
    /// bit-for-bit.
    #[test]
    fn json_and_binary_dispatch_agree_on_every_response(
        ops in proptest::collection::vec((0usize..5, 0usize..4, 0usize..64), 1..5),
    ) {
        let engine_json = Engine::new(EngineConfig::default());
        let engine_bin = Engine::new(EngineConfig::default());
        let mut conn_json = ProtoConnection::new(ProtoConfig::default());
        let mut conn_bin = ProtoConnection::new(ProtoConfig::default());

        for (step, &(op_idx, key_idx, value)) in ops.iter().enumerate() {
            let request = request_for(op_idx, key_idx, &[value, value + 1]);
            let op = proto::op_from_request(&request).map_err(|e| e.to_string())?;

            let json_payload = serde_json::to_string(&request)
                .expect("request serializes")
                .into_bytes();
            conn_json
                .ingest(&engine_json, &frame(&json_payload))
                .map_err(|e| e.to_string())?;
            let binary_payload = proto::encode_request(&op).map_err(|e| e.to_string())?;
            conn_bin
                .ingest(&engine_bin, &frame(&binary_payload))
                .map_err(|e| e.to_string())?;

            let json_frames = drain_frames(&mut conn_json);
            let bin_frames = drain_frames(&mut conn_bin);
            prop_assert_eq!(json_frames.len(), 1);
            prop_assert_eq!(bin_frames.len(), 1);

            let from_json: WireResponse =
                serde_json::from_str(std::str::from_utf8(&json_frames[0]).expect("UTF-8"))
                    .expect("JSON response parses");
            let (_tag, from_bin) =
                proto::decode_response(&bin_frames[0]).map_err(|e| e.to_string())?;
            let (lhs, rhs) = (normalized(from_json), normalized(from_bin));
            prop_assert!(
                lhs == rhs,
                "step {} (op {}) diverged: JSON {:?} vs binary {:?}",
                step,
                op.label(),
                lhs,
                rhs
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Hostile bodies behind a valid `CPMF` magic: decode must refuse or
    /// round-trip, never panic, and the connection must survive.
    #[test]
    fn random_binary_bodies_never_panic_and_never_kill_the_connection(
        body in proptest::collection::vec(0u8..=255, 0..48),
    ) {
        let mut payload = proto::FRAME_MAGIC.to_vec();
        payload.extend_from_slice(&body);
        // Direct decode: refuse or produce an op that re-encodes.
        if let Ok(op) = proto::decode_request(&payload) {
            let encoded = proto::encode_request(&op).map_err(|e| e.to_string())?;
            let again = proto::decode_request(&encoded).map_err(|e| e.to_string())?;
            prop_assert_eq!(again, op);
        }

        // Through the state machine: a malformed frame gets an in-band error
        // response and the connection keeps serving.
        let engine = Engine::new(EngineConfig::default());
        let mut conn = ProtoConnection::new(ProtoConfig::default());
        conn.ingest(&engine, &frame(&payload)).map_err(|e| e.to_string())?;
        let first = drain_frames(&mut conn);
        prop_assert!(first.len() == 1, "every framed request is answered");

        let stats = proto::encode_request(&Op::Stats).map_err(|e| e.to_string())?;
        conn.ingest(&engine, &frame(&stats)).map_err(|e| e.to_string())?;
        let second = drain_frames(&mut conn);
        prop_assert_eq!(second.len(), 1);
        let (_, response) = proto::decode_response(&second[0]).map_err(|e| e.to_string())?;
        prop_assert!(response.ok, "connection must keep serving after a hostile frame");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Single-byte corruption of a well-formed frame: answered in-band or
    /// refused, never a panic, never a torn response.
    #[test]
    fn corrupted_valid_frames_are_handled_in_band(
        op_idx in 0usize..7,
        key_idx in 0usize..4,
        pos in 0usize..1024,
        delta in 1u8..=255,
    ) {
        let request = request_for(op_idx, key_idx, &[1, 2]);
        let op = proto::op_from_request(&request).map_err(|e| e.to_string())?;
        let payload = proto::encode_request(&op).map_err(|e| e.to_string())?;
        let mut corrupted = payload.clone();
        let pos = pos % corrupted.len();
        corrupted[pos] = corrupted[pos].wrapping_add(delta);

        let engine = Engine::new(EngineConfig::default());
        let mut conn = ProtoConnection::new(ProtoConfig::default());
        // Corrupting the first payload byte can turn the magic into "GET "-ish
        // bytes or JSON; all of those are legal sniff outcomes.  The contract
        // is only: no panic, and framed inputs produce whole framed outputs.
        conn.ingest(&engine, &frame(&corrupted)).map_err(|e| e.to_string())?;
        let _ = drain_frames(&mut conn);
    }
}

#[test]
fn every_truncation_of_a_valid_frame_is_a_hard_eof_error() {
    let engine = Engine::new(EngineConfig::default());
    let payload = proto::encode_request(&Op::Stats).expect("stats encodes");
    let framed = frame(&payload);

    for cut in 0..framed.len() {
        let mut conn = ProtoConnection::new(ProtoConfig::default());
        conn.ingest(&engine, &framed[..cut])
            .expect("partial frames buffer cleanly");
        assert!(
            drain_frames(&mut conn).is_empty(),
            "cut {cut}: no response yet"
        );
        let finished = conn.finish();
        if cut == 0 {
            finished.expect("EOF at a frame boundary is clean");
        } else {
            let err = finished.expect_err("EOF mid-frame must be an error");
            assert!(
                err.to_string().contains("EOF inside a frame"),
                "cut {cut}: unexpected error {err}"
            );
        }
    }
}

#[test]
fn byte_at_a_time_hostile_and_valid_frames_interleave() {
    let engine = Engine::new(EngineConfig::default());
    let mut conn = ProtoConnection::new(ProtoConfig::default());

    let mut hostile = proto::FRAME_MAGIC.to_vec();
    hostile.extend_from_slice(&[0xFF; 9]);
    let stats = proto::encode_request(&Op::Stats).expect("stats encodes");

    let mut stream = frame(&hostile);
    stream.extend_from_slice(&frame(&stats));
    for byte in stream {
        conn.ingest(&engine, &[byte])
            .expect("byte-at-a-time ingest");
    }
    let frames = drain_frames(&mut conn);
    assert_eq!(frames.len(), 2, "both frames answered");
    let (_, refused) = proto::decode_response(&frames[0]).expect("error response decodes");
    assert!(!refused.ok);
    assert!(refused.error.contains("malformed binary frame"));
    let (_, served) = proto::decode_response(&frames[1]).expect("stats response decodes");
    assert!(served.ok);
}

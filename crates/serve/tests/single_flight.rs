//! Single-flight guarantee: N threads racing the same cold key trigger exactly
//! one design solve; everyone else blocks on the in-flight entry and receives
//! the shared result.

use std::sync::{Arc, Barrier};

use cpm_core::{Alpha, Property, PropertySet};
use cpm_serve::prelude::*;

/// A key whose design requires a real LP solve (the paper's WM), so the race
/// window is wide enough for every thread to arrive while the solve runs.
fn cold_wm_key() -> SpecKey {
    SpecKey::new(
        8,
        Alpha::new(0.9).unwrap(),
        PropertySet::empty().with(Property::ColumnMonotonicity),
    )
}

#[test]
fn racing_threads_trigger_exactly_one_design_solve() {
    let threads = 8;
    let cache = Arc::new(DesignCache::new(16));
    let key = cold_wm_key();
    let barrier = Arc::new(Barrier::new(threads));

    let designs: Vec<Arc<DesignedMechanism>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                scope.spawn(move || {
                    barrier.wait();
                    cache.get(&key).expect("the WM design must succeed")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Exactly one SolveStats-carrying design solve happened, no matter how many
    // requesters raced the cold key.
    let stats = cache.stats();
    assert_eq!(stats.design_solves, 1, "stats: {stats:?}");
    assert_eq!(stats.lp_solves, 1, "the WM key requires the simplex");
    assert_eq!(stats.misses, 1, "only the winner counts as a miss");
    assert_eq!(
        stats.hits + stats.coalesced,
        threads as u64 - 1,
        "every loser either coalesced onto the flight or hit the fresh entry"
    );
    assert_eq!(stats.entries, 1);

    // Everyone holds the *same* design (pointer-identical, solved once).
    for design in &designs {
        assert!(Arc::ptr_eq(design, &designs[0]));
    }
    let solver_stats = designs[0]
        .solver_stats()
        .expect("an LP-designed mechanism carries its SolveStats");
    assert!(solver_stats.phase1_iterations + solver_stats.phase2_iterations > 0);
}

#[test]
fn racing_engine_batches_share_one_design() {
    // The same guarantee one level up: concurrent privatize_batch calls on a
    // shared engine, all needing the same cold key.
    let threads = 6;
    let engine = Arc::new(Engine::with_defaults());
    let key = cold_wm_key();
    let barrier = Arc::new(Barrier::new(threads));

    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            scope.spawn(move || {
                let requests: Vec<Request> =
                    (0..64).map(|i| Request::new(key, (i + t) % 9)).collect();
                barrier.wait();
                let outcome = engine.privatize_batch(&requests).unwrap();
                assert_eq!(outcome.outputs.len(), 64);
                assert!(outcome.outputs.iter().all(|&o| o <= 8));
            });
        }
    });

    let stats = engine.cache_stats();
    assert_eq!(stats.design_solves, 1, "stats: {stats:?}");
    assert_eq!(stats.lp_solves, 1);
}

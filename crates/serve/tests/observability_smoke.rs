//! Release-mode observability smoke tests.
//!
//! These are `#[ignore]`d so the ordinary (debug) `cargo test` stays fast; CI
//! runs them explicitly with
//! `cargo test --release -p cpm-serve --test observability_smoke -- --ignored --test-threads=1`
//! (single-threaded: the overhead test flips the global `cpm_obs` kill switch,
//! which must not race the in-process scrape test).
//!
//! Covered end to end:
//!
//! * a real `serve_stdio` process answers the `metrics` wire op with a
//!   parseable Prometheus-style exposition whose solver / cache / engine /
//!   wire families are non-zero after a cold + warm privatize mix;
//! * the TCP front end feeds the `cpm_net_*` family, scraped through the same
//!   wire op over the socket;
//! * the instrumented hot path costs ≤ 5% over the uninstrumented floor
//!   (`cpm_obs::set_enabled(false)`) with `CPM_TRACE` off.

use std::collections::BTreeMap;
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::process::{Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cpm_core::{Alpha, Property, PropertySet};
use cpm_serve::frontend::{read_frame, write_frame, WireResponse};
use cpm_serve::prelude::*;
use cpm_serve::workload;

/// Parse a Prometheus text exposition into `sample -> value`, failing loudly
/// on any line that fits neither the comment nor the sample grammar.
fn parse_exposition(text: &str) -> BTreeMap<String, f64> {
    let mut samples = BTreeMap::new();
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let parts: Vec<&str> = comment.split_whitespace().collect();
            assert!(
                parts.len() == 3 && parts[0] == "TYPE",
                "unexpected comment line: {line:?}"
            );
            assert!(
                matches!(parts[2], "counter" | "gauge" | "histogram"),
                "unknown metric kind in: {line:?}"
            );
            continue;
        }
        let (name, value) = line
            .rsplit_once(' ')
            .unwrap_or_else(|| panic!("sample line without a value: {line:?}"));
        let parsed: f64 = value
            .parse()
            .unwrap_or_else(|e| panic!("unparseable value in {line:?}: {e}"));
        assert!(
            samples.insert(name.to_string(), parsed).is_none(),
            "duplicate sample {name:?}"
        );
    }
    samples
}

/// Sum every sample whose name starts with `prefix` (so labelled counters can
/// be asserted without caring which label values fired).
fn family_total(samples: &BTreeMap<String, f64>, prefix: &str) -> f64 {
    samples
        .iter()
        .filter(|(name, _)| name.starts_with(prefix))
        .map(|(_, value)| value)
        .sum()
}

fn frame(json: &str) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, json.as_bytes()).unwrap();
    bytes
}

#[test]
#[ignore = "release-mode observability smoke test; run explicitly (see CI workflow)"]
fn stdio_metrics_op_scrapes_solver_cache_engine_and_wire_families() {
    let bin = env!("CARGO_BIN_EXE_serve_stdio");
    let mut serve = Command::new(bin)
        .env_remove("CPM_OBS")
        .env_remove("CPM_TRACE")
        .env_remove("CPM_SERVE_WARM")
        .env_remove("CPM_WARM_FILE")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve_stdio spawns");
    {
        let stdin = serve.stdin.as_mut().unwrap();
        // Cold LP privatize (solver + cache miss + engine), the same key again
        // (cache hit), then the scrape.
        let privatize = r#"{"op": "privatize", "n": 8, "alpha": 0.9, "properties": "WH+CM",
            "inputs": [0, 4, 8]}"#;
        stdin.write_all(&frame(privatize)).unwrap();
        stdin.write_all(&frame(privatize)).unwrap();
        stdin.write_all(&frame(r#"{"op": "metrics"}"#)).unwrap();
        stdin.write_all(&frame(r#"{"op": "shutdown"}"#)).unwrap();
    }
    let output = serve.wait_with_output().expect("serve_stdio exits");
    assert!(output.status.success(), "serving process failed");

    let mut cursor = std::io::Cursor::new(output.stdout);
    let mut responses: Vec<WireResponse> = Vec::new();
    while let Some(payload) = read_frame(&mut cursor).unwrap() {
        responses.push(serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap());
    }
    assert_eq!(responses.len(), 4, "2 privatizes + metrics + shutdown ack");
    assert!(responses[0].ok, "cold privatize: {}", responses[0].error);
    assert!(responses[1].ok, "warm privatize: {}", responses[1].error);
    let scrape = &responses[2];
    assert!(scrape.ok, "metrics op failed: {}", scrape.error);
    let samples = parse_exposition(&scrape.metrics);

    // Solver family: the WH+CM design runs exactly one LP.
    assert_eq!(family_total(&samples, "cpm_lp_solves_total"), 1.0);
    assert!(family_total(&samples, "cpm_lp_pivots_total") > 0.0);
    assert!(
        family_total(&samples, "cpm_lp_solve_nanos_count") >= 1.0,
        "the LP solve must land in a latency histogram"
    );
    // Cache family: one miss (cold), one hit (repeat), one resident design.
    assert_eq!(samples["cpm_cache_misses_total"], 1.0);
    assert_eq!(samples["cpm_cache_hits_total"], 1.0);
    assert_eq!(samples["cpm_cache_resident_entries"], 1.0);
    // Engine family: two batches of three draws each.
    assert_eq!(samples["cpm_engine_batches_total"], 2.0);
    assert_eq!(samples["cpm_engine_draws_total"], 6.0);
    assert!(samples["cpm_engine_batch_nanos_count"] >= 2.0);
    // Wire family: the scrape itself is counted before it renders, so the op
    // labels cover both privatizes and the metrics op.
    assert_eq!(samples["cpm_wire_requests_total{op=\"privatize\"}"], 2.0);
    assert_eq!(samples["cpm_wire_requests_total{op=\"metrics\"}"], 1.0);
}

#[test]
#[ignore = "release-mode observability smoke test; run explicitly (see CI workflow)"]
fn tcp_front_end_feeds_the_net_family() {
    let engine = Arc::new(Engine::with_defaults());
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let server = Server::tcp(Arc::clone(&engine), listener).unwrap();
    let addr = server.local_addr().unwrap();

    let net_before = cpm_obs::registry()
        .counter("cpm_net_connections_total")
        .get();

    let mut stream = TcpStream::connect(addr).unwrap();
    write_frame(
        &mut stream,
        br#"{"op": "privatize", "n": 12, "alpha": 0.5, "inputs": [1, 2]}"#,
    )
    .unwrap();
    let payload = read_frame(&mut stream)
        .unwrap()
        .expect("privatize response");
    let privatize: WireResponse =
        serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(privatize.ok, "privatize failed: {}", privatize.error);

    write_frame(&mut stream, br#"{"op": "metrics"}"#).unwrap();
    let payload = read_frame(&mut stream).unwrap().expect("metrics response");
    let scrape: WireResponse =
        serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap();
    assert!(scrape.ok, "metrics op failed: {}", scrape.error);
    write_frame(&mut stream, br#"{"op": "shutdown"}"#).unwrap();
    let _ = read_frame(&mut stream);
    server.stop();

    let samples = parse_exposition(&scrape.metrics);
    assert!(
        samples["cpm_net_connections_total"] >= (net_before + 1) as f64,
        "the scrape's own connection must be counted"
    );
    assert!(
        samples["cpm_net_active_connections"] >= 1.0,
        "the scraping connection is still active at scrape time"
    );
    assert!(samples["cpm_wire_requests_total{op=\"metrics\"}"] >= 1.0);
}

/// One timed hot-key batch.
fn batch_time(engine: &Engine, requests: &[Request]) -> Duration {
    let start = Instant::now();
    engine.privatize_batch(requests).expect("hot batch");
    start.elapsed()
}

#[test]
#[ignore = "release-mode observability smoke test; run explicitly (see CI workflow)"]
fn enabled_telemetry_costs_at_most_five_percent_over_the_disabled_floor() {
    // The engine's instrumentation is per-batch and per-chunk (never per
    // draw), so the enabled path should be indistinguishable from the floor;
    // the 5% gate catches anyone adding per-draw telemetry later.
    let hot = SpecKey::new(
        16,
        Alpha::new(0.9).unwrap(),
        PropertySet::empty().with(Property::Fairness),
    );
    let engine = Engine::with_defaults();
    engine.warm(&[hot]).expect("hot design");
    let requests = workload::hot_key_requests(hot, 100_000, 1);
    let rounds = 7;

    // Warm-up round so page faults and lazy sampler construction don't land
    // in either measurement; then interleave the two modes (min of N each) so
    // machine-state drift during the test hits both equally.
    engine.privatize_batch(&requests).expect("warm-up batch");
    let mut floor = Duration::MAX;
    let mut instrumented = Duration::MAX;
    for _ in 0..rounds {
        cpm_obs::set_enabled(false);
        floor = floor.min(batch_time(&engine, &requests));
        cpm_obs::set_enabled(true);
        instrumented = instrumented.min(batch_time(&engine, &requests));
    }

    let overhead = instrumented.as_secs_f64() / floor.as_secs_f64() - 1.0;
    println!(
        "observability overhead: floor {floor:?}, instrumented {instrumented:?} ({:+.2}%)",
        overhead * 100.0
    );
    assert!(
        instrumented.as_secs_f64() <= floor.as_secs_f64() * 1.05,
        "instrumented hot path exceeds the 5% overhead budget: \
         floor {floor:?} vs instrumented {instrumented:?} ({:+.2}%)",
        overhead * 100.0
    );
}

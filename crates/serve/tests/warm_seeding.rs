//! The serving side of dual-simplex warm starts:
//!
//! * family seeding — a cold key's LP is seeded from the nearest resident
//!   α-neighbour, observable through `CacheStats::warm_seeded`;
//! * `warm()` α-sweep chaining — one cold solve, the rest seeded;
//! * snapshot compatibility — a pinned PR-4-era (pre-basis) snapshot still
//!   loads, and a basis-bearing snapshot loads on builds that ignore the
//!   field (unknown fields are skipped by the deserialiser);
//! * concurrent merging savers — the advisory `.lock` closes the
//!   read-modify-write race on a shared `CPM_WARM_FILE`.

use std::sync::Arc;

use cpm_core::{Alpha, DesignedMechanism, Property, PropertySet, SpecKey};
use cpm_serve::cache::DesignCache;

fn a(v: f64) -> Alpha {
    Alpha::new(v).unwrap()
}

/// A key in the WM family (WH + CM at strong privacy forces the LP).
fn wm_key(n: usize, alpha: f64) -> SpecKey {
    SpecKey::new(
        n,
        a(alpha),
        PropertySet::empty()
            .with(Property::WeakHonesty)
            .with(Property::ColumnMonotonicity),
    )
}

#[test]
fn cold_keys_seed_from_the_nearest_resident_alpha_neighbour() {
    let cache = DesignCache::new(16);
    let donor = wm_key(8, 0.90);
    cache.get(&donor).unwrap();
    assert_eq!(cache.stats().warm_seeded, 0, "first key has no neighbour");

    let neighbour = wm_key(8, 0.905);
    let design = cache.get(&neighbour).unwrap();
    let stats = cache.stats();
    assert_eq!(stats.warm_seeded, 1, "the α-neighbour seeds the solve");
    assert!(design.used_lp());
    assert!(design.mechanism().satisfies_dp(a(0.905), 1e-6));
    assert!(design.requested_satisfied());

    // A different family (same n, different properties) must not be seeded
    // from the WM designs.
    let other_family = SpecKey::new(8, a(0.902), PropertySet::empty().with(Property::Fairness));
    cache.get(&other_family).unwrap();
    assert_eq!(
        cache.stats().warm_seeded,
        1,
        "cross-family keys never seed from each other"
    );
}

#[test]
fn seeded_designs_match_cold_designs_on_score_and_properties() {
    let seeded = DesignCache::new(16);
    seeded.get(&wm_key(8, 0.90)).unwrap();
    let warm = seeded.get(&wm_key(8, 0.91)).unwrap();
    assert_eq!(seeded.stats().warm_seeded, 1);

    let cold_cache = DesignCache::new(16);
    cold_cache.set_family_seeding(false);
    cold_cache.get(&wm_key(8, 0.90)).unwrap();
    let cold = cold_cache.get(&wm_key(8, 0.91)).unwrap();
    assert_eq!(cold_cache.stats().warm_seeded, 0, "seeding disabled");

    assert!((warm.score() - cold.score()).abs() < 1e-9);
    assert!(warm.requested_satisfied() && cold.requested_satisfied());
}

#[test]
fn warm_sweeps_chain_alpha_neighbours_within_a_family() {
    let cache = DesignCache::new(32);
    // Deliberately unsorted α sweep plus one foreign family member.
    let keys = vec![
        wm_key(8, 0.93),
        wm_key(8, 0.90),
        SpecKey::new(8, a(0.9), PropertySet::empty()),
        wm_key(8, 0.92),
        wm_key(8, 0.91),
    ];
    let designs = cache.warm(&keys).unwrap();
    assert_eq!(designs.len(), keys.len());
    // Results come back in key order regardless of the sweep's sort.
    for (key, design) in keys.iter().zip(&designs) {
        assert_eq!(design.key(), *key);
    }
    let stats = cache.stats();
    assert_eq!(stats.design_solves, 5);
    // The WM family pays one cold solve; its three other members are seeded
    // (the GM key is closed-form and alone in its family).
    assert_eq!(stats.warm_seeded, 3, "sweep chains warm starts: {stats:?}");
}

#[test]
fn eviction_and_clear_prune_the_family_index() {
    // Single stripe, capacity 1: designing a second family member evicts the
    // first; the index must follow, so the evicted key cannot seed anyone.
    let cache = DesignCache::with_shards(1, 1);
    cache.get(&wm_key(8, 0.90)).unwrap();
    cache.get(&wm_key(8, 0.905)).unwrap();
    assert_eq!(cache.stats().warm_seeded, 1);
    assert_eq!(cache.stats().evictions, 1);

    cache.clear();
    // With the index cleared, the next design has no neighbour to seed from.
    cache.get(&wm_key(8, 0.907)).unwrap();
    assert_eq!(
        cache.stats().warm_seeded,
        1,
        "a cleared cache must not seed from evicted designs"
    );
}

/// A PR-4-era snapshot entry, serialised before `DesignedMechanism` carried a
/// `basis` field (and before `SolveStats` carried `dual_iterations` /
/// `warm_started`): the WH-LP design for n = 2, α = 0.9.  Pinned as a literal
/// so the compatibility contract survives serialiser refactors.
const PRE_BASIS_FIXTURE: &str = r#"[{"spec":{"n":2,"alpha":0.9,"properties":"{WH}","objective":"L0","tolerance":0.000001,"solver":null},"choice":"WeakHonestLp","mechanism":{"n":2,"entries":[0.3703703703703704,0.33333333333333337,0.30000000000000004,0.3296296296296295,0.3333333333333333,0.3296296296296295,0.30000000000000004,0.33333333333333337,0.3703703703703704]},"solver_stats":{"phase1_iterations":15,"phase2_iterations":0,"degenerate_pivots":11,"bland_activations":0,"artificial_variables":10,"refactorizations":2,"basis_updates":15,"basis_repairs":0,"devex_resets":0,"backend":"SparseRevised"},"report":{"satisfied":[["RH",true],["RM",true],["CH",true],["CM",true],["F",false],["WH",true],["S",true]]},"score":0.9629629629629629,"design_nanos":511588}]"#;

#[test]
fn pre_basis_snapshots_still_load() {
    // Directly as an artifact: the missing basis defaults to None.
    let designs: Vec<DesignedMechanism> =
        serde_json::from_str(PRE_BASIS_FIXTURE).expect("PR-4 snapshot parses");
    assert_eq!(designs.len(), 1);
    assert!(designs[0].optimal_basis().is_none());
    assert!(designs[0].solver_stats().is_some());

    // And through the cache loader: resident and servable.
    let cache = DesignCache::new(8);
    let loaded = cache
        .load_snapshot(&mut PRE_BASIS_FIXTURE.as_bytes())
        .expect("PR-4 snapshot loads");
    assert_eq!(loaded, 1);
    let key = SpecKey::new(2, a(0.9), PropertySet::empty().with(Property::WeakHonesty));
    assert!(cache.peek(&key).is_some(), "restored design is resident");
}

#[test]
fn basis_bearing_snapshots_load_on_builds_that_ignore_the_field() {
    // A snapshot written by this build carries the basis; the deserialiser
    // skips unknown fields, so a build that has never heard of `basis` (or of
    // any future field) still loads it.  Simulate the future-field case by
    // injecting one.
    let cache = DesignCache::new(8);
    cache.get(&wm_key(6, 0.9)).unwrap();
    let mut snapshot = Vec::new();
    cache.save_snapshot(&mut snapshot).unwrap();
    let text = String::from_utf8(snapshot).unwrap();
    assert!(
        text.contains("\"basis\":["),
        "new snapshots carry the basis"
    );

    let with_future_field = text.replacen("{\"spec\"", "{\"future_field\":42,\"spec\"", 1);
    let fresh = DesignCache::new(8);
    let loaded = fresh
        .load_snapshot(&mut with_future_field.as_bytes())
        .expect("unknown fields are ignored");
    assert_eq!(loaded, 1);
    let restored = fresh.peek(&wm_key(6, 0.9)).expect("resident");
    assert!(
        restored.optimal_basis().is_some(),
        "the basis survives the round trip"
    );
}

#[test]
fn concurrent_merging_savers_do_not_drop_each_others_designs() {
    let path =
        std::env::temp_dir().join(format!("cpm-concurrent-merge-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Eight caches, each resident with a distinct key, all merging into one
    // file concurrently.  Without the `.lock` serialisation two savers can
    // interleave between read and rename and silently drop entries.
    let savers = 8usize;
    let caches: Vec<Arc<DesignCache>> = (0..savers)
        .map(|i| {
            let cache = Arc::new(DesignCache::new(4));
            cache
                .get(&SpecKey::new(2 + i, a(0.5), PropertySet::empty()))
                .unwrap();
            cache
        })
        .collect();
    let handles: Vec<_> = caches
        .iter()
        .map(|cache| {
            let cache = Arc::clone(cache);
            let path = path.clone();
            std::thread::spawn(move || cache.save_snapshot_file_merging(&path).unwrap())
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }

    let check = DesignCache::new(64);
    let loaded = check.load_snapshot_file(&path).unwrap();
    assert_eq!(
        loaded, savers,
        "every saver's design survives the concurrent merge"
    );
    let mut lock_name = path.as_os_str().to_owned();
    lock_name.push(".lock");
    assert!(
        !std::path::PathBuf::from(lock_name).exists(),
        "the advisory lock is released"
    );
    let _ = std::fs::remove_file(&path);
}

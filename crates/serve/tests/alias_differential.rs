//! Differential test: the O(1) alias sampler against the O(log n) CDF sampler,
//! for every column of GM / WM / Fair at several `(n, α)`.
//!
//! Two layers of evidence, both deterministic:
//!
//! 1. **Measure equivalence** — `AliasSampler::implied_pmf` reconstructs the
//!    exact probability each table assigns to each output; it must match the
//!    mechanism column to within a few ulps (1e-12).
//! 2. **Count agreement over a shared uniform stream** — the same `u` values are
//!    replayed through both samplers via `sample_from_uniform`.  On an
//!    equally-spaced grid both samplers partition `[0, 1)` into regions of
//!    identical total measure, so per-output counts must agree to within the
//!    number of region boundaries (`dim + 4`), *independent of the grid size*.
//!    A seeded random stream is replayed as well, with the statistical bound
//!    that coupling implies.

use cpm_core::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn a(v: f64) -> Alpha {
    Alpha::new(v).unwrap()
}

/// The mechanisms of the paper's Figure 6 that serving traffic asks for: the
/// closed-form GM and EM (Fair) plus the LP-designed WM — all built through the
/// typed design path, with the expected Figure-5 provenance asserted.
fn mechanisms(n: usize, alpha: Alpha) -> Vec<(&'static str, Mechanism)> {
    let design = |properties: PropertySet, expected: MechanismChoice, lp: bool| {
        let designed = MechanismSpec::new(n, alpha)
            .properties(properties)
            .build()
            .expect("spec is valid")
            .design()
            .expect("design succeeds");
        assert_eq!(designed.choice(), Some(expected));
        assert_eq!(designed.used_lp(), lp);
        designed.into_mechanism()
    };
    let gm = design(PropertySet::empty(), MechanismChoice::Geometric, false);
    let fair = design(
        PropertySet::empty().with(Property::Fairness),
        MechanismChoice::ExplicitFair,
        false,
    );
    let wm = design(
        PropertySet::empty().with(Property::ColumnMonotonicity),
        MechanismChoice::WeakHonestColumnMonotoneLp,
        true,
    );
    vec![("GM", gm), ("Fair", fair), ("WM", wm)]
}

const CASES: [(usize, f64); 3] = [(4, 0.9), (6, 2.0 / 3.0), (9, 0.76)];

#[test]
fn implied_pmf_matches_every_column() {
    for (n, alpha) in CASES {
        for (name, mechanism) in mechanisms(n, a(alpha)) {
            let alias = AliasSampler::new(&mechanism);
            for j in 0..mechanism.dim() {
                let pmf = alias.implied_pmf(j);
                for (i, &mass) in pmf.iter().enumerate() {
                    assert!(
                        (mass - mechanism.prob(i, j)).abs() < 1e-12,
                        "{name} n={n} α={alpha} column {j} output {i}: \
                         alias mass {mass} vs matrix {}",
                        mechanism.prob(i, j)
                    );
                }
            }
        }
    }
}

#[test]
fn grid_stream_counts_agree_within_boundary_slack() {
    // 2^16 equally spaced uniforms per column: both samplers realise regions of
    // equal measure, so counts can only disagree where a grid point straddles a
    // region boundary — at most (dim + 4) points, independent of the grid size.
    let grid: usize = 1 << 16;
    for (n, alpha) in CASES {
        for (name, mechanism) in mechanisms(n, a(alpha)) {
            let dim = mechanism.dim();
            let cdf = MechanismSampler::new(&mechanism);
            let alias = AliasSampler::new(&mechanism);
            for j in 0..dim {
                let mut counts_cdf = vec![0i64; dim];
                let mut counts_alias = vec![0i64; dim];
                for k in 0..grid {
                    let u = (2 * k + 1) as f64 / (2 * grid) as f64;
                    counts_cdf[cdf.sample_from_uniform(j, u)] += 1;
                    counts_alias[alias.sample_from_uniform(j, u)] += 1;
                }
                let slack = (dim + 4) as i64;
                for i in 0..dim {
                    assert!(
                        (counts_cdf[i] - counts_alias[i]).abs() <= slack,
                        "{name} n={n} α={alpha} column {j} output {i}: \
                         cdf {} vs alias {} (slack {slack})",
                        counts_cdf[i],
                        counts_alias[i]
                    );
                }
            }
        }
    }
}

#[test]
fn seeded_random_stream_counts_agree_for_every_column() {
    // The same seeded uniform stream replayed through both samplers.  The
    // samplers partition the unit interval differently (the alias table
    // rearranges mass), so per-draw outputs differ; the per-output counts are
    // coupled binomials whose difference concentrates within a few standard
    // deviations.  The seed is pinned, so this is a deterministic regression
    // test, not a flaky statistical one.
    let draws: usize = 40_000;
    for (n, alpha) in CASES {
        for (name, mechanism) in mechanisms(n, a(alpha)) {
            let dim = mechanism.dim();
            let cdf = MechanismSampler::new(&mechanism);
            let alias = AliasSampler::new(&mechanism);
            for j in 0..dim {
                let mut rng = StdRng::seed_from_u64(0xA11A5 ^ (j as u64) << 8 ^ n as u64);
                let mut counts_cdf = vec![0i64; dim];
                let mut counts_alias = vec![0i64; dim];
                for _ in 0..draws {
                    let u: f64 = rng.gen();
                    counts_cdf[cdf.sample_from_uniform(j, u)] += 1;
                    counts_alias[alias.sample_from_uniform(j, u)] += 1;
                }
                for i in 0..dim {
                    let p = mechanism.prob(i, j);
                    let sigma = (draws as f64 * p * (1.0 - p)).sqrt();
                    let bound = (8.0 * sigma).max(48.0);
                    let diff = (counts_cdf[i] - counts_alias[i]).abs() as f64;
                    assert!(
                        diff <= bound,
                        "{name} n={n} α={alpha} column {j} output {i}: \
                         |{} - {}| = {diff} > {bound}",
                        counts_cdf[i],
                        counts_alias[i]
                    );
                }
            }
        }
    }
}

#[test]
fn cache_designs_draw_from_the_designed_matrix() {
    // End-to-end through cpm-serve: the cached design's alias tables realise the
    // cached mechanism, for an LP-designed key.
    use cpm_serve::prelude::*;
    let cache = DesignCache::new(4);
    let key = SpecKey::new(
        6,
        a(0.9),
        PropertySet::empty().with(Property::ColumnMonotonicity),
    );
    let design = cache.get(&key).unwrap();
    assert_eq!(
        design.choice(),
        Some(MechanismChoice::WeakHonestColumnMonotoneLp)
    );
    for j in 0..design.mechanism().dim() {
        let pmf = design.alias_sampler().implied_pmf(j);
        for (i, &mass) in pmf.iter().enumerate() {
            assert!((mass - design.mechanism().prob(i, j)).abs() < 1e-12);
        }
    }
}

//! Release-mode serving smoke tests: a hot key must sustain a minimum
//! draws/sec floor, and a cold-start storm (many threads, several LP keys at
//! once) must complete without deadlock and with exactly one solve per key.
//!
//! These are `#[ignore]`d so the ordinary (debug) `cargo test` stays fast; CI
//! runs them explicitly with
//! `cargo test --release -p cpm-serve --test serving_smoke -- --ignored`.
//! The floors are deliberately loose — they exist to catch order-of-magnitude
//! regressions of the serving hot path (a draw regressing from O(1) to O(n),
//! a lock on the per-draw path), not millisecond drift.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use cpm_core::{Alpha, Property, PropertySet};
use cpm_serve::prelude::*;

/// Floor for hot-key batch privatization.  A release-mode alias draw costs tens
/// of nanoseconds, so real throughput is tens of millions of draws/sec; half a
/// million only trips on an architectural regression.
const HOT_KEY_FLOOR_DRAWS_PER_SEC: f64 = 500_000.0;

/// Generous ceiling for the whole cold-start storm (16 threads × 3 LP keys at
/// n = 16; one WM solve at that size takes well under a second in release).
const STORM_BUDGET: Duration = Duration::from_secs(120);

#[test]
#[ignore = "release-mode serving smoke test; run explicitly (see CI workflow)"]
fn hot_key_sustains_the_throughput_floor() {
    let engine = Engine::with_defaults();
    let key = SpecKey::new(32, Alpha::new(0.9).unwrap(), PropertySet::empty());
    engine.warm(&[key]).expect("GM warms instantly");

    let requests = hot_key_requests(key, 500_000, 11);
    let outcome = engine.privatize_batch(&requests).unwrap();
    assert_eq!(outcome.stats.cache_hits, 1, "the key must be resident");
    let rate = outcome.stats.draws_per_sec();
    assert!(
        rate > HOT_KEY_FLOOR_DRAWS_PER_SEC,
        "hot-key throughput {rate:.0} draws/sec under the {HOT_KEY_FLOOR_DRAWS_PER_SEC:.0} floor \
         (sample phase took {:?})",
        outcome.stats.sample_time
    );
    assert!(outcome.outputs.iter().all(|&o| o <= 32));
}

#[test]
#[ignore = "release-mode serving smoke test; run explicitly (see CI workflow)"]
fn cold_start_storm_completes_without_deadlock() {
    let engine = Arc::new(Engine::with_defaults());
    let alpha = Alpha::new(0.9).unwrap();
    // Three genuinely LP-designed keys (WH or CM at strong privacy).
    let keys: Vec<SpecKey> = vec![
        SpecKey::new(
            16,
            alpha,
            PropertySet::empty().with(Property::ColumnMonotonicity),
        ),
        SpecKey::new(16, alpha, PropertySet::empty().with(Property::WeakHonesty)),
        SpecKey::new(
            12,
            alpha,
            PropertySet::empty().with(Property::ColumnHonesty),
        ),
    ];

    let threads = 16;
    let barrier = Arc::new(Barrier::new(threads));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let engine = Arc::clone(&engine);
            let barrier = Arc::clone(&barrier);
            let keys = keys.clone();
            scope.spawn(move || {
                // Every thread asks for every key at once, worst-case arrival.
                let requests: Vec<Request> = (0..300)
                    .map(|i| {
                        let key = keys[(i + t) % keys.len()];
                        Request::new(key, (i * 7 + t) % (key.n + 1))
                    })
                    .collect();
                barrier.wait();
                let outcome = engine.privatize_batch(&requests).unwrap();
                assert_eq!(outcome.outputs.len(), 300);
            });
        }
    });
    let elapsed = start.elapsed();
    assert!(
        elapsed < STORM_BUDGET,
        "cold-start storm took {elapsed:?} (budget {STORM_BUDGET:?})"
    );

    // Single flight held under the storm: one design per key, all of them LP.
    let stats = engine.cache_stats();
    assert_eq!(stats.design_solves, 3, "stats: {stats:?}");
    assert_eq!(stats.lp_solves, 3);
    assert_eq!(stats.entries, 3);
}

//! Release-mode collect-pipeline smoke tests.
//!
//! These are `#[ignore]`d so the ordinary (debug) `cargo test` stays fast; CI
//! runs them explicitly with
//! `cargo test --release -p cpm-serve --test collect_smoke -- --ignored`.
//!
//! Covered end to end:
//!
//! * a ~1M-user population privatized through the engine with loopback
//!   collection on round-trips to frequency estimates whose empirical RMSE is
//!   within 2× the paper's closed-form expectation at `(n=32, α=0.9)`;
//! * a real `serve_stdio` process ingests ≥100k binary `b"CPMR"` report
//!   frames and answers the `estimate` op within the same error bound;
//! * single-core ingest sustains at least 1M reports/second (the line-rate
//!   floor recorded in BENCHMARKS.md).

use std::process::{Command, Stdio};
use std::time::Instant;

use cpm_collect::prelude::*;
use cpm_collect::wire::encode_batch;
use cpm_core::{Alpha, PropertySet, SpecKey};
use cpm_serve::frontend::{read_frame, write_frame, WireResponse};
use cpm_serve::prelude::*;

/// A Zipf(1.0)-shaped truth histogram over `0..=n` summing to `total`.
fn zipf_truth(n: usize, total: u64) -> Vec<u64> {
    let weights: Vec<f64> = (0..=n).map(|k| 1.0 / (k + 1) as f64).collect();
    let weight_sum: f64 = weights.iter().sum();
    let mut counts: Vec<u64> = weights
        .iter()
        .map(|w| (w / weight_sum * total as f64).floor() as u64)
        .collect();
    let assigned: u64 = counts.iter().sum();
    counts[0] += total - assigned;
    counts
}

fn truth_as_f64(truth: &[u64]) -> Vec<f64> {
    truth.iter().map(|&c| c as f64).collect()
}

#[test]
#[ignore = "release-mode collect smoke test; run explicitly (see CI workflow)"]
fn million_report_round_trip_meets_the_paper_error_bound() {
    let n = 32;
    let key = SpecKey::new(n, Alpha::new(0.9).unwrap(), PropertySet::empty());
    let truth = zipf_truth(n, 1_000_000);
    let requests: Vec<Request> = truth
        .iter()
        .enumerate()
        .flat_map(|(input, &count)| (0..count).map(move |_| Request::new(key, input)))
        .collect();
    assert_eq!(requests.len(), 1_000_000);

    let engine = Engine::with_defaults();
    engine.set_collecting(true);
    for chunk in requests.chunks(100_000) {
        engine.privatize_batch(chunk).expect("privatize chunk");
    }

    let observed = engine
        .collector()
        .observed(&key)
        .expect("loopback collection populated the key");
    assert_eq!(observed.iter().sum::<u64>(), 1_000_000);

    let design = engine.design(&key).expect("GM design");
    let freq = estimate_from_design(&design, &observed).expect("GM is invertible");
    assert!(
        (freq.estimates.iter().sum::<f64>() - 1_000_000.0).abs() < 1.0,
        "estimates preserve the population total"
    );

    let truth_f = truth_as_f64(&truth);
    let empirical = freq.rmse_against(&truth_f);
    let expected = expected_rmse(design.mechanism(), &truth_f).expect("closed-form bound");
    println!("1M-report round trip: empirical RMSE {empirical:.2}, closed-form {expected:.2}");
    assert!(
        empirical <= 2.0 * expected,
        "empirical RMSE {empirical:.2} exceeds 2x the closed-form bound {expected:.2}"
    );
}

#[test]
#[ignore = "release-mode collect smoke test; run explicitly (see CI workflow)"]
fn stdio_front_end_ingests_binary_report_frames_and_estimates() {
    let n = 32;
    let total: u64 = 100_000;
    let key = SpecKey::new(n, Alpha::new(0.9).unwrap(), PropertySet::empty());
    let truth = zipf_truth(n, total);

    // Draw the reports locally from the same deterministic design the server
    // will invert (the GM at a given (n, α) is closed-form and unique).
    let design = MechanismSpec::new(n, Alpha::new(0.9).unwrap())
        .design()
        .expect("GM design");
    let sampler = design.alias_sampler();
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut reports: Vec<Report> = Vec::with_capacity(total as usize);
    for (input, &count) in truth.iter().enumerate() {
        for _ in 0..count {
            let output = sampler.sample(input, &mut rng) as u32;
            reports.push(Report::new(key, output).expect("in-range output"));
        }
    }

    let bin = env!("CARGO_BIN_EXE_serve_stdio");
    let mut serve = Command::new(bin)
        .env_remove("CPM_OBS")
        .env_remove("CPM_TRACE")
        .env_remove("CPM_SERVE_WARM")
        .env_remove("CPM_WARM_FILE")
        .env_remove("CPM_COLLECT_OUTPUTS")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve_stdio spawns");
    let mut frames = 0;
    {
        let stdin = serve.stdin.as_mut().unwrap();
        // 10k reports per frame: few enough response frames that the stdout
        // pipe cannot fill while we are still writing stdin.
        for chunk in reports.chunks(10_000) {
            let batch = encode_batch(chunk).expect("encodable batch");
            write_frame(stdin, &batch).unwrap();
            frames += 1;
        }
        write_frame(stdin, br#"{"op": "estimate", "n": 32, "alpha": 0.9}"#).unwrap();
        write_frame(stdin, br#"{"op": "shutdown"}"#).unwrap();
    }
    let output = serve.wait_with_output().expect("serve_stdio exits");
    assert!(output.status.success(), "serving process failed");

    let mut cursor = std::io::Cursor::new(output.stdout);
    let mut responses: Vec<WireResponse> = Vec::new();
    while let Some(payload) = read_frame(&mut cursor).unwrap() {
        responses.push(serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap());
    }
    assert_eq!(responses.len(), frames + 2, "report acks + estimate + ack");
    let mut ingested = 0;
    for ack in &responses[..frames] {
        assert!(ack.ok, "report frame rejected: {}", ack.error);
        assert_eq!(ack.rejected, 0);
        ingested += ack.ingested;
    }
    assert_eq!(ingested, total);

    let estimate = &responses[frames];
    assert!(estimate.ok, "estimate op failed: {}", estimate.error);
    assert_eq!(estimate.reports, total);
    assert_eq!(estimate.estimates.len(), n + 1);
    assert!((estimate.estimates.iter().sum::<f64>() - total as f64).abs() < 1.0);

    let truth_f = truth_as_f64(&truth);
    let empirical = (estimate
        .estimates
        .iter()
        .zip(&truth_f)
        .map(|(e, t)| (e - t) * (e - t))
        .sum::<f64>()
        / truth_f.len() as f64)
        .sqrt();
    let expected = expected_rmse(design.mechanism(), &truth_f).expect("closed-form bound");
    println!(
        "100k-report wire round trip: empirical RMSE {empirical:.2}, closed-form {expected:.2}"
    );
    assert!(
        empirical <= 2.0 * expected,
        "empirical RMSE {empirical:.2} exceeds 2x the closed-form bound {expected:.2}"
    );
}

#[test]
#[ignore = "release-mode collect smoke test; run explicitly (see CI workflow)"]
fn single_core_ingest_sustains_a_million_reports_per_second() {
    let key = SpecKey::new(32, Alpha::new(0.9).unwrap(), PropertySet::empty());
    let outputs: Vec<usize> = (0..1_000_000).map(|i| i % 33).collect();

    // Best of a few rounds so one scheduler hiccup cannot fail the floor.
    let mut best = f64::MIN;
    for _ in 0..3 {
        let collector = ReportCollector::new();
        let start = Instant::now();
        let summary = collector.ingest_batch(&key, outputs.iter().copied());
        let elapsed = start.elapsed().as_secs_f64();
        assert_eq!(summary.accepted, 1_000_000);
        best = best.max(1_000_000.0 / elapsed);
    }
    println!("single-core ingest: {:.1}M reports/sec", best / 1e6);
    assert!(
        best >= 1_000_000.0,
        "ingest throughput {best:.0} reports/sec is below the 1M/sec floor"
    );
}

//! Reactor soak: mixed idle + active connections, clean shutdown, no fd leak.
//!
//! The debug-mode test soaks a few hundred connections so `cargo test -q`
//! exercises the reactor's mixed-traffic path on every run; the `#[ignore]`d
//! release variant scales the same scenario to 1k connections for CI
//! (`cargo test --release -p cpm-serve --test reactor_soak -- --ignored`).
//!
//! Every variant checks the property that matters for long-lived servers:
//! after the clients disconnect and the server stops, the process holds
//! exactly as many file descriptors as before the server existed.

use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use cpm_collect::wire::encode_batch;
use cpm_collect::Report;
use cpm_core::{Alpha, PropertySet, SpecKey};
use cpm_serve::net::NetConfig;
use cpm_serve::prelude::*;
use cpm_serve::proto::{self, Op, ProtoConfig};

/// Open file descriptors in this process.
fn fd_count() -> usize {
    std::fs::read_dir("/proc/self/fd")
        .expect("procfs fd dir")
        .count()
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

fn read_response(stream: &mut TcpStream) -> Vec<u8> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("response length");
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut body).expect("response body");
    body
}

/// Drive one active connection through a mixed op sequence: binary stats,
/// JSON privatize, a `CPMR` report batch, and a binary estimate.
fn drive_active(stream: &mut TcpStream, key: SpecKey, ordinal: usize) -> u64 {
    let mut frames = 0;

    let stats = proto::encode_request(&Op::Stats).expect("stats encodes");
    stream.write_all(&frame(&stats)).expect("stats writes");
    let (_, response) = proto::decode_response(&read_response(stream)).expect("stats decodes");
    assert!(response.ok);
    frames += 1;

    let input = ordinal % key.n;
    let json = format!(
        r#"{{"op":"privatize","n":{},"alpha":0.5,"inputs":[{input}]}}"#,
        key.n
    );
    stream
        .write_all(&frame(json.as_bytes()))
        .expect("privatize writes");
    let body = read_response(stream);
    let text = std::str::from_utf8(&body).expect("JSON response is UTF-8");
    assert!(
        text.contains(r#""ok":true"#) || text.contains(r#""ok": true"#),
        "{text}"
    );
    frames += 1;

    let reports: Vec<Report> = (0..4)
        .map(|i| Report {
            key,
            output: ((ordinal + i) % (key.n + 1)) as u32,
        })
        .collect();
    let batch = encode_batch(&reports).expect("batch encodes");
    stream.write_all(&frame(&batch)).expect("batch writes");
    let ack = read_response(stream);
    let ack_text = std::str::from_utf8(&ack).expect("CPMR ack is JSON");
    assert!(
        ack_text.contains(r#""ok":true"#) || ack_text.contains(r#""ok": true"#),
        "{ack_text}"
    );
    frames += 1;

    let estimate = proto::encode_request(&Op::Estimate { key }).expect("estimate encodes");
    stream
        .write_all(&frame(&estimate))
        .expect("estimate writes");
    let (_, response) = proto::decode_response(&read_response(stream)).expect("estimate decodes");
    assert!(response.ok, "estimate failed: {}", response.error);
    frames += 1;

    frames
}

/// One HTTP scrape over its own connection (HTTP mode is one-shot).
fn scrape_metrics(addr: std::net::SocketAddr) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream
        .write_all(b"GET /metrics HTTP/1.0\r\n\r\n")
        .expect("HTTP request writes");
    let mut body = String::new();
    stream
        .read_to_string(&mut body)
        .expect("HTTP response reads");
    assert!(body.starts_with("HTTP/1.0 200 OK\r\n"), "{body}");
    assert!(
        body.contains("cpm_net_active_connections"),
        "scrape carries the catalogue"
    );
}

fn soak(total: usize) {
    let fds_before = fd_count();
    {
        let engine = Arc::new(Engine::with_defaults());
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let config = NetConfig {
            workers: 2,
            max_connections: 16_384,
            idle_timeout: None,
            proto: ProtoConfig::default(),
        };
        let server = Server::tcp_with(engine, listener, config).expect("server spawns");
        let addr = server.local_addr().expect("tcp addr");
        let key = SpecKey::new(4, Alpha::new(0.5).unwrap(), PropertySet::empty());

        // Half the fleet connects and stays silent for the whole soak; the
        // other half works through mixed codecs while the idlers sit there.
        let idle: Vec<TcpStream> = (0..total / 2)
            .map(|_| {
                let stream = TcpStream::connect(addr).expect("idle connect");
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("read timeout");
                stream
            })
            .collect();

        let mut expected_frames = 0;
        let mut active: Vec<TcpStream> = Vec::with_capacity(total - total / 2);
        for ordinal in 0..(total - total / 2) {
            let mut stream = TcpStream::connect(addr).expect("active connect");
            stream
                .set_read_timeout(Some(Duration::from_secs(30)))
                .expect("read timeout");
            expected_frames += drive_active(&mut stream, key, ordinal);
            active.push(stream);
        }
        scrape_metrics(addr);

        // Clean shutdown with every connection still open: the reactor drains
        // intact connections as clean closes.
        drop(idle);
        drop(active);
        let summary = server.stop();
        assert_eq!(
            summary.connections,
            total as u64 + 1,
            "idle + active + HTTP"
        );
        assert!(
            summary.frames >= expected_frames,
            "drained fewer frames ({}) than the clients sent ({expected_frames})",
            summary.frames
        );
        assert_eq!(
            summary.draws,
            (total - total / 2) as u64,
            "one draw per active conn"
        );
    }

    // The listener, every accepted socket, and both ends of each worker's
    // wake pipe must be gone.
    let fds_after = fd_count();
    assert_eq!(
        fds_after, fds_before,
        "fd leak: {fds_before} fds before the soak, {fds_after} after"
    );
}

#[test]
fn mixed_soak_shuts_down_cleanly_without_leaking_fds() {
    soak(256);
}

#[test]
#[ignore = "release-mode reactor soak; run explicitly (see CI workflow)"]
fn thousand_connection_soak_shuts_down_cleanly_without_leaking_fds() {
    soak(1_000);
}

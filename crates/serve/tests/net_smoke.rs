//! Release-mode reactor smoke tests.
//!
//! These are `#[ignore]`d so the ordinary (debug) `cargo test` stays fast; CI
//! runs them explicitly with
//! `cargo test --release -p cpm-serve --test net_smoke -- --ignored`.
//!
//! Covered:
//!
//! * ≥1k concurrent connections served in-process by a reactor sized to
//!   exactly two worker threads (the thread census proves concurrency is
//!   bounded by file descriptors, not threads);
//! * 10k idle connections held open against a real `serve_tcp` process that
//!   stays responsive and keeps a flat thread count — the ISSUE's 10k-idle
//!   acceptance demo.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::process::{Child, Command, Stdio};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cpm_serve::net::NetConfig;
use cpm_serve::prelude::*;
use cpm_serve::proto::{self, Op, ProtoConfig};

/// Threads currently alive in this process (`/proc/self/status`).
fn thread_count_of(pid: &str) -> usize {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).expect("procfs status");
    status
        .lines()
        .find_map(|line| line.strip_prefix("Threads:"))
        .expect("Threads: line")
        .trim()
        .parse()
        .expect("thread count parses")
}

/// Length-prefix one payload.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// One framed binary stats round-trip over an established stream.
fn stats_roundtrip(stream: &mut TcpStream) {
    let payload = proto::encode_request(&Op::Stats).expect("stats encodes");
    stream.write_all(&frame(&payload)).expect("request writes");
    let mut len = [0u8; 4];
    stream.read_exact(&mut len).expect("response length");
    let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
    stream.read_exact(&mut body).expect("response body");
    let (_, response) = proto::decode_response(&body).expect("stats response decodes");
    assert!(response.ok, "stats failed: {}", response.error);
}

fn connect_with_retry(addr: std::net::SocketAddr) -> TcpStream {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match TcpStream::connect(addr) {
            Ok(stream) => {
                stream
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    .expect("read timeout");
                return stream;
            }
            Err(err) if Instant::now() < deadline => {
                // Transient backlog overflow while the reactor drains accepts.
                let _ = err;
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(err) => panic!("connect to {addr} failed past deadline: {err}"),
        }
    }
}

#[test]
#[ignore = "release-mode network smoke test; run explicitly (see CI workflow)"]
fn a_thousand_concurrent_connections_ride_two_worker_threads() {
    const CONNS: usize = 1_000;
    const WORKERS: usize = 2;

    let threads_before = thread_count_of("self");
    let engine = Arc::new(Engine::with_defaults());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let config = NetConfig {
        workers: WORKERS,
        max_connections: 16_384,
        idle_timeout: None,
        proto: ProtoConfig::default(),
    };
    let server = Server::tcp_with(engine, listener, config).expect("server spawns");
    let addr = server.local_addr().expect("tcp addr");

    let threads_with_server = thread_count_of("self");
    assert_eq!(
        threads_with_server - threads_before,
        WORKERS,
        "the reactor serves from exactly the configured worker set"
    );

    // Establish every connection before the first round-trip, so all 1k are
    // concurrently open while being served.
    let started = Instant::now();
    let mut streams: Vec<TcpStream> = (0..CONNS).map(|_| connect_with_retry(addr)).collect();
    for stream in &mut streams {
        stats_roundtrip(stream);
    }
    let elapsed = started.elapsed();

    let threads_under_load = thread_count_of("self");
    assert_eq!(
        threads_under_load - threads_before,
        WORKERS,
        "serving {CONNS} concurrent connections must not spawn extra threads"
    );

    drop(streams);
    let summary = server.stop();
    assert_eq!(summary.connections, CONNS as u64);
    assert_eq!(summary.frames, CONNS as u64);
    println!(
        "net_smoke: {CONNS} concurrent connections on {WORKERS} threads, \
         established+served in {:.2}s",
        elapsed.as_secs_f64()
    );
}

/// A `serve_tcp` child that is killed even when the test panics.
struct ServerProcess {
    child: Child,
    addr: std::net::SocketAddr,
}

impl ServerProcess {
    fn spawn(env: &[(&str, &str)]) -> ServerProcess {
        let mut command = Command::new(env!("CARGO_BIN_EXE_serve_tcp"));
        command
            .env_remove("CPM_SERVE_WARM")
            .env_remove("CPM_WARM_FILE")
            .env_remove("CPM_COLLECT_FLUSH_SECS")
            .env("CPM_SERVE_ADDR", "127.0.0.1:0")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::piped());
        for (key, value) in env {
            command.env(key, value);
        }
        let mut child = command.spawn().expect("serve_tcp spawns");

        // The binary prints "cpm-serve: listening on 127.0.0.1:PORT" once the
        // listener is bound; parse the ephemeral port from that line.
        let stderr = child.stderr.take().expect("stderr piped");
        let mut lines = BufReader::new(stderr).lines();
        let addr = loop {
            let line = lines
                .next()
                .expect("serve_tcp announces its listener")
                .expect("stderr line");
            if let Some(rest) = line.strip_prefix("cpm-serve: listening on ") {
                break rest.trim().parse().expect("listen address parses");
            }
        };
        // Keep draining stderr so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        ServerProcess { child, addr }
    }

    fn threads(&self) -> usize {
        thread_count_of(&self.child.id().to_string())
    }
}

impl Drop for ServerProcess {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
#[ignore = "release-mode network smoke test; run explicitly (see CI workflow)"]
fn ten_thousand_idle_connections_stay_responsive_on_a_flat_thread_count() {
    const IDLE: usize = 10_000;
    const WORKERS: usize = 2;

    let server = ServerProcess::spawn(&[
        ("CPM_NET_WORKERS", "2"),
        ("CPM_NET_MAX_CONNS", "16000"),
        ("CPM_IDLE_TIMEOUT_SECS", "600"),
    ]);

    let started = Instant::now();
    let mut idle: Vec<TcpStream> = (0..IDLE).map(|_| connect_with_retry(server.addr)).collect();
    let established = started.elapsed();

    // Every connection is open and idle; the server must still answer new
    // work promptly and without growing its thread count.
    let threads_under_load = server.threads();
    assert!(
        threads_under_load <= WORKERS + 6,
        "expected a flat thread count under {IDLE} idle connections, got {threads_under_load}"
    );

    let probe_started = Instant::now();
    for stream in idle.iter_mut().step_by(1_000) {
        stats_roundtrip(stream);
    }
    let probe_elapsed = probe_started.elapsed();
    assert!(
        probe_elapsed < Duration::from_secs(5),
        "stats probes under {IDLE} idle connections took {probe_elapsed:?}"
    );

    println!(
        "net_smoke: {IDLE} idle connections established in {:.2}s; \
         {} server threads; {} probes served in {:.1}ms",
        established.as_secs_f64(),
        threads_under_load,
        idle.len().div_ceil(1_000),
        probe_elapsed.as_secs_f64() * 1e3
    );
}

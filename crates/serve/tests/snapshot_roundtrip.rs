//! Cache-snapshot persistence: a warmed cache written to a snapshot file and
//! reloaded — in a fresh cache and in a genuinely fresh process — serves its
//! first request with **zero LP solves**, asserted by the cache counters.

use std::io::Write;
use std::process::{Command, Stdio};

use cpm_core::{Alpha, Property, PropertySet};
use cpm_serve::frontend::{read_frame, write_frame, WireResponse};
use cpm_serve::prelude::*;

fn a(v: f64) -> Alpha {
    Alpha::new(v).unwrap()
}

/// An LP-designed key (WM at strong privacy) plus a closed-form key.
fn warm_keys() -> Vec<SpecKey> {
    vec![
        SpecKey::new(
            8,
            a(0.9),
            PropertySet::empty()
                .with(Property::WeakHonesty)
                .with(Property::ColumnMonotonicity),
        ),
        SpecKey::new(12, a(0.9), PropertySet::empty()),
    ]
}

#[test]
fn reloaded_engine_serves_its_first_request_with_zero_lp_solves() {
    let path =
        std::env::temp_dir().join(format!("cpm-snapshot-engine-{}.json", std::process::id()));
    let keys = warm_keys();

    // Warm an engine (one LP solve for the WM key) and persist the cache.
    let warm_engine = Engine::with_defaults();
    warm_engine.warm(&keys).expect("warm-up succeeds");
    assert_eq!(warm_engine.cache_stats().lp_solves, 1);
    let saved = warm_engine.save_snapshot(&path).expect("snapshot saves");
    assert_eq!(saved, 2);

    // A fresh engine loads the snapshot and serves entirely from it.
    let fresh = Engine::with_defaults();
    let loaded = fresh.load_snapshot(&path).expect("snapshot loads");
    assert_eq!(loaded, 2);
    assert_eq!(fresh.cache_stats().preloaded, 2);

    let requests: Vec<Request> = (0..100).map(|i| Request::new(keys[i % 2], i % 9)).collect();
    let outcome = fresh.privatize_batch(&requests).expect("batch succeeds");
    assert_eq!(outcome.outputs.len(), 100);
    assert_eq!(outcome.stats.cache_hits, 2, "both keys restored from disk");
    assert_eq!(outcome.stats.cache_misses, 0);

    let stats = fresh.cache_stats();
    assert_eq!(stats.lp_solves, 0, "zero LP solves after reload: {stats:?}");
    assert_eq!(stats.design_solves, 0);
    assert_eq!(stats.misses, 0);

    // The restored design draws from the same matrix the warm engine designed.
    let original = warm_engine.design(&keys[0]).unwrap();
    let restored = fresh.design(&keys[0]).unwrap();
    assert_eq!(
        original.mechanism().entries(),
        restored.mechanism().entries(),
        "snapshot restores the designed matrix bit-for-bit"
    );

    let _ = std::fs::remove_file(&path);
}

fn frame(json: &str) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, json.as_bytes()).unwrap();
    bytes
}

/// End-to-end across two real processes: process 1 warms from `CPM_SERVE_WARM`
/// and writes `CPM_WARM_FILE`; process 2 starts with only the warm file and
/// must answer a privatize + stats exchange with `design_solves == 0`.
#[test]
fn fresh_process_with_warm_file_reports_zero_design_solves() {
    let bin = env!("CARGO_BIN_EXE_serve_stdio");
    let path =
        std::env::temp_dir().join(format!("cpm-snapshot-process-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&path);

    // Process 1: warm the WM key (one LP solve) and persist the snapshot.
    let warm = Command::new(bin)
        .env("CPM_SERVE_WARM", "8:0.9:WH+CM")
        .env("CPM_WARM_FILE", &path)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve_stdio spawns");
    warm.stdin
        .as_ref()
        .unwrap()
        .write_all(&frame(r#"{"op": "shutdown"}"#))
        .unwrap();
    let status = warm.wait_with_output().expect("process 1 exits");
    assert!(status.status.success(), "warm process failed");
    assert!(path.exists(), "warm process wrote the snapshot file");

    // Process 2: cold start from the snapshot only — no CPM_SERVE_WARM.
    let mut serve = Command::new(bin)
        .env("CPM_WARM_FILE", &path)
        .env_remove("CPM_SERVE_WARM")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("serve_stdio spawns");
    {
        let stdin = serve.stdin.as_mut().unwrap();
        stdin
            .write_all(&frame(
                r#"{"op": "privatize", "n": 8, "alpha": 0.9, "properties": "WH+CM",
                    "inputs": [0, 4, 8]}"#,
            ))
            .unwrap();
        stdin.write_all(&frame(r#"{"op": "stats"}"#)).unwrap();
        stdin.write_all(&frame(r#"{"op": "shutdown"}"#)).unwrap();
    }
    let output = serve.wait_with_output().expect("process 2 exits");
    assert!(output.status.success(), "serving process failed");

    let mut cursor = std::io::Cursor::new(output.stdout);
    let mut responses: Vec<WireResponse> = Vec::new();
    while let Some(payload) = read_frame(&mut cursor).unwrap() {
        let text = String::from_utf8(payload).unwrap();
        responses.push(serde_json::from_str(&text).unwrap());
    }
    assert_eq!(responses.len(), 3, "privatize + stats + shutdown acks");
    let privatize = &responses[0];
    assert!(privatize.ok, "privatize failed: {}", privatize.error);
    assert_eq!(privatize.outputs.len(), 3);
    assert_eq!(privatize.cache_hits, 1, "the restored key is a pure hit");
    assert_eq!(privatize.cache_misses, 0);
    let stats = &responses[1];
    assert!(stats.ok);
    assert_eq!(
        stats.design_solves, 0,
        "a fresh process serving from the snapshot performs zero designs"
    );

    let _ = std::fs::remove_file(&path);
}

//! Environment-driven start-up shared by the server binaries (`serve_stdio`,
//! `serve_tcp`).
//!
//! Two variables control how a server comes up warm:
//!
//! * `CPM_SERVE_WARM` — semicolon-separated `n:alpha:properties[:objective]`
//!   key specs (e.g. `32:0.9:WH+CM;64:0.9:;16:0.9:F:L1`) designed before the
//!   first frame is read.
//! * `CPM_WARM_FILE` — a snapshot file path.  If the file exists its designs
//!   are loaded *before* warming (so previously-designed keys cost zero LP
//!   solves); after warming, the cache contents are written back (atomically,
//!   and only when they changed), so the next process start pays deploy-time
//!   I/O instead of first-request LP latency.  An unusable snapshot degrades
//!   to a cold start and is rewritten — never a failed start.

use std::io;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use cpm_core::{Alpha, ObjectiveKey, PropertySet, SpecKey};

use crate::engine::Engine;

/// Environment variable naming the warm-start snapshot file.
pub const WARM_FILE_ENV: &str = "CPM_WARM_FILE";

/// Environment variable listing the keys to design at start-up.
pub const WARM_KEYS_ENV: &str = "CPM_SERVE_WARM";

/// Environment variable: seconds between background estimate-snapshot flushes
/// (unset or `0` disables the flusher).
pub const FLUSH_SECS_ENV: &str = "CPM_COLLECT_FLUSH_SECS";

/// Environment variable: the file the estimate flusher writes (default
/// `cpm-estimates.json`).
pub const FLUSH_FILE_ENV: &str = "CPM_COLLECT_FLUSH_FILE";

/// What [`bootstrap`] did, for start-up logging.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BootReport {
    /// Designs restored from the snapshot file.
    pub loaded: usize,
    /// Keys listed in `CPM_SERVE_WARM` (resident or designed after warming).
    pub warmed: usize,
    /// Designs written back to the snapshot file (0 when no file is set).
    pub saved: usize,
}

/// Parse one `n:alpha:properties[:objective]` warm-up spec.  The properties
/// field uses the wire grammar ([`std::str::FromStr`] on [`PropertySet`]); the
/// optional objective defaults to `L0`.
pub fn parse_warm_key(spec: &str) -> Result<SpecKey, String> {
    let mut parts = spec.splitn(4, ':');
    let n: usize = parts
        .next()
        .and_then(|p| p.trim().parse().ok())
        .ok_or_else(|| format!("bad group size in warm spec {spec:?}"))?;
    let alpha: f64 = parts
        .next()
        .and_then(|p| p.trim().parse().ok())
        .ok_or_else(|| format!("bad alpha in warm spec {spec:?}"))?;
    let alpha = Alpha::new(alpha).map_err(|e| e.to_string())?;
    let properties: PropertySet = match parts.next() {
        Some(list) => list
            .parse()
            .map_err(|e| format!("{e} in warm spec {spec:?}"))?,
        None => PropertySet::empty(),
    };
    let objective = match parts.next() {
        Some(name) => ObjectiveKey::parse(name)
            .ok_or_else(|| format!("bad objective {name:?} in warm spec {spec:?}"))?,
        None => ObjectiveKey::L0,
    };
    Ok(SpecKey::with_objective(n, alpha, properties, objective))
}

/// Parse a semicolon-separated list of warm-up specs (empty entries skipped).
pub fn parse_warm_keys(list: &str) -> Result<Vec<SpecKey>, String> {
    list.split(';')
        .filter(|s| !s.trim().is_empty())
        .map(parse_warm_key)
        .collect()
}

/// Bring an engine up warm from the environment: load `CPM_WARM_FILE` (if the
/// file exists), design every `CPM_SERVE_WARM` key not already resident, and
/// write the cache back to `CPM_WARM_FILE` (if set).  Progress goes to stderr.
///
/// α sweeps in the warm list are cheap: [`crate::cache::DesignCache::warm`]
/// groups the keys by `(n, properties, objective)` family and solves each
/// family in α order, chaining dual-simplex warm starts — and designs
/// restored from the snapshot file carry their optimal bases, so even keys
/// *near* (not equal to) a snapshotted α start warm.
pub fn bootstrap(engine: &Engine) -> io::Result<BootReport> {
    // Start the optional CPM_METRICS_DUMP stderr dumper with the server, so
    // both binaries get periodic scrapes without per-binary wiring.
    cpm_obs::start_metrics_dump_from_env();
    let _boot_span = cpm_obs::span!("boot", "bootstrap");
    let mut report = BootReport::default();
    let warm_file = std::env::var(WARM_FILE_ENV).ok().filter(|p| !p.is_empty());
    // Whether an existing warm file was read back successfully; a missing or
    // unusable file must be (re)written even if nothing new is designed.
    let mut loaded_cleanly = false;

    if let Some(path) = &warm_file {
        if std::path::Path::new(path).exists() {
            // A bad snapshot degrades to a cold start, never a failed start —
            // the warm file is an optimisation, not a dependency.
            let load_started = std::time::Instant::now();
            match engine.load_snapshot(path) {
                Ok(loaded) => {
                    report.loaded = loaded;
                    loaded_cleanly = true;
                    cpm_obs::histogram!("cpm_boot_snapshot_load_nanos")
                        .record_duration(load_started.elapsed());
                    eprintln!("cpm-serve: loaded {loaded} design(s) from {path}");
                }
                Err(error) => {
                    eprintln!(
                        "cpm-serve: ignoring unusable warm file {path} ({error}); \
                         starting cold and rewriting it"
                    );
                }
            }
        }
    }

    if let Ok(warm_spec) = std::env::var(WARM_KEYS_ENV) {
        let keys = parse_warm_keys(&warm_spec)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        if !keys.is_empty() {
            eprintln!("cpm-serve: warming {} key(s)...", keys.len());
            engine
                .warm(&keys)
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
            report.warmed = keys.len();
            cpm_obs::counter!("cpm_boot_warm_keys_total").add(keys.len() as u64);
            let stats = engine.cache_stats();
            eprintln!(
                "cpm-serve: warm complete ({} designs, {} LP solves, {:.1} ms designing)",
                stats.design_solves,
                stats.lp_solves,
                stats.design_nanos as f64 / 1e6,
            );
        }
    }

    if let Some(path) = &warm_file {
        // Rewrite only when the file's contents would actually change: a fresh
        // design happened, or the file was absent/unusable.  A restart that
        // merely reloads its own snapshot must not re-open the write window.
        // The merging writer carries over on-disk designs that did not fit
        // this process's cache capacity, and a failed save is a warning — the
        // warm file is an optimisation, never a startup dependency.
        if !loaded_cleanly || engine.cache_stats().design_solves > 0 {
            let save_started = std::time::Instant::now();
            match engine.cache().save_snapshot_file_merging(path) {
                Ok(saved) => {
                    report.saved = saved;
                    cpm_obs::histogram!("cpm_boot_snapshot_save_nanos")
                        .record_duration(save_started.elapsed());
                    eprintln!("cpm-serve: saved {saved} design(s) to {path}");
                }
                Err(error) => {
                    eprintln!("cpm-serve: could not save warm file {path} ({error}); continuing");
                }
            }
        }
    }

    Ok(report)
}

/// A running background estimate flusher.  Dropping (or [`stop`ping]
/// (FlusherHandle::stop)) the handle wakes the thread, runs one final flush,
/// and joins it — collected reports are never lost to a clean shutdown.
pub struct FlusherHandle {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl FlusherHandle {
    /// Signal the flusher, wait for its final flush, and join the thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.handle.take() {
            let (stopped, wake) = &*self.stop;
            *stopped.lock().expect("flusher flag poisoned") = true;
            wake.notify_all();
            let _ = handle.join();
        }
    }
}

impl Drop for FlusherHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Start the background estimate-snapshot flusher if `CPM_COLLECT_FLUSH_SECS`
/// asks for one: every period, every key the collector has reports for is
/// estimated through its designed mechanism and the whole set is written
/// atomically to `CPM_COLLECT_FLUSH_FILE` (default `cpm-estimates.json`), so
/// an operator — or a crash-restarted process — always has a recent view of
/// the collected frequencies without issuing `estimate` ops.
pub fn start_flusher_from_env(engine: &Arc<Engine>) -> Option<FlusherHandle> {
    let period_secs: u64 = std::env::var(FLUSH_SECS_ENV)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(0);
    if period_secs == 0 {
        return None;
    }
    let path = std::env::var(FLUSH_FILE_ENV)
        .ok()
        .filter(|p| !p.is_empty())
        .unwrap_or_else(|| "cpm-estimates.json".to_string());
    eprintln!("cpm-serve: flushing estimates to {path} every {period_secs}s");
    Some(start_flusher(
        Arc::clone(engine),
        path,
        Duration::from_secs(period_secs),
    ))
}

/// Start a flusher with an explicit path and period (the env-driven entry is
/// [`start_flusher_from_env`]).
pub fn start_flusher(engine: Arc<Engine>, path: String, period: Duration) -> FlusherHandle {
    let stop = Arc::new((Mutex::new(false), Condvar::new()));
    let stop_for_thread = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("cpm-collect-flush".to_string())
        .spawn(move || {
            let (stopped, wake) = &*stop_for_thread;
            loop {
                let mut flag = stopped.lock().expect("flusher flag poisoned");
                while !*flag {
                    let (next, timeout) = wake
                        .wait_timeout(flag, period)
                        .expect("flusher flag poisoned");
                    flag = next;
                    if timeout.timed_out() {
                        break;
                    }
                }
                let finishing = *flag;
                drop(flag);
                flush_estimates(&engine, &path);
                if finishing {
                    return;
                }
            }
        })
        .expect("spawning the flusher thread");
    FlusherHandle {
        stop,
        handle: Some(handle),
    }
}

/// One flush pass: estimate every collected key and write the snapshot file.
/// Failures are logged and counted, never fatal — the flusher is an
/// observability aid, not a correctness dependency.
///
/// Keys whose group size exceeds [`crate::proto::MAX_WIRE_N`] are skipped,
/// not designed: the wire paths already refuse to ingest them, but a library
/// caller can feed the engine's collector directly, and the flusher must not
/// be the place where an un-designable key turns into an `(n+1)²` allocation.
fn flush_estimates(engine: &Engine, path: &str) {
    let flush_started = std::time::Instant::now();
    let keys = engine.collector().keys();
    let mut snapshots = Vec::with_capacity(keys.len());
    for key in keys {
        if key.n > crate::proto::MAX_WIRE_N {
            cpm_obs::counter!("cpm_collect_flush_skipped_total").inc();
            continue;
        }
        let Some(observed) = engine.collector().observed(&key) else {
            continue;
        };
        match engine
            .design(&key)
            .map_err(|e| e.to_string())
            .and_then(|design| {
                cpm_collect::estimate_from_design(&design, &observed).map_err(|e| e.to_string())
            }) {
            Ok(estimates) => {
                snapshots.push(cpm_collect::EstimateSnapshot::from_estimates(
                    key, &estimates,
                ));
            }
            Err(error) => {
                // A singular design (e.g. Uniform) has nothing to invert;
                // skip the key rather than aborting the whole flush.
                cpm_obs::counter!("cpm_collect_flush_errors_total").inc();
                cpm_obs::error("collect", format!("flush estimate failed: {error}"));
            }
        }
    }
    if snapshots.is_empty() {
        return;
    }
    match cpm_collect::snapshot::write_file(path, &snapshots) {
        Ok(()) => {
            cpm_obs::counter!("cpm_collect_flushes_total").inc();
            cpm_obs::histogram!("cpm_collect_flush_nanos").record_duration(flush_started.elapsed());
        }
        Err(error) => {
            cpm_obs::counter!("cpm_collect_flush_errors_total").inc();
            eprintln!("cpm-serve: could not flush estimates to {path} ({error}); continuing");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::Property;

    #[test]
    fn warm_specs_parse_the_documented_grammar() {
        let key = parse_warm_key("32:0.9:WH+CM").unwrap();
        assert_eq!(key.n, 32);
        assert_eq!(key.alpha_value().value(), 0.9);
        assert_eq!(
            key.properties,
            PropertySet::empty()
                .with(Property::WeakHonesty)
                .with(Property::ColumnMonotonicity)
        );
        assert_eq!(key.objective, ObjectiveKey::L0);

        // Empty property list and explicit objective.
        let key = parse_warm_key("64:0.9:").unwrap();
        assert_eq!(key.properties, PropertySet::empty());
        let key = parse_warm_key("16:0.9:F:L1").unwrap();
        assert_eq!(key.objective, ObjectiveKey::L1);

        assert!(parse_warm_key("x:0.9:").is_err());
        assert!(parse_warm_key("8:2.0:").is_err());
        assert!(parse_warm_key("8:0.9:XX").is_err());
        assert!(parse_warm_key("8:0.9::nope").is_err());

        let keys = parse_warm_keys("32:0.9:WH+CM; 64:0.9: ;").unwrap();
        assert_eq!(keys.len(), 2);
    }

    #[test]
    fn flusher_skips_keys_beyond_the_serving_ceiling() {
        let engine = Engine::with_defaults();
        // The collector itself admits keys up to cpm_collect::REPORT_MAX_N
        // (library callers ingest directly), but the flusher must not design
        // them — this key would otherwise cost an (n+1)² design matrix.
        let oversized = SpecKey::new(
            crate::proto::MAX_WIRE_N + 1,
            Alpha::new(0.5).unwrap(),
            PropertySet::empty(),
        );
        engine.collector().ingest_batch(&oversized, std::iter::once(0));
        let good = SpecKey::new(4, Alpha::new(0.5).unwrap(), PropertySet::empty());
        engine
            .collector()
            .ingest_batch(&good, (0..100).map(|i| if i < 60 { 0 } else { 4 }));
        let path = std::env::temp_dir().join(format!(
            "cpm-flush-skip-test-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        flush_estimates(&engine, &path.to_string_lossy());
        let snapshots = cpm_collect::snapshot::read_file(&path).unwrap();
        assert_eq!(snapshots.len(), 1, "only the designable key is flushed");
        assert_eq!(snapshots[0].key, good);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn flusher_writes_estimates_and_flushes_once_more_on_stop() {
        let engine = Arc::new(Engine::with_defaults());
        let key = SpecKey::new(4, Alpha::new(0.5).unwrap(), PropertySet::empty());
        engine
            .collector()
            .ingest_batch(&key, (0..100).map(|i| if i < 60 { 0 } else { 4 }));
        let path = std::env::temp_dir().join(format!(
            "cpm-flush-test-{}-{:?}.json",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        // A long period: the only flush is the final one the stop triggers.
        let flusher = start_flusher(
            Arc::clone(&engine),
            path.to_string_lossy().into_owned(),
            Duration::from_secs(3600),
        );
        flusher.stop();
        let snapshots = cpm_collect::snapshot::read_file(&path).unwrap();
        assert_eq!(snapshots.len(), 1);
        assert_eq!(snapshots[0].key, key);
        assert_eq!(snapshots[0].total_reports, 100);
        let _ = std::fs::remove_file(&path);
    }
}

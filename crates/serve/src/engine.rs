//! The batch privatization engine: group → design → shard → draw.
//!
//! [`Engine::privatize_batch`] takes a mixed batch of requests, groups them by
//! mechanism key, resolves every distinct key through the [`DesignCache`]
//! (cold keys fan out across the [`cpm_eval::par`] worker pool and coalesce via
//! single flight), then shards the draws themselves across the same pool.  Each
//! sampling shard owns a dedicated RNG stream seeded from
//! `(engine seed, batch id, stream ordinal)`, so a batch's outputs are a pure
//! function of its contents and seeds — reproducible regardless of how the OS
//! schedules the workers — while distinct shards draw from decorrelated streams.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use cpm_collect::ReportCollector;
use cpm_core::{DesignedMechanism, SpecKey};

use crate::cache::{CacheStats, DesignCache, Lookup};
use crate::error::ServeError;

/// One privatization request: draw one output from the design for `key`,
/// conditioned on the true count `input`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Which mechanism design to draw from.
    pub key: SpecKey,
    /// The true count to privatise (`0..=key.n`).
    pub input: usize,
}

impl Request {
    /// Build a request.
    pub fn new(key: SpecKey, input: usize) -> Self {
        Request { key, input }
    }
}

/// Tuning knobs for an [`Engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Maximum resident designs in the cache.
    pub cache_capacity: usize,
    /// Lock stripes in the cache.
    pub cache_shards: usize,
    /// Base seed; every batch derives its RNG streams from this (and the batch
    /// ordinal), so two engines with the same seed replay identically.
    pub seed: u64,
    /// Minimum draws per sampling shard — below this, fan-out overhead beats the
    /// parallel speedup and the batch stays on fewer workers.
    pub min_chunk: usize,
    /// Whether privatize batches auto-feed their `(key, output)` pairs into
    /// the engine's [`ReportCollector`] (loopback collection; real LDP
    /// deployments leave this off and let clients send reports explicitly).
    pub collect_outputs: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            cache_capacity: 256,
            cache_shards: DesignCache::DEFAULT_SHARDS,
            seed: 0x5EED_CAFE,
            min_chunk: 4096,
            collect_outputs: false,
        }
    }
}

impl EngineConfig {
    /// Read overrides from the environment: `CPM_SERVE_CAPACITY`,
    /// `CPM_SERVE_SHARDS`, `CPM_SERVE_SEED`, `CPM_SERVE_MIN_CHUNK`, and
    /// `CPM_COLLECT_OUTPUTS` (`1`/`on`/`true` turns loopback collection on;
    /// each optional, falling back to the defaults).
    pub fn from_env() -> Self {
        fn env_u64(name: &str) -> Option<u64> {
            std::env::var(name).ok().and_then(|v| v.parse().ok())
        }
        let defaults = EngineConfig::default();
        EngineConfig {
            cache_capacity: env_u64("CPM_SERVE_CAPACITY")
                .map(|v| v as usize)
                .unwrap_or(defaults.cache_capacity),
            cache_shards: env_u64("CPM_SERVE_SHARDS")
                .map(|v| v as usize)
                .unwrap_or(defaults.cache_shards),
            seed: env_u64("CPM_SERVE_SEED").unwrap_or(defaults.seed),
            min_chunk: env_u64("CPM_SERVE_MIN_CHUNK")
                .map(|v| v as usize)
                .unwrap_or(defaults.min_chunk),
            collect_outputs: std::env::var("CPM_COLLECT_OUTPUTS")
                .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "on" | "true"))
                .unwrap_or(defaults.collect_outputs),
        }
    }
}

/// Per-batch accounting returned alongside the outputs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BatchStats {
    /// Requests in the batch.
    pub requests: usize,
    /// Distinct mechanism keys in the batch.
    pub unique_keys: usize,
    /// Keys satisfied by a resident design.
    pub cache_hits: u64,
    /// Keys that waited on a design another thread was already running.
    pub coalesced: u64,
    /// Keys this batch had to design (cold misses).
    pub cache_misses: u64,
    /// The subset of misses whose design ran the simplex (closed forms excluded).
    pub lp_solves: u64,
    /// Wall-clock time of the design phase (cache lookups + any solves).
    pub design_time: Duration,
    /// Wall-clock time of the sampling phase (all draws, fan-out included).
    pub sample_time: Duration,
    /// Sampling shards the batch was split into.
    pub sample_chunks: usize,
}

impl BatchStats {
    /// Draws per second achieved by the sampling phase (0 when empty/instant).
    pub fn draws_per_sec(&self) -> f64 {
        let secs = self.sample_time.as_secs_f64();
        if secs > 0.0 {
            self.requests as f64 / secs
        } else {
            0.0
        }
    }
}

/// The result of privatising one batch.
#[derive(Debug, Clone)]
pub struct BatchOutcome {
    /// One privatised output per request, in request order.
    pub outputs: Vec<usize>,
    /// What it cost.
    pub stats: BatchStats,
}

/// The mechanism-serving engine: a [`DesignCache`] plus the batched sampling
/// fan-out.  Cheap to share (`&Engine` is `Sync`); one engine serves any number
/// of connections or threads.
#[derive(Debug)]
pub struct Engine {
    cache: DesignCache,
    seed: u64,
    min_chunk: usize,
    batches: AtomicU64,
    collector: Arc<ReportCollector>,
    collect_outputs: AtomicBool,
}

impl Engine {
    /// Build an engine from a config.
    pub fn new(config: EngineConfig) -> Self {
        Engine {
            cache: DesignCache::with_shards(config.cache_capacity, config.cache_shards),
            seed: config.seed,
            min_chunk: config.min_chunk.max(1),
            batches: AtomicU64::new(0),
            collector: Arc::new(ReportCollector::new()),
            collect_outputs: AtomicBool::new(config.collect_outputs),
        }
    }

    /// An engine with the default configuration.
    pub fn with_defaults() -> Self {
        Engine::new(EngineConfig::default())
    }

    /// The underlying design cache.
    pub fn cache(&self) -> &DesignCache {
        &self.cache
    }

    /// Snapshot of the cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// The engine's report collector.  Always present (and cheap while
    /// empty): the wire `report` op feeds it whether or not loopback
    /// collection is on.
    pub fn collector(&self) -> &Arc<ReportCollector> {
        &self.collector
    }

    /// Whether privatize batches loop their outputs back into the collector.
    pub fn is_collecting(&self) -> bool {
        self.collect_outputs.load(Ordering::Relaxed)
    }

    /// Flip loopback collection at runtime (also settable at construction via
    /// [`EngineConfig::collect_outputs`] / `CPM_COLLECT_OUTPUTS=1`).
    pub fn set_collecting(&self, on: bool) {
        self.collect_outputs.store(on, Ordering::Relaxed);
    }

    /// Resolve one design through the cache (designing on a cold miss).
    pub fn design(&self, key: &SpecKey) -> Result<Arc<DesignedMechanism>, ServeError> {
        self.cache.get(key)
    }

    /// Precompute the designs for a declared key set (see [`DesignCache::warm`]).
    pub fn warm(&self, keys: &[SpecKey]) -> Result<(), ServeError> {
        self.cache.warm(keys).map(|_| ())
    }

    /// Persist every resident design to `path` (see
    /// [`DesignCache::save_snapshot`]).  Returns the number of designs written.
    pub fn save_snapshot<P: AsRef<std::path::Path>>(&self, path: P) -> std::io::Result<usize> {
        self.cache.save_snapshot_file(path)
    }

    /// Restore designs from a snapshot file written by
    /// [`Engine::save_snapshot`].  Returns the number of designs inserted;
    /// restored keys serve their first request with zero LP solves.
    pub fn load_snapshot<P: AsRef<std::path::Path>>(&self, path: P) -> Result<usize, ServeError> {
        self.cache.load_snapshot_file(path)
    }

    /// Privatise a batch, deriving this batch's RNG streams from the engine seed
    /// and a monotone batch ordinal (two *consecutive* identical batches draw
    /// from different streams; use [`Engine::privatize_batch_seeded`] to replay).
    pub fn privatize_batch(&self, requests: &[Request]) -> Result<BatchOutcome, ServeError> {
        let batch = self.batches.fetch_add(1, Ordering::Relaxed);
        self.privatize_batch_seeded(requests, splitmix64(self.seed ^ splitmix64(batch)))
    }

    /// Privatise a batch with an explicit stream seed: the outputs are a pure
    /// function of `(requests, batch_seed, min_chunk)` — independent of worker
    /// count and scheduling — the reproducibility contract used by the tests and
    /// by replayable deployments.
    pub fn privatize_batch_seeded(
        &self,
        requests: &[Request],
        batch_seed: u64,
    ) -> Result<BatchOutcome, ServeError> {
        if requests.is_empty() {
            return Ok(BatchOutcome {
                outputs: Vec::new(),
                stats: BatchStats::default(),
            });
        }
        let batch_span = cpm_obs::span!("engine", "privatize_batch");
        for (index, request) in requests.iter().enumerate() {
            if request.input > request.key.n {
                return Err(ServeError::InvalidInput {
                    index,
                    input: request.input,
                    n: request.key.n,
                });
            }
        }

        // Group request indices by key, preserving first-appearance order so the
        // chunk layout (and with it every RNG stream) is deterministic.
        let mut group_of: HashMap<SpecKey, usize> = HashMap::new();
        let mut groups: Vec<(SpecKey, Vec<u32>)> = Vec::new();
        for (index, request) in requests.iter().enumerate() {
            let slot = *group_of.entry(request.key).or_insert_with(|| {
                groups.push((request.key, Vec::new()));
                groups.len() - 1
            });
            groups[slot].1.push(index as u32);
        }

        // Design phase: a serial peek sweep satisfies resident keys without
        // touching the worker pool (a warm batch is pure lock-and-look); only
        // keys that are cold — or must wait on an in-flight solve — fan out.
        let design_start = Instant::now();
        let mut resolved: Vec<Option<(Arc<DesignedMechanism>, Lookup)>> = groups
            .iter()
            .map(|(key, _)| self.cache.peek(key).map(|design| (design, Lookup::Hit)))
            .collect();
        let cold: Vec<(usize, SpecKey)> = resolved
            .iter()
            .enumerate()
            .filter(|(_, entry)| entry.is_none())
            .map(|(slot, _)| (slot, groups[slot].0))
            .collect();
        if !cold.is_empty() {
            let outcomes = cpm_eval::par::try_parallel_map(
                cold.iter().map(|&(_, key)| key).collect(),
                |key| self.cache.get_with_outcome(&key),
            )?;
            for ((slot, _), outcome) in cold.into_iter().zip(outcomes) {
                resolved[slot] = Some(outcome);
            }
        }
        let resolved: Vec<(Arc<DesignedMechanism>, Lookup)> = resolved
            .into_iter()
            .map(|entry| entry.expect("every distinct key is resolved by peek or get"))
            .collect();
        let design_time = design_start.elapsed();

        let mut stats = BatchStats {
            requests: requests.len(),
            unique_keys: groups.len(),
            design_time,
            ..BatchStats::default()
        };
        for (design, lookup) in &resolved {
            match lookup {
                Lookup::Hit => stats.cache_hits += 1,
                Lookup::Coalesced => stats.coalesced += 1,
                Lookup::Designed => {
                    stats.cache_misses += 1;
                    if design.used_lp() {
                        stats.lp_solves += 1;
                    }
                }
            }
        }

        // Sampling phase: split each group into shards of `min_chunk` draws, one
        // dedicated RNG stream per shard.  The chunk layout depends only on the
        // batch contents and `min_chunk` — NOT on the worker count — so outputs
        // are identical whether the pool has 1 thread or 64.
        let chunk_len = self.min_chunk;
        let mut tasks: Vec<(Arc<DesignedMechanism>, Vec<u32>, u64)> = Vec::new();
        for ((_, indices), (design, _)) in groups.into_iter().zip(resolved) {
            for chunk in indices.chunks(chunk_len) {
                let stream = tasks.len() as u64;
                tasks.push((Arc::clone(&design), chunk.to_vec(), stream));
            }
        }
        stats.sample_chunks = tasks.len();

        let sample_start = Instant::now();
        let chunk_outputs = cpm_eval::par::parallel_map(tasks, |(design, indices, stream)| {
            // Per-chunk timing is what the thread-scaling probe reads: each
            // chunk runs on one worker, so the chunk-latency histogram is the
            // per-thread view of the sampling phase.
            let chunk_start = Instant::now();
            let mut rng = StdRng::seed_from_u64(splitmix64(
                batch_seed ^ (stream + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            ));
            let outputs: Vec<(u32, usize)> = indices
                .into_iter()
                .map(|index| {
                    let drawn = design
                        .alias_sampler()
                        .sample(requests[index as usize].input, &mut rng);
                    (index, drawn)
                })
                .collect();
            cpm_obs::histogram!("cpm_engine_chunk_nanos").record_duration(chunk_start.elapsed());
            outputs
        });
        stats.sample_time = sample_start.elapsed();

        let mut outputs = vec![0usize; requests.len()];
        for chunk in chunk_outputs {
            for (index, drawn) in chunk {
                outputs[index as usize] = drawn;
            }
        }

        // Loopback collection: feed (key, output) runs into the collector so
        // an estimate can be served without a client-side report round trip.
        if self.collect_outputs.load(Ordering::Relaxed) {
            let mut start = 0;
            while start < requests.len() {
                let key = requests[start].key;
                let mut end = start + 1;
                while end < requests.len() && requests[end].key == key {
                    end += 1;
                }
                self.collector
                    .ingest_batch(&key, outputs[start..end].iter().copied());
                start = end;
            }
        }

        cpm_obs::counter!("cpm_engine_batches_total").inc();
        cpm_obs::counter!("cpm_engine_draws_total").add(stats.requests as u64);
        cpm_obs::histogram!("cpm_engine_batch_nanos").record(batch_span.elapsed_nanos());
        cpm_obs::histogram!("cpm_engine_draws_per_sec").record(stats.draws_per_sec() as u64);
        Ok(BatchOutcome { outputs, stats })
    }
}

/// SplitMix64: decorrelate nearby seeds before they reach xoshiro's SplitMix
/// initialisation (two mixing rounds keep consecutive batch ordinals from
/// producing overlapping streams).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::{Alpha, Property, PropertySet};

    fn key(n: usize, alpha: f64) -> SpecKey {
        SpecKey::new(n, Alpha::new(alpha).unwrap(), PropertySet::empty())
    }

    #[test]
    fn batches_are_reproducible_given_a_seed() {
        let engine = Engine::with_defaults();
        let requests: Vec<Request> = (0..1000)
            .map(|i| Request::new(key(8, 0.5), i % 9))
            .collect();
        let first = engine.privatize_batch_seeded(&requests, 42).unwrap();
        let second = engine.privatize_batch_seeded(&requests, 42).unwrap();
        assert_eq!(first.outputs, second.outputs);
        let different = engine.privatize_batch_seeded(&requests, 43).unwrap();
        assert_ne!(first.outputs, different.outputs);
        assert!(first.outputs.iter().all(|&o| o <= 8));
    }

    #[test]
    fn mixed_key_batches_group_and_report_stats() {
        let engine = Engine::with_defaults();
        let hot = key(6, 0.5);
        let cold = SpecKey::new(
            6,
            Alpha::new(0.9).unwrap(),
            PropertySet::empty().with(Property::WeakHonesty),
        );
        engine.warm(&[hot]).unwrap();
        let requests: Vec<Request> = (0..200)
            .map(|i| {
                if i % 2 == 0 {
                    Request::new(hot, i % 7)
                } else {
                    Request::new(cold, i % 7)
                }
            })
            .collect();
        let outcome = engine.privatize_batch(&requests).unwrap();
        assert_eq!(outcome.outputs.len(), 200);
        assert_eq!(outcome.stats.unique_keys, 2);
        assert_eq!(outcome.stats.cache_hits, 1, "warmed key is a hit");
        assert_eq!(outcome.stats.cache_misses, 1, "cold key designs once");
        assert_eq!(outcome.stats.lp_solves, 1, "WH at n=6, alpha=0.9 is an LP");
        // Second batch: both keys resident now.
        let outcome = engine.privatize_batch(&requests).unwrap();
        assert_eq!(outcome.stats.cache_hits, 2);
        assert_eq!(outcome.stats.cache_misses, 0);
    }

    #[test]
    fn out_of_range_inputs_are_rejected_up_front() {
        let engine = Engine::with_defaults();
        let requests = vec![Request::new(key(4, 0.5), 5)];
        let error = engine.privatize_batch(&requests).unwrap_err();
        assert_eq!(
            error,
            ServeError::InvalidInput {
                index: 0,
                input: 5,
                n: 4
            }
        );
    }

    #[test]
    fn empty_batches_are_a_no_op() {
        let engine = Engine::with_defaults();
        let outcome = engine.privatize_batch(&[]).unwrap();
        assert!(outcome.outputs.is_empty());
        assert_eq!(outcome.stats.requests, 0);
    }

    #[test]
    fn loopback_collection_is_off_by_default_and_exact_when_on() {
        let engine = Engine::with_defaults();
        let hot = key(4, 0.5);
        let cold = key(6, 0.9);
        let requests: Vec<Request> = (0..1000)
            .map(|i| {
                if i % 3 == 0 {
                    Request::new(cold, i % 7)
                } else {
                    Request::new(hot, i % 5)
                }
            })
            .collect();
        engine.privatize_batch_seeded(&requests, 9).unwrap();
        assert!(engine.collector().is_empty(), "collection must be opt-in");

        engine.set_collecting(true);
        assert!(engine.is_collecting());
        let outcome = engine.privatize_batch_seeded(&requests, 9).unwrap();
        // The collector's histograms must equal the batch outputs exactly.
        for k in [hot, cold] {
            let mut expected = vec![0u64; k.n + 1];
            for (request, &output) in requests.iter().zip(&outcome.outputs) {
                if request.key == k {
                    expected[output] += 1;
                }
            }
            assert_eq!(engine.collector().observed(&k).unwrap(), expected);
        }
        assert_eq!(engine.collector().stats().ingested, requests.len() as u64);
    }

    #[test]
    fn batch_outputs_follow_the_mechanism_distribution() {
        // The engine must sample from the actual design: empirical frequencies over
        // a large hot-key batch match the GM column.
        let engine = Engine::with_defaults();
        let k = key(4, 0.5);
        let design = engine.design(&k).unwrap();
        let input = 2usize;
        let requests = vec![Request::new(k, input); 200_000];
        let outcome = engine.privatize_batch_seeded(&requests, 7).unwrap();
        let mut counts = [0usize; 5];
        for &o in &outcome.outputs {
            counts[o] += 1;
        }
        for (i, &count) in counts.iter().enumerate() {
            let empirical = count as f64 / requests.len() as f64;
            let expected = design.mechanism().prob(i, input);
            assert!(
                (empirical - expected).abs() < 0.01,
                "output {i}: {empirical} vs {expected}"
            );
        }
    }
}

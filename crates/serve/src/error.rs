//! Errors surfaced by the serving layer.

use std::fmt;

use cpm_core::{CoreError, SpecKey};

/// Everything that can go wrong between a request arriving and a draw leaving.
///
/// `Clone` matters here: a failed design must be broadcast to every request that
/// coalesced onto the in-flight solve, so the error is stored once in the flight
/// slot and cloned out to each waiter.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// Designing the mechanism for `key` failed (invalid parameters, LP failure).
    Design {
        /// The cache key whose design failed.
        key: SpecKey,
        /// The underlying core error.
        source: CoreError,
    },
    /// The thread designing `key` panicked; waiters are released with this error
    /// and the key is cleared so a later request can retry.
    DesignPanicked {
        /// The cache key whose designer died.
        key: SpecKey,
    },
    /// A request's true count exceeds the group size of its key.
    InvalidInput {
        /// Position of the offending request within the batch.
        index: usize,
        /// The out-of-range true count.
        input: usize,
        /// The group size the key allows (valid counts are `0..=n`).
        n: usize,
    },
    /// A malformed wire request (unknown op, bad α, unparsable properties...).
    Protocol(String),
    /// A cache snapshot failed to parse or contained an invalid design.
    Snapshot(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Design { key, source } => {
                write!(f, "designing mechanism for {key} failed: {source}")
            }
            ServeError::DesignPanicked { key } => {
                write!(
                    f,
                    "the thread designing {key} panicked; key cleared for retry"
                )
            }
            ServeError::InvalidInput { index, input, n } => write!(
                f,
                "request #{index}: true count {input} exceeds group size {n}"
            ),
            ServeError::Protocol(message) => write!(f, "protocol error: {message}"),
            ServeError::Snapshot(message) => write!(f, "snapshot error: {message}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Design { source, .. } => Some(source),
            _ => None,
        }
    }
}

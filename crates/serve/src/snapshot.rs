//! Offline snapshot-file tooling: read, write, merge, and filter
//! `CPM_WARM_FILE` design snapshots without standing up a [`DesignCache`].
//!
//! A snapshot is a JSON array of [`DesignedMechanism`] artifacts.  The running
//! cache reads and writes them through
//! [`DesignCache::load_snapshot_file`](crate::DesignCache::load_snapshot_file) /
//! [`DesignCache::save_snapshot_file_merging`](crate::DesignCache::save_snapshot_file_merging);
//! this module is the everything-else path — the `cpm-snapshot` inspector
//! binary, tests, and scripts that stitch warm files together between runs.
//!
//! [`DesignCache`]: crate::DesignCache

use std::borrow::Borrow;
use std::io;
use std::path::Path;

use cpm_core::{Alpha, DesignedMechanism, ObjectiveKey, PropertySet, SpecKey};

use crate::error::ServeError;

/// Parse a snapshot file into its design artifacts, preserving file order.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Vec<DesignedMechanism>, ServeError> {
    let path = path.as_ref();
    let text = std::fs::read_to_string(path)
        .map_err(|e| ServeError::Snapshot(format!("reading {}: {e}", path.display())))?;
    serde_json::from_str(&text)
        .map_err(|e| ServeError::Snapshot(format!("parsing {}: {e}", path.display())))
}

/// Write designs as a snapshot file, atomically (`.tmp` sibling + rename), so
/// a concurrently-loading server never observes a torn file.
pub fn write_file<P: AsRef<Path>, D: Borrow<DesignedMechanism>>(
    path: P,
    designs: &[D],
) -> io::Result<()> {
    let path = path.as_ref();
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp);
    let by_ref: Vec<&DesignedMechanism> = designs.iter().map(|d| d.borrow()).collect();
    let text = serde_json::to_string(&by_ref)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    {
        use std::io::Write as _;
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(text.as_bytes())?;
        file.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// Union several snapshots into one, sorted by [`SpecKey`].  On a key
/// collision the artifact from the *earliest* snapshot wins, matching the
/// resident-wins rule of
/// [`DesignCache::save_snapshot_file_merging`](crate::DesignCache::save_snapshot_file_merging).
pub fn merge(snapshots: Vec<Vec<DesignedMechanism>>) -> Vec<DesignedMechanism> {
    let mut seen = std::collections::HashSet::new();
    let mut merged: Vec<DesignedMechanism> = snapshots
        .into_iter()
        .flatten()
        .filter(|design| seen.insert(design.key()))
        .collect();
    merged.sort_by_key(|design| design.key());
    merged
}

/// A conjunctive [`SpecKey`] filter: within each populated dimension the key
/// must equal one of the listed values; an empty dimension matches everything.
#[derive(Debug, Default, Clone)]
pub struct KeyFilter {
    /// Accepted group sizes.
    pub n: Vec<usize>,
    /// Accepted privacy parameters, matched bit-exactly through
    /// [`Alpha::key`] — `0.76` selects only designs keyed at exactly `0.76`.
    pub alpha: Vec<Alpha>,
    /// Accepted requested-property sets, compared pre-closure (as keyed):
    /// `{CM}` and `{CM, CH, WH}` are distinct.
    pub properties: Vec<PropertySet>,
    /// Accepted design objectives.
    pub objective: Vec<ObjectiveKey>,
}

impl KeyFilter {
    /// Whether no dimension is populated (and hence every key matches).
    pub fn is_empty(&self) -> bool {
        self.n.is_empty()
            && self.alpha.is_empty()
            && self.properties.is_empty()
            && self.objective.is_empty()
    }

    /// Whether `key` satisfies every populated dimension.
    pub fn matches(&self, key: &SpecKey) -> bool {
        (self.n.is_empty() || self.n.contains(&key.n))
            && (self.alpha.is_empty() || self.alpha.iter().any(|a| a.key() == key.alpha))
            && (self.properties.is_empty() || self.properties.contains(&key.properties))
            && (self.objective.is_empty() || self.objective.contains(&key.objective))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::{MechanismSpec, Property};

    fn design(n: usize, alpha: f64) -> DesignedMechanism {
        MechanismSpec::new(n, Alpha::new(alpha).unwrap())
            .design()
            .unwrap()
    }

    #[test]
    fn write_then_read_round_trips_keys_and_matrices() {
        let dir = std::env::temp_dir().join("cpm_snapshot_roundtrip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snap.json");
        let designs = vec![design(4, 0.5), design(6, 0.76)];
        write_file(&path, &designs).unwrap();
        let restored = read_file(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.len(), 2);
        for (a, b) in designs.iter().zip(&restored) {
            assert_eq!(a.key(), b.key());
            assert_eq!(a.mechanism().entries(), b.mechanism().entries());
        }
    }

    #[test]
    fn merge_is_first_wins_and_key_sorted() {
        let a = design(4, 0.5);
        let b = design(6, 0.76);
        // Same key as `a` from a "later" file: must lose the collision.
        let a_again = design(4, 0.5);
        let merged = merge(vec![vec![b.clone()], vec![a.clone(), a_again]]);
        assert_eq!(merged.len(), 2);
        let keys: Vec<SpecKey> = merged.iter().map(|d| d.key()).collect();
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn filter_dimensions_are_conjunctive_and_empty_matches_all() {
        let key = SpecKey::new(
            6,
            Alpha::new(0.76).unwrap(),
            PropertySet::from_iter([Property::WeakHonesty]),
        );
        assert!(KeyFilter::default().matches(&key));
        let mut filter = KeyFilter {
            n: vec![6],
            alpha: vec![Alpha::new(0.76).unwrap()],
            ..KeyFilter::default()
        };
        assert!(filter.matches(&key));
        filter.n = vec![4];
        assert!(
            !filter.matches(&key),
            "n mismatch must veto despite α match"
        );
        filter.n.push(6);
        assert!(filter.matches(&key), "any-of within a dimension");
        filter.objective = vec![ObjectiveKey::L1];
        assert!(!filter.matches(&key));
    }
}

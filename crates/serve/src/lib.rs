//! # cpm-serve — the mechanism-serving subsystem
//!
//! The paper's deliverable is a *mechanism*: a column-stochastic matrix that,
//! once designed (via LP or closed form), privatizes group counts one draw at a
//! time.  The rest of the workspace designs matrices and runs offline
//! experiments; this crate serves draws under load.  Design is expensive
//! (seconds of simplex) but perfectly amortizable — real deployments ask for the
//! same `(n, α, properties, objective)` design millions of times — while a draw
//! through an alias table costs `O(1)`.
//!
//! ## Request path
//!
//! ```text
//!            ┌────────────────────────── cpm-serve ──────────────────────────┐
//!            │                                                               │
//!  request   │  ┌───────────────┐      ┌──────────────────┐                  │
//!  (n, α,  ──┼─▶│ SpecKey       │─────▶│   DesignCache    │── miss ──┐       │
//!  props,    │  │ (bit-exact α  │      │ sharded stripes, │          ▼       │
//!  obj,      │  │  via AlphaKey)│      │ single-flight,   │   ┌─────────────┐│
//!  count j)  │  └───────────────┘      │ LRU, warm()      │   │ Figure-5    ││
//!            │                         └────────┬─────────┘   │ selection / ││
//!            │                                  │ hit         │ WM LP solve ││
//!            │                                  ▼             │ (cpm-core + ││
//!            │                         ┌──────────────────┐   │ cpm-simplex)││
//!            │                         │ Arc<Designed-    │◀──┴─────────────┘│
//!            │                         │   Mechanism>     │                  │
//!            │                         │ matrix + stats + │                  │
//!            │                         │ lazy samplers    │                  │
//!            │                         └────────┬─────────┘                  │
//!            │                                  │                            │
//!            │                                  ▼                            │
//!            │                         ┌──────────────────┐                  │
//!  output  ◀─┼─────────────────────────│ AliasSampler     │                  │
//!  (draw i)  │                         │ O(1) Walker/Vose │                  │
//!            │                         │ draw, column j   │                  │
//!            │                         └──────────────────┘                  │
//!            └───────────────────────────────────────────────────────────────┘
//! ```
//!
//! Batches take the same path in bulk: [`Engine::privatize_batch`] groups
//! requests by key, resolves every distinct key through the cache (cold LP
//! solves run concurrently on the [`cpm_eval::par`] pool; concurrent requests
//! for the *same* cold key coalesce onto one solve), then shards the draws
//! across the pool with one seeded, reproducible RNG stream per shard.
//!
//! ## Serving I/O: reactor + codec split
//!
//! The I/O stack layers a readiness-driven reactor over one transport-agnostic
//! protocol state machine, so every transport and codec shares a single
//! dispatcher:
//!
//! ```text
//!            ┌──────────────────────── crate::net ────────────────────────┐
//!            │  worker 0                      workers 1..N                │
//!            │  ┌─────────────────┐           ┌──────────────────────┐    │
//!  clients ──┼─▶│ nonblocking     │ round-    │ poll(2) over wake    │    │
//!            │  │ listener +      │──robin───▶│ pipe + owned conns   │    │
//!            │  │ poll(2) + conns │ injection │ (buffers, idle reap) │    │
//!            │  └────────┬────────┘  queues   └──────────┬───────────┘    │
//!            └───────────┼────────────────────────────────┼───────────────┘
//!                        │ raw bytes in / response bytes out
//!                        ▼                                ▼
//!            ┌─────────────────────── crate::proto ───────────────────────┐
//!            │  ProtoConnection: sniff ─▶ frame ─▶ decode ─▶ dispatch     │
//!            │                                                            │
//!            │  first bytes:  "GET "  ──▶ HTTP GET /metrics (one-shot)    │
//!            │  frame payload: b"CPMF" ─▶ compact binary codec (cpm-wire) │
//!            │                 b"CPMR" ─▶ binary report batch             │
//!            │                 else    ─▶ JSON (WireRequest/WireResponse) │
//!            │                                                            │
//!            │  every codec ──▶ Op ──▶ dispatch_op(engine) ──▶ response   │
//!            │  (report ops pass a per-connection token bucket first)     │
//!            └────────────────────────────────────────────────────────────┘
//!                        ▲
//!                        │ blocking Read/Write adapter
//!            ┌───────────┴───────────┐
//!            │ crate::frontend::serve_connection (stdio bin, tests)       │
//!            └────────────────────────────────────────────────────────────┘
//! ```
//!
//! ## Pieces
//!
//! * [`key`] — re-exports the cache identity, [`cpm_core::SpecKey`]: the
//!   bit-exact projection of a [`cpm_core::MechanismSpec`].  The serving layer
//!   no longer defines its own key type.
//! * [`cache`] — [`DesignCache`]: lock-striped, single-flight, LRU-bounded,
//!   storing `Arc<DesignedMechanism>` artifacts, with [`DesignCache::warm`]
//!   precomputation, hit/miss/solve counters, and snapshot
//!   save/load persistence.
//! * [`engine`] — [`Engine`]: batched privatization with per-batch
//!   [`BatchStats`] (hits, misses, design time, sample time).
//! * [`proto`] — the transport-agnostic protocol state machine: bytes in,
//!   response bytes out.  One dispatcher serves three frame codecs (JSON,
//!   compact `b"CPMF"` binary, `b"CPMR"` report batches) plus a content-
//!   negotiated `GET /metrics` HTTP mode, with per-connection report rate
//!   limiting.
//! * [`frontend`] — the blocking `Read`/`Write` adapter over [`proto`] (the
//!   `serve_stdio` binary serves stdin/stdout) and the JSON request/response
//!   types.
//! * [`net`] — the poll(2) reactor serving [`proto`] over TCP / unix sockets
//!   (the `serve_tcp` binary): a fixed worker set owns every connection, so
//!   concurrency is bounded by file descriptors, not threads.
//! * [`boot`] — environment-driven start-up: `CPM_SERVE_WARM` key specs and
//!   `CPM_WARM_FILE` snapshot load/save shared by the binaries, plus the
//!   `CPM_COLLECT_FLUSH_SECS` background estimate-snapshot flusher.
//! * [`snapshot`] — offline snapshot-file helpers (read / atomic write /
//!   merge / [`snapshot::KeyFilter`]) behind the `cpm-snapshot` inspector
//!   binary, for stitching warm files together between runs.
//! * [`workload`] — hot-key / Zipf-mix / cold-storm request generators shared
//!   by the `serve_probe` bin, the `serving_throughput` bench, and the demo.
//!
//! ## The collect loop
//!
//! Serving draws is half of a local-differential-privacy deployment; the
//! other half is *collecting* the privatized outputs and estimating the true
//! input-frequency histogram.  Every [`Engine`] owns a
//! [`cpm_collect::ReportCollector`] ([`Engine::collector`]); reports reach it
//! three ways:
//!
//! * binary `b"CPMR"` report frames on any front-end connection (the
//!   line-rate path — see [`frontend`] for the grammar);
//! * the JSON `{"op":"report"}` fallback;
//! * engine loopback — [`Engine::set_collecting`] (or
//!   `CPM_COLLECT_OUTPUTS=1`) makes `privatize_batch` feed its own outputs
//!   straight into the collector, closing the loop in one process.
//!
//! `{"op":"estimate"}` then inverts the designed mechanism matrix over the
//! accumulated histogram (`cpm_collect::estimate_from_design`, inverse cached
//! on the [`cpm_core::DesignedMechanism`]) and returns unbiased estimates
//! with plug-in variances.
//!
//! ## Observability
//!
//! Every layer above reports into the [`cpm_obs`] telemetry crate: the cache
//! keeps live hit/miss/evict/coalesce counters and a resident-entries gauge,
//! the engine records per-batch and per-chunk latency histograms, the wire
//! front end counts and times each op (and answers the `metrics` op with a
//! Prometheus-style scrape of the whole registry), the TCP listener tracks
//! connection lifecycle, and boot times snapshot load/save.  Tracing is gated
//! by `CPM_TRACE`, periodic stderr scrapes by `CPM_METRICS_DUMP`, and the
//! whole subsystem by `CPM_OBS=0`.  See the `cpm-obs` front page for the full
//! metric catalogue.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod boot;
pub mod cache;
pub mod engine;
pub mod error;
pub mod frontend;
pub mod key;
pub mod net;
pub mod proto;
pub mod snapshot;
pub mod workload;

#[allow(deprecated)]
pub use cache::Design;
pub use cache::{CacheStats, DesignCache, Lookup};
pub use engine::{BatchOutcome, BatchStats, Engine, EngineConfig, Request};
pub use error::ServeError;
pub use frontend::{serve_connection, ConnectionSummary, WireRequest, WireResponse};
#[allow(deprecated)]
pub use key::MechanismKey;
pub use key::{ObjectiveKey, SpecKey};
pub use net::{Server, ServerSummary};
pub use proto::{Op, ProtoConfig, ProtoConnection};

/// Commonly used items, re-exported for `use cpm_serve::prelude::*`.
pub mod prelude {
    pub use crate::boot::{bootstrap, BootReport};
    pub use crate::cache::{CacheStats, DesignCache, Lookup};
    pub use crate::engine::{BatchOutcome, BatchStats, Engine, EngineConfig, Request};
    pub use crate::error::ServeError;
    pub use crate::frontend::{serve_connection, ConnectionSummary};
    pub use crate::key::{ObjectiveKey, SpecKey};
    pub use crate::net::{Server, ServerSummary};
    pub use crate::workload::{hot_key_requests, zipf_requests};
    pub use cpm_core::{DesignedMechanism, MechanismSpec};
}

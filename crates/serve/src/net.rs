//! Socket front ends: a readiness-driven poll reactor serving the protocol
//! state machine of [`crate::proto`] over TCP or unix-domain sockets.
//!
//! One [`Engine`] serves any number of connections on a **fixed-size worker
//! set** (no thread per connection): each worker owns a slice of the
//! connections outright and drives them with `poll(2)` over nonblocking
//! sockets (the workspace's only unsafe OS surface, wrapped by `cpm-sys`).
//! Worker 0 additionally owns the nonblocking listener; accepted sockets are
//! handed round-robin to the workers through per-worker injection queues,
//! each paired with a wake pipe so a sleeping worker picks its new
//! connections up immediately.
//!
//! Per connection the worker keeps a [`ProtoConnection`] — the same pull-based
//! state machine the blocking stdio front end drives — plus read/write
//! buffers, so ten thousand idle connections cost ten thousand file
//! descriptors and a few kilobytes each, not ten thousand OS threads.
//! Connections idle past [`NetConfig::idle_timeout`] are reaped.  A `shutdown`
//! op closes *that connection only* (after its acknowledgement flushes); the
//! listener keeps accepting.  [`Server::stop`] signals every worker through
//! its wake pipe and drains gracefully: pending responses are flushed
//! best-effort, every socket is closed, and the workers are joined.
//! [`Server::wait`] parks the caller on the worker set forever (the
//! `serve_tcp` binary's main thread does this).

use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cpm_sys::{poll_ready, PollFd, POLLIN, POLLOUT};

use crate::engine::Engine;
use crate::proto::{ProtoConfig, ProtoConnection};

/// Cumulative totals across every connection a [`Server`] has finished serving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Connections accepted and completed.
    pub connections: u64,
    /// Frames processed across all connections.
    pub frames: u64,
    /// Privatised draws returned across all connections.
    pub draws: u64,
}

#[derive(Default)]
struct Totals {
    connections: AtomicU64,
    frames: AtomicU64,
    draws: AtomicU64,
}

impl Totals {
    fn summary(&self) -> ServerSummary {
        ServerSummary {
            connections: self.connections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            draws: self.draws.load(Ordering::Relaxed),
        }
    }
}

/// Reactor sizing and lifecycle knobs.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Reactor worker threads (each owns its connections outright); at least 1.
    pub workers: usize,
    /// Ceiling on concurrently open connections across all workers;
    /// connections beyond it are closed at accept time.
    pub max_connections: usize,
    /// Close connections with no traffic for this long (`None` = never).
    pub idle_timeout: Option<Duration>,
    /// Per-connection protocol configuration (report rate limit, HTTP sniff).
    pub proto: ProtoConfig,
}

/// Default idle reap horizon: generous enough for interactive clients, finite
/// so leaked connections cannot pin file descriptors forever.
const DEFAULT_IDLE_TIMEOUT: Duration = Duration::from_secs(600);

/// Back-off window after an accept failure (e.g. fd exhaustion) or a
/// rejection burst at the connection ceiling, so the reactor does not spin on
/// a listener whose backlog it cannot drain productively.
const ACCEPT_BACKOFF: Duration = Duration::from_millis(20);

/// Minimum interval between "connection limit reached" log lines; rejections
/// themselves are not limited, only the stderr noise they generate.
const CEILING_LOG_INTERVAL: Duration = Duration::from_secs(1);

fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok())
}

impl Default for NetConfig {
    /// Defaults, each overridable from the environment: `CPM_NET_WORKERS`
    /// (default: available parallelism capped at 4), `CPM_NET_MAX_CONNS`
    /// (default 16384), `CPM_IDLE_TIMEOUT_SECS` (default 600; `0` disables),
    /// plus everything [`ProtoConfig::from_env`] reads.
    fn default() -> Self {
        let workers = env_usize("CPM_NET_WORKERS")
            .filter(|&w| w > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
                    .min(4)
            });
        let max_connections = env_usize("CPM_NET_MAX_CONNS")
            .filter(|&m| m > 0)
            .unwrap_or(16_384);
        let idle_timeout = match env_usize("CPM_IDLE_TIMEOUT_SECS") {
            Some(0) => None,
            Some(secs) => Some(Duration::from_secs(secs as u64)),
            None => Some(DEFAULT_IDLE_TIMEOUT),
        };
        NetConfig {
            workers,
            max_connections,
            idle_timeout,
            proto: ProtoConfig::from_env(),
        }
    }
}

/// A listener the generic reactor can drive: TCP or unix-domain.
trait Acceptor: Send + 'static {
    type Conn: io::Read + io::Write + AsRawFd + Send + 'static;
    fn accept_conn(&self) -> io::Result<Self::Conn>;
    fn shutdown_conn(conn: &Self::Conn);
    fn set_listener_nonblocking(&self) -> io::Result<()>;
    fn set_conn_nonblocking(conn: &Self::Conn) -> io::Result<()>;
    fn listener_fd(&self) -> RawFd;
}

impl Acceptor for TcpListener {
    type Conn = TcpStream;

    fn accept_conn(&self) -> io::Result<TcpStream> {
        self.accept().map(|(stream, _)| stream)
    }

    fn shutdown_conn(conn: &TcpStream) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }

    fn set_listener_nonblocking(&self) -> io::Result<()> {
        self.set_nonblocking(true)
    }

    fn set_conn_nonblocking(conn: &TcpStream) -> io::Result<()> {
        conn.set_nonblocking(true)
    }

    fn listener_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

impl Acceptor for std::os::unix::net::UnixListener {
    type Conn = UnixStream;

    fn accept_conn(&self) -> io::Result<Self::Conn> {
        self.accept().map(|(stream, _)| stream)
    }

    fn shutdown_conn(conn: &Self::Conn) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }

    fn set_listener_nonblocking(&self) -> io::Result<()> {
        self.set_nonblocking(true)
    }

    fn set_conn_nonblocking(conn: &Self::Conn) -> io::Result<()> {
        conn.set_nonblocking(true)
    }

    fn listener_fd(&self) -> RawFd {
        self.as_raw_fd()
    }
}

/// A running socket server: one engine, a fixed set of reactor workers.
pub struct Server {
    workers: Vec<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    wakers: Vec<UnixStream>,
    totals: Arc<Totals>,
    tcp_addr: Option<SocketAddr>,
}

impl Server {
    /// Serve the engine over a bound TCP listener with default sizing.  Bind
    /// to port 0 to let the OS pick (the chosen address is
    /// [`Server::local_addr`]).
    pub fn tcp(engine: Arc<Engine>, listener: TcpListener) -> io::Result<Server> {
        Server::tcp_with(engine, listener, NetConfig::default())
    }

    /// Serve over TCP with explicit reactor sizing.
    pub fn tcp_with(
        engine: Arc<Engine>,
        listener: TcpListener,
        config: NetConfig,
    ) -> io::Result<Server> {
        let addr = listener.local_addr()?;
        Server::spawn(engine, listener, Some(addr), config)
    }

    /// Serve the engine over a bound unix-domain listener with default sizing.
    pub fn unix(
        engine: Arc<Engine>,
        listener: std::os::unix::net::UnixListener,
    ) -> io::Result<Server> {
        Server::unix_with(engine, listener, NetConfig::default())
    }

    /// Serve over a unix-domain socket with explicit reactor sizing.
    pub fn unix_with(
        engine: Arc<Engine>,
        listener: std::os::unix::net::UnixListener,
        config: NetConfig,
    ) -> io::Result<Server> {
        Server::spawn(engine, listener, None, config)
    }

    fn spawn<A: Acceptor>(
        engine: Arc<Engine>,
        listener: A,
        tcp_addr: Option<SocketAddr>,
        config: NetConfig,
    ) -> io::Result<Server> {
        listener.set_listener_nonblocking()?;
        let worker_count = config.workers.max(1);
        let stop = Arc::new(AtomicBool::new(false));
        let totals = Arc::new(Totals::default());
        let active = Arc::new(AtomicUsize::new(0));

        let mut wake_readers = Vec::with_capacity(worker_count);
        let mut wakers = Vec::with_capacity(worker_count);
        let mut injectors: Vec<Arc<Mutex<VecDeque<A::Conn>>>> = Vec::with_capacity(worker_count);
        for _ in 0..worker_count {
            let (rx, tx) = UnixStream::pair()?;
            rx.set_nonblocking(true)?;
            tx.set_nonblocking(true)?;
            wake_readers.push(rx);
            wakers.push(tx);
            injectors.push(Arc::new(Mutex::new(VecDeque::new())));
        }
        let lanes: Vec<Lane<A::Conn>> = injectors
            .iter()
            .zip(&wakers)
            .map(|(injector, waker)| {
                Ok(Lane {
                    injector: Arc::clone(injector),
                    waker: waker.try_clone()?,
                })
            })
            .collect::<io::Result<_>>()?;
        cpm_obs::gauge!("cpm_net_workers").set(worker_count as i64);

        let mut workers = Vec::with_capacity(worker_count);
        let mut listener = Some(listener);
        let mut lanes = Some(lanes);
        for (id, wake_rx) in wake_readers.into_iter().enumerate() {
            let acceptor = if id == 0 {
                Some(AcceptState {
                    listener: listener.take().expect("worker 0 takes the listener"),
                    lanes: lanes.take().expect("worker 0 takes the lanes"),
                    rr: 0,
                    last_ceiling_log: None,
                    backoff_until: None,
                })
            } else {
                None
            };
            let reactor = Reactor::<A> {
                engine: Arc::clone(&engine),
                wake_rx,
                injector: Arc::clone(&injectors[id]),
                acceptor,
                stop: Arc::clone(&stop),
                totals: Arc::clone(&totals),
                active: Arc::clone(&active),
                config,
                conns: HashMap::new(),
                next_token: 0,
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("cpm-net-{id}"))
                    .spawn(move || reactor.run())?,
            );
        }
        Ok(Server {
            workers,
            stop,
            wakers,
            totals,
            tcp_addr,
        })
    }

    /// The TCP address the server is listening on (`None` for unix sockets).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Totals so far (connections still in flight are not counted).
    pub fn summary(&self) -> ServerSummary {
        self.totals.summary()
    }

    /// Stop accepting, drain and close every connection, join the workers, and
    /// return the totals.
    pub fn stop(mut self) -> ServerSummary {
        self.shutdown();
        self.totals.summary()
    }

    /// Park the caller on the worker set until the process dies — the main
    /// thread of a server binary ends up here.
    pub fn wait(mut self) {
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }

    fn shutdown(&mut self) {
        if self.workers.is_empty() {
            return;
        }
        self.stop.store(true, Ordering::SeqCst);
        // Each worker observes the flag at its next wake-up; the pipe write
        // forces that wake-up immediately (a full pipe means the worker has
        // wake-ups pending anyway).
        for waker in &self.wakers {
            let _ = (&*waker).write(&[1]);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One worker's handle to another worker: its injection queue and wake pipe.
struct Lane<C> {
    injector: Arc<Mutex<VecDeque<C>>>,
    waker: UnixStream,
}

/// Worker 0's accept-side state.
struct AcceptState<A: Acceptor> {
    listener: A,
    lanes: Vec<Lane<A::Conn>>,
    rr: usize,
    last_ceiling_log: Option<Instant>,
    backoff_until: Option<Instant>,
}

/// One connection as a reactor worker sees it.
struct Conn<C> {
    stream: C,
    proto: ProtoConnection,
    last_activity: Instant,
    peer_eof: bool,
}

enum CloseKind {
    /// Peer finished cleanly (or drain/shutdown closed an intact connection):
    /// counted into the server totals.
    Clean,
    /// Reaped by the idle timeout; counted like a clean close.
    Idle,
    /// Protocol or I/O failure; counted in `cpm_net_conn_errors_total` only.
    Error(String),
}

enum Outcome {
    Keep,
    Close(CloseKind),
}

struct Reactor<A: Acceptor> {
    engine: Arc<Engine>,
    wake_rx: UnixStream,
    injector: Arc<Mutex<VecDeque<A::Conn>>>,
    acceptor: Option<AcceptState<A>>,
    stop: Arc<AtomicBool>,
    totals: Arc<Totals>,
    active: Arc<AtomicUsize>,
    config: NetConfig,
    conns: HashMap<u64, Conn<A::Conn>>,
    next_token: u64,
}

impl<A: Acceptor> Reactor<A> {
    fn run(mut self) {
        let mut read_buf = vec![0u8; 64 * 1024];
        let mut pollfds: Vec<PollFd> = Vec::new();
        let mut tokens: Vec<u64> = Vec::new();
        loop {
            self.drain_wake();
            self.pull_injected();
            if self.stop.load(Ordering::SeqCst) {
                break;
            }

            pollfds.clear();
            tokens.clear();
            pollfds.push(PollFd::new(self.wake_rx.as_raw_fd(), POLLIN));
            let mut listener_slot = None;
            if let Some(accept) = &self.acceptor {
                let backing_off = accept
                    .backoff_until
                    .is_some_and(|until| Instant::now() < until);
                if !backing_off {
                    listener_slot = Some(pollfds.len());
                    pollfds.push(PollFd::new(accept.listener.listener_fd(), POLLIN));
                }
            }
            let conn_base = pollfds.len();
            let mut eager_close: Vec<u64> = Vec::new();
            for (&token, conn) in &self.conns {
                let mut events = 0i16;
                // After peer EOF only the unflushed output matters; EOF keeps
                // the socket permanently readable, so re-arming POLLIN would
                // spin the worker until the peer drains its side.  A closing
                // connection stops reading too: the state machine discards
                // post-close bytes anyway, and a peer that keeps writing must
                // not keep refreshing the idle clock while refusing to read
                // the response that would let the connection close.
                if !conn.peer_eof && !conn.proto.closing() {
                    events |= POLLIN;
                }
                if !conn.proto.pending_output().is_empty() {
                    events |= POLLOUT;
                }
                if events == 0 {
                    eager_close.push(token);
                    continue;
                }
                pollfds.push(PollFd::new(conn.stream.as_raw_fd(), events));
                tokens.push(token);
            }
            for token in eager_close {
                self.close(token, CloseKind::Clean);
            }

            match poll_ready(&mut pollfds, self.poll_timeout_ms()) {
                Ok(_) => {}
                Err(error) => {
                    eprintln!("cpm-serve: poll failed: {error}");
                    std::thread::sleep(Duration::from_millis(10));
                    continue;
                }
            }

            if let Some(slot) = listener_slot {
                if pollfds[slot].readable() {
                    self.accept_ready();
                }
            }
            for (i, &token) in tokens.iter().enumerate() {
                let slot = &pollfds[conn_base + i];
                let readable = slot.readable();
                let writable = slot.writable();
                if readable || writable {
                    self.service(token, readable, writable, &mut read_buf);
                }
            }
            self.sweep_idle();
        }
        self.drain();
    }

    /// Consume queued wake-up bytes so the pipe does not stay readable.
    fn drain_wake(&mut self) {
        let mut buf = [0u8; 256];
        loop {
            match self.wake_rx.read(&mut buf) {
                Ok(0) => return,
                Ok(_) => continue,
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return,
            }
        }
    }

    /// Register connections the acceptor queued for this worker.
    fn pull_injected(&mut self) {
        loop {
            let stream = self.injector.lock().expect("injector poisoned").pop_front();
            let Some(stream) = stream else { return };
            cpm_obs::counter!("cpm_net_connections_total").inc();
            cpm_obs::gauge!("cpm_net_active_connections").add(1);
            let token = self.next_token;
            self.next_token += 1;
            self.conns.insert(
                token,
                Conn {
                    stream,
                    proto: ProtoConnection::new(self.config.proto),
                    last_activity: Instant::now(),
                    peer_eof: false,
                },
            );
        }
    }

    fn poll_timeout_ms(&self) -> i32 {
        let mut timeout = Duration::from_millis(1000);
        if let Some(accept) = &self.acceptor {
            if let Some(until) = accept.backoff_until {
                let remaining = until.saturating_duration_since(Instant::now());
                timeout = timeout.min(remaining.max(Duration::from_millis(1)));
            }
        }
        timeout.as_millis() as i32
    }

    /// Accept until the backlog is dry, assigning connections round-robin.
    fn accept_ready(&mut self) {
        let Some(accept) = self.acceptor.as_mut() else {
            return;
        };
        loop {
            let conn = match accept.listener.accept_conn() {
                Ok(conn) => conn,
                Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                    accept.backoff_until = None;
                    return;
                }
                Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
                Err(error) => {
                    // Persistent failures (e.g. fd exhaustion under load)
                    // would otherwise re-arm the listener instantly and spin.
                    eprintln!("cpm-serve: accept failed: {error}");
                    accept.backoff_until = Some(Instant::now() + ACCEPT_BACKOFF);
                    return;
                }
            };
            if self.active.load(Ordering::Relaxed) >= self.config.max_connections {
                // Close immediately (the client sees EOF and can retry)
                // instead of queueing unboundedly, then back off: at the
                // ceiling the next accept would almost certainly be rejected
                // too.
                let now = Instant::now();
                if accept
                    .last_ceiling_log
                    .is_none_or(|last| now - last >= CEILING_LOG_INTERVAL)
                {
                    let limit = self.config.max_connections;
                    eprintln!("cpm-serve: at the {limit}-connection limit; rejecting");
                    accept.last_ceiling_log = Some(now);
                }
                cpm_obs::counter!("cpm_net_rejections_total").inc();
                A::shutdown_conn(&conn);
                accept.backoff_until = Some(now + ACCEPT_BACKOFF);
                return;
            }
            if let Err(error) = A::set_conn_nonblocking(&conn) {
                eprintln!("cpm-serve: configuring connection failed: {error}");
                continue;
            }
            self.active.fetch_add(1, Ordering::Relaxed);
            let lane = &accept.lanes[accept.rr % accept.lanes.len()];
            accept.rr += 1;
            lane.injector
                .lock()
                .expect("injector poisoned")
                .push_back(conn);
            // A full wake pipe already guarantees a pending wake-up.
            let _ = (&lane.waker).write(&[1]);
        }
    }

    /// Drive one ready connection: flush, read + ingest, flush again, close
    /// if the protocol or the peer is done.
    fn service(&mut self, token: u64, readable: bool, writable: bool, buf: &mut [u8]) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let mut outcome = Outcome::Keep;
        if writable {
            outcome = flush(conn);
        }
        if matches!(outcome, Outcome::Keep) && readable {
            outcome = fill(&self.engine, conn, buf);
        }
        if matches!(outcome, Outcome::Keep) {
            outcome = flush(conn);
        }
        if matches!(outcome, Outcome::Keep)
            && (conn.proto.wants_close()
                || (conn.peer_eof && conn.proto.pending_output().is_empty()))
        {
            outcome = Outcome::Close(CloseKind::Clean);
        }
        if let Outcome::Close(kind) = outcome {
            self.close(token, kind);
        }
    }

    /// Reap connections idle past the configured horizon.
    fn sweep_idle(&mut self) {
        let Some(timeout) = self.config.idle_timeout else {
            return;
        };
        let now = Instant::now();
        let expired: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, conn)| now.duration_since(conn.last_activity) > timeout)
            .map(|(&token, _)| token)
            .collect();
        for token in expired {
            cpm_obs::counter!("cpm_net_idle_closed_total").inc();
            self.close(token, CloseKind::Idle);
        }
    }

    /// Graceful drain on stop: flush what can be flushed without blocking,
    /// classify each connection (clean unless it died mid-frame), close all.
    fn drain(&mut self) {
        self.pull_injected();
        let tokens: Vec<u64> = self.conns.keys().copied().collect();
        for token in tokens {
            let kind = match self
                .conns
                .get_mut(&token)
                .expect("token collected from the live map")
                .proto
                .finish()
            {
                Ok(()) => CloseKind::Clean,
                Err(error) => CloseKind::Error(error.to_string()),
            };
            self.close(token, kind);
        }
    }

    fn close(&mut self, token: u64, kind: CloseKind) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        // Best-effort final flush — a drained `shutdown` ack or error response
        // should reach a reading peer.
        let _ = flush(&mut conn);
        self.active.fetch_sub(1, Ordering::Relaxed);
        cpm_obs::gauge!("cpm_net_active_connections").add(-1);
        match kind {
            CloseKind::Clean | CloseKind::Idle => {
                let summary = conn.proto.summary();
                self.totals.connections.fetch_add(1, Ordering::Relaxed);
                self.totals
                    .frames
                    .fetch_add(summary.frames, Ordering::Relaxed);
                self.totals
                    .draws
                    .fetch_add(summary.draws, Ordering::Relaxed);
            }
            CloseKind::Error(message) => {
                eprintln!("cpm-serve: connection failed: {message}");
                cpm_obs::counter!("cpm_net_conn_errors_total").inc();
                cpm_obs::error("net", format!("connection failed: {message}"));
                cpm_obs::flight::dump("frontend connection error");
            }
        }
    }
}

/// Read everything the socket has, feeding the state machine.
fn fill<C: io::Read + io::Write>(engine: &Engine, conn: &mut Conn<C>, buf: &mut [u8]) -> Outcome {
    loop {
        match conn.stream.read(buf) {
            Ok(0) => {
                conn.peer_eof = true;
                return match conn.proto.finish() {
                    // The caller closes once pending output is flushed.
                    Ok(()) => Outcome::Keep,
                    Err(error) => Outcome::Close(CloseKind::Error(error.to_string())),
                };
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                cpm_obs::counter!("cpm_net_bytes_in_total").add(n as u64);
                if let Err(error) = conn.proto.ingest(engine, &buf[..n]) {
                    return Outcome::Close(CloseKind::Error(error.to_string()));
                }
                if conn.proto.closing() {
                    // Post-shutdown bytes are never processed; stop reading.
                    return Outcome::Keep;
                }
            }
            Err(error) if error.kind() == io::ErrorKind::WouldBlock => return Outcome::Keep,
            Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
            Err(error) => return Outcome::Close(CloseKind::Error(error.to_string())),
        }
    }
}

/// Write as much pending output as the socket accepts.
fn flush<C: io::Read + io::Write>(conn: &mut Conn<C>) -> Outcome {
    loop {
        let pending = conn.proto.pending_output();
        if pending.is_empty() {
            return Outcome::Keep;
        }
        match conn.stream.write(pending) {
            Ok(0) => {
                return Outcome::Close(CloseKind::Error(
                    "connection refused response bytes".to_string(),
                ))
            }
            Ok(n) => {
                conn.last_activity = Instant::now();
                cpm_obs::counter!("cpm_net_bytes_out_total").add(n as u64);
                conn.proto.advance_output(n);
            }
            Err(error) if error.kind() == io::ErrorKind::WouldBlock => return Outcome::Keep,
            Err(error) if error.kind() == io::ErrorKind::Interrupted => continue,
            Err(error) => return Outcome::Close(CloseKind::Error(error.to_string())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::frontend::{read_frame, write_frame, WireResponse};
    use std::io::{Read, Write};

    fn roundtrip<S: Read + Write>(stream: &mut S, request: &str) -> WireResponse {
        write_frame(stream, request.as_bytes()).unwrap();
        let payload = read_frame(stream).unwrap().expect("a response frame");
        serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap()
    }

    #[test]
    fn tcp_server_serves_and_stops() {
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = Server::tcp(Arc::clone(&engine), listener).unwrap();
        let addr = server.local_addr().unwrap();

        let mut stream = TcpStream::connect(addr).unwrap();
        let response = roundtrip(
            &mut stream,
            r#"{"op": "privatize", "n": 6, "alpha": 0.5, "inputs": [0, 3, 6]}"#,
        );
        assert!(response.ok, "error: {}", response.error);
        assert_eq!(response.outputs.len(), 3);
        roundtrip(&mut stream, r#"{"op": "shutdown"}"#);
        drop(stream);

        let summary = server.stop();
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.frames, 2);
        assert_eq!(summary.draws, 3);
    }

    #[test]
    fn unix_server_serves_over_a_socket_file() {
        use std::os::unix::net::{UnixListener, UnixStream};
        let path = std::env::temp_dir().join(format!("cpm-serve-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let listener = UnixListener::bind(&path).unwrap();
        let server = Server::unix(Arc::clone(&engine), listener).unwrap();

        let mut stream = UnixStream::connect(&path).unwrap();
        let response = roundtrip(
            &mut stream,
            r#"{"op": "privatize", "n": 4, "alpha": 0.5, "inputs": [2]}"#,
        );
        assert!(response.ok, "error: {}", response.error);
        assert_eq!(response.outputs.len(), 1);
        drop(stream);

        let summary = server.stop();
        assert_eq!(summary.connections, 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn http_metrics_scrape_rides_the_reactor() {
        cpm_obs::counter!("cpm_net_connections_total").inc();
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = Server::tcp(Arc::clone(&engine), listener).unwrap();
        let addr = server.local_addr().unwrap();

        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(b"GET /metrics HTTP/1.0\r\nHost: x\r\n\r\n")
            .unwrap();
        let mut body = String::new();
        stream.read_to_string(&mut body).unwrap();
        assert!(body.starts_with("HTTP/1.0 200 OK\r\n"), "{body}");
        assert!(body.contains("cpm_net_connections_total"), "{body}");
        server.stop();
    }

    #[test]
    fn reactor_uses_the_configured_worker_count() {
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let config = NetConfig {
            workers: 3,
            ..NetConfig::default()
        };
        let server = Server::tcp_with(Arc::clone(&engine), listener, config).unwrap();
        assert_eq!(server.workers.len(), 3);
        let addr = server.local_addr().unwrap();
        // Several concurrent connections all get served despite the fixed
        // worker set.
        let mut streams: Vec<TcpStream> =
            (0..6).map(|_| TcpStream::connect(addr).unwrap()).collect();
        for stream in &mut streams {
            let response = roundtrip(stream, r#"{"op": "stats"}"#);
            assert!(response.ok, "error: {}", response.error);
        }
        drop(streams);
        let summary = server.stop();
        assert_eq!(summary.connections, 6);
        assert_eq!(summary.frames, 6);
    }
}

//! Socket front ends: a blocking accept loop serving the length-prefixed JSON
//! protocol of [`crate::frontend`] over TCP or unix-domain sockets.
//!
//! One [`Engine`] serves any number of connections: the accept thread spawns a
//! blocking connection thread per client, each running
//! [`crate::frontend::serve_connection`] until the client disconnects or sends
//! a `shutdown` op (which closes *that connection only* — the listener keeps
//! accepting).  [`Server::stop`] shuts the listener down and joins every
//! connection thread; [`Server::wait`] parks the caller on the accept loop
//! forever (the `serve_tcp` binary's main thread does this).

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use crate::engine::Engine;
use crate::frontend::serve_connection;

/// Cumulative totals across every connection a [`Server`] has finished serving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerSummary {
    /// Connections accepted and completed.
    pub connections: u64,
    /// Frames processed across all connections.
    pub frames: u64,
    /// Privatised draws returned across all connections.
    pub draws: u64,
}

#[derive(Default)]
struct Totals {
    connections: AtomicU64,
    frames: AtomicU64,
    draws: AtomicU64,
}

impl Totals {
    fn summary(&self) -> ServerSummary {
        ServerSummary {
            connections: self.connections.load(Ordering::Relaxed),
            frames: self.frames.load(Ordering::Relaxed),
            draws: self.draws.load(Ordering::Relaxed),
        }
    }
}

/// A listener the generic accept loop can drive: TCP or unix-domain.
trait Acceptor: Send + 'static {
    type Conn: io::Read + io::Write + Send + 'static;
    fn accept_conn(&self) -> io::Result<Self::Conn>;
    fn clone_conn(conn: &Self::Conn) -> io::Result<Self::Conn>;
    /// Close both directions so a thread blocked reading the stream unblocks.
    fn shutdown_conn(conn: &Self::Conn);
    /// Put the *listener* into non-blocking mode (the accept loop polls it so
    /// a stop request is observed without any wake-up connection).
    fn set_listener_nonblocking(&self) -> io::Result<()>;
    /// Put an accepted *connection* back into blocking mode (whether accepted
    /// sockets inherit the listener's non-blocking flag is platform-specific).
    fn set_conn_blocking(conn: &Self::Conn) -> io::Result<()>;
}

/// A live connection's join handle plus a closure that shuts its socket down.
/// The accept loop's final drain closes each socket *before* joining its
/// thread, so an idle client can never block shutdown.
type ConnRegistry = Mutex<Vec<(JoinHandle<()>, Box<dyn Fn() + Send>)>>;

impl Acceptor for TcpListener {
    type Conn = TcpStream;

    fn accept_conn(&self) -> io::Result<TcpStream> {
        self.accept().map(|(stream, _)| stream)
    }

    fn clone_conn(conn: &TcpStream) -> io::Result<TcpStream> {
        conn.try_clone()
    }

    fn shutdown_conn(conn: &TcpStream) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }

    fn set_listener_nonblocking(&self) -> io::Result<()> {
        self.set_nonblocking(true)
    }

    fn set_conn_blocking(conn: &TcpStream) -> io::Result<()> {
        conn.set_nonblocking(false)
    }
}

#[cfg(unix)]
impl Acceptor for std::os::unix::net::UnixListener {
    type Conn = std::os::unix::net::UnixStream;

    fn accept_conn(&self) -> io::Result<Self::Conn> {
        self.accept().map(|(stream, _)| stream)
    }

    fn clone_conn(conn: &Self::Conn) -> io::Result<Self::Conn> {
        conn.try_clone()
    }

    fn shutdown_conn(conn: &Self::Conn) {
        let _ = conn.shutdown(std::net::Shutdown::Both);
    }

    fn set_listener_nonblocking(&self) -> io::Result<()> {
        self.set_nonblocking(true)
    }

    fn set_conn_blocking(conn: &Self::Conn) -> io::Result<()> {
        conn.set_nonblocking(false)
    }
}

/// A running socket server: one engine, one accept thread, N blocking
/// connection threads.
pub struct Server {
    accept_handle: Option<JoinHandle<()>>,
    stop: Arc<AtomicBool>,
    totals: Arc<Totals>,
    tcp_addr: Option<SocketAddr>,
}

impl Server {
    /// Serve the engine over a bound TCP listener.  Bind to port 0 to let the
    /// OS pick (the chosen address is [`Server::local_addr`]).
    pub fn tcp(engine: Arc<Engine>, listener: TcpListener) -> io::Result<Server> {
        let addr = listener.local_addr()?;
        Server::spawn(engine, listener, Some(addr))
    }

    /// Serve the engine over a bound unix-domain listener at `path`.
    #[cfg(unix)]
    pub fn unix(
        engine: Arc<Engine>,
        listener: std::os::unix::net::UnixListener,
    ) -> io::Result<Server> {
        Server::spawn(engine, listener, None)
    }

    fn spawn<A: Acceptor>(
        engine: Arc<Engine>,
        listener: A,
        tcp_addr: Option<SocketAddr>,
    ) -> io::Result<Server> {
        // The accept loop polls a non-blocking listener: a stop request is
        // observed within one poll interval, with no wake-up connection whose
        // failure could leave the loop parked forever.
        listener.set_listener_nonblocking()?;
        let stop = Arc::new(AtomicBool::new(false));
        let totals = Arc::new(Totals::default());
        let accept_handle = {
            let stop = Arc::clone(&stop);
            let totals = Arc::clone(&totals);
            std::thread::Builder::new()
                .name("cpm-serve-accept".to_string())
                .spawn(move || accept_loop(engine, listener, stop, totals))?
        };
        Ok(Server {
            accept_handle: Some(accept_handle),
            stop,
            totals,
            tcp_addr,
        })
    }

    /// The TCP address the server is listening on (`None` for unix sockets).
    pub fn local_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Totals so far (connections still in flight are not counted).
    pub fn summary(&self) -> ServerSummary {
        self.totals.summary()
    }

    /// Stop accepting, join every connection thread, and return the totals.
    pub fn stop(mut self) -> ServerSummary {
        self.shutdown();
        self.totals.summary()
    }

    /// Park the caller on the accept loop until the process dies — the main
    /// thread of a server binary ends up here.
    pub fn wait(mut self) {
        if let Some(handle) = self.accept_handle.take() {
            let _ = handle.join();
        }
    }

    fn shutdown(&mut self) {
        if let Some(handle) = self.accept_handle.take() {
            self.stop.store(true, Ordering::SeqCst);
            // The accept thread observes the flag within one poll interval and
            // its drain closes every live connection socket before joining the
            // thread, so this join cannot block on an idle client.
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// How long the accept loop sleeps between polls when no client is waiting —
/// also the worst-case latency for observing a stop request.
const ACCEPT_POLL: std::time::Duration = std::time::Duration::from_millis(20);

/// Ceiling on concurrently served connections (each costs one blocking OS
/// thread); connections beyond it are closed at accept time.
const MAX_CONNECTIONS: usize = 1024;

/// Minimum interval between "connection limit reached" log lines; rejections
/// themselves are not limited, only the stderr noise they generate.
const CEILING_LOG_INTERVAL: std::time::Duration = std::time::Duration::from_secs(1);

fn accept_loop<A: Acceptor>(
    engine: Arc<Engine>,
    listener: A,
    stop: Arc<AtomicBool>,
    totals: Arc<Totals>,
) {
    let connections: ConnRegistry = Mutex::new(Vec::new());
    let mut last_ceiling_log: Option<std::time::Instant> = None;
    while !stop.load(Ordering::SeqCst) {
        let conn = match listener.accept_conn() {
            Ok(conn) => conn,
            Err(error) if error.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
            Err(error) => {
                eprintln!("cpm-serve: accept failed: {error}");
                // Persistent failures (e.g. fd exhaustion under load) would
                // otherwise busy-spin this loop at full speed.
                std::thread::sleep(std::time::Duration::from_millis(50));
                continue;
            }
        };
        if let Err(error) = A::set_conn_blocking(&conn) {
            eprintln!("cpm-serve: configuring connection failed: {error}");
            continue;
        }
        // Backpressure: one OS thread per connection needs a ceiling, or a
        // client farm holding idle connections exhausts threads/memory.  At
        // the limit the connection is closed immediately (the client sees EOF
        // and can retry) instead of queueing unboundedly.
        {
            let mut handles = connections.lock().expect("registry poisoned");
            handles.retain(|(h, _)| !h.is_finished());
            if handles.len() >= MAX_CONNECTIONS {
                drop(handles);
                // Rate-limit the log line: a client farm retrying against a
                // saturated listener would otherwise flood stderr.
                let now = std::time::Instant::now();
                if last_ceiling_log.is_none_or(|last| now - last >= CEILING_LOG_INTERVAL) {
                    eprintln!("cpm-serve: at the {MAX_CONNECTIONS}-connection limit; rejecting");
                    last_ceiling_log = Some(now);
                }
                cpm_obs::counter!("cpm_net_rejections_total").inc();
                A::shutdown_conn(&conn);
                // Back off before re-polling: at the ceiling the next accept
                // would almost certainly be rejected too, and rejecting in a
                // tight loop spins this thread at full CPU while the farm
                // hammers the listener.  The pause also gives the serving
                // threads a chance to finish and free slots.
                std::thread::sleep(ACCEPT_POLL);
                continue;
            }
        }
        let engine = Arc::clone(&engine);
        let totals_for_conn = Arc::clone(&totals);
        let closer = match A::clone_conn(&conn) {
            Ok(clone) => clone,
            Err(error) => {
                eprintln!("cpm-serve: cloning connection failed: {error}");
                continue;
            }
        };
        let handle = std::thread::Builder::new()
            .name("cpm-serve-conn".to_string())
            .spawn(move || {
                let mut writer = conn;
                let mut reader = match A::clone_conn(&writer) {
                    Ok(reader) => reader,
                    Err(error) => {
                        eprintln!("cpm-serve: cloning connection failed: {error}");
                        return;
                    }
                };
                cpm_obs::counter!("cpm_net_connections_total").inc();
                cpm_obs::gauge!("cpm_net_active_connections").add(1);
                match serve_connection(&engine, &mut reader, &mut writer) {
                    Ok(summary) => {
                        totals_for_conn.connections.fetch_add(1, Ordering::Relaxed);
                        totals_for_conn
                            .frames
                            .fetch_add(summary.frames, Ordering::Relaxed);
                        totals_for_conn
                            .draws
                            .fetch_add(summary.draws, Ordering::Relaxed);
                    }
                    Err(error) => {
                        eprintln!("cpm-serve: connection failed: {error}");
                        cpm_obs::counter!("cpm_net_conn_errors_total").inc();
                        cpm_obs::error("net", format!("connection failed: {error}"));
                        cpm_obs::flight::dump("frontend connection error");
                    }
                }
                cpm_obs::gauge!("cpm_net_active_connections").add(-1);
            });
        match handle {
            Ok(handle) => {
                let mut handles = connections.lock().expect("registry poisoned");
                // Reap finished threads so the list stays bounded under churn.
                handles.retain(|(h, _)| !h.is_finished());
                handles.push((handle, Box::new(move || A::shutdown_conn(&closer))));
            }
            Err(error) => eprintln!("cpm-serve: spawning connection thread failed: {error}"),
        }
    }
    // Drain: shut every live connection's socket down first (unblocking its
    // read), then join the thread.
    let handles: Vec<_> = std::mem::take(&mut *connections.lock().expect("registry poisoned"));
    for (handle, close) in handles {
        close();
        let _ = handle.join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use crate::frontend::{read_frame, write_frame, WireResponse};
    use std::io::{Read, Write};

    fn roundtrip<S: Read + Write>(stream: &mut S, request: &str) -> WireResponse {
        write_frame(stream, request.as_bytes()).unwrap();
        let payload = read_frame(stream).unwrap().expect("a response frame");
        serde_json::from_str(std::str::from_utf8(&payload).unwrap()).unwrap()
    }

    #[test]
    fn tcp_server_serves_and_stops() {
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let server = Server::tcp(Arc::clone(&engine), listener).unwrap();
        let addr = server.local_addr().unwrap();

        let mut stream = TcpStream::connect(addr).unwrap();
        let response = roundtrip(
            &mut stream,
            r#"{"op": "privatize", "n": 6, "alpha": 0.5, "inputs": [0, 3, 6]}"#,
        );
        assert!(response.ok, "error: {}", response.error);
        assert_eq!(response.outputs.len(), 3);
        roundtrip(&mut stream, r#"{"op": "shutdown"}"#);
        drop(stream);

        let summary = server.stop();
        assert_eq!(summary.connections, 1);
        assert_eq!(summary.frames, 2);
        assert_eq!(summary.draws, 3);
    }

    #[cfg(unix)]
    #[test]
    fn unix_server_serves_over_a_socket_file() {
        use std::os::unix::net::{UnixListener, UnixStream};
        let path = std::env::temp_dir().join(format!("cpm-serve-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let engine = Arc::new(Engine::new(EngineConfig::default()));
        let listener = UnixListener::bind(&path).unwrap();
        let server = Server::unix(Arc::clone(&engine), listener).unwrap();

        let mut stream = UnixStream::connect(&path).unwrap();
        let response = roundtrip(
            &mut stream,
            r#"{"op": "privatize", "n": 4, "alpha": 0.5, "inputs": [2]}"#,
        );
        assert!(response.ok, "error: {}", response.error);
        assert_eq!(response.outputs.len(), 1);
        drop(stream);

        let summary = server.stop();
        assert_eq!(summary.connections, 1);
        let _ = std::fs::remove_file(&path);
    }
}

//! Serving-workload generators: the request mixes every perf probe, bench, and
//! demo replays.
//!
//! Three scenarios cover the serving design space:
//!
//! * **hot key** — every request hits one resident design (pure sampling
//!   throughput);
//! * **Zipf mix** — requests spread over `k` keys with rank-`s` popularity
//!   (cache-hit path under realistic skew);
//! * **cold-start storm** — many concurrent requesters race disjoint-or-shared
//!   cold keys (single-flight and LP amortisation under worst-case arrival).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::engine::Request;
use cpm_core::SpecKey;

/// The CDF of a Zipf(`exponent`) distribution over ranks `0..k`:
/// `Pr[rank = r] ∝ 1 / (r + 1)^exponent`.
pub fn zipf_cdf(k: usize, exponent: f64) -> Vec<f64> {
    assert!(k > 0, "a Zipf mix needs at least one rank");
    let mut cdf: Vec<f64> = Vec::with_capacity(k);
    let mut running = 0.0;
    for rank in 0..k {
        running += 1.0 / ((rank + 1) as f64).powf(exponent);
        cdf.push(running);
    }
    let total = running;
    for mass in cdf.iter_mut() {
        *mass /= total;
    }
    // Exact tail so u ~ Uniform[0,1) always resolves (same contract as the
    // mechanism samplers).
    cdf[k - 1] = 1.0;
    cdf
}

/// Draw one rank from a CDF built by [`zipf_cdf`].
pub fn sample_rank<R: Rng + ?Sized>(cdf: &[f64], rng: &mut R) -> usize {
    let u: f64 = rng.gen();
    cdf.partition_point(|&mass| mass <= u).min(cdf.len() - 1)
}

/// Generate `count` requests over `keys` with Zipf(`exponent`) key popularity and
/// uniform true counts, deterministically from `seed`.
pub fn zipf_requests(keys: &[SpecKey], exponent: f64, count: usize, seed: u64) -> Vec<Request> {
    assert!(!keys.is_empty(), "a request mix needs at least one key");
    let cdf = zipf_cdf(keys.len(), exponent);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let key = keys[sample_rank(&cdf, &mut rng)];
            let input = rng.gen_range(0..=key.n);
            Request::new(key, input)
        })
        .collect()
}

/// Generate `count` hot-key requests (a single key, uniform true counts).
pub fn hot_key_requests(key: SpecKey, count: usize, seed: u64) -> Vec<Request> {
    zipf_requests(&[key], 1.0, count, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::{Alpha, PropertySet};

    #[test]
    fn zipf_cdf_is_monotone_and_ends_at_one() {
        let cdf = zipf_cdf(10, 1.1);
        assert_eq!(cdf.len(), 10);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(cdf[9], 1.0);
        // Rank 0 dominates under a skewed exponent.
        assert!(cdf[0] > 0.3);
    }

    #[test]
    fn zipf_requests_cover_keys_with_rank_skew() {
        let alpha = Alpha::new(0.9).unwrap();
        let keys: Vec<SpecKey> = (4..12)
            .map(|n| SpecKey::new(n, alpha, PropertySet::empty()))
            .collect();
        let requests = zipf_requests(&keys, 1.2, 20_000, 3);
        assert_eq!(requests.len(), 20_000);
        assert!(requests.iter().all(|r| r.input <= r.key.n));
        let head = requests.iter().filter(|r| r.key == keys[0]).count();
        let tail = requests.iter().filter(|r| r.key == keys[7]).count();
        assert!(head > tail, "rank 0 ({head}) must beat rank 7 ({tail})");
        // Deterministic given the seed.
        assert_eq!(requests, zipf_requests(&keys, 1.2, 20_000, 3));
    }
}

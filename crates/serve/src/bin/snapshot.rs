//! `cpm-snapshot` — inspect and maintain `CPM_WARM_FILE` design snapshots.
//!
//! ```text
//! cpm-snapshot list <file>...                     print each design's key + metadata
//! cpm-snapshot merge -o <out> <file>...           first-file-wins union of snapshots
//! cpm-snapshot prune -o <out> <file> [filters]    drop entries matching every filter
//!     --keep              invert: keep only the matching entries
//! filters (repeatable; dimensions AND together, values within one OR):
//!     --n <N>             group size
//!     --alpha <A>         privacy parameter, matched bit-exactly
//!     --properties <SET>  requested properties, e.g. WH+CM or "{WH, CM}"
//!     --objective <OBJ>   L0 | L1 | L2 | L0,d
//! ```
//!
//! Exit status: 0 on success, 1 on bad usage, 2 on I/O or parse failure.

use cpm_core::{Alpha, DesignedMechanism, ObjectiveKey, PropertySet};
use cpm_serve::snapshot::{self, KeyFilter};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("list") => list(&args[1..]),
        Some("merge") => merge(&args[1..]),
        Some("prune") => prune(&args[1..]),
        Some("--help") | Some("-h") | None => {
            eprint!("{}", USAGE);
            if args.is_empty() {
                1
            } else {
                0
            }
        }
        Some(other) => {
            eprintln!("cpm-snapshot: unknown command `{other}`\n{USAGE}");
            1
        }
    };
    std::process::exit(code);
}

const USAGE: &str = "\
usage: cpm-snapshot <command> [args]
  list <file>...                    print each design's key and metadata
  merge -o <out> <file>...          first-file-wins union of snapshots
  prune -o <out> <file> [filters]   drop entries matching every given filter
        --keep                      invert: keep only the matching entries
  filters (repeatable): --n <N>  --alpha <A>  --properties <SET>  --objective <OBJ>
";

fn list(files: &[String]) -> i32 {
    if files.is_empty() {
        eprintln!("cpm-snapshot list: no snapshot files given\n{USAGE}");
        return 1;
    }
    for file in files {
        let designs = match snapshot::read_file(file) {
            Ok(designs) => designs,
            Err(error) => {
                eprintln!("cpm-snapshot: {error}");
                return 2;
            }
        };
        println!("{file}: {} design(s)", designs.len());
        if designs.is_empty() {
            continue;
        }
        let rows: Vec<[String; 5]> = designs.iter().map(describe).collect();
        let header = ["key", "designed via", "basis", "score", "design time"];
        let mut widths: [usize; 5] = header.map(str::len);
        for row in &rows {
            for (width, cell) in widths.iter_mut().zip(row) {
                *width = (*width).max(cell.len());
            }
        }
        let print_row = |cells: [&str; 5]| {
            println!(
                "  {:<kw$}  {:<hw$}  {:<bw$}  {:>sw$}  {:>tw$}",
                cells[0],
                cells[1],
                cells[2],
                cells[3],
                cells[4],
                kw = widths[0],
                hw = widths[1],
                bw = widths[2],
                sw = widths[3],
                tw = widths[4],
            );
        };
        print_row(header);
        for row in &rows {
            print_row([&row[0], &row[1], &row[2], &row[3], &row[4]]);
        }
    }
    0
}

/// One table row per artifact: the key, how it was designed (with the solve
/// effort), whether it carries an optimal basis that can seed a warm start,
/// its objective score, and the design time it cost to produce.
fn describe(design: &DesignedMechanism) -> [String; 5] {
    let how = match design.solver_stats() {
        Some(stats) => format!(
            "lp[{}] {}+{} pivots",
            stats.form, stats.phase1_iterations, stats.phase2_iterations
        ),
        None => match design.choice() {
            Some(choice) => format!("closed-form {choice:?}"),
            None => "closed-form".to_string(),
        },
    };
    let basis = if design.optimal_basis().is_some() {
        "yes"
    } else {
        "-"
    };
    [
        design.key().to_string(),
        how,
        basis.to_string(),
        format!("{:.6}", design.score()),
        format!("{:.3}s", design.design_time().as_secs_f64()),
    ]
}

fn merge(args: &[String]) -> i32 {
    let (out, files) = match take_output(args) {
        Ok(parts) => parts,
        Err(message) => {
            eprintln!("cpm-snapshot merge: {message}\n{USAGE}");
            return 1;
        }
    };
    if files.is_empty() {
        eprintln!("cpm-snapshot merge: no input snapshots given\n{USAGE}");
        return 1;
    }
    let mut snapshots = Vec::with_capacity(files.len());
    for file in &files {
        match snapshot::read_file(file) {
            Ok(designs) => snapshots.push(designs),
            Err(error) => {
                eprintln!("cpm-snapshot: {error}");
                return 2;
            }
        }
    }
    let total: usize = snapshots.iter().map(Vec::len).sum();
    let merged = snapshot::merge(snapshots);
    if let Err(error) = snapshot::write_file(&out, &merged) {
        eprintln!("cpm-snapshot: writing {out}: {error}");
        return 2;
    }
    println!(
        "merged {} design(s) from {} file(s) into {out} ({} dropped as duplicate keys)",
        merged.len(),
        files.len(),
        total - merged.len()
    );
    0
}

fn prune(args: &[String]) -> i32 {
    let (out, rest) = match take_output(args) {
        Ok(parts) => parts,
        Err(message) => {
            eprintln!("cpm-snapshot prune: {message}\n{USAGE}");
            return 1;
        }
    };
    let mut filter = KeyFilter::default();
    let mut keep = false;
    let mut files: Vec<String> = Vec::new();
    let mut rest = rest.into_iter();
    while let Some(arg) = rest.next() {
        let mut value_of = |flag: &str| rest.next().ok_or_else(|| format!("{flag} needs a value"));
        let parsed: Result<(), String> = match arg.as_str() {
            "--keep" => {
                keep = true;
                Ok(())
            }
            "--n" => value_of("--n").and_then(|v| {
                v.parse::<usize>()
                    .map(|n| filter.n.push(n))
                    .map_err(|e| format!("--n {v}: {e}"))
            }),
            "--alpha" => value_of("--alpha").and_then(|v| {
                v.parse::<f64>()
                    .map_err(|e| format!("--alpha {v}: {e}"))
                    .and_then(|a| Alpha::new(a).map_err(|e| format!("--alpha {v}: {e}")))
                    .map(|a| filter.alpha.push(a))
            }),
            "--properties" => value_of("--properties").and_then(|v| {
                v.parse::<PropertySet>()
                    .map(|set| filter.properties.push(set))
                    .map_err(|e| format!("--properties {v}: {e}"))
            }),
            "--objective" => value_of("--objective").and_then(|v| {
                ObjectiveKey::parse(&v)
                    .map(|objective| filter.objective.push(objective))
                    .ok_or_else(|| format!("--objective {v}: unknown objective"))
            }),
            _ if arg.starts_with("--") => Err(format!("unknown flag {arg}")),
            _ => {
                files.push(arg);
                Ok(())
            }
        };
        if let Err(message) = parsed {
            eprintln!("cpm-snapshot prune: {message}\n{USAGE}");
            return 1;
        }
    }
    if files.len() != 1 {
        eprintln!(
            "cpm-snapshot prune: expected exactly one input snapshot, got {}\n{USAGE}",
            files.len()
        );
        return 1;
    }
    if filter.is_empty() && !keep {
        eprintln!("cpm-snapshot prune: no filters given — refusing to drop everything or nothing ambiguously; pass at least one of --n/--alpha/--properties/--objective\n{USAGE}");
        return 1;
    }
    let designs = match snapshot::read_file(&files[0]) {
        Ok(designs) => designs,
        Err(error) => {
            eprintln!("cpm-snapshot: {error}");
            return 2;
        }
    };
    let before = designs.len();
    let kept: Vec<DesignedMechanism> = designs
        .into_iter()
        .filter(|design| filter.matches(&design.key()) == keep)
        .collect();
    if let Err(error) = snapshot::write_file(&out, &kept) {
        eprintln!("cpm-snapshot: writing {out}: {error}");
        return 2;
    }
    println!(
        "kept {} of {before} design(s) from {} into {out}",
        kept.len(),
        files[0]
    );
    0
}

/// Split `-o <out>` / `--out <out>` off an argument list.
fn take_output(args: &[String]) -> Result<(String, Vec<String>), String> {
    let mut out = None;
    let mut rest = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == "-o" || arg == "--out" {
            let value = iter.next().ok_or_else(|| format!("{arg} needs a value"))?;
            if out.replace(value.clone()).is_some() {
                return Err("output file given twice".to_string());
            }
        } else {
            rest.push(arg.clone());
        }
    }
    out.map(|out| (out, rest))
        .ok_or_else(|| "missing -o <out>".to_string())
}

//! The stdin/stdout mechanism server: length-prefixed JSON frames in, frames
//! out (see [`cpm_serve::frontend`] for the protocol).
//!
//! Configuration comes from the environment (`CPM_SERVE_CAPACITY`,
//! `CPM_SERVE_SHARDS`, `CPM_SERVE_SEED`, `CPM_SERVE_MIN_CHUNK`, plus
//! `CPM_THREADS` for the sampling pool).  Keys listed in `CPM_SERVE_WARM`
//! (semicolon-separated `n:alpha:properties` triples, e.g.
//! `32:0.9:WH+CM;64:0.9:`) are designed before the first frame is read.

use std::io;

use cpm_core::{Alpha, PropertySet};
use cpm_serve::frontend::parse_properties;
use cpm_serve::prelude::*;

/// Parse one `n:alpha:properties` warm-up triple (the properties field uses
/// the same syntax as the wire protocol's `properties`).
fn parse_warm_key(spec: &str) -> Result<MechanismKey, String> {
    let mut parts = spec.splitn(3, ':');
    let n: usize = parts
        .next()
        .and_then(|p| p.trim().parse().ok())
        .ok_or_else(|| format!("bad group size in warm spec {spec:?}"))?;
    let alpha: f64 = parts
        .next()
        .and_then(|p| p.trim().parse().ok())
        .ok_or_else(|| format!("bad alpha in warm spec {spec:?}"))?;
    let alpha = Alpha::new(alpha).map_err(|e| e.to_string())?;
    let properties = match parts.next() {
        Some(list) => parse_properties(list).map_err(|e| format!("{e} in warm spec {spec:?}"))?,
        None => PropertySet::empty(),
    };
    Ok(MechanismKey::new(n, alpha, properties))
}

fn main() -> io::Result<()> {
    let engine = Engine::new(EngineConfig::from_env());

    if let Ok(warm_spec) = std::env::var("CPM_SERVE_WARM") {
        let keys: Result<Vec<MechanismKey>, String> = warm_spec
            .split(';')
            .filter(|s| !s.trim().is_empty())
            .map(parse_warm_key)
            .collect();
        let keys = keys.map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e))?;
        eprintln!("cpm-serve: warming {} key(s)...", keys.len());
        engine
            .warm(&keys)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let stats = engine.cache_stats();
        eprintln!(
            "cpm-serve: warm complete ({} designs, {} LP solves, {:.1} ms designing)",
            stats.design_solves,
            stats.lp_solves,
            stats.design_nanos as f64 / 1e6,
        );
    }

    let stdin = io::stdin();
    let stdout = io::stdout();
    let summary = serve_connection(&engine, &mut stdin.lock(), &mut stdout.lock())?;
    let stats = engine.cache_stats();
    eprintln!(
        "cpm-serve: connection closed after {} frame(s), {} draw(s); cache: {} hits, {} misses, {} designs",
        summary.frames, summary.draws, stats.hits, stats.misses, stats.design_solves,
    );
    Ok(())
}

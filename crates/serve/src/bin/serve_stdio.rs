//! The stdin/stdout mechanism server: length-prefixed frames in, frames out
//! (see [`cpm_serve::proto`] for the protocol — JSON, compact `CPMF` binary,
//! and `CPMR` report batches all share the framing).
//!
//! Configuration comes from the environment (`CPM_SERVE_CAPACITY`,
//! `CPM_SERVE_SHARDS`, `CPM_SERVE_SEED`, `CPM_SERVE_MIN_CHUNK`, plus
//! `CPM_THREADS` for the sampling pool).  Keys listed in `CPM_SERVE_WARM`
//! (semicolon-separated `n:alpha:properties[:objective]` specs, e.g.
//! `32:0.9:WH+CM;64:0.9:`) are designed before the first frame is read, and a
//! `CPM_WARM_FILE` snapshot is loaded before / written after warming (see
//! [`cpm_serve::boot`]), so restarts pay deploy-time I/O instead of
//! first-request LP solves.  `CPM_COLLECT_FLUSH_SECS` starts the background
//! estimate-snapshot flusher; `CPM_REPORT_RATE` rate-limits report ingestion.

use std::io;
use std::sync::Arc;

use cpm_serve::boot::start_flusher_from_env;
use cpm_serve::prelude::*;

fn main() -> io::Result<()> {
    let engine = Arc::new(Engine::new(EngineConfig::from_env()));
    bootstrap(&engine)?;
    let _flusher = start_flusher_from_env(&engine);

    let stdin = io::stdin();
    let stdout = io::stdout();
    let summary = serve_connection(&engine, &mut stdin.lock(), &mut stdout.lock())?;
    let stats = engine.cache_stats();
    eprintln!(
        "cpm-serve: connection closed after {} frame(s), {} draw(s); cache: {} hits, {} misses, {} designs, {} preloaded",
        summary.frames, summary.draws, stats.hits, stats.misses, stats.design_solves, stats.preloaded,
    );
    Ok(())
}

//! The stdin/stdout mechanism server: length-prefixed JSON frames in, frames
//! out (see [`cpm_serve::frontend`] for the protocol).
//!
//! Configuration comes from the environment (`CPM_SERVE_CAPACITY`,
//! `CPM_SERVE_SHARDS`, `CPM_SERVE_SEED`, `CPM_SERVE_MIN_CHUNK`, plus
//! `CPM_THREADS` for the sampling pool).  Keys listed in `CPM_SERVE_WARM`
//! (semicolon-separated `n:alpha:properties[:objective]` specs, e.g.
//! `32:0.9:WH+CM;64:0.9:`) are designed before the first frame is read, and a
//! `CPM_WARM_FILE` snapshot is loaded before / written after warming (see
//! [`cpm_serve::boot`]), so restarts pay deploy-time I/O instead of
//! first-request LP solves.

use std::io;

use cpm_serve::prelude::*;

fn main() -> io::Result<()> {
    let engine = Engine::new(EngineConfig::from_env());
    bootstrap(&engine)?;

    let stdin = io::stdin();
    let stdout = io::stdout();
    let summary = serve_connection(&engine, &mut stdin.lock(), &mut stdout.lock())?;
    let stats = engine.cache_stats();
    eprintln!(
        "cpm-serve: connection closed after {} frame(s), {} draw(s); cache: {} hits, {} misses, {} designs, {} preloaded",
        summary.frames, summary.draws, stats.hits, stats.misses, stats.design_solves, stats.preloaded,
    );
    Ok(())
}

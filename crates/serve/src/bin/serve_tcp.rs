//! The socket mechanism server: one engine, a fixed set of poll-reactor
//! workers, the same framed protocol as `serve_stdio` (see
//! [`cpm_serve::proto`]): length-prefixed JSON or compact `CPMF` binary
//! frames, `CPMR` report batches, and `GET /metrics` HTTP scrapes — all
//! negotiated by first bytes on one port.
//!
//! `CPM_SERVE_ADDR` picks the listener: a `host:port` TCP address (default
//! `127.0.0.1:4700`) or `unix:/path/to.sock` for a unix-domain socket.  The
//! reactor is sized by `CPM_NET_WORKERS` / `CPM_NET_MAX_CONNS` /
//! `CPM_IDLE_TIMEOUT_SECS` (see [`cpm_serve::net::NetConfig`]); report
//! ingestion is rate-limited per connection by `CPM_REPORT_RATE`; the
//! cache/engine knobs (`CPM_SERVE_CAPACITY`, `CPM_SERVE_SHARDS`,
//! `CPM_SERVE_SEED`, `CPM_SERVE_MIN_CHUNK`, `CPM_THREADS`) and the warm-start
//! variables (`CPM_SERVE_WARM`, `CPM_WARM_FILE`) work exactly as they do for
//! `serve_stdio` — see [`cpm_serve::boot`].  `CPM_COLLECT_FLUSH_SECS` starts
//! the background estimate-snapshot flusher.
//!
//! A client's `shutdown` op closes that client's connection only; the listener
//! keeps accepting until the process is killed.

use std::io;
use std::net::TcpListener;
use std::sync::Arc;

use cpm_serve::boot::start_flusher_from_env;
use cpm_serve::prelude::*;

/// Default TCP listen address.
const DEFAULT_ADDR: &str = "127.0.0.1:4700";

fn main() -> io::Result<()> {
    let engine = Arc::new(Engine::new(EngineConfig::from_env()));
    bootstrap(&engine)?;
    let _flusher = start_flusher_from_env(&engine);

    let addr = std::env::var("CPM_SERVE_ADDR").unwrap_or_else(|_| DEFAULT_ADDR.to_string());
    let server = if let Some(path) = addr.strip_prefix("unix:") {
        #[cfg(unix)]
        {
            let path = std::path::PathBuf::from(path);
            let _ = std::fs::remove_file(&path);
            let listener = std::os::unix::net::UnixListener::bind(&path)?;
            eprintln!("cpm-serve: listening on unix socket {}", path.display());
            Server::unix(Arc::clone(&engine), listener)?
        }
        #[cfg(not(unix))]
        {
            return Err(io::Error::new(
                io::ErrorKind::Unsupported,
                format!("unix sockets are not available on this platform: {path}"),
            ));
        }
    } else {
        let listener = TcpListener::bind(&addr)?;
        eprintln!("cpm-serve: listening on {}", listener.local_addr()?);
        Server::tcp(Arc::clone(&engine), listener)?
    };

    server.wait();
    Ok(())
}

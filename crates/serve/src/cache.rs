//! The design cache: a sharded, lock-striped, single-flight registry of finished
//! mechanism designs.
//!
//! Design is the expensive step of the request path — an LP solve can take
//! seconds while a draw takes nanoseconds — and it is perfectly amortizable:
//! real deployments ask for the same `(n, α, properties, objective)` design
//! millions of times.  The cache guarantees:
//!
//! * **lock striping** — keys hash to one of `shards` independent mutexes, so
//!   concurrent lookups of *different* hot keys never contend on one lock;
//! * **single flight** — concurrent requests for the same cold key trigger
//!   exactly one design; every other requester blocks on the in-flight entry
//!   (a condvar) and receives the shared result, success or failure;
//! * **bounded capacity** — each shard evicts its least-recently-used *ready*
//!   entry beyond its share of the capacity (in-flight entries are never
//!   evicted);
//! * **warm-up** — [`DesignCache::warm`] precomputes a declared key set on the
//!   [`cpm_eval::par`] worker pool before traffic arrives.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cpm_core::lp::DesignProblem;
use cpm_core::sampling::AliasSampler;
use cpm_core::selection::{self, MechanismChoice};
use cpm_core::Mechanism;
use cpm_simplex::SolveStats;

use crate::error::ServeError;
use crate::key::{MechanismKey, ObjectiveKey};

/// One finished design: everything a draw needs, immutable and shared.
#[derive(Debug, Clone)]
pub struct Design {
    /// The key this design answers.
    pub key: MechanismKey,
    /// Which Figure-5 mechanism the design resolved to (`None` for non-`L0`
    /// objectives, which bypass the flowchart and solve the LP directly).
    pub choice: Option<MechanismChoice>,
    /// The designed column-stochastic matrix.
    pub mechanism: Mechanism,
    /// O(1) per-draw alias tables over the matrix columns.
    pub sampler: AliasSampler,
    /// Wall-clock time the design took (closed form or LP).
    pub design_time: Duration,
    /// Simplex statistics when the design required an LP solve; `None` for the
    /// closed-form constructions (GM, EM, UM).
    pub solver_stats: Option<SolveStats>,
}

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The design was already resident.
    Hit,
    /// Another thread was already designing this key; we waited for its result.
    Coalesced,
    /// This thread performed the design (a cold miss).
    Designed,
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied by a resident design.
    pub hits: u64,
    /// Lookups that waited on another thread's in-flight design.
    pub coalesced: u64,
    /// Lookups that found nothing and started a design.
    pub misses: u64,
    /// Designs completed successfully (closed form or LP).
    pub design_solves: u64,
    /// The subset of `design_solves` that ran the simplex.
    pub lp_solves: u64,
    /// Ready entries evicted to stay within capacity.
    pub evictions: u64,
    /// Total wall-clock nanoseconds spent designing.
    pub design_nanos: u64,
    /// Ready entries currently resident.
    pub entries: usize,
}

enum Entry {
    Ready { design: Arc<Design>, last_used: u64 },
    InFlight(Arc<Flight>),
}

enum FlightState {
    Pending,
    Done(Result<Arc<Design>, ServeError>),
}

struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }

    fn finish(&self, result: Result<Arc<Design>, ServeError>) {
        let mut state = self.state.lock().expect("flight state poisoned");
        *state = FlightState::Done(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Arc<Design>, ServeError> {
        let mut state = self.state.lock().expect("flight state poisoned");
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self.done.wait(state).expect("flight state poisoned");
                }
                FlightState::Done(result) => return result.clone(),
            }
        }
    }
}

/// Releases waiters and clears the in-flight entry if the designing thread dies
/// before publishing a result — without this, a panic inside the LP would leave
/// every coalesced requester blocked forever and the key permanently wedged.
struct FlightGuard<'a> {
    cache: &'a DesignCache,
    shard: usize,
    key: MechanismKey,
    flight: Arc<Flight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cache.remove_in_flight(self.shard, &self.key);
            self.flight
                .finish(Err(ServeError::DesignPanicked { key: self.key }));
        }
    }
}

struct Shard {
    entries: HashMap<MechanismKey, Entry>,
}

impl Shard {
    fn ready_len(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e, Entry::Ready { .. }))
            .count()
    }
}

/// The sharded, single-flight, LRU-bounded design registry.
pub struct DesignCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    tick: AtomicU64,
    hits: AtomicU64,
    coalesced: AtomicU64,
    misses: AtomicU64,
    design_solves: AtomicU64,
    lp_solves: AtomicU64,
    evictions: AtomicU64,
    design_nanos: AtomicU64,
}

impl DesignCache {
    /// Default number of lock stripes.
    pub const DEFAULT_SHARDS: usize = 16;

    /// A cache holding at most `capacity` designs across [`Self::DEFAULT_SHARDS`]
    /// lock stripes.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, Self::DEFAULT_SHARDS)
    }

    /// A cache with an explicit stripe count (rounded up to at least 1).  The
    /// capacity is split evenly across stripes, each keeping at least one entry.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        DesignCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                    })
                })
                .collect(),
            per_shard_capacity,
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            design_solves: AtomicU64::new(0),
            lp_solves: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            design_nanos: AtomicU64::new(0),
        }
    }

    fn shard_of(&self, key: &MechanismKey) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Fetch the design for `key`, computing it (once, globally) on a miss.
    pub fn get(&self, key: &MechanismKey) -> Result<Arc<Design>, ServeError> {
        self.get_with_outcome(key).map(|(design, _)| design)
    }

    /// The lock-and-look fast path: return the design if it is already resident,
    /// bumping its LRU tick and the hit counter.  Never waits and never designs
    /// — a cold or in-flight key returns `None`, and the caller decides whether
    /// to block on [`DesignCache::get`].  Warm batches resolve entirely through
    /// this path, without touching the worker pool.
    pub fn peek(&self, key: &MechanismKey) -> Option<Arc<Design>> {
        let shard_index = self.shard_of(key);
        let mut shard = self.shards[shard_index].lock().expect("shard poisoned");
        match shard.entries.get_mut(key) {
            Some(Entry::Ready { design, last_used }) => {
                *last_used = self.next_tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(design))
            }
            _ => None,
        }
    }

    /// [`DesignCache::get`], additionally reporting how the lookup was satisfied.
    pub fn get_with_outcome(
        &self,
        key: &MechanismKey,
    ) -> Result<(Arc<Design>, Lookup), ServeError> {
        enum Action {
            Wait(Arc<Flight>),
            Design(Arc<Flight>),
        }
        let shard_index = self.shard_of(key);
        // Decide under the stripe lock, but design/wait outside it.
        let action = {
            let mut shard = self.shards[shard_index].lock().expect("shard poisoned");
            match shard.entries.get_mut(key) {
                Some(Entry::Ready { design, last_used }) => {
                    *last_used = self.next_tick();
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok((Arc::clone(design), Lookup::Hit));
                }
                Some(Entry::InFlight(flight)) => {
                    // Single flight: somebody else is already designing this key.
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    Action::Wait(Arc::clone(flight))
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    let flight = Arc::new(Flight::new());
                    shard
                        .entries
                        .insert(*key, Entry::InFlight(Arc::clone(&flight)));
                    Action::Design(flight)
                }
            }
        };
        match action {
            Action::Wait(flight) => flight.wait().map(|design| (design, Lookup::Coalesced)),
            Action::Design(flight) => self
                .design_and_publish(shard_index, key, flight)
                .map(|design| (design, Lookup::Designed)),
        }
    }

    /// Run the design for `key` outside any shard lock, then publish the result
    /// to the map and to every coalesced waiter.
    fn design_and_publish(
        &self,
        shard_index: usize,
        key: &MechanismKey,
        flight: Arc<Flight>,
    ) -> Result<Arc<Design>, ServeError> {
        let mut guard = FlightGuard {
            cache: self,
            shard: shard_index,
            key: *key,
            flight: Arc::clone(&flight),
            armed: true,
        };
        let result = design(key);
        guard.armed = false;
        drop(guard);
        match result {
            Ok(design) => {
                let design = Arc::new(design);
                self.design_solves.fetch_add(1, Ordering::Relaxed);
                if design.solver_stats.is_some() {
                    self.lp_solves.fetch_add(1, Ordering::Relaxed);
                }
                self.design_nanos
                    .fetch_add(design.design_time.as_nanos() as u64, Ordering::Relaxed);
                {
                    let mut shard = self.shards[shard_index].lock().expect("shard poisoned");
                    shard.entries.insert(
                        *key,
                        Entry::Ready {
                            design: Arc::clone(&design),
                            last_used: self.next_tick(),
                        },
                    );
                    self.evict_over_capacity(&mut shard);
                }
                flight.finish(Ok(Arc::clone(&design)));
                Ok(design)
            }
            Err(error) => {
                // Clear the key so a later request retries, then release waiters.
                self.remove_in_flight(shard_index, key);
                flight.finish(Err(error.clone()));
                Err(error)
            }
        }
    }

    fn remove_in_flight(&self, shard_index: usize, key: &MechanismKey) {
        let mut shard = self.shards[shard_index].lock().expect("shard poisoned");
        if matches!(shard.entries.get(key), Some(Entry::InFlight(_))) {
            shard.entries.remove(key);
        }
    }

    /// Evict least-recently-used ready entries until the shard fits its share of
    /// the capacity.  In-flight entries are never evicted, and the entry just
    /// touched carries the freshest tick, so it survives.
    fn evict_over_capacity(&self, shard: &mut Shard) {
        while shard.ready_len() > self.per_shard_capacity {
            let victim = shard
                .entries
                .iter()
                .filter_map(|(key, entry)| match entry {
                    Entry::Ready { last_used, .. } => Some((*key, *last_used)),
                    Entry::InFlight(_) => None,
                })
                .min_by_key(|&(_, last_used)| last_used)
                .map(|(key, _)| key);
            match victim {
                Some(key) => {
                    shard.entries.remove(&key);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
    }

    /// Precompute the designs for a declared key set, fanning the cold solves out
    /// across the [`cpm_eval::par`] worker pool.  Returns the designs in key
    /// order; the first design failure aborts the warm-up.
    pub fn warm(&self, keys: &[MechanismKey]) -> Result<Vec<Arc<Design>>, ServeError> {
        cpm_eval::par::try_parallel_map(keys.to_vec(), |key| self.get(&key))
    }

    /// Number of ready designs currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").ready_len())
            .sum()
    }

    /// Whether no designs are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity (summed over stripes).
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Drop every ready entry (in-flight designs are left to finish).  Used by
    /// probes to reproduce cold-start behaviour within one process.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut shard = shard.lock().expect("shard poisoned");
            shard
                .entries
                .retain(|_, entry| matches!(entry, Entry::InFlight(_)));
        }
    }

    /// A point-in-time snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            design_solves: self.design_solves.load(Ordering::Relaxed),
            lp_solves: self.lp_solves.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            design_nanos: self.design_nanos.load(Ordering::Relaxed),
            entries: self.len(),
        }
    }
}

impl std::fmt::Debug for DesignCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesignCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Perform one design: route `L0` requests through the Figure-5 flowchart (which
/// short-circuits to closed forms whenever it can) and other objectives through
/// the constrained LP directly.
fn design(key: &MechanismKey) -> Result<Design, ServeError> {
    let alpha = key.alpha_value();
    let start = Instant::now();
    let built: Result<_, cpm_core::CoreError> = (|| match key.objective {
        ObjectiveKey::L0 => {
            let choice = selection::select_mechanism(key.properties, key.n, alpha);
            let (mechanism, stats) = selection::realize_with_stats(choice, key.n, alpha, None)?;
            Ok((Some(choice), mechanism, stats))
        }
        objective => {
            let problem = DesignProblem::constrained(
                key.n,
                alpha,
                objective.to_objective(),
                key.properties.closure(),
            );
            let solution = problem.solve()?;
            Ok((None, solution.mechanism, Some(solution.solver_stats)))
        }
    })();
    let (choice, mechanism, solver_stats) =
        built.map_err(|source| ServeError::Design { key: *key, source })?;
    let sampler = AliasSampler::new(&mechanism);
    Ok(Design {
        key: *key,
        choice,
        mechanism,
        sampler,
        design_time: start.elapsed(),
        solver_stats,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::{Alpha, Property, PropertySet};

    fn gm_key(n: usize) -> MechanismKey {
        MechanismKey::new(n, Alpha::new(0.5).unwrap(), PropertySet::empty())
    }

    #[test]
    fn hit_after_miss_returns_the_same_design() {
        let cache = DesignCache::new(8);
        let key = gm_key(6);
        let (first, outcome) = cache.get_with_outcome(&key).unwrap();
        assert_eq!(outcome, Lookup::Designed);
        let (second, outcome) = cache.get_with_outcome(&key).unwrap();
        assert_eq!(outcome, Lookup::Hit);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.design_solves), (1, 1, 1));
        assert_eq!(stats.lp_solves, 0, "GM at alpha=0.5 is closed form");
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_eviction_keeps_the_most_recent_keys() {
        // One stripe so the LRU order is global and observable.
        let cache = DesignCache::with_shards(2, 1);
        let keys: Vec<MechanismKey> = (2..6).map(gm_key).collect();
        for key in &keys {
            cache.get(key).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 2);
        // The two most recent keys are hits; the two oldest were evicted.
        cache.get(&keys[3]).unwrap();
        cache.get(&keys[2]).unwrap();
        assert_eq!(cache.stats().misses, 4, "recent keys are still resident");
        cache.get(&keys[0]).unwrap();
        assert_eq!(cache.stats().misses, 5, "oldest key was evicted");
    }

    #[test]
    fn design_errors_are_returned_and_the_key_is_retryable() {
        let cache = DesignCache::new(4);
        // Group size 0 is invalid, so the design fails.
        let bad = MechanismKey::new(0, Alpha::new(0.9).unwrap(), PropertySet::empty());
        let error = cache.get(&bad).unwrap_err();
        assert!(matches!(error, ServeError::Design { .. }));
        assert_eq!(cache.len(), 0, "failed design leaves nothing resident");
        // The key is retryable (still a miss, still the same error).
        assert!(cache.get(&bad).is_err());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn warm_precomputes_the_declared_key_set() {
        let cache = DesignCache::new(16);
        let alpha = Alpha::new(0.9).unwrap();
        let keys = vec![
            MechanismKey::new(4, alpha, PropertySet::empty()),
            MechanismKey::new(4, alpha, PropertySet::empty().with(Property::Fairness)),
            MechanismKey::new(6, alpha, PropertySet::empty().with(Property::WeakHonesty)),
        ];
        let designs = cache.warm(&keys).unwrap();
        assert_eq!(designs.len(), 3);
        assert_eq!(cache.len(), 3);
        // Warm again: all hits, no new designs.
        cache.warm(&keys).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.design_solves, 3);
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn non_l0_objectives_solve_the_lp_directly() {
        let cache = DesignCache::new(4);
        let key = MechanismKey::with_objective(
            4,
            Alpha::new(0.9).unwrap(),
            PropertySet::empty(),
            ObjectiveKey::L1,
        );
        let design = cache.get(&key).unwrap();
        assert!(design.choice.is_none());
        assert!(design.solver_stats.is_some());
        assert_eq!(cache.stats().lp_solves, 1);
        assert!(design
            .mechanism
            .satisfies_dp(Alpha::new(0.9).unwrap(), 1e-6));
    }
}

//! The design cache: a sharded, lock-striped, single-flight registry of finished
//! mechanism designs.
//!
//! Design is the expensive step of the request path — an LP solve can take
//! seconds while a draw takes nanoseconds — and it is perfectly amortizable:
//! real deployments ask for the same `(n, α, properties, objective)` design
//! millions of times.  The cache stores [`Arc<DesignedMechanism>`] artifacts
//! keyed by their bit-exact [`SpecKey`] and guarantees:
//!
//! * **lock striping** — keys hash to one of `shards` independent mutexes, so
//!   concurrent lookups of *different* hot keys never contend on one lock;
//! * **single flight** — concurrent requests for the same cold key trigger
//!   exactly one design; every other requester blocks on the in-flight entry
//!   (a condvar) and receives the shared result, success or failure;
//! * **bounded capacity** — each shard evicts its least-recently-used *ready*
//!   entry beyond its share of the capacity (in-flight entries are never
//!   evicted);
//! * **warm-up** — [`DesignCache::warm`] precomputes a declared key set on the
//!   [`cpm_eval::par`] worker pool before traffic arrives;
//! * **persistence** — [`DesignCache::save_snapshot`] serialises every resident
//!   design (the [`DesignedMechanism`] serde form is exact) and
//!   [`DesignCache::load_snapshot`] restores them in a fresh process, turning
//!   cold-start storms into a deploy-time cost;
//! * **family warm seeding** — resident keys are indexed by their
//!   `(n, properties, objective)` family in α order, and a cold key's LP solve
//!   is seeded from the nearest resident α-neighbour's optimal basis
//!   ([`DesignedMechanism::optimal_basis`]), so an α sweep over one family
//!   pays one cold two-phase solve plus a chain of short dual-simplex
//!   cleanups ([`CacheStats::warm_seeded`] counts the seeded solves).

use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use cpm_core::{DesignedMechanism, ObjectiveKey, PropertySet, SpecKey};

use crate::error::ServeError;

/// The old name of the cached artifact.
#[deprecated(
    since = "0.1.0",
    note = "the cache now stores `cpm_core::DesignedMechanism` (accessors instead \
            of public fields: `mechanism()`, `choice()`, `solver_stats()`, \
            `alias_sampler()`, `design_time()`)"
)]
pub type Design = DesignedMechanism;

/// How a lookup was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Lookup {
    /// The design was already resident.
    Hit,
    /// Another thread was already designing this key; we waited for its result.
    Coalesced,
    /// This thread performed the design (a cold miss).
    Designed,
}

/// A point-in-time snapshot of the cache counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups satisfied by a resident design.
    pub hits: u64,
    /// Lookups that waited on another thread's in-flight design.
    pub coalesced: u64,
    /// Lookups that found nothing and started a design.
    pub misses: u64,
    /// Designs completed successfully (closed form or LP).
    pub design_solves: u64,
    /// The subset of `design_solves` that ran the simplex.
    pub lp_solves: u64,
    /// Ready entries evicted to stay within capacity.
    pub evictions: u64,
    /// Designs restored from a snapshot instead of being computed.
    pub preloaded: u64,
    /// Cold designs whose LP solve was seeded from the optimal basis of a
    /// resident α-neighbour in the same `(n, properties, objective)` family
    /// (the seed is a hint — the solver may still have fallen back to the
    /// cold primal path if it did not fit).
    pub warm_seeded: u64,
    /// Total wall-clock nanoseconds spent designing.
    pub design_nanos: u64,
    /// Ready entries currently resident.
    pub entries: usize,
}

enum Entry {
    Ready {
        design: Arc<DesignedMechanism>,
        last_used: u64,
    },
    InFlight(Arc<Flight>),
}

enum FlightState {
    Pending,
    Done(Result<Arc<DesignedMechanism>, ServeError>),
}

struct Flight {
    state: Mutex<FlightState>,
    done: Condvar,
}

impl Flight {
    fn new() -> Self {
        Flight {
            state: Mutex::new(FlightState::Pending),
            done: Condvar::new(),
        }
    }

    fn finish(&self, result: Result<Arc<DesignedMechanism>, ServeError>) {
        let mut state = self.state.lock().expect("flight state poisoned");
        *state = FlightState::Done(result);
        self.done.notify_all();
    }

    fn wait(&self) -> Result<Arc<DesignedMechanism>, ServeError> {
        let mut state = self.state.lock().expect("flight state poisoned");
        loop {
            match &*state {
                FlightState::Pending => {
                    state = self.done.wait(state).expect("flight state poisoned");
                }
                FlightState::Done(result) => return result.clone(),
            }
        }
    }
}

/// Releases waiters and clears the in-flight entry if the designing thread dies
/// before publishing a result — without this, a panic inside the LP would leave
/// every coalesced requester blocked forever and the key permanently wedged.
struct FlightGuard<'a> {
    cache: &'a DesignCache,
    shard: usize,
    key: SpecKey,
    flight: Arc<Flight>,
    armed: bool,
}

impl Drop for FlightGuard<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.cache.remove_in_flight(self.shard, &self.key);
            self.flight
                .finish(Err(ServeError::DesignPanicked { key: self.key }));
            cpm_obs::error(
                "cache",
                format!("design panicked for key {}; waiters released", self.key),
            );
            cpm_obs::flight::dump("design cache poisoning");
        }
    }
}

struct Shard {
    entries: HashMap<SpecKey, Entry>,
}

impl Shard {
    fn ready_len(&self) -> usize {
        self.entries
            .values()
            .filter(|e| matches!(e, Entry::Ready { .. }))
            .count()
    }
}

/// The α-sweep family of a key: everything but α.  Keys in one family solve
/// identically-shaped LPs, so any member's optimal basis can seed another's
/// dual-simplex warm start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct FamilyKey {
    n: usize,
    properties: PropertySet,
    objective: ObjectiveKey,
}

impl FamilyKey {
    fn of(key: &SpecKey) -> Self {
        FamilyKey {
            n: key.n,
            properties: key.properties,
            objective: key.objective,
        }
    }
}

/// Index of resident designs grouped by family and ordered by α.  The inner
/// map is keyed by the α bit pattern, which for the strictly-positive finite
/// α values [`cpm_core::Alpha`] admits orders exactly like the value — so a
/// range scan finds the nearest resident neighbour of a cold α.
#[derive(Default)]
struct FamilyIndex {
    families: HashMap<FamilyKey, BTreeMap<u64, SpecKey>>,
}

impl FamilyIndex {
    fn insert(&mut self, key: &SpecKey) {
        self.families
            .entry(FamilyKey::of(key))
            .or_default()
            .insert(key.alpha.bits(), *key);
    }

    fn remove(&mut self, key: &SpecKey) {
        if let Some(family) = self.families.get_mut(&FamilyKey::of(key)) {
            family.remove(&key.alpha.bits());
            if family.is_empty() {
                self.families.remove(&FamilyKey::of(key));
            }
        }
    }

    /// The resident family member whose α is closest to `key`'s (by value,
    /// not bit distance), excluding `key` itself.
    fn nearest_neighbour(&self, key: &SpecKey) -> Option<SpecKey> {
        let family = self.families.get(&FamilyKey::of(key))?;
        let bits = key.alpha.bits();
        let below = family.range(..bits).next_back().map(|(_, k)| *k);
        let above = family
            .range(bits..)
            .find(|(&b, _)| b != bits)
            .map(|(_, k)| *k);
        let alpha = key.alpha_value().value();
        match (below, above) {
            (Some(lo), Some(hi)) => {
                let d_lo = (alpha - lo.alpha_value().value()).abs();
                let d_hi = (hi.alpha_value().value() - alpha).abs();
                Some(if d_lo <= d_hi { lo } else { hi })
            }
            (found, None) | (None, found) => found,
        }
    }
}

/// The sharded, single-flight, LRU-bounded design registry.
pub struct DesignCache {
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    /// Resident keys grouped by `(n, properties, objective)` family and
    /// ordered by α, so a cold key can seed its LP from the nearest resident
    /// α-neighbour's optimal basis.  Lock ordering: taken alone or nested
    /// *inside* a shard lock (every residency change updates the index under
    /// the owning shard's lock); no thread ever takes a shard lock while
    /// holding this one.
    family_index: Mutex<FamilyIndex>,
    /// Whether cold designs seed from family neighbours (on by default; the
    /// `CPM_SERVE_FAMILY_SEED=0` escape hatch and A/B probes turn it off).
    family_seeding: AtomicBool,
    tick: AtomicU64,
    /// Ready entries currently resident, maintained at every residency change
    /// so [`DesignCache::stats`] (and metrics scrapes through it) never has to
    /// walk the stripes taking every shard lock — the design hot path and the
    /// monitoring path share no locks at all.  [`DesignCache::len`] stays the
    /// exact, fully-locked count for callers that need a linearisable answer.
    resident: AtomicU64,
    hits: AtomicU64,
    coalesced: AtomicU64,
    misses: AtomicU64,
    design_solves: AtomicU64,
    lp_solves: AtomicU64,
    evictions: AtomicU64,
    preloaded: AtomicU64,
    warm_seeded: AtomicU64,
    design_nanos: AtomicU64,
}

impl DesignCache {
    /// Default number of lock stripes.
    pub const DEFAULT_SHARDS: usize = 16;

    /// A cache bounded by `capacity` designs across [`Self::DEFAULT_SHARDS`]
    /// lock stripes.  The bound is enforced per stripe as
    /// `ceil(capacity / shards)` (at least 1), so the exact resident maximum is
    /// what [`DesignCache::capacity`] reports — up to `shards − 1` above the
    /// request when it does not divide evenly.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, Self::DEFAULT_SHARDS)
    }

    /// A cache with an explicit stripe count (rounded up to at least 1).  The
    /// capacity is split evenly across stripes, each keeping at least one
    /// entry; see [`DesignCache::new`] for the exact rounding of the bound.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        let seeding = std::env::var("CPM_SERVE_FAMILY_SEED")
            .map(|v| v != "0" && !v.eq_ignore_ascii_case("off"))
            .unwrap_or(true);
        DesignCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        entries: HashMap::new(),
                    })
                })
                .collect(),
            per_shard_capacity,
            family_index: Mutex::new(FamilyIndex::default()),
            family_seeding: AtomicBool::new(seeding),
            tick: AtomicU64::new(0),
            resident: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            coalesced: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            design_solves: AtomicU64::new(0),
            lp_solves: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            preloaded: AtomicU64::new(0),
            warm_seeded: AtomicU64::new(0),
            design_nanos: AtomicU64::new(0),
        }
    }

    /// Enable or disable seeding cold designs from resident α-neighbours
    /// (see [`CacheStats::warm_seeded`]).  On by default.
    pub fn set_family_seeding(&self, enabled: bool) {
        self.family_seeding.store(enabled, Ordering::Relaxed);
    }

    fn shard_of(&self, key: &SpecKey) -> usize {
        let mut hasher = DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() as usize) % self.shards.len()
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed)
    }

    /// Fetch the design for `key`, computing it (once, globally) on a miss.
    pub fn get(&self, key: &SpecKey) -> Result<Arc<DesignedMechanism>, ServeError> {
        self.get_with_outcome(key).map(|(design, _)| design)
    }

    /// The lock-and-look fast path: return the design if it is already resident,
    /// bumping its LRU tick and the hit counter.  Never waits and never designs
    /// — a cold or in-flight key returns `None`, and the caller decides whether
    /// to block on [`DesignCache::get`].  Warm batches resolve entirely through
    /// this path, without touching the worker pool.
    pub fn peek(&self, key: &SpecKey) -> Option<Arc<DesignedMechanism>> {
        let shard_index = self.shard_of(key);
        let mut shard = self.shards[shard_index].lock().expect("shard poisoned");
        match shard.entries.get_mut(key) {
            Some(Entry::Ready { design, last_used }) => {
                *last_used = self.next_tick();
                self.hits.fetch_add(1, Ordering::Relaxed);
                cpm_obs::counter!("cpm_cache_hits_total").inc();
                Some(Arc::clone(design))
            }
            _ => None,
        }
    }

    /// [`DesignCache::get`], additionally reporting how the lookup was satisfied.
    pub fn get_with_outcome(
        &self,
        key: &SpecKey,
    ) -> Result<(Arc<DesignedMechanism>, Lookup), ServeError> {
        enum Action {
            Wait(Arc<Flight>),
            Design(Arc<Flight>),
        }
        let shard_index = self.shard_of(key);
        // Decide under the stripe lock, but design/wait outside it.
        let action = {
            let mut shard = self.shards[shard_index].lock().expect("shard poisoned");
            match shard.entries.get_mut(key) {
                Some(Entry::Ready { design, last_used }) => {
                    *last_used = self.next_tick();
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    cpm_obs::counter!("cpm_cache_hits_total").inc();
                    return Ok((Arc::clone(design), Lookup::Hit));
                }
                Some(Entry::InFlight(flight)) => {
                    // Single flight: somebody else is already designing this key.
                    self.coalesced.fetch_add(1, Ordering::Relaxed);
                    cpm_obs::counter!("cpm_cache_coalesced_total").inc();
                    Action::Wait(Arc::clone(flight))
                }
                None => {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    cpm_obs::counter!("cpm_cache_misses_total").inc();
                    let flight = Arc::new(Flight::new());
                    shard
                        .entries
                        .insert(*key, Entry::InFlight(Arc::clone(&flight)));
                    Action::Design(flight)
                }
            }
        };
        match action {
            Action::Wait(flight) => {
                let wait_started = std::time::Instant::now();
                let waited = flight.wait();
                cpm_obs::histogram!("cpm_cache_wait_nanos").record_duration(wait_started.elapsed());
                waited.map(|design| (design, Lookup::Coalesced))
            }
            Action::Design(flight) => self
                .design_and_publish(shard_index, key, flight)
                .map(|design| (design, Lookup::Designed)),
        }
    }

    /// Run the design for `key` outside any shard lock, then publish the result
    /// to the map and to every coalesced waiter.
    fn design_and_publish(
        &self,
        shard_index: usize,
        key: &SpecKey,
        flight: Arc<Flight>,
    ) -> Result<Arc<DesignedMechanism>, ServeError> {
        let mut guard = FlightGuard {
            cache: self,
            shard: shard_index,
            key: *key,
            flight: Arc::clone(&flight),
            armed: true,
        };
        let result = self.design_seeded(key);
        guard.armed = false;
        drop(guard);
        match result {
            Ok(design) => {
                let design = Arc::new(design);
                self.design_solves.fetch_add(1, Ordering::Relaxed);
                if design.used_lp() {
                    self.lp_solves.fetch_add(1, Ordering::Relaxed);
                }
                self.design_nanos
                    .fetch_add(design.design_time().as_nanos() as u64, Ordering::Relaxed);
                self.publish(shard_index, key, Arc::clone(&design));
                flight.finish(Ok(Arc::clone(&design)));
                Ok(design)
            }
            Err(error) => {
                // Clear the key so a later request retries, then release waiters.
                self.remove_in_flight(shard_index, key);
                flight.finish(Err(error.clone()));
                Err(error)
            }
        }
    }

    /// Insert a ready design into its shard (used by both the design path and
    /// the snapshot loader) and evict over capacity.
    ///
    /// The family-index update nests *inside* the shard lock: every residency
    /// change of a key happens under its own shard's lock (evictions are
    /// per-shard), so the nesting keeps index and shard consistent — an
    /// update applied after release could be interleaved with a concurrent
    /// re-insert of an evicted key and strand a resident design outside the
    /// index.  The ordering is deadlock-free because the index lock is only
    /// ever taken alone or inside a shard lock, never the other way around
    /// ([`DesignCache::family_seed`] releases it before touching a shard).
    fn publish(&self, shard_index: usize, key: &SpecKey, design: Arc<DesignedMechanism>) {
        let mut shard = self.shards[shard_index].lock().expect("shard poisoned");
        shard.entries.insert(
            *key,
            Entry::Ready {
                design,
                last_used: self.next_tick(),
            },
        );
        let evicted = self.evict_over_capacity(&mut shard);
        let mut index = self.family_index.lock().expect("family index poisoned");
        index.insert(key);
        for victim in &evicted {
            index.remove(victim);
        }
        drop(index);
        self.update_shard_gauge(shard_index, &shard);
        drop(shard);
        self.add_resident(1 - evicted.len() as i64);
    }

    /// Mirror one stripe's ready-entry count to the per-shard gauge family
    /// `cpm_cache_shard_resident{shard="i"}`.  The label set is closed — the
    /// stripe count is fixed at construction — so the registry cannot grow
    /// without bound.  Called at every residency change while the owning
    /// stripe's lock is held, so the gauge never drifts from the map.
    fn update_shard_gauge(&self, shard_index: usize, shard: &Shard) {
        if cpm_obs::enabled() {
            cpm_obs::registry()
                .gauge(&format!(
                    "cpm_cache_shard_resident{{shard=\"{shard_index}\"}}"
                ))
                .set(shard.ready_len() as i64);
        }
    }

    /// Fold a residency delta into the lock-free counter and mirror it to the
    /// live gauge.
    fn add_resident(&self, delta: i64) {
        let now = if delta >= 0 {
            self.resident.fetch_add(delta as u64, Ordering::Relaxed) + delta as u64
        } else {
            self.resident.fetch_sub((-delta) as u64, Ordering::Relaxed) - (-delta) as u64
        };
        cpm_obs::gauge!("cpm_cache_resident_entries").set(now as i64);
    }

    fn remove_in_flight(&self, shard_index: usize, key: &SpecKey) {
        let mut shard = self.shards[shard_index].lock().expect("shard poisoned");
        if matches!(shard.entries.get(key), Some(Entry::InFlight(_))) {
            shard.entries.remove(key);
        }
    }

    /// Evict least-recently-used ready entries until the shard fits its share of
    /// the capacity.  In-flight entries are never evicted, and the entry just
    /// touched carries the freshest tick, so it survives.  Returns the evicted
    /// keys so the caller can update the family index once the shard lock is
    /// released.
    fn evict_over_capacity(&self, shard: &mut Shard) -> Vec<SpecKey> {
        let mut evicted = Vec::new();
        while shard.ready_len() > self.per_shard_capacity {
            let victim = shard
                .entries
                .iter()
                .filter_map(|(key, entry)| match entry {
                    Entry::Ready { last_used, .. } => Some((*key, *last_used)),
                    Entry::InFlight(_) => None,
                })
                .min_by_key(|&(_, last_used)| last_used)
                .map(|(key, _)| key);
            match victim {
                Some(key) => {
                    shard.entries.remove(&key);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                    cpm_obs::counter!("cpm_cache_evictions_total").inc();
                    evicted.push(key);
                }
                None => break,
            }
        }
        evicted
    }

    /// Precompute the designs for a declared key set, fanning the cold solves out
    /// across the [`cpm_eval::par`] worker pool.  Returns the designs in key
    /// order.  On failure the *first* key's error is reported — after the whole
    /// set has been attempted — and the keys that did design stay resident.
    ///
    /// Keys are grouped by `(n, properties, objective)` family, each family is
    /// sorted by α and designed **serially** (families still run concurrently):
    /// within a family every solve after the first seeds its dual-simplex
    /// warm start from the basis its predecessor just left in the cache, so an
    /// α sweep pays one cold solve plus a chain of short dual cleanups.
    pub fn warm(&self, keys: &[SpecKey]) -> Result<Vec<Arc<DesignedMechanism>>, ServeError> {
        // Group the positions (not the keys) so the output order is restored.
        let mut families: HashMap<FamilyKey, Vec<usize>> = HashMap::new();
        for (position, key) in keys.iter().enumerate() {
            families
                .entry(FamilyKey::of(key))
                .or_default()
                .push(position);
        }
        let mut groups: Vec<Vec<usize>> = families.into_values().collect();
        for group in &mut groups {
            group.sort_by_key(|&position| keys[position].alpha.bits());
        }
        // Deterministic fan-out order regardless of the HashMap's iteration.
        groups.sort_by_key(|group| keys[group[0]]);

        type Designed = Vec<(usize, Result<Arc<DesignedMechanism>, ServeError>)>;
        let outcomes: Vec<Designed> = cpm_eval::par::parallel_map(groups, |group| {
            group
                .into_iter()
                .map(|position| (position, self.get(&keys[position])))
                .collect()
        });

        let mut slots: Vec<Option<Result<Arc<DesignedMechanism>, ServeError>>> =
            (0..keys.len()).map(|_| None).collect();
        for (position, outcome) in outcomes.into_iter().flatten() {
            slots[position] = Some(outcome);
        }
        slots
            .into_iter()
            .map(|slot| slot.expect("every key position is designed exactly once"))
            .collect()
    }

    /// Every resident design, sorted by key so the order (and any snapshot
    /// written from it) is deterministic.
    pub fn resident_designs(&self) -> Vec<Arc<DesignedMechanism>> {
        let mut designs: Vec<Arc<DesignedMechanism>> = self
            .shards
            .iter()
            .flat_map(|shard| {
                let shard = shard.lock().expect("shard poisoned");
                shard
                    .entries
                    .values()
                    .filter_map(|entry| match entry {
                        Entry::Ready { design, .. } => Some(Arc::clone(design)),
                        Entry::InFlight(_) => None,
                    })
                    .collect::<Vec<_>>()
            })
            .collect();
        designs.sort_by_key(|design| design.key());
        designs
    }

    /// Serialise every resident design as a JSON snapshot.  Returns how many
    /// designs were written.  Reloading the snapshot with
    /// [`DesignCache::load_snapshot`] restores them exactly (the
    /// [`DesignedMechanism`] serde form is bit-exact).
    pub fn save_snapshot<W: io::Write>(&self, writer: &mut W) -> io::Result<usize> {
        let designs = self.resident_designs();
        write_designs(writer, &designs)?;
        Ok(designs.len())
    }

    /// Restore designs from a JSON snapshot written by
    /// [`DesignCache::save_snapshot`].  Each design is validated on the way in
    /// (matrix dimensions and column stochasticity) and inserted under its own
    /// [`SpecKey`]; keys already resident or in flight are left untouched, and
    /// a shard already at capacity skips further inserts rather than evicting
    /// (a snapshot must never push out live entries, and a skipped design must
    /// not be reported as restored).  Returns how many designs became
    /// resident.  Loaded designs count as [`CacheStats::preloaded`], not as
    /// hits, misses, or solves — so a cache serving its first request entirely
    /// from a snapshot reports zero `lp_solves`.
    pub fn load_snapshot<R: io::Read>(&self, reader: &mut R) -> Result<usize, ServeError> {
        let mut text = String::new();
        reader
            .read_to_string(&mut text)
            .map_err(|e| ServeError::Snapshot(format!("reading snapshot: {e}")))?;
        let designs: Vec<DesignedMechanism> = serde_json::from_str(&text)
            .map_err(|e| ServeError::Snapshot(format!("parsing snapshot: {e}")))?;
        let total = designs.len();
        let mut inserted: usize = 0;
        for design in designs {
            let key = design.key();
            let shard_index = self.shard_of(&key);
            let mut shard = self.shards[shard_index].lock().expect("shard poisoned");
            if shard.entries.contains_key(&key) || shard.ready_len() >= self.per_shard_capacity {
                continue;
            }
            shard.entries.insert(
                key,
                Entry::Ready {
                    design: Arc::new(design),
                    last_used: self.next_tick(),
                },
            );
            // Nested inside the shard lock — see `publish` for the ordering.
            self.family_index
                .lock()
                .expect("family index poisoned")
                .insert(&key);
            self.update_shard_gauge(shard_index, &shard);
            inserted += 1;
        }
        self.add_resident(inserted as i64);
        if inserted < total {
            eprintln!(
                "cpm-serve: snapshot held {total} design(s) but only {inserted} fit the \
                 cache capacity ({}); the rest will design on first request",
                self.capacity()
            );
        }
        self.preloaded.fetch_add(inserted as u64, Ordering::Relaxed);
        Ok(inserted)
    }

    /// [`DesignCache::save_snapshot`] to a file path, written atomically: the
    /// snapshot goes to a `.tmp` sibling first and is renamed into place, so a
    /// crash mid-write can never leave a truncated file where a good snapshot
    /// (or no file at all) used to be.
    pub fn save_snapshot_file<P: AsRef<Path>>(&self, path: P) -> io::Result<usize> {
        let designs = self.resident_designs();
        write_designs_file(path.as_ref(), &designs)?;
        Ok(designs.len())
    }

    /// [`DesignCache::save_snapshot_file`], but designs already in the file
    /// that are *not* resident (evicted, or skipped at load because they did
    /// not fit the capacity) are carried over instead of discarded — a smaller
    /// cache must never shrink the snapshot it was warmed from.  Resident
    /// designs win on key collisions; an unreadable existing file contributes
    /// nothing.  Returns the number of designs in the merged snapshot.
    ///
    /// Concurrent savers (several processes sharing one `CPM_WARM_FILE`) are
    /// serialised through an advisory `.lock` sibling file, closing the
    /// read-modify-write race in which two merges interleave between
    /// `read_to_string` and the tmp-rename and silently drop each other's
    /// entries.  A lock left behind by a crashed process is broken after a
    /// grace period, so the save can stall but never deadlock.
    pub fn save_snapshot_file_merging<P: AsRef<Path>>(&self, path: P) -> io::Result<usize> {
        let path = path.as_ref();
        let _lock = SnapshotLock::acquire(path)?;
        let mut merged: Vec<Arc<DesignedMechanism>> = self.resident_designs();
        let resident: std::collections::HashSet<SpecKey> =
            merged.iter().map(|design| design.key()).collect();
        if let Ok(text) = std::fs::read_to_string(path) {
            if let Ok(existing) = serde_json::from_str::<Vec<DesignedMechanism>>(&text) {
                merged.extend(
                    existing
                        .into_iter()
                        .filter(|design| !resident.contains(&design.key()))
                        .map(Arc::new),
                );
            }
        }
        merged.sort_by_key(|design| design.key());
        write_designs_file(path, &merged)?;
        Ok(merged.len())
    }

    /// [`DesignCache::load_snapshot`] from a file path.
    pub fn load_snapshot_file<P: AsRef<Path>>(&self, path: P) -> Result<usize, ServeError> {
        let mut file = std::fs::File::open(path)
            .map_err(|e| ServeError::Snapshot(format!("opening snapshot: {e}")))?;
        self.load_snapshot(&mut file)
    }

    /// Number of ready designs currently resident.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("shard poisoned").ready_len())
            .sum()
    }

    /// Whether no designs are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total capacity (summed over stripes).
    pub fn capacity(&self) -> usize {
        self.per_shard_capacity * self.shards.len()
    }

    /// Drop every ready entry (in-flight designs are left to finish).  Used by
    /// probes to reproduce cold-start behaviour within one process.
    pub fn clear(&self) {
        for (shard_index, shard) in self.shards.iter().enumerate() {
            let mut shard = shard.lock().expect("shard poisoned");
            // Index removal nests inside each shard's lock (see `publish`),
            // so a design published concurrently to another shard keeps its
            // index entry.
            let mut index = self.family_index.lock().expect("family index poisoned");
            for (key, entry) in shard.entries.iter() {
                if matches!(entry, Entry::Ready { .. }) {
                    index.remove(key);
                }
            }
            drop(index);
            let before = shard.entries.len();
            shard
                .entries
                .retain(|_, entry| matches!(entry, Entry::InFlight(_)));
            let removed = before - shard.entries.len();
            self.update_shard_gauge(shard_index, &shard);
            drop(shard);
            self.add_resident(-(removed as i64));
        }
    }

    /// A point-in-time snapshot of the counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            coalesced: self.coalesced.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            design_solves: self.design_solves.load(Ordering::Relaxed),
            lp_solves: self.lp_solves.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            preloaded: self.preloaded.load(Ordering::Relaxed),
            warm_seeded: self.warm_seeded.load(Ordering::Relaxed),
            design_nanos: self.design_nanos.load(Ordering::Relaxed),
            entries: self.resident.load(Ordering::Relaxed) as usize,
        }
    }

    /// A resident design looked up without touching the hit counters or the
    /// LRU clock — the family-seeding path must not masquerade as traffic.
    fn resident(&self, key: &SpecKey) -> Option<Arc<DesignedMechanism>> {
        let shard = self.shards[self.shard_of(key)]
            .lock()
            .expect("shard poisoned");
        match shard.entries.get(key) {
            Some(Entry::Ready { design, .. }) => Some(Arc::clone(design)),
            _ => None,
        }
    }

    /// The optimal basis of the resident design nearest in α within `key`'s
    /// family, if any carries one.
    fn family_seed(&self, key: &SpecKey) -> Option<Vec<usize>> {
        if !self.family_seeding.load(Ordering::Relaxed) {
            return None;
        }
        let neighbour = self
            .family_index
            .lock()
            .expect("family index poisoned")
            .nearest_neighbour(key)?;
        self.resident(&neighbour)?
            .optimal_basis()
            .map(|basis| basis.to_vec())
    }

    /// Perform one design through the typed core path: the key's default-tuned
    /// [`cpm_core::MechanismSpec`] routes `L0` requests through the Figure-5
    /// flowchart (which short-circuits to closed forms whenever it can) and
    /// other objectives through the constrained LP.  When a same-family
    /// α-neighbour is resident, its optimal basis seeds the LP's dual-simplex
    /// warm start — converting a cold-start storm over an α sweep into one
    /// cold solve plus short dual cleanups.  The seed is a hint: an unusable
    /// one falls back to the cold primal path inside the solver.
    ///
    /// Note on determinism: degenerate mechanism LPs can have several optimal
    /// vertices, and a warm-started solve may return a different optimal
    /// matrix than a cold one (same objective value, same requested
    /// properties).  Deployments that require bit-identical designs across
    /// differently-warmed processes should disable seeding
    /// ([`DesignCache::set_family_seeding`], `CPM_SERVE_FAMILY_SEED=0`) or
    /// share snapshots rather than re-solving.
    fn design_seeded(&self, key: &SpecKey) -> Result<DesignedMechanism, ServeError> {
        let mut spec = key.spec();
        if let Some(seed) = self.family_seed(key) {
            self.warm_seeded.fetch_add(1, Ordering::Relaxed);
            cpm_obs::counter!("cpm_cache_warm_seeded_total").inc();
            spec = spec.warm_start(Some(seed));
        }
        spec.design()
            .map_err(|source| ServeError::Design { key: *key, source })
    }
}

impl std::fmt::Debug for DesignCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DesignCache")
            .field("shards", &self.shards.len())
            .field("per_shard_capacity", &self.per_shard_capacity)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Serialise a design list through references — no deep clones of the matrices.
fn write_designs<W: io::Write>(
    writer: &mut W,
    designs: &[Arc<DesignedMechanism>],
) -> io::Result<()> {
    let by_ref: Vec<&DesignedMechanism> = designs.iter().map(|d| &**d).collect();
    let text = serde_json::to_string(&by_ref)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    writer.write_all(text.as_bytes())?;
    writer.flush()
}

/// Advisory cross-process lock around a snapshot file: a `.lock` sibling
/// created with `create_new` (atomic on every platform the workspace targets).
/// Held for the duration of a read-merge-write; removed on drop.  If the lock
/// cannot be acquired within [`SnapshotLock::STALE_AFTER`] it is presumed
/// abandoned by a crashed process and broken — snapshot saves are an
/// optimisation and must stall briefly at worst, never deadlock a server.
struct SnapshotLock {
    path: std::path::PathBuf,
}

impl SnapshotLock {
    /// How long to wait on a contended lock before presuming its holder died.
    /// Real merges take milliseconds; a multi-second hold is a crashed owner.
    const STALE_AFTER: std::time::Duration = std::time::Duration::from_secs(10);

    fn acquire(snapshot_path: &Path) -> io::Result<SnapshotLock> {
        let mut lock_name = snapshot_path.as_os_str().to_owned();
        lock_name.push(".lock");
        let path = std::path::PathBuf::from(lock_name);
        loop {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(_) => return Ok(SnapshotLock { path }),
                Err(error) if error.kind() == io::ErrorKind::AlreadyExists => {
                    // Staleness is judged by the lock *file's* age, not by how
                    // long this waiter has been waiting: a per-waiter deadline
                    // would let two waiters break (and then share) a lock a
                    // third process just legitimately re-acquired.  A fresh
                    // lock — including one created by another waiter a moment
                    // ago — is always respected.
                    let age = std::fs::metadata(&path)
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|modified| modified.elapsed().ok());
                    match age {
                        Some(age) if age >= Self::STALE_AFTER => {
                            // Presumed abandoned by a crashed process.
                            // Re-stat immediately before removing so a racing
                            // breaker that already replaced the stale file
                            // with its own fresh lock is (almost) never
                            // robbed; the residual stat-to-remove window is
                            // nanoseconds wide, needs a crashed holder plus
                            // two breakers inside it, and even then degrades
                            // to the pre-lock behaviour (a lost merge), not
                            // corruption — the write itself stays atomic.
                            let still_stale = std::fs::metadata(&path)
                                .and_then(|m| m.modified())
                                .ok()
                                .and_then(|modified| modified.elapsed().ok())
                                .is_some_and(|a| a >= Self::STALE_AFTER);
                            if still_stale {
                                let _ = std::fs::remove_file(&path);
                                eprintln!(
                                    "cpm-serve: broke stale snapshot lock {} (age {age:?})",
                                    path.display(),
                                );
                            }
                        }
                        // Missing metadata means the holder just released (or
                        // a breaker just removed it) — retry immediately.
                        None => {}
                        _ => std::thread::sleep(std::time::Duration::from_millis(5)),
                    }
                }
                Err(error) => return Err(error),
            }
        }
    }
}

impl Drop for SnapshotLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Atomic file write: `.tmp` sibling + rename, so a crash mid-write can never
/// leave a truncated snapshot behind.  Shared with the offline tooling.
fn write_designs_file(path: &Path, designs: &[Arc<DesignedMechanism>]) -> io::Result<()> {
    crate::snapshot::write_file(path, designs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cpm_core::{Alpha, ObjectiveKey, Property, PropertySet};

    fn gm_key(n: usize) -> SpecKey {
        SpecKey::new(n, Alpha::new(0.5).unwrap(), PropertySet::empty())
    }

    #[test]
    fn hit_after_miss_returns_the_same_design() {
        let cache = DesignCache::new(8);
        let key = gm_key(6);
        let (first, outcome) = cache.get_with_outcome(&key).unwrap();
        assert_eq!(outcome, Lookup::Designed);
        let (second, outcome) = cache.get_with_outcome(&key).unwrap();
        assert_eq!(outcome, Lookup::Hit);
        assert!(Arc::ptr_eq(&first, &second));
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.design_solves), (1, 1, 1));
        assert_eq!(stats.lp_solves, 0, "GM at alpha=0.5 is closed form");
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_eviction_keeps_the_most_recent_keys() {
        // One stripe so the LRU order is global and observable.
        let cache = DesignCache::with_shards(2, 1);
        let keys: Vec<SpecKey> = (2..6).map(gm_key).collect();
        for key in &keys {
            cache.get(key).unwrap();
        }
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 2);
        // The two most recent keys are hits; the two oldest were evicted.
        cache.get(&keys[3]).unwrap();
        cache.get(&keys[2]).unwrap();
        assert_eq!(cache.stats().misses, 4, "recent keys are still resident");
        cache.get(&keys[0]).unwrap();
        assert_eq!(cache.stats().misses, 5, "oldest key was evicted");
    }

    #[test]
    fn design_errors_are_returned_and_the_key_is_retryable() {
        let cache = DesignCache::new(4);
        // Group size 0 is invalid, so the design fails.
        let bad = SpecKey::new(0, Alpha::new(0.9).unwrap(), PropertySet::empty());
        let error = cache.get(&bad).unwrap_err();
        assert!(matches!(error, ServeError::Design { .. }));
        assert_eq!(cache.len(), 0, "failed design leaves nothing resident");
        // The key is retryable (still a miss, still the same error).
        assert!(cache.get(&bad).is_err());
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn warm_precomputes_the_declared_key_set() {
        let cache = DesignCache::new(16);
        let alpha = Alpha::new(0.9).unwrap();
        let keys = vec![
            SpecKey::new(4, alpha, PropertySet::empty()),
            SpecKey::new(4, alpha, PropertySet::empty().with(Property::Fairness)),
            SpecKey::new(6, alpha, PropertySet::empty().with(Property::WeakHonesty)),
        ];
        let designs = cache.warm(&keys).unwrap();
        assert_eq!(designs.len(), 3);
        assert_eq!(cache.len(), 3);
        // Warm again: all hits, no new designs.
        cache.warm(&keys).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.design_solves, 3);
        assert_eq!(stats.hits, 3);
    }

    #[test]
    fn non_l0_objectives_solve_the_lp_directly() {
        let cache = DesignCache::new(4);
        let key = SpecKey::with_objective(
            4,
            Alpha::new(0.9).unwrap(),
            PropertySet::empty(),
            ObjectiveKey::L1,
        );
        let design = cache.get(&key).unwrap();
        assert!(design.choice().is_none());
        assert!(design.used_lp());
        assert_eq!(cache.stats().lp_solves, 1);
        assert!(design
            .mechanism()
            .satisfies_dp(Alpha::new(0.9).unwrap(), 1e-6));
    }

    #[test]
    fn snapshots_round_trip_within_one_process() {
        let cache = DesignCache::new(16);
        let alpha = Alpha::new(0.9).unwrap();
        let keys = vec![
            gm_key(5),
            SpecKey::new(4, alpha, PropertySet::empty().with(Property::Fairness)),
        ];
        cache.warm(&keys).unwrap();

        let mut buffer = Vec::new();
        assert_eq!(cache.save_snapshot(&mut buffer).unwrap(), 2);

        let fresh = DesignCache::new(16);
        assert_eq!(fresh.load_snapshot(&mut &buffer[..]).unwrap(), 2);
        assert_eq!(fresh.stats().preloaded, 2);
        assert_eq!(fresh.len(), 2);

        // Every key is a pure hit in the fresh cache: zero design work.
        for key in &keys {
            let (restored, outcome) = fresh.get_with_outcome(key).unwrap();
            assert_eq!(outcome, Lookup::Hit);
            let original = cache.get(key).unwrap();
            assert_eq!(
                restored.mechanism().entries(),
                original.mechanism().entries(),
                "snapshot restores the matrix bit-for-bit"
            );
        }
        let stats = fresh.stats();
        assert_eq!(stats.design_solves, 0);
        assert_eq!(stats.lp_solves, 0);
        assert_eq!(stats.misses, 0);

        // Reloading the same snapshot is a no-op (keys already resident).
        assert_eq!(fresh.load_snapshot(&mut &buffer[..]).unwrap(), 0);
    }

    #[test]
    fn oversized_snapshots_report_only_what_fits_and_never_evict() {
        // Warm 5 designs into a roomy cache, snapshot them, then load into a
        // single-stripe cache of capacity 2 that already holds one live entry.
        let source = DesignCache::with_shards(16, 1);
        let keys: Vec<SpecKey> = (2..7).map(gm_key).collect();
        source.warm(&keys).unwrap();
        let mut buffer = Vec::new();
        assert_eq!(source.save_snapshot(&mut buffer).unwrap(), 5);

        let small = DesignCache::with_shards(2, 1);
        let live = gm_key(10);
        small.get(&live).unwrap();
        let inserted = small.load_snapshot(&mut &buffer[..]).unwrap();
        assert_eq!(inserted, 1, "one free slot, one insert reported");
        assert_eq!(small.len(), 2);
        assert_eq!(small.stats().preloaded, 1);
        assert_eq!(small.stats().evictions, 0, "snapshots never evict");
        // The live entry survived the load.
        assert!(small.peek(&live).is_some());
    }

    #[test]
    fn merging_saves_never_shrink_the_snapshot() {
        let path =
            std::env::temp_dir().join(format!("cpm-cache-merge-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);

        // A roomy cache writes 4 designs.
        let source = DesignCache::with_shards(16, 1);
        let keys: Vec<SpecKey> = (2..6).map(gm_key).collect();
        source.warm(&keys).unwrap();
        assert_eq!(source.save_snapshot_file(&path).unwrap(), 4);

        // A capacity-2 cache loads what fits, designs a fresh key, and saves
        // with merging: the designs that never fit must survive on disk.
        let small = DesignCache::with_shards(2, 1);
        assert_eq!(small.load_snapshot_file(&path).unwrap(), 2);
        small.get(&gm_key(9)).unwrap(); // evicts one resident entry
        let merged = small.save_snapshot_file_merging(&path).unwrap();
        assert_eq!(merged, 5, "4 originals + 1 fresh design");

        let check = DesignCache::with_shards(16, 1);
        assert_eq!(check.load_snapshot_file(&path).unwrap(), 5);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn snapshot_files_are_written_atomically() {
        let cache = DesignCache::new(8);
        cache.get(&gm_key(4)).unwrap();
        let path =
            std::env::temp_dir().join(format!("cpm-cache-snapshot-{}.json", std::process::id()));
        assert_eq!(cache.save_snapshot_file(&path).unwrap(), 1);
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(
            !std::path::PathBuf::from(tmp).exists(),
            "temp file renamed away"
        );
        let fresh = DesignCache::new(8);
        assert_eq!(fresh.load_snapshot_file(&path).unwrap(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn per_shard_residency_gauges_are_published() {
        // The registry is process-global and other tests' caches write the
        // same `shard="i"` labels concurrently, so this asserts the family
        // exists after traffic (exact per-stripe values are covered by the
        // spawned-server smoke tests, where the process is ours alone).
        let cache = DesignCache::with_shards(8, 2);
        let keys: Vec<SpecKey> = (2..6).map(gm_key).collect();
        for key in &keys {
            cache.get(key).unwrap();
        }
        cache.clear();
        let exposition = cpm_obs::registry().render();
        assert!(
            exposition.contains("cpm_cache_shard_resident{shard=\"0\"}")
                && exposition.contains("cpm_cache_shard_resident{shard=\"1\"}"),
            "per-shard gauge family missing from:\n{exposition}"
        );
    }

    #[test]
    fn corrupt_snapshots_are_rejected() {
        let cache = DesignCache::new(4);
        assert!(matches!(
            cache.load_snapshot(&mut "not json".as_bytes()),
            Err(ServeError::Snapshot(_))
        ));
        assert_eq!(cache.len(), 0);
    }
}
